#!/usr/bin/env bash
# clang-tidy gate over the production tree (see .clang-tidy for the
# curated check set). Exits non-zero on ANY warning in the linted
# directories (WarningsAsErrors: '*').
#
# Usage: scripts/lint.sh [dir ...]
#   dirs default to: src tests bench
#
# Needs a compilation database; any configured build dir exports one
# (CMAKE_EXPORT_COMPILE_COMMANDS is ON in CMakeLists.txt). The first of
# build/ build-analyze/ that has compile_commands.json is used, or set
# NEURSC_BUILD_DIR explicitly.
#
# When clang-tidy is not installed the script SKIPS with exit 0 and a
# loud message (the container gates on ci.sh, which must stay runnable
# on GCC-only hosts); it never silently passes when clang-tidy exists.

set -euo pipefail
cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "lint.sh: SKIPPED — clang-tidy not installed (install it to run the lint gate)"
  exit 0
fi

BUILD_DIR="${NEURSC_BUILD_DIR:-}"
if [[ -z "$BUILD_DIR" ]]; then
  for d in build build-analyze; do
    if [[ -f "$d/compile_commands.json" ]]; then
      BUILD_DIR="$d"
      break
    fi
  done
fi
if [[ -z "$BUILD_DIR" || ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "lint.sh: no compile_commands.json found; configure a build first" >&2
  echo "         (cmake -B build -S . exports one automatically)" >&2
  exit 2
fi

DIRS=("$@")
if [[ ${#DIRS[@]} -eq 0 ]]; then
  DIRS=(src tests bench)
fi

FILES=()
for d in "${DIRS[@]}"; do
  while IFS= read -r f; do
    FILES+=("$f")
  done < <(find "$d" -name '*.cc' | sort)
done
if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "lint.sh: no .cc files under: ${DIRS[*]}" >&2
  exit 2
fi

echo "lint.sh: clang-tidy over ${#FILES[@]} files (${DIRS[*]}), db=$BUILD_DIR"
STATUS=0
# run-clang-tidy parallelizes when available; otherwise lint serially.
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "$TIDY" -p "$BUILD_DIR" -quiet \
    "${FILES[@]}" || STATUS=$?
else
  for f in "${FILES[@]}"; do
    "$TIDY" -p "$BUILD_DIR" --quiet "$f" || STATUS=$?
  done
fi

if [[ $STATUS -ne 0 ]]; then
  echo "lint.sh: FAILED (warnings above are errors; see .clang-tidy)" >&2
  exit 1
fi
echo "lint.sh: clean"
