// Extension ablation backing the design choice of Sec. 5.2: the intra
// network must be as expressive as the 1-WL test. Compares full NeurSC
// with GIN intra layers against the same model with GraphSAGE-style mean
// aggregation (which cannot distinguish neighborhood multisets).

#include <cstdio>

#include "bench_util.h"

namespace neursc {
namespace bench {
namespace {

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  auto ds = BuildBenchDataset("Yeast", env);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return;
  }
  auto train = Gather(ds->workload, ds->split.train);

  NeurSCConfig gin_config = DefaultNeurSCConfig(env);
  auto with_gin = NeurSCAdapter::Full(ds->graph, gin_config);

  NeurSCConfig mean_config = DefaultNeurSCConfig(env);
  mean_config.west.intra_kind = IntraGnnKind::kMeanAggregator;
  auto with_mean = std::make_unique<NeurSCAdapter>(
      ds->graph, mean_config, "NeurSC (mean-agg)");

  (void)with_gin->Train(train);
  (void)with_mean->Train(train);

  for (size_t size : ds->profile.query_sizes) {
    std::vector<size_t> indices;
    for (size_t i : ds->split.test) {
      if (ds->workload.sizes[i] == size) indices.push_back(i);
    }
    if (indices.empty()) continue;
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Extension: intra-GNN ablation, Yeast Q%zu (%zu queries)",
                  size, indices.size());
    PrintSection(title);
    MethodResult gin_result =
        EvaluateMethod(with_gin.get(), ds->workload, indices);
    gin_result.name = "NeurSC (GIN)";
    PrintMethodRow(gin_result);
    PrintMethodRow(EvaluateMethod(with_mean.get(), ds->workload, indices));
  }
}

}  // namespace
}  // namespace bench
}  // namespace neursc

int main(int argc, char** argv) {
  neursc::ObservabilitySession observability(&argc, argv);
  neursc::bench::Run();
  return 0;
}
