// Extension experiment (not a paper figure): active learning in the
// spirit of ALSS [117]. With a fixed labeling budget, compare NeurSC
// trained on (a) B randomly labeled queries vs (b) B/2 random + B/2
// acquired by ensemble-disagreement active learning. The paper cites the
// AL extension but compares against plain LSS; this harness quantifies
// what AL buys NeurSC on the stand-in datasets.

#include <cstdio>

#include "bench_util.h"
#include "core/active_learner.h"
#include "graph/query_generator.h"

namespace neursc {
namespace bench {
namespace {

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  auto ds = BuildBenchDataset("Yeast", env, {4, 8});
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return;
  }

  // Budget B = |train|; passive uses all of it, active starts from half.
  auto train = Gather(ds->workload, ds->split.train);
  size_t budget = train.size();
  size_t seed_size = budget / 2;
  std::vector<TrainingExample> seed_set(train.begin(),
                                        train.begin() + seed_size);

  // Unlabeled pool: fresh queries (counts unknown until acquired).
  QueryGeneratorConfig qc;
  qc.query_size = 8;
  qc.seed = 123;
  QueryGenerator generator(ds->graph, qc);
  auto pool = generator.GenerateMany(40);
  if (!pool.ok()) {
    std::fprintf(stderr, "pool: %s\n", pool.status().ToString().c_str());
    return;
  }

  NeurSCConfig config = DefaultNeurSCConfig(env);

  // Passive baseline.
  auto passive = NeurSCAdapter::Full(ds->graph, config);
  (void)passive->Train(train);

  // Active: half the budget seeded, the other half acquired.
  std::unique_ptr<NeurSCEstimator> active_model;
  ActiveLearner::Options al;
  al.rounds = 2;
  al.acquisitions_per_round = (budget - seed_size + 1) / 2;
  ActiveLearner learner(ds->graph,
                        MakeNeurSCHooks(&active_model, ds->graph, config),
                        al);
  auto labeled = learner.Run(seed_set, *pool);
  if (!labeled.ok()) {
    std::fprintf(stderr, "active: %s\n",
                 labeled.status().ToString().c_str());
    return;
  }

  PrintSection("Extension: active learning (Yeast, equal labeling budget)");
  std::printf("budget: %zu labeled queries; active seeded with %zu + "
              "acquired %zu\n",
              budget, seed_size, labeled->size() - seed_size);

  MethodResult passive_result =
      EvaluateMethod(passive.get(), ds->workload, ds->split.test);
  passive_result.name = "NeurSC (passive)";
  PrintMethodRow(passive_result);

  MethodResult active_result;
  active_result.name = "NeurSC (active)";
  for (size_t i : ds->split.test) {
    const auto& example = ds->workload.examples[i];
    auto info = active_model->Estimate(example.query);
    ++active_result.evaluated;
    if (!info.ok()) {
      ++active_result.failures;
      continue;
    }
    active_result.signed_qerrors.push_back(
        SignedQError(info->count, example.count));
    active_result.qerrors.push_back(QError(info->count, example.count));
  }
  PrintMethodRow(active_result);
  std::printf("geomean q-error: passive %.2f, active %.2f\n",
              GeometricMean(passive_result.qerrors),
              GeometricMean(active_result.qerrors));
}

}  // namespace
}  // namespace bench
}  // namespace neursc

int main(int argc, char** argv) {
  neursc::ObservabilitySession observability(&argc, argv);
  neursc::bench::Run();
  return 0;
}
