// Reproduces Figure 7 (a-g): signed q-error distributions (box plots) of
// all compared methods on every dataset, per query size. NSIC runs only on
// Yeast, as in the paper (it times out elsewhere under the query budget).

#include <cstdio>
#include <memory>

#include "bench_util.h"

namespace neursc {
namespace bench {
namespace {

void RunDataset(const std::string& name, const BenchEnv& env) {
  auto ds = BuildBenchDataset(name, env);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s: %s\n", name.c_str(),
                 ds.status().ToString().c_str());
    return;
  }
  auto train = Gather(ds->workload, ds->split.train);

  // Non-learned baselines (G-CARE suite).
  CSetEstimator cset(ds->graph);
  SumRdfEstimator sumrdf(ds->graph);
  CorrelatedSamplingEstimator cs(ds->graph);
  WanderJoinEstimator wj(ds->graph);
  JsubEstimator jsub(ds->graph);

  // Learned methods.
  auto lss = std::make_unique<LssEstimator>(ds->graph,
                                            DefaultLssOptions(env));
  auto neursc_full = NeurSCAdapter::Full(ds->graph, DefaultNeurSCConfig(env));
  auto neursc_i = NeurSCAdapter::IntraOnly(ds->graph,
                                           DefaultNeurSCConfig(env));
  auto neursc_d = NeurSCAdapter::Dual(ds->graph, DefaultNeurSCConfig(env));

  std::vector<CardinalityEstimator*> methods = {&cset, &sumrdf, &cs,
                                                &wj,   &jsub};
  std::unique_ptr<NsicEstimator> nsic_i;
  std::unique_ptr<NsicEstimator> nsic_c;
  if (name == "Yeast") {
    nsic_i = std::make_unique<NsicEstimator>(
        ds->graph, DefaultNsicOptions(env, NsicEstimator::GnnKind::kGin));
    nsic_c = std::make_unique<NsicEstimator>(
        ds->graph, DefaultNsicOptions(env, NsicEstimator::GnnKind::kGcn));
    methods.push_back(nsic_i.get());
    methods.push_back(nsic_c.get());
  }
  methods.push_back(lss.get());
  methods.push_back(neursc_i.get());
  methods.push_back(neursc_d.get());
  methods.push_back(neursc_full.get());

  for (CardinalityEstimator* method : methods) {
    Status st = method->Train(train);
    if (!st.ok()) {
      std::fprintf(stderr, "train %s: %s\n", method->Name().c_str(),
                   st.ToString().c_str());
    }
  }

  for (size_t size : ds->profile.query_sizes) {
    // Test indices restricted to this query size.
    std::vector<size_t> indices;
    for (size_t i : ds->split.test) {
      if (ds->workload.sizes[i] == size) indices.push_back(i);
    }
    if (indices.empty()) continue;
    char title[128];
    std::snprintf(title, sizeof(title), "Figure 7: %s Q%zu (%zu queries)",
                  name.c_str(), size, indices.size());
    PrintSection(title);
    for (CardinalityEstimator* method : methods) {
      PrintMethodRow(EvaluateMethod(method, ds->workload, indices));
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace neursc

int main(int argc, char** argv) {
  neursc::ObservabilitySession observability(&argc, argv);
  neursc::bench::BenchEnv env =
      neursc::bench::BenchEnv::FromEnvironment();
  if (argc > 1) {
    neursc::bench::RunDataset(argv[1], env);
    return 0;
  }
  for (const auto& profile : neursc::AllDatasetProfiles()) {
    neursc::bench::RunDataset(profile.name, env);
  }
  return 0;
}
