// Reproduces Figure 9: q-error on Yeast bucketed by query characteristics
// (label entropy, degree entropy, density, diameter), NeurSC vs LSS.

#include <algorithm>
#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "graph/stats.h"

namespace neursc {
namespace bench {
namespace {

struct Characteristic {
  const char* name;
  std::function<double(const Graph&)> value;
};

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  auto ds = BuildBenchDataset("Yeast", env);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return;
  }
  auto train = Gather(ds->workload, ds->split.train);

  LssEstimator lss(ds->graph, DefaultLssOptions(env));
  auto neursc = NeurSCAdapter::Full(ds->graph, DefaultNeurSCConfig(env));
  (void)lss.Train(train);
  (void)neursc->Train(train);

  const Characteristic characteristics[] = {
      {"label entropy", [](const Graph& q) { return LabelEntropy(q); }},
      {"degree entropy", [](const Graph& q) { return DegreeEntropy(q); }},
      {"density", [](const Graph& q) { return q.Density(); }},
      {"diameter",
       [](const Graph& q) { return static_cast<double>(Diameter(q)); }},
  };

  for (const Characteristic& c : characteristics) {
    // Split the test queries at the median of the characteristic.
    std::vector<std::pair<double, size_t>> keyed;
    for (size_t i : ds->split.test) {
      keyed.emplace_back(c.value(ds->workload.examples[i].query), i);
    }
    std::sort(keyed.begin(), keyed.end());
    size_t half = keyed.size() / 2;
    for (int part = 0; part < 2; ++part) {
      std::vector<size_t> indices;
      double lo = 1e300;
      double hi = -1e300;
      size_t begin = part == 0 ? 0 : half;
      size_t end = part == 0 ? half : keyed.size();
      for (size_t k = begin; k < end; ++k) {
        indices.push_back(keyed[k].second);
        lo = std::min(lo, keyed[k].first);
        hi = std::max(hi, keyed[k].first);
      }
      if (indices.empty()) continue;
      char title[160];
      std::snprintf(title, sizeof(title),
                    "Figure 9: Yeast %s %s half [%.2f, %.2f] (%zu queries)",
                    c.name, part == 0 ? "low" : "high", lo, hi,
                    indices.size());
      PrintSection(title);
      PrintMethodRow(EvaluateMethod(&lss, ds->workload, indices));
      PrintMethodRow(EvaluateMethod(neursc.get(), ds->workload, indices));
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace neursc

int main(int argc, char** argv) {
  neursc::ObservabilitySession observability(&argc, argv);
  neursc::bench::Run();
  return 0;
}
