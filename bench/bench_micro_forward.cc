// Micro-benchmark: one WEst forward pass on the autograd Tape vs the
// tape-free EvalContext, over the Table-4 model sizes (tiny harness,
// bench default, paper-scale 128-dim). For each size the harness runs the
// same (query, substructure, seed) forward on both backends and reports
//
//   - single-forward latency (informational only on the 1-CPU container),
//   - heap allocations per pass (counted via the global operator new
//     override below), and
//   - EvalContext arena growth per steady-state pass.
//
// Gates — the properties ci.sh enforces — are deliberately wall-clock
// free: the run exits non-zero if (a) any pass's prediction differs
// between the backends by a single bit, (b) the EvalContext arena grows
// after its warm-up pass, or (c) a steady-state EvalContext pass heap-
// allocates as much as the Tape pass it replaces (the refactor's point).
// Speedup and allocation ratios are exported as gauges through
// --metrics-out for trend tracking.
//
// Environment: NEURSC_PASSES overrides the per-backend pass count
// (default 30).

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/metrics_registry.h"
#include "common/timer.h"
#include "core/feature_init.h"
#include "core/west.h"
#include "matching/substructure.h"
#include "nn/eval.h"
#include "nn/tape.h"

// --- Global allocation counter -----------------------------------------
// Counts every operator new call in the process. The per-pass deltas
// attribute allocations to the forward passes because the measurement
// loops do nothing else. Single-threaded main, but the counter is atomic
// so incidental library threads cannot corrupt it.

namespace {
std::atomic<uint64_t> g_alloc_calls{0};
std::atomic<uint64_t> g_alloc_bytes{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace neursc;
using namespace neursc::bench;

namespace {

uint64_t AllocCalls() {
  return g_alloc_calls.load(std::memory_order_relaxed);
}

/// k disjoint triangles, uniform label 0: extraction of a triangle query
/// yields one substructure per component, deterministically.
Graph DisjointTriangles(size_t k) {
  GraphBuilder builder;
  for (size_t i = 0; i < 3 * k; ++i) builder.AddVertex(0);
  for (size_t c = 0; c < k; ++c) {
    VertexId base = static_cast<VertexId>(3 * c);
    (void)builder.AddEdge(base, base + 1);
    (void)builder.AddEdge(base + 1, base + 2);
    (void)builder.AddEdge(base, base + 2);
  }
  auto graph = builder.Build();
  if (!graph.ok()) std::abort();
  return std::move(graph).value();
}

Graph TriangleQuery() { return DisjointTriangles(1); }

struct SizePoint {
  std::string name;
  size_t intra_dim;
  size_t inter_dim;
  size_t predictor_hidden;
};

struct BackendRun {
  double seconds_per_pass = 0.0;
  uint64_t allocs_per_pass = 0;
  std::vector<float> predictions;  // one per pass, for the agreement gate
};

}  // namespace

int main(int argc, char** argv) {
  ObservabilitySession observability(&argc, argv);

  size_t passes = 30;
  if (const char* env = std::getenv("NEURSC_PASSES")) {
    if (std::atol(env) > 0) passes = static_cast<size_t>(std::atol(env));
  }

  PrintSection("Single-forward latency: Tape vs EvalContext (Table 4 sizes)");

  Graph data = DisjointTriangles(10);
  Graph query = TriangleQuery();
  auto ext = ExtractSubstructures(query, data);
  if (!ext.ok() || ext->substructures.empty()) {
    std::fprintf(stderr, "extraction failed\n");
    return 1;
  }
  const Substructure& sub = ext->substructures[0];
  FeatureInitializer features(data, 1);
  Matrix query_features = features.Compute(query);
  Matrix sub_features = features.Compute(sub.graph);

  const std::vector<SizePoint> sizes = {
      {"tiny-8", 8, 8, 16},
      {"bench-32", 32, 32, 64},
      {"paper-128", 128, 128, 128},
  };

  bool failed = false;
  std::vector<std::vector<std::string>> rows;
  for (const SizePoint& size : sizes) {
    WEstConfig config;
    config.intra_dim = size.intra_dim;
    config.inter_dim = size.inter_dim;
    config.predictor_hidden = size.predictor_hidden;
    config.seed = 1234;
    WEstModel model(features.FeatureDim(), config);

    // --- Tape: a fresh tape per pass, as Estimate's Tape backend runs. ---
    BackendRun tape_run;
    {
      Timer timer;
      const uint64_t allocs_before = AllocCalls();
      for (size_t pass = 0; pass < passes; ++pass) {
        Rng rng(1000 + pass);
        Tape tape;
        auto fw = model.Forward(&tape, query, sub, query_features,
                                sub_features, &rng);
        tape_run.predictions.push_back(tape.Value(fw.prediction).scalar());
      }
      tape_run.seconds_per_pass = timer.ElapsedSeconds() / passes;
      tape_run.allocs_per_pass = (AllocCalls() - allocs_before) / passes;
    }

    // --- EvalContext: one context, Reset() between passes. Pass 0 is the
    // warm-up that sizes the arena; the steady-state window (passes 1..N)
    // is what the allocation and growth gates measure. ---
    BackendRun eval_run;
    EvalContext ctx;
    {
      Rng rng(1000);
      auto fw = model.Forward(&ctx, query, sub, query_features,
                              sub_features, &rng);
      eval_run.predictions.push_back(ctx.Value(fw.prediction).scalar());
    }
    const uint64_t grows_after_warmup = ctx.arena_grows();
    {
      Timer timer;
      const uint64_t allocs_before = AllocCalls();
      for (size_t pass = 1; pass < passes; ++pass) {
        Rng rng(1000 + pass);
        ctx.Reset();
        auto fw = model.Forward(&ctx, query, sub, query_features,
                                sub_features, &rng);
        eval_run.predictions.push_back(ctx.Value(fw.prediction).scalar());
      }
      eval_run.seconds_per_pass = timer.ElapsedSeconds() / (passes - 1);
      eval_run.allocs_per_pass =
          (AllocCalls() - allocs_before) / (passes - 1);
    }
    const uint64_t steady_grows = ctx.arena_grows() - grows_after_warmup;

    // Gate (a): bit agreement on every pass.
    for (size_t pass = 0; pass < passes; ++pass) {
      if (std::memcmp(&tape_run.predictions[pass],
                      &eval_run.predictions[pass], sizeof(float)) != 0) {
        std::fprintf(stderr,
                     "FAIL[%s]: pass %zu prediction differs between "
                     "backends (tape %.9g vs eval %.9g)\n",
                     size.name.c_str(), pass, tape_run.predictions[pass],
                     eval_run.predictions[pass]);
        failed = true;
        break;
      }
    }
    // Gate (b): zero arena growth after warm-up.
    if (steady_grows != 0) {
      std::fprintf(stderr,
                   "FAIL[%s]: arena grew %llu times after warm-up\n",
                   size.name.c_str(),
                   static_cast<unsigned long long>(steady_grows));
      failed = true;
    }
    // Gate (c): the tape-free pass must allocate strictly less than the
    // Tape pass (closure/grad/node allocations are what it removes; the
    // residual allocations are the per-pass bipartite edge lists, which
    // both backends share).
    if (eval_run.allocs_per_pass >= tape_run.allocs_per_pass) {
      std::fprintf(stderr,
                   "FAIL[%s]: EvalContext pass allocates %llu times, "
                   "Tape pass %llu\n",
                   size.name.c_str(),
                   static_cast<unsigned long long>(eval_run.allocs_per_pass),
                   static_cast<unsigned long long>(tape_run.allocs_per_pass));
      failed = true;
    }

    const double speedup =
        eval_run.seconds_per_pass > 0.0
            ? tape_run.seconds_per_pass / eval_run.seconds_per_pass
            : 0.0;
    NEURSC_GAUGE_SET("bench/micro_forward/" + size.name + "/speedup",
                     speedup);
    NEURSC_GAUGE_SET("bench/micro_forward/" + size.name + "/tape_allocs",
                     static_cast<double>(tape_run.allocs_per_pass));
    NEURSC_GAUGE_SET("bench/micro_forward/" + size.name + "/eval_allocs",
                     static_cast<double>(eval_run.allocs_per_pass));
    NEURSC_GAUGE_SET("bench/micro_forward/" + size.name + "/arena_bytes",
                     static_cast<double>(ctx.arena_bytes()));

    rows.push_back({size.name, FormatQ(1e6 * tape_run.seconds_per_pass),
                    FormatQ(1e6 * eval_run.seconds_per_pass),
                    FormatQ(speedup),
                    std::to_string(tape_run.allocs_per_pass),
                    std::to_string(eval_run.allocs_per_pass),
                    std::to_string(steady_grows)});
  }

  PrintTable({"model", "tape us/pass", "eval us/pass", "speedup",
              "tape allocs", "eval allocs", "arena grows"},
             rows);
  std::printf("passes per backend: %zu (latency informational; gates are "
              "agreement + allocations)\n",
              passes);
  if (failed) {
    std::fprintf(stderr, "FAIL: backend differential gates violated\n");
    return 1;
  }
  std::printf("all gates passed: bit agreement, zero steady-state arena "
              "growth, reduced allocations\n");
  return 0;
}
