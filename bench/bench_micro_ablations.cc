// Ablation microbenchmarks for the design choices DESIGN.md calls out:
//  - global-refinement sweep count vs pruning power and cost,
//  - profile radius r=1 vs r=2,
//  - candidate-guided vs unconstrained correspondence selection.
// Pruning power is reported through benchmark counters.

#include <map>

#include <benchmark/benchmark.h>

#include "core/discriminator.h"
#include "core/optimal_transport.h"
#include "graph/generators.h"
#include "graph/query_generator.h"
#include "matching/candidate_filter.h"

namespace neursc {
namespace {

struct Fixture {
  Graph data;
  std::vector<Graph> queries;

  static const Fixture& Get() {
    static auto* fx = [] {
      GeneratorConfig config;
      config.num_vertices = 2000;
      config.num_edges = 8000;
      config.num_labels = 12;
      config.seed = 21;
      auto data = GeneratePowerLawGraph(config);
      QueryGeneratorConfig qc;
      qc.query_size = 8;
      qc.seed = 5;
      QueryGenerator generator(*data, qc);
      auto queries = generator.GenerateMany(8);
      return new Fixture{std::move(data).value(),
                         std::move(queries).value()};
    }();
    return *fx;
  }
};

void BM_FilterRefinementRounds(benchmark::State& state) {
  const Fixture& fx = Fixture::Get();
  CandidateFilterOptions options;
  options.refinement_rounds = static_cast<int>(state.range(0));
  options.local_only = options.refinement_rounds == 0;
  size_t total_candidates = 0;
  size_t runs = 0;
  for (auto _ : state) {
    for (const Graph& q : fx.queries) {
      auto cs = ComputeCandidateSets(q, fx.data, options);
      total_candidates += cs->TotalSize();
      ++runs;
    }
  }
  state.counters["avg_candidates"] =
      benchmark::Counter(static_cast<double>(total_candidates) /
                         static_cast<double>(std::max<size_t>(runs, 1)));
}
BENCHMARK(BM_FilterRefinementRounds)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

void BM_FilterProfileRadius(benchmark::State& state) {
  const Fixture& fx = Fixture::Get();
  CandidateFilterOptions options;
  options.profile_radius = static_cast<int>(state.range(0));
  options.local_only = true;
  size_t total_candidates = 0;
  size_t runs = 0;
  for (auto _ : state) {
    for (const Graph& q : fx.queries) {
      auto cs = ComputeCandidateSets(q, fx.data, options);
      total_candidates += cs->TotalSize();
      ++runs;
    }
  }
  state.counters["avg_candidates"] =
      benchmark::Counter(static_cast<double>(total_candidates) /
                         static_cast<double>(std::max<size_t>(runs, 1)));
}
BENCHMARK(BM_FilterProfileRadius)->Arg(1)->Arg(2);

void BM_CorrespondenceCandidateGuided(benchmark::State& state) {
  const size_t nq = 16;
  const size_t ns = static_cast<size_t>(state.range(0));
  Rng rng(7);
  Matrix query_scores = Matrix::Uniform(nq, 1, -1, 1, &rng);
  Matrix sub_scores = Matrix::Uniform(ns, 1, -1, 1, &rng);
  std::vector<std::vector<VertexId>> candidates(nq);
  for (size_t u = 0; u < nq; ++u) {
    for (int k = 0; k < 8; ++k) {
      candidates[u].push_back(
          static_cast<VertexId>(rng.UniformIndex(ns)));
    }
  }
  for (auto _ : state) {
    auto pairs =
        SelectCorrespondenceByScores(query_scores, sub_scores, candidates);
    benchmark::DoNotOptimize(pairs);
  }
}
BENCHMARK(BM_CorrespondenceCandidateGuided)->Arg(64)->Arg(1024);

void BM_CorrespondenceByDistance(benchmark::State& state) {
  const size_t nq = 16;
  const size_t ns = static_cast<size_t>(state.range(0));
  Rng rng(8);
  Matrix query_repr = Matrix::Uniform(nq, 32, -1, 1, &rng);
  Matrix sub_repr = Matrix::Uniform(ns, 32, -1, 1, &rng);
  std::vector<std::vector<VertexId>> candidates(nq);
  for (size_t u = 0; u < nq; ++u) {
    for (int k = 0; k < 8; ++k) {
      candidates[u].push_back(
          static_cast<VertexId>(rng.UniformIndex(ns)));
    }
  }
  for (auto _ : state) {
    auto pairs = SelectCorrespondenceByDistance(
        query_repr, sub_repr, candidates, DistanceMetric::kEuclidean);
    benchmark::DoNotOptimize(pairs);
  }
}
BENCHMARK(BM_CorrespondenceByDistance)->Arg(64)->Arg(1024);

// Sec. 5.5's claim: exact optimal transport costs too much for its
// benefit. This pits the candidate-guided greedy selection against the
// exact Hungarian assignment on the same inputs; the counter reports how
// close the greedy selection's transport cost is to optimal.
void BM_CorrespondenceExactOt(benchmark::State& state) {
  const size_t nq = 16;
  const size_t ns = static_cast<size_t>(state.range(0));
  Rng rng(9);
  Matrix query_repr = Matrix::Uniform(nq, 32, -1, 1, &rng);
  Matrix sub_repr = Matrix::Uniform(ns, 32, -1, 1, &rng);
  std::vector<std::vector<VertexId>> candidates(nq);
  for (size_t u = 0; u < nq; ++u) {
    for (int k = 0; k < 8; ++k) {
      candidates[u].push_back(
          static_cast<VertexId>(rng.UniformIndex(ns)));
    }
  }
  Correspondence exact;
  for (auto _ : state) {
    exact = SelectCorrespondenceByExactOt(query_repr, sub_repr, candidates);
    benchmark::DoNotOptimize(exact);
  }
  // Cost ratio greedy/exact (close to 1 = greedy nearly optimal; it can
  // dip below 1 only because the greedy selection may reuse a candidate,
  // which the exact injective assignment cannot).
  auto transport_cost = [&](const Correspondence& pairs) {
    double total = 0.0;
    for (size_t i = 0; i < pairs.size(); ++i) {
      total += RepresentationDistance(query_repr.row(pairs.query_rows[i]),
                                      sub_repr.row(pairs.sub_rows[i]), 32,
                                      DistanceMetric::kEuclidean);
    }
    return total;
  };
  auto greedy = SelectCorrespondenceByDistance(
      query_repr, sub_repr, candidates, DistanceMetric::kEuclidean);
  double exact_cost = transport_cost(exact);
  if (exact_cost > 0.0) {
    state.counters["greedy_vs_exact_cost"] =
        benchmark::Counter(transport_cost(greedy) / exact_cost);
  }
}
BENCHMARK(BM_CorrespondenceExactOt)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace neursc

BENCHMARK_MAIN();
