// Component-level microbenchmarks (google-benchmark): candidate filtering,
// substructure extraction, exact enumeration, feature initialization, GIN
// and attention layer forward/backward, Hopcroft-Karp.

#include <map>

#include <benchmark/benchmark.h>

#include "core/feature_init.h"
#include "core/west.h"
#include "graph/generators.h"
#include "graph/query_generator.h"
#include "matching/bipartite_matching.h"
#include "matching/candidate_filter.h"
#include "matching/enumeration.h"
#include "matching/substructure.h"
#include "nn/modules.h"

namespace neursc {
namespace {

struct Fixture {
  Graph data;
  Graph query;

  static const Fixture& Get(size_t query_size) {
    static auto* cache = new std::map<size_t, Fixture>();
    auto it = cache->find(query_size);
    if (it != cache->end()) return it->second;
    GeneratorConfig config;
    config.num_vertices = 2000;
    config.num_edges = 8000;
    config.num_labels = 20;
    config.seed = 11;
    auto data = GeneratePowerLawGraph(config);
    QueryGeneratorConfig qc;
    qc.query_size = query_size;
    qc.seed = 3;
    QueryGenerator generator(*data, qc);
    auto query = generator.GenerateMany(1);
    Fixture fx{std::move(data).value(), std::move((*query)[0])};
    return cache->emplace(query_size, std::move(fx)).first->second;
  }
};

void BM_CandidateFiltering(benchmark::State& state) {
  const Fixture& fx = Fixture::Get(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto cs = ComputeCandidateSets(fx.query, fx.data);
    benchmark::DoNotOptimize(cs);
  }
}
BENCHMARK(BM_CandidateFiltering)->Arg(4)->Arg(8)->Arg(16);

void BM_CandidateFilteringLocalOnly(benchmark::State& state) {
  const Fixture& fx = Fixture::Get(static_cast<size_t>(state.range(0)));
  CandidateFilterOptions options;
  options.local_only = true;
  for (auto _ : state) {
    auto cs = ComputeCandidateSets(fx.query, fx.data, options);
    benchmark::DoNotOptimize(cs);
  }
}
BENCHMARK(BM_CandidateFilteringLocalOnly)->Arg(4)->Arg(8)->Arg(16);

void BM_SubstructureExtraction(benchmark::State& state) {
  const Fixture& fx = Fixture::Get(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto ext = ExtractSubstructures(fx.query, fx.data);
    benchmark::DoNotOptimize(ext);
  }
}
BENCHMARK(BM_SubstructureExtraction)->Arg(4)->Arg(8);

void BM_ExactEnumeration(benchmark::State& state) {
  const Fixture& fx = Fixture::Get(static_cast<size_t>(state.range(0)));
  EnumerationOptions options;
  options.time_limit_seconds = 5.0;
  for (auto _ : state) {
    auto count = CountSubgraphIsomorphisms(fx.query, fx.data, options);
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_ExactEnumeration)->Arg(4)->Arg(8);

void BM_FeatureInitialization(benchmark::State& state) {
  const Fixture& fx = Fixture::Get(4);
  FeatureInitializer features(fx.data, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    Matrix x = features.Compute(fx.data);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_FeatureInitialization)->Arg(1)->Arg(2);

void BM_GinLayerForwardBackward(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  GinLayer layer(32, 32, &rng);
  Matrix features = Matrix::Uniform(n, 32, 0, 1, &rng);
  EdgeIndex edges;
  for (size_t i = 0; i + 1 < n; ++i) {
    edges.Add(static_cast<uint32_t>(i), static_cast<uint32_t>(i + 1));
    edges.Add(static_cast<uint32_t>(i + 1), static_cast<uint32_t>(i));
  }
  for (auto _ : state) {
    Tape tape;
    Var h = layer.Forward(&tape, tape.Constant(features), edges);
    Var loss = tape.ReduceSum(h);
    tape.Backward(loss);
    benchmark::DoNotOptimize(tape);
    layer.ZeroGrad();
  }
}
BENCHMARK(BM_GinLayerForwardBackward)->Arg(100)->Arg(1000)->Arg(5000);

void BM_AttentionLayerForwardBackward(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  BipartiteAttentionLayer layer(32, 32, &rng);
  Matrix features = Matrix::Uniform(2 * n, 32, 0, 1, &rng);
  EdgeIndex edges;
  for (size_t i = 0; i < n; ++i) {
    edges.Add(static_cast<uint32_t>(i), static_cast<uint32_t>(n + i));
    edges.Add(static_cast<uint32_t>(n + i), static_cast<uint32_t>(i));
  }
  for (auto _ : state) {
    Tape tape;
    Var h = layer.Forward(&tape, tape.Constant(features), edges);
    Var loss = tape.ReduceSum(h);
    tape.Backward(loss);
    benchmark::DoNotOptimize(tape);
    layer.ZeroGrad();
  }
}
BENCHMARK(BM_AttentionLayerForwardBackward)->Arg(100)->Arg(1000);

void BM_HopcroftKarp(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  BipartiteGraph g(n, n);
  for (size_t l = 0; l < n; ++l) {
    for (int k = 0; k < 4; ++k) {
      g.AddEdge(l, rng.UniformIndex(n));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaximumBipartiteMatching(g));
  }
}
BENCHMARK(BM_HopcroftKarp)->Arg(64)->Arg(512)->Arg(4096);

void BM_WEstForward(benchmark::State& state) {
  const Fixture& fx = Fixture::Get(static_cast<size_t>(state.range(0)));
  auto ext = ExtractSubstructures(fx.query, fx.data);
  if (!ext.ok() || ext->early_terminate || ext->substructures.empty()) {
    state.SkipWithError("no substructures");
    return;
  }
  FeatureInitializer features(fx.data, 1);
  WEstConfig config;
  WEstModel model(features.FeatureDim(), config);
  Matrix qf = features.Compute(fx.query);
  Matrix sf = features.Compute(ext->substructures[0].graph);
  Rng rng(4);
  for (auto _ : state) {
    Tape tape;
    auto fw = model.Forward(&tape, fx.query, ext->substructures[0], qf, sf,
                            &rng);
    benchmark::DoNotOptimize(tape.Value(fw.prediction).scalar());
  }
}
BENCHMARK(BM_WEstForward)->Arg(4)->Arg(8);

}  // namespace
}  // namespace neursc

BENCHMARK_MAIN();
