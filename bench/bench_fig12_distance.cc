// Reproduces Figure 12: the discriminator distance-metric ablation on
// Yeast — Wasserstein (full NeurSC) vs Euclidean, KL and JS variants.

#include <cstdio>

#include "bench_util.h"

namespace neursc {
namespace bench {
namespace {

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  auto ds = BuildBenchDataset("Yeast", env);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return;
  }
  auto train = Gather(ds->workload, ds->split.train);

  std::vector<std::unique_ptr<NeurSCAdapter>> variants;
  variants.push_back(NeurSCAdapter::WithMetric(
      ds->graph, DefaultNeurSCConfig(env), DistanceMetric::kEuclidean));
  variants.push_back(NeurSCAdapter::WithMetric(
      ds->graph, DefaultNeurSCConfig(env), DistanceMetric::kKL));
  variants.push_back(NeurSCAdapter::WithMetric(
      ds->graph, DefaultNeurSCConfig(env), DistanceMetric::kJS));
  variants.push_back(NeurSCAdapter::WithMetric(
      ds->graph, DefaultNeurSCConfig(env), DistanceMetric::kWasserstein));

  for (auto& variant : variants) {
    Status st = variant->Train(train);
    if (!st.ok()) {
      std::fprintf(stderr, "train %s: %s\n", variant->Name().c_str(),
                   st.ToString().c_str());
    }
  }

  for (size_t size : ds->profile.query_sizes) {
    std::vector<size_t> indices;
    for (size_t i : ds->split.test) {
      if (ds->workload.sizes[i] == size) indices.push_back(i);
    }
    if (indices.empty()) continue;
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Figure 12: Yeast Q%zu (%zu queries)", size,
                  indices.size());
    PrintSection(title);
    for (auto& variant : variants) {
      PrintMethodRow(EvaluateMethod(variant.get(), ds->workload, indices));
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace neursc

int main(int argc, char** argv) {
  neursc::ObservabilitySession observability(&argc, argv);
  neursc::bench::Run();
  return 0;
}
