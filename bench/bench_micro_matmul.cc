// Dense matmul microbenchmarks (google-benchmark) for the three kernels
// behind every GNN layer: MatMul, MatMulTransposeA (weight gradients) and
// MatMulTransposeB (input gradients). A zero-skip reference (the kernel
// shape this repo used before the 4-wide unroll) runs alongside so the
// win on dense training matrices is measured, not assumed; an agreement
// check guards against the unroll changing results.

#include <cstdlib>

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "common/rng.h"
#include "nn/matrix.h"

namespace neursc {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  return Matrix::Uniform(rows, cols, -1.0f, 1.0f, &rng);
}

/// The pre-unroll kernel: i-k-j with a per-(i, k) zero-skip branch.
/// Identical float association to Matrix::MatMul on inputs without zeros.
Matrix ReferenceMatMulZeroSkip(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    for (size_t k = 0; k < a.cols(); ++k) {
      float aik = arow[k];
      if (aik == 0.0f) continue;
      const float* brow = b.row(k);
      for (size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

void CheckAgreement(size_t n) {
  Matrix a = RandomMatrix(n, n, 7);
  Matrix b = RandomMatrix(n, n, 8);
  NEURSC_CHECK(Matrix::MaxAbsDiff(Matrix::MatMul(a, b),
                                  ReferenceMatMulZeroSkip(a, b)) == 0.0f)
      << "unrolled MatMul diverged from the reference kernel";
}

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  CheckAgreement(n);
  Matrix a = RandomMatrix(n, n, 1);
  Matrix b = RandomMatrix(n, n, 2);
  for (auto _ : state) {
    Matrix c = Matrix::MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(128)->Arg(256);

void BM_MatMulZeroSkipReference(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Matrix a = RandomMatrix(n, n, 1);
  Matrix b = RandomMatrix(n, n, 2);
  for (auto _ : state) {
    Matrix c = ReferenceMatMulZeroSkip(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMulZeroSkipReference)->Arg(32)->Arg(128)->Arg(256);

void BM_MatMulTransposeA(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Matrix a = RandomMatrix(n, n, 3);
  Matrix b = RandomMatrix(n, n, 4);
  for (auto _ : state) {
    Matrix c = Matrix::MatMulTransposeA(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMulTransposeA)->Arg(32)->Arg(128)->Arg(256);

void BM_MatMulTransposeB(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Matrix a = RandomMatrix(n, n, 5);
  Matrix b = RandomMatrix(n, n, 6);
  for (auto _ : state) {
    Matrix c = Matrix::MatMulTransposeB(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMulTransposeB)->Arg(32)->Arg(128)->Arg(256);

/// Rectangular shapes from the training hot path: (vertices x feature_dim)
/// times (feature_dim x hidden).
void BM_MatMulGnnShape(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  Matrix a = RandomMatrix(rows, 64, 9);
  Matrix b = RandomMatrix(64, 32, 10);
  for (auto _ : state) {
    Matrix c = Matrix::MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * rows * 64 * 32);
}
BENCHMARK(BM_MatMulGnnShape)->Arg(64)->Arg(512)->Arg(2048);

}  // namespace
}  // namespace neursc

BENCHMARK_MAIN();
