#ifndef NEURSC_BENCH_BENCH_UTIL_H_
#define NEURSC_BENCH_BENCH_UTIL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/cset.h"
#include "baselines/estimator.h"
#include "baselines/lss.h"
#include "baselines/neursc_adapter.h"
#include "baselines/nsic.h"
#include "baselines/sampling.h"
#include "baselines/sumrdf.h"
#include "eval/metrics.h"
#include "eval/reporting.h"
#include "eval/workload.h"
#include "graph/generators.h"

namespace neursc {
namespace bench {

/// Harness-wide knobs, overridable via environment variables so the same
/// binaries support quick smoke runs and higher-fidelity sweeps:
///   NEURSC_SCALE   multiplies every dataset's generation scale
///   NEURSC_EPOCHS  training epochs for learned models (default 16)
///   NEURSC_QUERIES queries per (dataset, size) (default from profile,
///                  capped at 32)
struct BenchEnv {
  size_t epochs = 16;
  size_t pretrain_epochs = 8;
  size_t max_queries_per_size = 32;
  double ground_truth_budget_seconds = 1.0;

  static BenchEnv FromEnvironment();
};

/// A dataset stand-in plus its labeled workload and 80/20 split.
struct BenchDataset {
  DatasetProfile profile;
  Graph graph;
  Workload workload;
  WorkloadSplit split;
};

/// Generates the stand-in for `profile_name` and builds its workload.
/// `sizes_override` non-empty replaces the profile's query sizes;
/// `edge_keep_probability` > 0 overrides the workload default (1.0 yields
/// induced = dense queries).
Result<BenchDataset> BuildBenchDataset(
    const std::string& profile_name, const BenchEnv& env,
    const std::vector<size_t>& sizes_override = {},
    double edge_keep_probability = 0.0);

/// Default NeurSC configuration for bench runs (paper architecture at
/// reduced width; see DESIGN.md).
NeurSCConfig DefaultNeurSCConfig(const BenchEnv& env);

LssEstimator::Options DefaultLssOptions(const BenchEnv& env);
NsicEstimator::Options DefaultNsicOptions(const BenchEnv& env,
                                          NsicEstimator::GnnKind kind);

/// Per-method evaluation result over a set of queries.
struct MethodResult {
  std::string name;
  std::vector<double> signed_qerrors;
  std::vector<double> qerrors;
  size_t timeouts = 0;
  size_t failures = 0;
  double total_estimate_seconds = 0.0;
  size_t evaluated = 0;

  double MeanQueryMillis() const {
    return evaluated == 0 ? 0.0
                          : 1e3 * total_estimate_seconds /
                                static_cast<double>(evaluated);
  }
};

/// Runs `method` over the workload examples at `indices`.
MethodResult EvaluateMethod(CardinalityEstimator* method,
                            const Workload& workload,
                            const std::vector<size_t>& indices);

/// Prints one box-plot row (signed q-error) plus timeout/failure counts.
void PrintMethodRow(const MethodResult& result);

}  // namespace bench
}  // namespace neursc

#endif  // NEURSC_BENCH_BENCH_UTIL_H_
