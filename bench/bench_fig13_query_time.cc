// Reproduces Figure 13 (a-g): average query processing time per method and
// per dataset/query size. Learned methods are trained briefly first (query
// latency is independent of training quality).

#include <cstdio>

#include "bench_util.h"

namespace neursc {
namespace bench {
namespace {

void RunDataset(const std::string& name, const BenchEnv& env) {
  BenchEnv quick = env;
  quick.epochs = 2;  // latency, not accuracy, is measured here
  quick.pretrain_epochs = 1;
  auto ds = BuildBenchDataset(name, quick);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s: %s\n", name.c_str(),
                 ds.status().ToString().c_str());
    return;
  }
  auto train = Gather(ds->workload, ds->split.train);

  CSetEstimator cset(ds->graph);
  SumRdfEstimator sumrdf(ds->graph);
  CorrelatedSamplingEstimator cs(ds->graph);
  WanderJoinEstimator wj(ds->graph);
  JsubEstimator jsub(ds->graph);
  LssEstimator lss(ds->graph, DefaultLssOptions(quick));
  auto neursc = NeurSCAdapter::Full(ds->graph, DefaultNeurSCConfig(quick));
  (void)lss.Train(train);
  (void)neursc->Train(train);

  std::vector<CardinalityEstimator*> methods = {
      &cset, &sumrdf, &cs, &wj, &jsub, &lss, neursc.get()};

  for (size_t size : ds->profile.query_sizes) {
    std::vector<size_t> indices;
    for (size_t i : ds->split.test) {
      if (ds->workload.sizes[i] == size) indices.push_back(i);
    }
    if (indices.empty()) continue;
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Figure 13: %s Q%zu avg query time (%zu queries)",
                  name.c_str(), size, indices.size());
    PrintSection(title);
    std::vector<std::vector<std::string>> rows;
    for (CardinalityEstimator* method : methods) {
      MethodResult r = EvaluateMethod(method, ds->workload, indices);
      char ms[32];
      std::snprintf(ms, sizeof(ms), "%.3f", r.MeanQueryMillis());
      char to[32];
      std::snprintf(to, sizeof(to), "%zu", r.timeouts);
      rows.push_back({r.name, ms, to});
    }
    PrintTable({"Method", "avg ms/query", "timeouts"}, rows);
  }
}

}  // namespace
}  // namespace bench
}  // namespace neursc

int main(int argc, char** argv) {
  neursc::ObservabilitySession observability(&argc, argv);
  neursc::bench::BenchEnv env =
      neursc::bench::BenchEnv::FromEnvironment();
  if (argc > 1) {
    neursc::bench::RunDataset(argv[1], env);
    return 0;
  }
  for (const auto& profile : neursc::AllDatasetProfiles()) {
    neursc::bench::RunDataset(profile.name, env);
  }
  return 0;
}
