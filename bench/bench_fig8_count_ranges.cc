// Reproduces Figure 8: q-error on Yeast bucketed by the range of the true
// count, for the learned methods (NeurSC vs LSS plus the NeurSC variants).

#include <cmath>
#include <cstdio>

#include "bench_util.h"

namespace neursc {
namespace bench {
namespace {

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  auto ds = BuildBenchDataset("Yeast", env);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return;
  }
  auto train = Gather(ds->workload, ds->split.train);

  LssEstimator lss(ds->graph, DefaultLssOptions(env));
  auto neursc = NeurSCAdapter::Full(ds->graph, DefaultNeurSCConfig(env));
  (void)lss.Train(train);
  (void)neursc->Train(train);

  // Buckets of true counts by decade pairs, as in the figure.
  struct Bucket {
    double lo;
    double hi;
    const char* label;
  };
  const Bucket buckets[] = {
      {0, 1e2, "[1, 1e2)"},
      {1e2, 1e4, "[1e2, 1e4)"},
      {1e4, 1e6, "[1e4, 1e6)"},
      {1e6, 1e12, "[1e6, +)"},
  };

  for (const Bucket& bucket : buckets) {
    std::vector<size_t> indices;
    for (size_t i : ds->split.test) {
      double c = ds->workload.examples[i].count;
      if (c >= bucket.lo && c < bucket.hi) indices.push_back(i);
    }
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Figure 8: Yeast true counts in %s (%zu queries)",
                  bucket.label, indices.size());
    PrintSection(title);
    if (indices.empty()) {
      std::printf("(no test queries in this range)\n");
      continue;
    }
    PrintMethodRow(EvaluateMethod(&lss, ds->workload, indices));
    PrintMethodRow(EvaluateMethod(neursc.get(), ds->workload, indices));
  }
}

}  // namespace
}  // namespace bench
}  // namespace neursc

int main(int argc, char** argv) {
  neursc::ObservabilitySession observability(&argc, argv);
  neursc::bench::Run();
  return 0;
}
