// Scenario: the EstimateBatch serving path under load. Builds a ~50-query
// workload, trains NeurSC once, then times the same query set three ways:
//
//   serial    sequential Estimate calls with NEURSC_THREADS=1
//   batch@1   EstimateBatch with NEURSC_THREADS=1 (scheduling overhead)
//   batch@N   EstimateBatch with the work pool at N threads
//
// The three runs start from identical estimator state (weights are saved
// once and reloaded), so the per-query estimates must agree within 1e-10;
// the run aborts loudly if they do not. Speedups and the max deviation are
// printed, and --metrics-out/--trace-out export the usual observability
// artifacts (the acceptance record for the >=3x batch speedup).
//
// Environment: NEURSC_THREADS sets N (default 8); NEURSC_EPOCHS,
// NEURSC_QUERIES as in the other harnesses.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/timer.h"

using namespace neursc;
using namespace neursc::bench;

namespace {

void SetThreads(size_t n) {
  setenv("NEURSC_THREADS", std::to_string(n).c_str(), /*overwrite=*/1);
}

}  // namespace

int main(int argc, char** argv) {
  ObservabilitySession observability(&argc, argv);
  BenchEnv env = BenchEnv::FromEnvironment();

  const char* threads_env = std::getenv("NEURSC_THREADS");
  size_t pool_threads = 8;
  if (threads_env != nullptr && std::atol(threads_env) > 0) {
    pool_threads = static_cast<size_t>(std::atol(threads_env));
  }

  PrintSection("Batch estimation throughput (EstimateBatch work pool)");
  SetThreads(pool_threads);  // parallel ground truth for workload build
  auto dataset = BuildBenchDataset("Yeast", env, {4, 6, 8});
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::vector<size_t> indices(dataset->workload.examples.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  std::vector<Graph> queries;
  queries.reserve(indices.size());
  for (size_t i : indices) {
    queries.push_back(dataset->workload.examples[i].query);
  }
  std::printf("workload: %zu queries on %s\n", queries.size(),
              dataset->graph.Summary().c_str());

  NeurSCEstimator trained(dataset->graph, DefaultNeurSCConfig(env));
  auto stats = trained.Train(Gather(dataset->workload, dataset->split.train));
  if (!stats.ok()) {
    std::fprintf(stderr, "train: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  const std::string model_path = "/tmp/neursc_bench_batch.model";
  if (Status st = trained.SaveModel(model_path); !st.ok()) {
    std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
    return 1;
  }
  auto fresh_estimator = [&]() {
    auto est = std::make_unique<NeurSCEstimator>(dataset->graph,
                                                 DefaultNeurSCConfig(env));
    Status st = est->LoadModel(model_path);
    if (!st.ok()) {
      std::fprintf(stderr, "load: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    return est;
  };

  // --- Serial reference: one query at a time, one thread. ---
  SetThreads(1);
  auto serial = fresh_estimator();
  std::vector<double> serial_counts;
  serial_counts.reserve(queries.size());
  Timer serial_timer;
  for (const Graph& q : queries) {
    auto info = serial->Estimate(q);
    if (!info.ok()) {
      std::fprintf(stderr, "estimate: %s\n",
                   info.status().ToString().c_str());
      return 1;
    }
    serial_counts.push_back(info->count);
  }
  double serial_seconds = serial_timer.ElapsedSeconds();

  // --- Batch at one thread: isolates work-pool scheduling overhead. ---
  auto batch1 = fresh_estimator();
  Timer batch1_timer;
  auto batch1_infos = batch1->EstimateBatch(queries);
  double batch1_seconds = batch1_timer.ElapsedSeconds();
  if (!batch1_infos.ok()) {
    std::fprintf(stderr, "batch@1: %s\n",
                 batch1_infos.status().ToString().c_str());
    return 1;
  }

  // --- Batch at N threads: the serving configuration. ---
  SetThreads(pool_threads);
  auto batchn = fresh_estimator();
  Timer batchn_timer;
  auto batchn_infos = batchn->EstimateBatch(queries);
  double batchn_seconds = batchn_timer.ElapsedSeconds();
  if (!batchn_infos.ok()) {
    std::fprintf(stderr, "batch@N: %s\n",
                 batchn_infos.status().ToString().c_str());
    return 1;
  }

  double max_diff = 0.0;
  for (size_t i = 0; i < queries.size(); ++i) {
    max_diff = std::max(
        max_diff, std::fabs(serial_counts[i] - (*batch1_infos)[i].count));
    max_diff = std::max(
        max_diff, std::fabs(serial_counts[i] - (*batchn_infos)[i].count));
  }

  PrintTable(
      {"mode", "threads", "seconds", "ms/query", "speedup"},
      {{"serial Estimate", "1", FormatQ(serial_seconds),
        FormatQ(1e3 * serial_seconds / queries.size()), "1.00"},
       {"EstimateBatch", "1", FormatQ(batch1_seconds),
        FormatQ(1e3 * batch1_seconds / queries.size()),
        FormatQ(serial_seconds / batch1_seconds)},
       {"EstimateBatch", std::to_string(pool_threads),
        FormatQ(batchn_seconds),
        FormatQ(1e3 * batchn_seconds / queries.size()),
        FormatQ(serial_seconds / batchn_seconds)}});
  std::printf("max |serial - batch| per-query deviation: %.3g\n", max_diff);
  if (max_diff > 1e-10) {
    std::fprintf(stderr,
                 "FAIL: batch estimates deviate from the serial path\n");
    return 1;
  }
  std::printf("batch@%zu speedup over serial: %.2fx\n", pool_threads,
              serial_seconds / batchn_seconds);
  return 0;
}
