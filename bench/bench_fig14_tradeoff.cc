// Reproduces Figure 14: the accuracy/efficiency trade-off from sampling
// candidate substructures at rate r_s in {0.1 ... 0.5, 1.0}, on the
// Youtube (Q16) and EU2005 (Q8) stand-ins, with LSS as the reference line.

#include <cstdio>

#include "bench_util.h"

namespace neursc {
namespace bench {
namespace {

void RunDataset(const std::string& name, size_t query_size,
                const BenchEnv& env) {
  // Induced (dense) queries: their candidate regions fragment into
  // multiple substructures, which is what the r_s sweep samples over. At
  // the default reduced scale most queries have only a handful of
  // substructures (the paper's full-scale graphs have many more).
  auto ds = BuildBenchDataset(name, env, {query_size},
                              /*edge_keep_probability=*/1.0);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s: %s\n", name.c_str(),
                 ds.status().ToString().c_str());
    return;
  }
  auto train = Gather(ds->workload, ds->split.train);

  LssEstimator lss(ds->graph, DefaultLssOptions(env));
  (void)lss.Train(train);

  // One trained model; the sample rate only affects inference, so train
  // once at r_s = 1 and sweep the rate on the shared weights.
  auto neursc = NeurSCAdapter::Full(ds->graph, DefaultNeurSCConfig(env));
  (void)neursc->Train(train);

  char title[128];
  std::snprintf(title, sizeof(title), "Figure 14: %s Q%zu", name.c_str(),
                query_size);
  PrintSection(title);

  MethodResult lss_result =
      EvaluateMethod(&lss, ds->workload, ds->split.test);
  std::printf("reference  ");
  PrintMethodRow(lss_result);
  std::printf("reference  LSS avg ms/query: %.3f\n",
               lss_result.MeanQueryMillis());

  for (double rate : {0.1, 0.2, 0.3, 0.4, 0.5, 1.0}) {
    // The sample rate only affects inference, so the single trained model
    // is swept in place.
    neursc->estimator().set_sample_rate(rate);
    MethodResult r =
        EvaluateMethod(neursc.get(), ds->workload, ds->split.test);
    // Substructure usage under this rate.
    size_t total_subs = 0;
    size_t used_subs = 0;
    for (size_t i : ds->split.test) {
      auto info = neursc->estimator().Estimate(
          ds->workload.examples[i].query);
      if (!info.ok()) continue;
      total_subs += info->num_substructures;
      used_subs += info->num_used;
    }
    char label[48];
    std::snprintf(label, sizeof(label), "r_s=%.1f    ", rate);
    std::printf("%s", label);
    PrintMethodRow(r);
    std::printf("%savg ms/query: %.3f  (substructures used %zu/%zu)\n",
                label, r.MeanQueryMillis(), used_subs, total_subs);
  }
}

}  // namespace
}  // namespace bench
}  // namespace neursc

int main(int argc, char** argv) {
  neursc::ObservabilitySession observability(&argc, argv);
  neursc::bench::BenchEnv env =
      neursc::bench::BenchEnv::FromEnvironment();
  // The paper sweeps Youtube Q16 and EU2005 Q8 at full scale; at the
  // reduced stand-in scale only small induced queries produce multiple
  // substructures, so the sweep uses Q4 (plus Wordnet, whose 5-label space
  // fragments most).
  neursc::bench::RunDataset("Youtube", 4, env);
  neursc::bench::RunDataset("Wordnet", 4, env);
  return 0;
}
