// Reproduces Figure 11: effectiveness of substructure extraction on Yeast.
// Compared: NeurSC, NeurSC w/o SE, NeurSC w/ PS ("perfect" substructures
// built from ground-truth embeddings), NSIC-I, NSIC-I w/ SE.

#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "matching/enumeration.h"

namespace neursc {
namespace bench {
namespace {

/// Evaluates a trained NeurSC on perfect substructures derived from the
/// ground-truth embeddings of each test query.
MethodResult EvaluateWithPerfectSubstructures(
    NeurSCAdapter* model, const Graph& data, const Workload& workload,
    const std::vector<size_t>& indices) {
  MethodResult result;
  result.name = "NeurSC w/ PS";
  for (size_t i : indices) {
    const auto& example = workload.examples[i];
    EnumerationOptions eopts;
    eopts.collect_embeddings = 2000;
    eopts.time_limit_seconds = 2.0;
    auto counted = CountSubgraphIsomorphisms(example.query, data, eopts);
    if (!counted.ok()) {
      ++result.failures;
      continue;
    }
    std::vector<VertexId> universe;
    for (const auto& embedding : counted->embeddings) {
      universe.insert(universe.end(), embedding.begin(), embedding.end());
    }
    auto cs = ComputeCandidateSets(example.query, data);
    if (!cs.ok()) {
      ++result.failures;
      continue;
    }
    auto perfect =
        BuildSubstructuresFromVertices(example.query, data, universe, *cs);
    if (!perfect.ok()) {
      ++result.failures;
      continue;
    }
    Timer timer;
    auto info = model->estimator().EstimateOnSubstructures(example.query,
                                                           *perfect);
    result.total_estimate_seconds += timer.ElapsedSeconds();
    ++result.evaluated;
    if (!info.ok()) {
      ++result.failures;
      continue;
    }
    result.signed_qerrors.push_back(SignedQError(info->count, example.count));
    result.qerrors.push_back(QError(info->count, example.count));
  }
  return result;
}

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  auto ds = BuildBenchDataset("Yeast", env);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return;
  }
  auto train = Gather(ds->workload, ds->split.train);

  auto neursc = NeurSCAdapter::Full(ds->graph, DefaultNeurSCConfig(env));
  auto no_se =
      NeurSCAdapter::WithoutExtraction(ds->graph, DefaultNeurSCConfig(env));
  NsicEstimator nsic(
      ds->graph, DefaultNsicOptions(env, NsicEstimator::GnnKind::kGin));
  auto nsic_se_options =
      DefaultNsicOptions(env, NsicEstimator::GnnKind::kGin);
  nsic_se_options.use_substructure_extraction = true;
  NsicEstimator nsic_se(ds->graph, nsic_se_options);

  (void)neursc->Train(train);
  (void)no_se->Train(train);
  (void)nsic.Train(train);
  (void)nsic_se.Train(train);

  for (size_t size : ds->profile.query_sizes) {
    std::vector<size_t> indices;
    for (size_t i : ds->split.test) {
      if (ds->workload.sizes[i] == size) indices.push_back(i);
    }
    if (indices.empty()) continue;
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Figure 11: Yeast Q%zu (%zu queries)", size,
                  indices.size());
    PrintSection(title);
    PrintMethodRow(EvaluateMethod(&nsic, ds->workload, indices));
    PrintMethodRow(EvaluateMethod(&nsic_se, ds->workload, indices));
    PrintMethodRow(EvaluateMethod(no_se.get(), ds->workload, indices));
    PrintMethodRow(EvaluateMethod(neursc.get(), ds->workload, indices));
    PrintMethodRow(EvaluateWithPerfectSubstructures(
        neursc.get(), ds->graph, ds->workload, indices));
  }
}

}  // namespace
}  // namespace bench
}  // namespace neursc

int main(int argc, char** argv) {
  neursc::ObservabilitySession observability(&argc, argv);
  neursc::bench::Run();
  return 0;
}
