#include "bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "common/trace.h"

namespace neursc {
namespace bench {

namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  long parsed = std::atol(v);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

}  // namespace

BenchEnv BenchEnv::FromEnvironment() {
  BenchEnv env;
  env.epochs = EnvSize("NEURSC_EPOCHS", env.epochs);
  env.pretrain_epochs = env.epochs / 2;
  env.max_queries_per_size =
      EnvSize("NEURSC_QUERIES", env.max_queries_per_size);
  return env;
}

Result<BenchDataset> BuildBenchDataset(
    const std::string& profile_name, const BenchEnv& env,
    const std::vector<size_t>& sizes_override,
    double edge_keep_probability) {
  auto profile = FindDatasetProfile(profile_name);
  if (!profile.ok()) return profile.status();
  auto graph = GenerateDataset(*profile, 0, /*seed=*/42);
  if (!graph.ok()) return graph.status();

  std::vector<size_t> sizes =
      sizes_override.empty() ? profile->query_sizes : sizes_override;
  size_t per_size =
      std::min(profile->default_queries_per_size, env.max_queries_per_size);
  WorkloadOptions options;
  options.ground_truth_time_limit = env.ground_truth_budget_seconds;
  options.seed = 7;
  if (edge_keep_probability > 0.0) {
    options.edge_keep_probability = edge_keep_probability;
  }
  auto workload = BuildWorkload(*graph, sizes, per_size, options);
  if (!workload.ok()) return workload.status();

  BenchDataset out{std::move(profile).value(), std::move(graph).value(),
                   std::move(workload).value(), {}};
  out.split = StratifiedSplit(out.workload, 0.8, 5);
  return out;
}

NeurSCConfig DefaultNeurSCConfig(const BenchEnv& env) {
  NeurSCConfig config;
  config.west.intra_dim = 32;
  config.west.inter_dim = 32;
  config.west.predictor_hidden = 64;
  config.disc_hidden = 32;
  config.epochs = env.epochs;
  config.pretrain_epochs = env.pretrain_epochs;
  config.batch_size = 20;
  return config;
}

LssEstimator::Options DefaultLssOptions(const BenchEnv& env) {
  LssEstimator::Options options;
  options.hidden_dim = 32;
  options.attention_dim = 32;
  options.epochs = env.epochs;
  return options;
}

NsicEstimator::Options DefaultNsicOptions(const BenchEnv& env,
                                          NsicEstimator::GnnKind kind) {
  NsicEstimator::Options options;
  options.kind = kind;
  options.hidden_dim = 32;
  options.epochs = env.epochs;
  return options;
}

MethodResult EvaluateMethod(CardinalityEstimator* method,
                            const Workload& workload,
                            const std::vector<size_t>& indices) {
  MethodResult result;
  result.name = method->Name();
  NEURSC_SPAN(method_span, "bench/evaluate_method");
  for (size_t i : indices) {
    const auto& example = workload.examples[i];
    Timer timer;
    auto est = method->EstimateCount(example.query);
    result.total_estimate_seconds += timer.ElapsedSeconds();
    ++result.evaluated;
    if (!est.ok()) {
      if (est.status().IsTimeout()) {
        ++result.timeouts;
      } else {
        ++result.failures;
      }
      continue;
    }
    result.signed_qerrors.push_back(SignedQError(*est, example.count));
    result.qerrors.push_back(QError(*est, example.count));
  }
  return result;
}

void PrintMethodRow(const MethodResult& result) {
  std::string row =
      FormatBoxRow(result.name, ComputeBoxStats(result.signed_qerrors));
  if (result.timeouts > 0 || result.failures > 0) {
    char suffix[64];
    std::snprintf(suffix, sizeof(suffix), "  [timeouts=%zu failures=%zu]",
                  result.timeouts, result.failures);
    row += suffix;
  }
  std::printf("%s\n", row.c_str());
}

}  // namespace bench
}  // namespace neursc
