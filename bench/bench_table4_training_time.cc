// Reproduces Table 4: training time (seconds) for one epoch, Q4 workload,
// for LSS, NeurSC-I, NeurSC-D and full NeurSC on every dataset.

#include <cstdio>

#include "bench_util.h"

namespace neursc {
namespace bench {
namespace {

double OneEpochSeconds(NeurSCAdapter* model,
                       const std::vector<TrainingExample>& train,
                       bool adversarial) {
  // Configure exactly one epoch of the requested phase by re-training; the
  // adapter's stats expose the per-epoch wall time.
  Status st = model->Train(train);
  if (!st.ok()) return -1.0;
  const auto& seconds = model->train_stats().epoch_seconds;
  if (seconds.empty()) return -1.0;
  (void)adversarial;
  return seconds.back();
}

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  std::vector<std::vector<std::string>> rows;
  for (const auto& profile : AllDatasetProfiles()) {
    auto ds = BuildBenchDataset(profile.name, env, {4});
    if (!ds.ok()) {
      std::fprintf(stderr, "%s: %s\n", profile.name.c_str(),
                   ds.status().ToString().c_str());
      continue;
    }
    auto train = Gather(ds->workload, ds->split.train);

    // LSS: one epoch.
    LssEstimator::Options lss_options = DefaultLssOptions(env);
    lss_options.epochs = 1;
    LssEstimator lss(ds->graph, lss_options);
    double lss_seconds = -1.0;
    if (lss.Train(train).ok() && !lss.epoch_seconds().empty()) {
      lss_seconds = lss.epoch_seconds().back();
    }

    // NeurSC variants: one epoch each. The full model's epoch is an
    // adversarial one (pretrain 0), matching Table 4's per-epoch cost of
    // the discriminator-enabled phase.
    auto one_epoch_config = [&](bool adversarial) {
      NeurSCConfig config = DefaultNeurSCConfig(env);
      config.epochs = 1;
      config.pretrain_epochs = adversarial ? 0 : 1;
      return config;
    };
    auto neursc_i =
        NeurSCAdapter::IntraOnly(ds->graph, one_epoch_config(false));
    auto neursc_d = NeurSCAdapter::Dual(ds->graph, one_epoch_config(false));
    auto neursc = NeurSCAdapter::Full(ds->graph, one_epoch_config(true));

    double i_seconds = OneEpochSeconds(neursc_i.get(), train, false);
    double d_seconds = OneEpochSeconds(neursc_d.get(), train, false);
    double full_seconds = OneEpochSeconds(neursc.get(), train, true);

    char buf[48];
    std::vector<std::string> row;
    row.push_back(profile.name);
    std::snprintf(buf, sizeof(buf), "%.3f", lss_seconds);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.3f", i_seconds);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.3f", d_seconds);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.3f", full_seconds);
    row.push_back(buf);
    rows.push_back(std::move(row));
  }
  PrintSection("Table 4: Training time (seconds) for one epoch (Q4)");
  PrintTable({"Data Graph", "LSS", "NeurSC-I", "NeurSC-D", "NeurSC"}, rows);
}

}  // namespace
}  // namespace bench
}  // namespace neursc

int main(int argc, char** argv) {
  neursc::ObservabilitySession observability(&argc, argv);
  neursc::bench::Run();
  return 0;
}
