// Reproduces Table 4: training time (seconds) for one epoch, Q4 workload,
// for LSS, NeurSC-I, NeurSC-D and full NeurSC on every dataset.
//
// Additionally sweeps NEURSC_THREADS over full multi-epoch training runs
// and reports the serial-vs-parallel speedup together with a bit-level
// agreement check of the final weights and loss curves (the training
// determinism contract of docs/threading.md). The process exits non-zero
// if any swept thread count disagrees with the serial run, which lets
// ci.sh use this binary as the training-throughput smoke.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "common/metrics_registry.h"

namespace neursc {
namespace bench {
namespace {

/// Scoped NEURSC_THREADS override; restores the previous value on exit.
class ThreadsOverride {
 public:
  explicit ThreadsOverride(size_t n) {
    const char* old = std::getenv("NEURSC_THREADS");
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    setenv("NEURSC_THREADS", std::to_string(n).c_str(), 1);
  }
  ~ThreadsOverride() {
    if (had_old_) {
      setenv("NEURSC_THREADS", old_.c_str(), 1);
    } else {
      unsetenv("NEURSC_THREADS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

struct SweepRun {
  TrainStats stats;
  std::vector<Matrix> weights;  // model then critic parameters
  bool ok = false;
};

SweepRun TrainAtThreadCount(const Graph& data, const NeurSCConfig& config,
                            const std::vector<TrainingExample>& train,
                            size_t threads) {
  ThreadsOverride guard(threads);
  SweepRun run;
  NeurSCEstimator estimator(data, config);
  auto stats = estimator.Train(train);
  if (!stats.ok()) {
    std::fprintf(stderr, "train at %zu threads: %s\n", threads,
                 stats.status().ToString().c_str());
    return run;
  }
  run.stats = *stats;
  for (Parameter* p : estimator.model().Parameters()) {
    run.weights.push_back(p->value);
  }
  if (estimator.critic() != nullptr) {
    for (Parameter* p : estimator.critic()->Parameters()) {
      run.weights.push_back(p->value);
    }
  }
  run.ok = true;
  return run;
}

bool BitIdenticalWeights(const std::vector<Matrix>& a,
                         const std::vector<Matrix>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].rows() != b[i].rows() || a[i].cols() != b[i].cols()) return false;
    if (std::memcmp(a[i].data(), b[i].data(),
                    a[i].rows() * a[i].cols() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

/// Full-training NEURSC_THREADS sweep on the first buildable dataset.
/// Returns false when a parallel run diverges from the serial reference.
bool RunThreadSweep(const BenchEnv& env) {
  const size_t kThreadCounts[] = {1, 2, 8};
  Result<BenchDataset> ds = Status::InvalidArgument("no dataset profiles");
  for (const auto& profile : AllDatasetProfiles()) {
    ds = BuildBenchDataset(profile.name, env, {4});
    if (ds.ok()) break;
  }
  if (!ds.ok()) {
    std::fprintf(stderr, "thread sweep: %s\n", ds.status().ToString().c_str());
    return false;
  }
  auto train = Gather(ds->workload, ds->split.train);
  NeurSCConfig config = DefaultNeurSCConfig(env);

  SweepRun reference = TrainAtThreadCount(ds->graph, config, train, 1);
  if (!reference.ok) return false;
  double serial_seconds = reference.stats.total_seconds;
  NEURSC_GAUGE_SET("bench.table4.train_serial_seconds", serial_seconds);

  bool all_agree = true;
  std::vector<std::vector<std::string>> rows;
  for (size_t threads : kThreadCounts) {
    SweepRun run = threads == 1
                       ? reference
                       : TrainAtThreadCount(ds->graph, config, train, threads);
    if (!run.ok) return false;
    bool weights_ok = BitIdenticalWeights(run.weights, reference.weights);
    bool losses_ok =
        run.stats.epoch_mean_loss == reference.stats.epoch_mean_loss &&
        run.stats.epoch_validation_qerror ==
            reference.stats.epoch_validation_qerror;
    all_agree = all_agree && weights_ok && losses_ok;
    double speedup = run.stats.total_seconds > 0.0
                         ? serial_seconds / run.stats.total_seconds
                         : 0.0;
    // Registry lookups instead of NEURSC_GAUGE_SET: the macro caches the
    // gauge per call site, which would alias the per-thread-count names.
    std::string tag = "bench.table4.train_threads_" + std::to_string(threads);
    auto& registry = MetricsRegistry::Global();
    registry.GetGauge(tag + ".seconds")->Set(run.stats.total_seconds);
    registry.GetGauge(tag + ".speedup")->Set(speedup);
    registry.GetGauge(tag + ".bit_identical")
        ->Set(weights_ok && losses_ok ? 1.0 : 0.0);
    char buf[48];
    std::vector<std::string> row;
    row.push_back(std::to_string(threads));
    std::snprintf(buf, sizeof(buf), "%.3f", run.stats.total_seconds);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2fx", speedup);
    row.push_back(buf);
    row.push_back(weights_ok && losses_ok ? "yes" : "NO");
    rows.push_back(std::move(row));
  }
  PrintSection("Training NEURSC_THREADS sweep (" + ds->profile.name +
               ", full run)");
  PrintTable({"Threads", "Seconds", "Speedup", "Bit-identical"}, rows);
  if (!all_agree) {
    std::fprintf(stderr,
                 "FAIL: parallel training diverged from the serial run\n");
  }
  return all_agree;
}

double OneEpochSeconds(NeurSCAdapter* model,
                       const std::vector<TrainingExample>& train,
                       bool adversarial) {
  // Configure exactly one epoch of the requested phase by re-training; the
  // adapter's stats expose the per-epoch wall time.
  Status st = model->Train(train);
  if (!st.ok()) return -1.0;
  const auto& seconds = model->train_stats().epoch_seconds;
  if (seconds.empty()) return -1.0;
  (void)adversarial;
  return seconds.back();
}

int Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  std::vector<std::vector<std::string>> rows;
  for (const auto& profile : AllDatasetProfiles()) {
    auto ds = BuildBenchDataset(profile.name, env, {4});
    if (!ds.ok()) {
      std::fprintf(stderr, "%s: %s\n", profile.name.c_str(),
                   ds.status().ToString().c_str());
      continue;
    }
    auto train = Gather(ds->workload, ds->split.train);

    // LSS: one epoch.
    LssEstimator::Options lss_options = DefaultLssOptions(env);
    lss_options.epochs = 1;
    LssEstimator lss(ds->graph, lss_options);
    double lss_seconds = -1.0;
    if (lss.Train(train).ok() && !lss.epoch_seconds().empty()) {
      lss_seconds = lss.epoch_seconds().back();
    }

    // NeurSC variants: one epoch each. The full model's epoch is an
    // adversarial one (pretrain 0), matching Table 4's per-epoch cost of
    // the discriminator-enabled phase.
    auto one_epoch_config = [&](bool adversarial) {
      NeurSCConfig config = DefaultNeurSCConfig(env);
      config.epochs = 1;
      config.pretrain_epochs = adversarial ? 0 : 1;
      return config;
    };
    auto neursc_i =
        NeurSCAdapter::IntraOnly(ds->graph, one_epoch_config(false));
    auto neursc_d = NeurSCAdapter::Dual(ds->graph, one_epoch_config(false));
    auto neursc = NeurSCAdapter::Full(ds->graph, one_epoch_config(true));

    double i_seconds = OneEpochSeconds(neursc_i.get(), train, false);
    double d_seconds = OneEpochSeconds(neursc_d.get(), train, false);
    double full_seconds = OneEpochSeconds(neursc.get(), train, true);

    char buf[48];
    std::vector<std::string> row;
    row.push_back(profile.name);
    std::snprintf(buf, sizeof(buf), "%.3f", lss_seconds);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.3f", i_seconds);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.3f", d_seconds);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.3f", full_seconds);
    row.push_back(buf);
    rows.push_back(std::move(row));
  }
  PrintSection("Table 4: Training time (seconds) for one epoch (Q4)");
  PrintTable({"Data Graph", "LSS", "NeurSC-I", "NeurSC-D", "NeurSC"}, rows);

  return RunThreadSweep(env) ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace neursc

int main(int argc, char** argv) {
  neursc::ObservabilitySession observability(&argc, argv);
  return neursc::bench::Run();
}
