// Reproduces Figure 10: robustness to unseen query sizes on Yeast. Models
// are trained on Q16 only and evaluated on Q4/Q8/Q24/Q32; the paper's
// observation is overestimation on smaller and underestimation on larger
// unseen sizes, with NeurSC degrading far less than LSS.

#include <cstdio>

#include "bench_util.h"

namespace neursc {
namespace bench {
namespace {

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  auto ds = BuildBenchDataset("Yeast", env, {4, 8, 16, 24, 32});
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return;
  }

  // Train strictly on Q16.
  auto train_indices = ds->workload.IndicesOfSize(16);
  auto train = Gather(ds->workload, train_indices);
  if (train.empty()) {
    std::fprintf(stderr, "no Q16 queries fit the ground-truth budget\n");
    return;
  }

  LssEstimator lss(ds->graph, DefaultLssOptions(env));
  auto neursc = NeurSCAdapter::Full(ds->graph, DefaultNeurSCConfig(env));
  (void)lss.Train(train);
  (void)neursc->Train(train);

  for (size_t size : {4u, 8u, 24u, 32u}) {
    auto indices = ds->workload.IndicesOfSize(size);
    if (indices.empty()) {
      std::printf("\n=== Figure 10: Q%zu — no queries within budget ===\n",
                  static_cast<size_t>(size));
      continue;
    }
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Figure 10: trained on Q16, tested on Q%zu (%zu queries)",
                  static_cast<size_t>(size), indices.size());
    PrintSection(title);
    PrintMethodRow(EvaluateMethod(&lss, ds->workload, indices));
    PrintMethodRow(EvaluateMethod(neursc.get(), ds->workload, indices));
  }
}

}  // namespace
}  // namespace bench
}  // namespace neursc

int main(int argc, char** argv) {
  neursc::ObservabilitySession observability(&argc, argv);
  neursc::bench::Run();
  return 0;
}
