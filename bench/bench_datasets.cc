// Reproduces Table 2 (data graph statistics) and Table 3 (query workload
// details) on the synthetic stand-in datasets. Paper values are printed
// alongside the generated ones so the fidelity of each stand-in is visible.

#include <cinttypes>
#include <cstdio>

#include "bench_util.h"
#include "graph/stats.h"
#include "matching/substructure.h"

namespace neursc {
namespace bench {
namespace {

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();

  PrintSection("Table 2: Statistics of Data Graphs (stand-in vs paper)");
  std::vector<std::vector<std::string>> rows;
  std::vector<BenchDataset> datasets;
  for (const auto& profile : AllDatasetProfiles()) {
    auto ds = BuildBenchDataset(profile.name, env);
    if (!ds.ok()) {
      std::fprintf(stderr, "%s: %s\n", profile.name.c_str(),
                   ds.status().ToString().c_str());
      continue;
    }
    char buf[64];
    std::vector<std::string> row;
    row.push_back(profile.name);
    std::snprintf(buf, sizeof(buf), "%zu", ds->graph.NumVertices());
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%zu", ds->graph.NumEdges());
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%zu", ds->graph.NumLabels());
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f", ds->graph.AverageDegree());
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%zu/%zu/%zu/%.1f",
                  profile.full_vertices, profile.full_edges,
                  profile.num_labels, profile.avg_degree);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.4f", profile.default_scale);
    row.push_back(buf);
    rows.push_back(std::move(row));
    datasets.push_back(std::move(ds).value());
  }
  PrintTable({"Dataset", "|V|", "|E|", "|L|", "d",
              "paper |V|/|E|/|L|/d", "scale"},
             rows);

  PrintSection("Table 3: Details of Query Graphs (generated workloads)");
  rows.clear();
  for (const auto& ds : datasets) {
    for (size_t size : ds.profile.query_sizes) {
      auto indices = ds.workload.IndicesOfSize(size);
      if (indices.empty()) continue;
      double min_count = 1e300;
      double max_count = 0;
      for (size_t i : indices) {
        min_count = std::min(min_count, ds.workload.examples[i].count);
        max_count = std::max(max_count, ds.workload.examples[i].count);
      }
      char buf[64];
      std::vector<std::string> row;
      row.push_back(ds.profile.name);
      std::snprintf(buf, sizeof(buf), "%zu", size);
      row.push_back(buf);
      std::snprintf(buf, sizeof(buf), "%zu", indices.size());
      row.push_back(buf);
      std::snprintf(buf, sizeof(buf), "[%.0f, %.2e]", min_count, max_count);
      row.push_back(buf);
      rows.push_back(std::move(row));
    }
  }
  PrintTable({"Dataset", "QuerySize", "#Queries", "CountsRange"}, rows);

  PrintSection("Extraction statistics (per dataset, all queries)");
  rows.clear();
  for (const auto& ds : datasets) {
    size_t queries = 0;
    size_t early = 0;
    double union_sum = 0;
    double components_sum = 0;
    double kept_sum = 0;
    for (const auto& example : ds.workload.examples) {
      auto ext = ExtractSubstructures(example.query, ds.graph);
      if (!ext.ok()) continue;
      ++queries;
      if (ext->early_terminate) ++early;
      union_sum += static_cast<double>(ext->stats.candidate_union_size);
      components_sum += static_cast<double>(ext->stats.components_total);
      kept_sum += static_cast<double>(ext->stats.components_kept);
    }
    if (queries == 0) continue;
    char buf[64];
    std::vector<std::string> row;
    row.push_back(ds.profile.name);
    std::snprintf(buf, sizeof(buf), "%.1f",
                  union_sum / static_cast<double>(queries));
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f",
                  components_sum / static_cast<double>(queries));
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f",
                  kept_sum / static_cast<double>(queries));
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f%%",
                  100.0 * static_cast<double>(early) /
                      static_cast<double>(queries));
    row.push_back(buf);
    rows.push_back(std::move(row));
  }
  PrintTable({"Dataset", "avg |CS(q)|", "avg components", "avg kept",
              "early-term"},
             rows);
}

}  // namespace
}  // namespace bench
}  // namespace neursc

int main(int argc, char** argv) {
  neursc::ObservabilitySession observability(&argc, argv);
  neursc::bench::Run();
  return 0;
}
