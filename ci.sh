#!/usr/bin/env bash
# Local CI: the gate every change must pass.
#
#   1. Release-ish build (RelWithDebInfo) + full ctest suite.
#   2. ThreadSanitizer build of the concurrency-sensitive pieces, running
#      parallel_test plus the observability stress tests.
#
# Usage: ./ci.sh [jobs]   (jobs defaults to nproc)

set -euo pipefail
cd "$(dirname "$0")"

JOBS="${1:-$(nproc)}"

echo "=== [1/2] Release build + tests ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure

echo
echo "=== [2/2] TSan build + concurrency tests ==="
cmake -B build-tsan -S . -DNEURSC_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target \
  parallel_test metrics_stress_test metrics_registry_test trace_test
for t in parallel_test metrics_stress_test metrics_registry_test trace_test; do
  echo "--- $t (TSan) ---"
  ./build-tsan/tests/"$t"
done

echo
echo "ci.sh: all green"
