#!/usr/bin/env bash
# Local CI: the gate every change must pass.
#
#   1. Release-ish build (RelWithDebInfo) + full ctest suite (includes the
#      serial-vs-parallel differential suites estimate_parallel_test,
#      candidate_filter_parallel_test, and train_parallel_test).
#   2. ThreadSanitizer build of the concurrency-sensitive pieces, running
#      every test labeled `concurrency` (ctest -L concurrency): ParallelFor
#      and the worker pool, the observability stress tests, and the
#      differential suites, with NEURSC_THREADS=8 to force real contention.
#   3. Training-throughput smoke: bench_table4_training_time on a tiny
#      dataset sweeps NEURSC_THREADS {1,2,8} over full training runs and
#      exits non-zero unless every parallel run reproduces the serial
#      final weights and loss curves bit for bit.
#
# Usage: ./ci.sh [jobs]   (jobs defaults to nproc)

set -euo pipefail
cd "$(dirname "$0")"

JOBS="${1:-$(nproc)}"

echo "=== [1/3] Release build + tests ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure

echo
echo "=== [2/3] TSan build + concurrency tests (ctest -L concurrency) ==="
cmake -B build-tsan -S . -DNEURSC_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target \
  parallel_test metrics_stress_test metrics_registry_test trace_test \
  estimate_parallel_test candidate_filter_parallel_test \
  train_parallel_test pipeline_stress_test
NEURSC_THREADS=8 ctest --test-dir build-tsan -L concurrency \
  --output-on-failure

echo
echo "=== [3/3] Training-throughput smoke (NEURSC_THREADS sweep) ==="
cmake --build build -j "$JOBS" --target bench_table4_training_time
NEURSC_SCALE=0.25 NEURSC_EPOCHS=4 NEURSC_QUERIES=8 \
  ./build/bench/bench_table4_training_time

echo
echo "ci.sh: all green"
