#!/usr/bin/env bash
# Local CI: the gate every change must pass.
#
#   1. Release-ish build (RelWithDebInfo) + full ctest suite (includes the
#      serial-vs-parallel differential suites estimate_parallel_test,
#      candidate_filter_parallel_test, and train_parallel_test).
#   2. ThreadSanitizer build of the concurrency-sensitive pieces, running
#      every test labeled `concurrency` (ctest -L concurrency): ParallelFor
#      and the worker pool, the observability stress tests, the
#      differential suites, and the pooled EvalContext workspaces, with
#      NEURSC_THREADS=8 to force real contention.
#   3. Inference-path differential: the Tape-vs-EvalContext suite
#      (eval_context_test) and the checkpoint round-trip suite
#      (serialize_test) re-run explicitly under both the Release and TSan
#      builds — the bit-identity contract of docs/execution.md.
#   4. Training-throughput smoke: bench_table4_training_time on a tiny
#      dataset sweeps NEURSC_THREADS {1,2,8} over full training runs and
#      exits non-zero unless every parallel run reproduces the serial
#      final weights and loss curves bit for bit.
#   5. Forward-engine smoke: bench_micro_forward gates Tape/EvalContext
#      bit agreement, zero steady-state arena growth (any eval/arena_grows
#      regression fails the run), and reduced per-pass allocations over
#      the Table-4 model sizes. Wall clock is reported, never gated.
#   6. Static thread-safety analysis: a Clang build of the full tree with
#      -DNEURSC_ANALYZE=ON (-Werror=thread-safety), proving every
#      NEURSC_GUARDED_BY / NEURSC_REQUIRES contract, plus the clang-tidy
#      gate (scripts/lint.sh, .clang-tidy check set). Skipped loudly when
#      clang is not installed — the annotations are no-op macros on GCC.
#   7. ASan+UBSan lane: the full ctest suite rebuilt with
#      -DNEURSC_SANITIZE=address,undefined; UBSan failures are fatal
#      (-fno-sanitize-recover), so any signed-overflow/bad-shift/bad-cast
#      or memory bug fails the run.
#
# Usage: ./ci.sh [jobs]   (jobs defaults to nproc)

set -euo pipefail
cd "$(dirname "$0")"

JOBS="${1:-$(nproc)}"

echo "=== [1/7] Release build + tests ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure

echo
echo "=== [2/7] TSan build + concurrency tests (ctest -L concurrency) ==="
cmake -B build-tsan -S . -DNEURSC_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target \
  parallel_test metrics_stress_test metrics_registry_test trace_test \
  estimate_parallel_test candidate_filter_parallel_test \
  train_parallel_test pipeline_stress_test eval_context_test \
  thread_annotations_test
NEURSC_THREADS=8 ctest --test-dir build-tsan -L concurrency \
  --output-on-failure

echo
echo "=== [3/7] Inference-path differential (Release + TSan) ==="
cmake --build build-tsan -j "$JOBS" --target serialize_test
ctest --test-dir build -R 'eval_context_test|serialize_test' \
  --output-on-failure
NEURSC_THREADS=8 ctest --test-dir build-tsan \
  -R 'eval_context_test|serialize_test' --output-on-failure

echo
echo "=== [4/7] Training-throughput smoke (NEURSC_THREADS sweep) ==="
cmake --build build -j "$JOBS" --target bench_table4_training_time
NEURSC_SCALE=0.25 NEURSC_EPOCHS=4 NEURSC_QUERIES=8 \
  ./build/bench/bench_table4_training_time

echo
echo "=== [5/7] Forward-engine smoke (agreement + allocation gates) ==="
cmake --build build -j "$JOBS" --target bench_micro_forward
NEURSC_PASSES=10 ./build/bench/bench_micro_forward

echo
echo "=== [6/7] Static analysis: Clang -Werror=thread-safety + clang-tidy ==="
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-analyze -S . -DNEURSC_ANALYZE=ON \
    -DCMAKE_CXX_COMPILER=clang++ >/dev/null
  cmake --build build-analyze -j "$JOBS"
  scripts/lint.sh
else
  echo "SKIPPED: clang++ not installed; thread-safety annotations are"
  echo "no-op macros under GCC, so there is nothing to check on this host."
  echo "Install clang + clang-tidy to run this lane."
fi

echo
echo "=== [7/7] ASan+UBSan build + full test suite ==="
cmake -B build-asan -S . -DNEURSC_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$JOBS"
ASAN_OPTIONS=halt_on_error=1 UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --test-dir build-asan --output-on-failure

echo
echo "ci.sh: all green"
