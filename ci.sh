#!/usr/bin/env bash
# Local CI: the gate every change must pass.
#
#   1. Release-ish build (RelWithDebInfo) + full ctest suite (includes the
#      serial-vs-parallel differential suites estimate_parallel_test,
#      candidate_filter_parallel_test, and train_parallel_test).
#   2. ThreadSanitizer build of the concurrency-sensitive pieces, running
#      every test labeled `concurrency` (ctest -L concurrency): ParallelFor
#      and the worker pool, the observability stress tests, the
#      differential suites, and the pooled EvalContext workspaces, with
#      NEURSC_THREADS=8 to force real contention.
#   3. Inference-path differential: the Tape-vs-EvalContext suite
#      (eval_context_test) and the checkpoint round-trip suite
#      (serialize_test) re-run explicitly under both the Release and TSan
#      builds — the bit-identity contract of docs/execution.md.
#   4. Training-throughput smoke: bench_table4_training_time on a tiny
#      dataset sweeps NEURSC_THREADS {1,2,8} over full training runs and
#      exits non-zero unless every parallel run reproduces the serial
#      final weights and loss curves bit for bit.
#   5. Forward-engine smoke: bench_micro_forward gates Tape/EvalContext
#      bit agreement, zero steady-state arena growth (any eval/arena_grows
#      regression fails the run), and reduced per-pass allocations over
#      the Table-4 model sizes. Wall clock is reported, never gated.
#
# Usage: ./ci.sh [jobs]   (jobs defaults to nproc)

set -euo pipefail
cd "$(dirname "$0")"

JOBS="${1:-$(nproc)}"

echo "=== [1/5] Release build + tests ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure

echo
echo "=== [2/5] TSan build + concurrency tests (ctest -L concurrency) ==="
cmake -B build-tsan -S . -DNEURSC_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target \
  parallel_test metrics_stress_test metrics_registry_test trace_test \
  estimate_parallel_test candidate_filter_parallel_test \
  train_parallel_test pipeline_stress_test eval_context_test
NEURSC_THREADS=8 ctest --test-dir build-tsan -L concurrency \
  --output-on-failure

echo
echo "=== [3/5] Inference-path differential (Release + TSan) ==="
cmake --build build-tsan -j "$JOBS" --target serialize_test
ctest --test-dir build -R 'eval_context_test|serialize_test' \
  --output-on-failure
NEURSC_THREADS=8 ctest --test-dir build-tsan \
  -R 'eval_context_test|serialize_test' --output-on-failure

echo
echo "=== [4/5] Training-throughput smoke (NEURSC_THREADS sweep) ==="
cmake --build build -j "$JOBS" --target bench_table4_training_time
NEURSC_SCALE=0.25 NEURSC_EPOCHS=4 NEURSC_QUERIES=8 \
  ./build/bench/bench_table4_training_time

echo
echo "=== [5/5] Forward-engine smoke (agreement + allocation gates) ==="
cmake --build build -j "$JOBS" --target bench_micro_forward
NEURSC_PASSES=10 ./build/bench/bench_micro_forward

echo
echo "ci.sh: all green"
