#include "core/neursc.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/workload.h"
#include "graph/generators.h"
#include "matching/enumeration.h"
#include "test_util.h"

namespace neursc {
namespace {

using testing_util::MakeGraph;

NeurSCConfig TinyConfig() {
  NeurSCConfig config;
  config.west.intra_dim = 8;
  config.west.inter_dim = 8;
  config.west.predictor_hidden = 16;
  config.disc_hidden = 8;
  config.epochs = 3;
  config.pretrain_epochs = 1;
  config.batch_size = 8;
  return config;
}

TEST(NeurSCTest, EstimateIsPositiveAndFinite) {
  auto data = GenerateErdosRenyiGraph(80, 240, 4, 31);
  ASSERT_TRUE(data.ok());
  NeurSCEstimator estimator(*data, TinyConfig());
  auto workload = BuildWorkload(*data, {3}, 3);
  ASSERT_TRUE(workload.ok());
  auto info = estimator.Estimate(workload->examples[0].query);
  ASSERT_TRUE(info.ok());
  EXPECT_GE(info->count, 0.0);
  EXPECT_TRUE(std::isfinite(info->count));
  EXPECT_GE(info->num_substructures, 1u);
}

TEST(NeurSCTest, EarlyTerminationOnImpossibleQuery) {
  Graph data = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}});
  Graph query = MakeGraph({7, 7}, {{0, 1}});  // label absent from data
  NeurSCEstimator estimator(data, TinyConfig());
  auto info = estimator.Estimate(query);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->early_terminated);
  EXPECT_DOUBLE_EQ(info->count, 0.0);
}

TEST(NeurSCTest, TrainingReducesLoss) {
  auto data = GenerateErdosRenyiGraph(100, 300, 4, 33);
  ASSERT_TRUE(data.ok());
  auto workload = BuildWorkload(*data, {3, 4}, 10);
  ASSERT_TRUE(workload.ok());
  NeurSCConfig config = TinyConfig();
  config.epochs = 8;
  config.pretrain_epochs = 8;  // pure L_c phase for a clean trend
  NeurSCEstimator estimator(*data, config);
  auto stats = estimator.Train(workload->examples);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats->epoch_mean_loss.size(), 8u);
  EXPECT_LT(stats->epoch_mean_loss.back(),
            stats->epoch_mean_loss.front());
}

TEST(NeurSCTest, AdversarialPhaseRuns) {
  auto data = GenerateErdosRenyiGraph(80, 240, 3, 35);
  ASSERT_TRUE(data.ok());
  auto workload = BuildWorkload(*data, {3}, 8);
  ASSERT_TRUE(workload.ok());
  NeurSCConfig config = TinyConfig();
  config.epochs = 3;
  config.pretrain_epochs = 1;
  NeurSCEstimator estimator(*data, config);
  ASSERT_NE(estimator.critic(), nullptr);
  auto stats = estimator.Train(workload->examples);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->epoch_mean_loss.size(), 3u);
  for (double loss : stats->epoch_mean_loss) {
    EXPECT_TRUE(std::isfinite(loss));
  }
}

TEST(NeurSCTest, VariantsDisableComponents) {
  auto data = GenerateErdosRenyiGraph(60, 180, 3, 37);
  ASSERT_TRUE(data.ok());

  NeurSCConfig intra_only = TinyConfig();
  intra_only.west.use_inter = false;
  intra_only.use_discriminator = false;
  NeurSCEstimator i_estimator(*data, intra_only);
  EXPECT_EQ(i_estimator.critic(), nullptr);
  EXPECT_EQ(i_estimator.model().ReprDim(), 8u);

  NeurSCConfig no_se = TinyConfig();
  no_se.use_substructure_extraction = false;
  NeurSCEstimator se_estimator(*data, no_se);
  // w/o SE forces intra-only + no discriminator.
  EXPECT_EQ(se_estimator.critic(), nullptr);
  EXPECT_FALSE(se_estimator.config().west.use_inter);
  auto workload = BuildWorkload(*data, {3}, 2);
  ASSERT_TRUE(workload.ok());
  auto info = se_estimator.Estimate(workload->examples[0].query);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->num_substructures, 1u);  // whole graph
}

TEST(NeurSCTest, MetricVariantsTrain) {
  auto data = GenerateErdosRenyiGraph(60, 180, 3, 39);
  ASSERT_TRUE(data.ok());
  auto workload = BuildWorkload(*data, {3}, 6);
  ASSERT_TRUE(workload.ok());
  for (DistanceMetric metric :
       {DistanceMetric::kEuclidean, DistanceMetric::kKL,
        DistanceMetric::kJS}) {
    NeurSCConfig config = TinyConfig();
    config.metric = metric;
    config.epochs = 2;
    config.pretrain_epochs = 1;
    NeurSCEstimator estimator(*data, config);
    auto stats = estimator.Train(workload->examples);
    ASSERT_TRUE(stats.ok()) << DistanceMetricName(metric) << ": "
                            << stats.status().ToString();
  }
}

TEST(NeurSCTest, SampleRateUsesFewerSubstructures) {
  // A data graph with several disjoint candidate regions -> multiple
  // substructures.
  GraphBuilder b;
  // 4 disjoint labeled triangles (0-1-2).
  for (int t = 0; t < 4; ++t) {
    VertexId v0 = b.AddVertex(0);
    VertexId v1 = b.AddVertex(1);
    VertexId v2 = b.AddVertex(2);
    ASSERT_TRUE(b.AddEdge(v0, v1).ok());
    ASSERT_TRUE(b.AddEdge(v1, v2).ok());
    ASSERT_TRUE(b.AddEdge(v0, v2).ok());
  }
  Graph data = std::move(b.Build()).value();
  Graph query = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}, {0, 2}});

  NeurSCConfig config = TinyConfig();
  config.sample_rate = 0.25;
  NeurSCEstimator estimator(data, config);
  auto info = estimator.Estimate(query);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->num_substructures, 4u);
  EXPECT_EQ(info->num_used, 1u);

  // Full-rate estimate uses all of them.
  NeurSCConfig full = TinyConfig();
  NeurSCEstimator full_estimator(data, full);
  auto full_info = full_estimator.Estimate(query);
  ASSERT_TRUE(full_info.ok());
  EXPECT_EQ(full_info->num_used, 4u);
}

TEST(NeurSCTest, SampledEstimatorIsUnbiasedAcrossSeeds) {
  // Sec. 5.8: E[c'] = sum of per-substructure estimates. With identical
  // substructures the scaled sample equals the full sum exactly.
  // Same-label endpoints keep every bipartite candidate graph connected,
  // so the forward pass is fully deterministic per substructure.
  GraphBuilder b;
  for (int t = 0; t < 3; ++t) {
    VertexId v0 = b.AddVertex(0);
    VertexId v1 = b.AddVertex(0);
    ASSERT_TRUE(b.AddEdge(v0, v1).ok());
  }
  Graph data = std::move(b.Build()).value();
  Graph query = MakeGraph({0, 0}, {{0, 1}});
  NeurSCConfig config = TinyConfig();
  config.sample_rate = 1.0;
  NeurSCEstimator full(data, config);
  auto full_info = full.Estimate(query);
  ASSERT_TRUE(full_info.ok());

  config.sample_rate = 0.34;  // 1 of 3
  NeurSCEstimator sampled(data, config);
  auto sampled_info = sampled.Estimate(query);
  ASSERT_TRUE(sampled_info.ok());
  // Identical symmetric substructures: scaled estimate == full estimate.
  EXPECT_NEAR(sampled_info->count, full_info->count,
              1e-3 * std::abs(full_info->count) + 1e-5);
}

TEST(NeurSCTest, EstimateOnPerfectSubstructures) {
  auto data = GenerateErdosRenyiGraph(60, 180, 3, 41);
  ASSERT_TRUE(data.ok());
  auto workload = BuildWorkload(*data, {3}, 2);
  ASSERT_TRUE(workload.ok());
  const Graph& query = workload->examples[0].query;

  EnumerationOptions eopts;
  eopts.collect_embeddings = 1000;
  auto counted = CountSubgraphIsomorphisms(query, *data, eopts);
  ASSERT_TRUE(counted.ok());
  std::vector<VertexId> universe;
  for (const auto& embedding : counted->embeddings) {
    universe.insert(universe.end(), embedding.begin(), embedding.end());
  }
  auto cs = ComputeCandidateSets(query, *data);
  ASSERT_TRUE(cs.ok());
  auto perfect = BuildSubstructuresFromVertices(query, *data, universe, *cs);
  ASSERT_TRUE(perfect.ok());

  NeurSCEstimator estimator(*data, TinyConfig());
  auto info = estimator.EstimateOnSubstructures(query, *perfect);
  ASSERT_TRUE(info.ok());
  EXPECT_GE(info->count, 0.0);
}


TEST(NeurSCTest, TrainingIsDeterministic) {
  auto data = GenerateErdosRenyiGraph(80, 240, 3, 51);
  ASSERT_TRUE(data.ok());
  auto workload = BuildWorkload(*data, {3}, 8);
  ASSERT_TRUE(workload.ok());

  auto run = [&]() {
    NeurSCEstimator estimator(*data, TinyConfig());
    EXPECT_TRUE(estimator.Train(workload->examples).ok());
    std::vector<double> estimates;
    for (const auto& example : workload->examples) {
      auto info = estimator.Estimate(example.query);
      EXPECT_TRUE(info.ok());
      estimates.push_back(info->count);
    }
    return estimates;
  };
  auto first = run();
  auto second = run();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(first[i], second[i]) << "query " << i;
  }
}

TEST(NeurSCTest, CanMemorizeSmallWorkload) {
  // Capacity sanity check: with enough epochs on a handful of queries the
  // estimator should fit their counts to within a small q-error.
  auto data = GenerateErdosRenyiGraph(120, 360, 3, 53);
  ASSERT_TRUE(data.ok());
  auto workload = BuildWorkload(*data, {3}, 6);
  ASSERT_TRUE(workload.ok());
  NeurSCConfig config = TinyConfig();
  config.west.intra_dim = 16;
  config.west.inter_dim = 16;
  config.epochs = 60;
  config.pretrain_epochs = 60;  // plain L_c fitting
  NeurSCEstimator estimator(*data, config);
  ASSERT_TRUE(estimator.Train(workload->examples).ok());
  std::vector<double> qerrors;
  for (const auto& example : workload->examples) {
    auto info = estimator.Estimate(example.query);
    ASSERT_TRUE(info.ok());
    qerrors.push_back(QError(info->count, example.count));
  }
  EXPECT_LT(GeometricMean(qerrors), 3.0);
}


TEST(NeurSCTest, EarlyStoppingTracksValidation) {
  auto data = GenerateErdosRenyiGraph(100, 300, 3, 55);
  ASSERT_TRUE(data.ok());
  auto workload = BuildWorkload(*data, {3}, 12);
  ASSERT_TRUE(workload.ok());
  NeurSCConfig config = TinyConfig();
  config.epochs = 30;
  config.pretrain_epochs = 30;
  config.validation_fraction = 0.25;
  config.early_stop_patience = 2;
  NeurSCEstimator estimator(*data, config);
  auto stats = estimator.Train(workload->examples);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(stats->epoch_validation_qerror.empty());
  EXPECT_EQ(stats->epoch_validation_qerror.size(),
            stats->epoch_mean_loss.size());
  // Either it ran all 30 epochs improving throughout, or it stopped early.
  EXPECT_TRUE(stats->early_stopped ||
              stats->epoch_mean_loss.size() == 30u);
  // The estimator is still usable after weight restoration.
  auto info = estimator.Estimate(workload->examples[0].query);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(std::isfinite(info->count));
}

TEST(NeurSCTest, ValidationOffByDefault) {
  auto data = GenerateErdosRenyiGraph(60, 180, 3, 57);
  ASSERT_TRUE(data.ok());
  auto workload = BuildWorkload(*data, {3}, 6);
  ASSERT_TRUE(workload.ok());
  NeurSCEstimator estimator(*data, TinyConfig());
  auto stats = estimator.Train(workload->examples);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->epoch_validation_qerror.empty());
  EXPECT_FALSE(stats->early_stopped);
}

TEST(NeurSCTest, TrainRejectsEmptyExampleList) {
  auto data = GenerateErdosRenyiGraph(40, 120, 3, 43);
  ASSERT_TRUE(data.ok());
  NeurSCEstimator estimator(*data, TinyConfig());
  EXPECT_FALSE(estimator.Train({}).ok());
}

}  // namespace
}  // namespace neursc
