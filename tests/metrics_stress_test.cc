// Concurrency stress for the observability layer: many threads hammer the
// same counters, histograms, and trace recorder while readers snapshot
// concurrently. Run under NEURSC_SANITIZE=thread (see ci.sh) to prove the
// recording paths are race-free; the assertions also verify no updates are
// lost under contention.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics_registry.h"
#include "common/parallel.h"
#include "common/trace.h"
#include "gtest/gtest.h"

namespace neursc {
namespace {

TEST(MetricsStressTest, ConcurrentCountersLoseNothing) {
  Counter* c = MetricsRegistry::Global().GetCounter("stress.counter");
  c->Reset();
  constexpr int kThreads = 8;
  constexpr int kIters = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < kIters; ++i) c->Increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->Value(), static_cast<int64_t>(kThreads) * kIters);
}

TEST(MetricsStressTest, ConcurrentHistogramKeepsEverySample) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("stress.hist");
  h->Reset();
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kIters; ++i) {
        h->Record(1e-6 * static_cast<double>(t * kIters + i + 1));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h->Count(), static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(h->Min(), 1e-6);
  EXPECT_DOUBLE_EQ(h->Max(), 1e-6 * kThreads * kIters);
}

TEST(MetricsStressTest, SnapshotWhileWritersRun) {
  Counter* c = MetricsRegistry::Global().GetCounter("stress.snap.counter");
  Histogram* h = MetricsRegistry::Global().GetHistogram("stress.snap.hist");
  c->Reset();
  h->Reset();
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 8; ++t) {
    writers.emplace_back([&]() {
      while (!stop.load(std::memory_order_relaxed)) {
        c->Increment();
        h->Record(0.001);
      }
    });
  }
  // Readers race the writers; merged values must be internally consistent.
  for (int i = 0; i < 50; ++i) {
    MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
    const HistogramSnapshot* hs = snap.FindHistogram("stress.snap.hist");
    ASSERT_NE(hs, nullptr);
    EXPECT_GE(hs->sum, 0.0);
    std::string json = snap.ToJson();
    EXPECT_FALSE(json.empty());
  }
  stop.store(true);
  for (auto& w : writers) w.join();
  EXPECT_EQ(c->Value(), static_cast<int64_t>(h->Count()));
}

TEST(MetricsStressTest, TracedSpansAcrossManyShortLivedThreads) {
  TraceRecorder::Global().Stop();
  TraceRecorder::Global().Clear();
  TraceRecorder::Global().Start();
  // ParallelFor runs on the persistent worker pool: repeated regions are
  // served by the same long-lived workers, so this exercises the
  // buffer/stripe paths under sustained reuse rather than thread churn.
  constexpr int kRounds = 20;
  constexpr size_t kTasks = 64;
  for (int round = 0; round < kRounds; ++round) {
    ParallelFor(kTasks, [](size_t) {
      NEURSC_SPAN(span, "stress/span");
      NEURSC_COUNTER_INC("stress.span.bodies");
    }, /*num_threads=*/8);
  }
  EXPECT_EQ(TraceRecorder::Global().EventCount(),
            static_cast<size_t>(kRounds) * kTasks);
  Histogram* h = MetricsRegistry::Global().GetHistogram("span/stress/span");
  EXPECT_GE(h->Count(), static_cast<uint64_t>(kRounds) * kTasks);
  std::string path = ::testing::TempDir() + "/metrics_stress_trace.json";
  Status st = TraceRecorder::Global().WriteChromeTrace(path);
  EXPECT_TRUE(st.ok()) << st.ToString();
  TraceRecorder::Global().Clear();
}

TEST(MetricsStressTest, MixedWorkloadUnderContention) {
  TraceRecorder::Global().Stop();
  TraceRecorder::Global().Clear();
  TraceRecorder::Global().Start();
  std::atomic<bool> stop{false};
  std::thread snapshotter([&]() {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)MetricsRegistry::Global().Snapshot().ToJson();
      (void)TraceRecorder::Global().EventCount();
    }
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&]() {
      for (int i = 0; i < 2000; ++i) {
        NEURSC_SPAN(span, "stress/mixed");
        NEURSC_COUNTER_ADD("stress.mixed.items", 2);
        NEURSC_GAUGE_SET("stress.mixed.depth", static_cast<double>(i));
        NEURSC_HISTOGRAM_RECORD("stress.mixed.value", 1e-4);
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true);
  snapshotter.join();
  EXPECT_EQ(
      MetricsRegistry::Global().GetCounter("stress.mixed.items")->Value() %
          2,
      0);
  EXPECT_EQ(TraceRecorder::Global().EventCount(), 8u * 2000u);
  TraceRecorder::Global().Stop();
  TraceRecorder::Global().Clear();
}

}  // namespace
}  // namespace neursc
