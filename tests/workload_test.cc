#include "eval/workload.h"

#include <cstdlib>
#include <set>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "matching/enumeration.h"

namespace neursc {
namespace {

Graph SmallData() {
  auto g = GenerateErdosRenyiGraph(150, 450, 5, 21);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(WorkloadTest, BuildsRequestedSizes) {
  Graph data = SmallData();
  auto workload = BuildWorkload(data, {3, 4}, 10);
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->examples.size(), workload->sizes.size());
  EXPECT_EQ(workload->IndicesOfSize(3).size() +
                workload->IndicesOfSize(4).size(),
            workload->examples.size());
  for (size_t i : workload->IndicesOfSize(3)) {
    EXPECT_EQ(workload->examples[i].query.NumVertices(), 3u);
  }
}

TEST(WorkloadTest, GroundTruthMatchesEnumeration) {
  Graph data = SmallData();
  auto workload = BuildWorkload(data, {4}, 5);
  ASSERT_TRUE(workload.ok());
  for (const auto& example : workload->examples) {
    auto counted = CountSubgraphIsomorphisms(example.query, data);
    ASSERT_TRUE(counted.ok());
    EXPECT_DOUBLE_EQ(example.count, static_cast<double>(counted->count));
    EXPECT_GE(example.count, 1.0);  // extracted from the data graph
  }
}

TEST(WorkloadTest, SplitPartitionsIndices) {
  Graph data = SmallData();
  auto workload = BuildWorkload(data, {3}, 20);
  ASSERT_TRUE(workload.ok());
  auto split = SplitWorkload(*workload, 0.8, 3);
  EXPECT_EQ(split.train.size() + split.test.size(),
            workload->examples.size());
  std::set<size_t> seen(split.train.begin(), split.train.end());
  for (size_t i : split.test) {
    EXPECT_EQ(seen.count(i), 0u);
    seen.insert(i);
  }
  EXPECT_EQ(seen.size(), workload->examples.size());
}

TEST(WorkloadTest, KFoldCoversEverythingOnce) {
  Graph data = SmallData();
  auto workload = BuildWorkload(data, {3}, 15);
  ASSERT_TRUE(workload.ok());
  auto folds = KFoldSplits(*workload, 5, 9);
  ASSERT_EQ(folds.size(), 5u);
  std::vector<size_t> test_seen(workload->examples.size(), 0);
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.train.size() + fold.test.size(),
              workload->examples.size());
    for (size_t i : fold.test) ++test_seen[i];
  }
  for (size_t c : test_seen) EXPECT_EQ(c, 1u);
}

TEST(WorkloadTest, GatherPullsExamples) {
  Graph data = SmallData();
  auto workload = BuildWorkload(data, {3}, 5);
  ASSERT_TRUE(workload.ok());
  auto subset = Gather(*workload, {0, 2});
  ASSERT_EQ(subset.size(), 2u);
  EXPECT_DOUBLE_EQ(subset[0].count, workload->examples[0].count);
  EXPECT_DOUBLE_EQ(subset[1].count, workload->examples[2].count);
}


TEST(WorkloadTest, DeterministicAcrossThreadCounts) {
  Graph data = SmallData();
  setenv("NEURSC_THREADS", "1", 1);
  auto serial = BuildWorkload(data, {3, 4}, 8);
  setenv("NEURSC_THREADS", "4", 1);
  auto parallel = BuildWorkload(data, {3, 4}, 8);
  unsetenv("NEURSC_THREADS");
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->examples.size(), parallel->examples.size());
  for (size_t i = 0; i < serial->examples.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial->examples[i].count,
                     parallel->examples[i].count);
    EXPECT_EQ(serial->examples[i].query.NumEdges(),
              parallel->examples[i].query.NumEdges());
  }
}


TEST(WorkloadTest, DeduplicationDropsIsomorphicQueries) {
  Graph data = SmallData();
  WorkloadOptions base;
  base.seed = 3;
  auto plain = BuildWorkload(data, {3}, 12, base);
  ASSERT_TRUE(plain.ok());
  WorkloadOptions dedup = base;
  dedup.deduplicate_isomorphic = true;
  auto unique = BuildWorkload(data, {3}, 12, dedup);
  ASSERT_TRUE(unique.ok());
  // Every pair in the deduplicated workload is non-isomorphic.
  for (size_t i = 0; i < unique->examples.size(); ++i) {
    for (size_t j = i + 1; j < unique->examples.size(); ++j) {
      EXPECT_FALSE(AreIsomorphic(unique->examples[i].query,
                                 unique->examples[j].query));
    }
  }
  EXPECT_LE(unique->examples.size(), plain->examples.size());
}


TEST(WorkloadTest, UnmatchableQueriesHaveZeroCount) {
  Graph data = SmallData();
  WorkloadOptions options;
  options.unmatchable_fraction = 0.5;
  options.seed = 13;
  auto workload = BuildWorkload(data, {4}, 8, options);
  ASSERT_TRUE(workload.ok());
  size_t zeros = 0;
  for (const auto& example : workload->examples) {
    if (example.count == 0.0) {
      ++zeros;
      // Verify against exact counting.
      auto counted = CountSubgraphIsomorphisms(example.query, data);
      ASSERT_TRUE(counted.ok());
      EXPECT_EQ(counted->count, 0u);
    }
  }
  EXPECT_GT(zeros, 0u);
}

TEST(WorkloadTest, UnmatchableOffByDefault) {
  Graph data = SmallData();
  auto workload = BuildWorkload(data, {3}, 6);
  ASSERT_TRUE(workload.ok());
  for (const auto& example : workload->examples) {
    EXPECT_GE(example.count, 1.0);  // extracted from the graph itself
  }
}

TEST(WorkloadTest, TightBudgetDropsQueries) {
  Graph data = SmallData();
  WorkloadOptions options;
  options.ground_truth_time_limit = 1e-9;  // nothing fits
  auto workload = BuildWorkload(data, {4}, 5, options);
  EXPECT_FALSE(workload.ok());
}

}  // namespace
}  // namespace neursc
