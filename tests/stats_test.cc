#include "graph/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "test_util.h"

namespace neursc {
namespace {

using testing_util::MakeGraph;

TEST(StatsTest, LabelEntropyUniform) {
  Graph g = MakeGraph({0, 1, 2, 3}, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_NEAR(LabelEntropy(g), std::log(4.0), 1e-9);
}

TEST(StatsTest, LabelEntropySingleLabelIsZero) {
  Graph g = MakeGraph({5, 5, 5}, {{0, 1}, {1, 2}});
  EXPECT_NEAR(LabelEntropy(g), 0.0, 1e-12);
}

TEST(StatsTest, DegreeEntropyRegularGraphIsZero) {
  // Cycle: all degrees equal.
  Graph g = MakeGraph({0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_NEAR(DegreeEntropy(g), 0.0, 1e-12);
}

TEST(StatsTest, DegreeEntropyStar) {
  // Star: center degree 3 (1/4), leaves degree 1 (3/4).
  Graph g = MakeGraph({0, 0, 0, 0}, {{0, 1}, {0, 2}, {0, 3}});
  double expected = -(0.25 * std::log(0.25) + 0.75 * std::log(0.75));
  EXPECT_NEAR(DegreeEntropy(g), expected, 1e-9);
}

TEST(StatsTest, DiameterPath) {
  Graph g = MakeGraph({0, 0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  EXPECT_EQ(Diameter(g), 4u);
}

TEST(StatsTest, DiameterTriangle) {
  Graph g = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(Diameter(g), 1u);
}

TEST(StatsTest, EccentricityOfPathEnd) {
  Graph g = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}});
  EXPECT_EQ(Eccentricity(g, 0), 2u);
  EXPECT_EQ(Eccentricity(g, 1), 1u);
}

TEST(StatsTest, DiameterIgnoresUnreachable) {
  Graph g = MakeGraph({0, 0, 0, 0}, {{0, 1}, {2, 3}});
  EXPECT_EQ(Diameter(g), 1u);
}


TEST(StatsTest, TriangleCountOnKnownGraphs) {
  Graph triangle = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(CountTriangles(triangle), 1u);
  Graph k4 = MakeGraph({0, 0, 0, 0},
                       {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  EXPECT_EQ(CountTriangles(k4), 4u);
  Graph path = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}});
  EXPECT_EQ(CountTriangles(path), 0u);
}

TEST(StatsTest, ClusteringCoefficientExtremes) {
  Graph k4 = MakeGraph({0, 0, 0, 0},
                       {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  EXPECT_NEAR(GlobalClusteringCoefficient(k4), 1.0, 1e-12);
  Graph star = MakeGraph({0, 0, 0, 0}, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_NEAR(GlobalClusteringCoefficient(star), 0.0, 1e-12);
  Graph empty_wedges = MakeGraph({0, 0}, {{0, 1}});
  EXPECT_NEAR(GlobalClusteringCoefficient(empty_wedges), 0.0, 1e-12);
}

TEST(StatsTest, QueryCharacteristicsBundle) {
  Graph g = MakeGraph({0, 1, 0}, {{0, 1}, {1, 2}});
  QueryCharacteristics c = ComputeQueryCharacteristics(g);
  EXPECT_GT(c.label_entropy, 0.0);
  EXPECT_GT(c.degree_entropy, 0.0);
  EXPECT_NEAR(c.density, 2.0 / 3.0, 1e-9);
  EXPECT_EQ(c.diameter, 2u);
}

}  // namespace
}  // namespace neursc
