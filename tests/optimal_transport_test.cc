#include "core/optimal_transport.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace neursc {
namespace {

TEST(AssignmentTest, IdentityIsOptimal) {
  Matrix cost = Matrix::FromRows({{0, 9, 9}, {9, 0, 9}, {9, 9, 0}});
  auto assignment = SolveAssignment(cost);
  EXPECT_EQ(assignment, (std::vector<size_t>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(AssignmentCost(cost, assignment), 0.0);
}

TEST(AssignmentTest, RequiresGlobalReasoning) {
  // Greedy (row 0 takes col 0 at cost 1, forcing row 1 to col 1 at 10)
  // is suboptimal: the optimum is 0->1 (2) + 1->0 (1) = 3.
  Matrix cost = Matrix::FromRows({{1, 2}, {1, 10}});
  auto assignment = SolveAssignment(cost);
  EXPECT_DOUBLE_EQ(AssignmentCost(cost, assignment), 3.0);
  EXPECT_EQ(assignment[0], 1u);
  EXPECT_EQ(assignment[1], 0u);
}

TEST(AssignmentTest, RectangularMoreColumns) {
  Matrix cost = Matrix::FromRows({{5, 1, 7}, {2, 8, 2}});
  auto assignment = SolveAssignment(cost);
  EXPECT_DOUBLE_EQ(AssignmentCost(cost, assignment), 3.0);
  EXPECT_NE(assignment[0], assignment[1]);
}

// Brute-force reference over all injective assignments.
double BruteForceAssignment(const Matrix& cost) {
  std::vector<size_t> cols(cost.cols());
  std::iota(cols.begin(), cols.end(), 0);
  double best = 1e300;
  std::sort(cols.begin(), cols.end());
  do {
    double total = 0.0;
    for (size_t i = 0; i < cost.rows(); ++i) total += cost.at(i, cols[i]);
    best = std::min(best, total);
  } while (std::next_permutation(cols.begin(), cols.end()));
  return best;
}

class AssignmentPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AssignmentPropertyTest, MatchesBruteForce) {
  Rng rng(GetParam());
  size_t n = 2 + rng.UniformIndex(4);
  size_t m = n + rng.UniformIndex(3);
  Matrix cost = Matrix::Uniform(n, m, 0.0f, 10.0f, &rng);
  auto assignment = SolveAssignment(cost);
  EXPECT_NEAR(AssignmentCost(cost, assignment), BruteForceAssignment(cost),
              1e-4);
}

INSTANTIATE_TEST_SUITE_P(RandomCosts, AssignmentPropertyTest,
                         ::testing::Range(0, 20));

TEST(ExactWassersteinTest, IdenticalCloudsHaveZeroDistance) {
  Rng rng(5);
  Matrix a = Matrix::Uniform(6, 3, -1, 1, &rng);
  EXPECT_NEAR(ExactWasserstein1(a, a), 0.0, 1e-6);
}

TEST(ExactWassersteinTest, TranslationShowsUp) {
  Matrix a = Matrix::FromRows({{0, 0}, {1, 0}});
  Matrix b = Matrix::FromRows({{0, 3}, {1, 3}});
  EXPECT_NEAR(ExactWasserstein1(a, b), 3.0, 1e-6);
}

TEST(ExactWassersteinTest, SubsetIntoLargerCloud) {
  Matrix a = Matrix::FromRows({{0.0f, 0.0f}});
  Matrix b = Matrix::FromRows({{5, 0}, {1, 0}, {9, 9}});
  EXPECT_NEAR(ExactWasserstein1(a, b), 1.0, 1e-6);
}

TEST(ExactOtCorrespondenceTest, RespectsCandidates) {
  Matrix query_repr = Matrix::FromRows({{0.0f, 0.0f}, {5.0f, 5.0f}});
  Matrix sub_repr =
      Matrix::FromRows({{0.1f, 0.0f}, {5.0f, 5.1f}, {2.0f, 2.0f}});
  std::vector<std::vector<VertexId>> candidates = {{0, 2}, {1, 2}};
  auto pairs =
      SelectCorrespondenceByExactOt(query_repr, sub_repr, candidates);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs.sub_rows[0], 0u);
  EXPECT_EQ(pairs.sub_rows[1], 1u);
}

TEST(ExactOtCorrespondenceTest, SolvesConflictOptimally) {
  // Both query vertices prefer v0, but total cost is lower when the
  // closer one takes it.
  Matrix query_repr = Matrix::FromRows({{0.0f}, {0.2f}});
  Matrix sub_repr = Matrix::FromRows({{0.0f}, {1.0f}});
  std::vector<std::vector<VertexId>> candidates = {{0, 1}, {0, 1}};
  auto pairs =
      SelectCorrespondenceByExactOt(query_repr, sub_repr, candidates);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs.sub_rows[0], 0u);  // u0 (exactly at v0) keeps it
  EXPECT_EQ(pairs.sub_rows[1], 1u);
}

TEST(ExactOtCorrespondenceTest, DropsCandidatelessVertices) {
  Matrix query_repr = Matrix::FromRows({{0.0f}, {1.0f}});
  Matrix sub_repr = Matrix::FromRows({{0.0f}, {1.0f}});
  std::vector<std::vector<VertexId>> candidates = {{}, {1}};
  auto pairs =
      SelectCorrespondenceByExactOt(query_repr, sub_repr, candidates);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs.query_rows[0], 1u);
}

}  // namespace
}  // namespace neursc
