#include "baselines/neursc_adapter.h"

#include <gtest/gtest.h>

#include "eval/workload.h"
#include "graph/generators.h"

namespace neursc {
namespace {

NeurSCConfig TinyConfig() {
  NeurSCConfig config;
  config.west.intra_dim = 8;
  config.west.inter_dim = 8;
  config.west.predictor_hidden = 16;
  config.disc_hidden = 8;
  config.epochs = 2;
  config.pretrain_epochs = 1;
  return config;
}

TEST(NeurSCAdapterTest, VariantNames) {
  auto data = GenerateErdosRenyiGraph(40, 120, 3, 1);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(NeurSCAdapter::Full(*data, TinyConfig())->Name(), "NeurSC");
  EXPECT_EQ(NeurSCAdapter::IntraOnly(*data, TinyConfig())->Name(),
            "NeurSC-I");
  EXPECT_EQ(NeurSCAdapter::Dual(*data, TinyConfig())->Name(), "NeurSC-D");
  EXPECT_EQ(NeurSCAdapter::WithoutExtraction(*data, TinyConfig())->Name(),
            "NeurSC w/o SE");
  EXPECT_EQ(NeurSCAdapter::WithMetric(*data, TinyConfig(),
                                      DistanceMetric::kEuclidean)
                ->Name(),
            "NeurSC-EU");
  EXPECT_EQ(
      NeurSCAdapter::WithMetric(*data, TinyConfig(), DistanceMetric::kKL)
          ->Name(),
      "NeurSC-KL");
  EXPECT_EQ(
      NeurSCAdapter::WithMetric(*data, TinyConfig(), DistanceMetric::kJS)
          ->Name(),
      "NeurSC-JS");
  EXPECT_EQ(NeurSCAdapter::WithMetric(*data, TinyConfig(),
                                      DistanceMetric::kWasserstein)
                ->Name(),
            "NeurSC");
}

TEST(NeurSCAdapterTest, VariantsConfigureEstimator) {
  auto data = GenerateErdosRenyiGraph(40, 120, 3, 2);
  ASSERT_TRUE(data.ok());
  auto intra = NeurSCAdapter::IntraOnly(*data, TinyConfig());
  EXPECT_FALSE(intra->estimator().config().west.use_inter);
  EXPECT_FALSE(intra->estimator().config().use_discriminator);
  auto dual = NeurSCAdapter::Dual(*data, TinyConfig());
  EXPECT_TRUE(dual->estimator().config().west.use_inter);
  EXPECT_FALSE(dual->estimator().config().use_discriminator);
  auto no_se = NeurSCAdapter::WithoutExtraction(*data, TinyConfig());
  EXPECT_FALSE(
      no_se->estimator().config().use_substructure_extraction);
}

TEST(NeurSCAdapterTest, TrainThenEstimateThroughInterface) {
  auto data = GenerateErdosRenyiGraph(80, 240, 3, 3);
  ASSERT_TRUE(data.ok());
  auto workload = BuildWorkload(*data, {3}, 6);
  ASSERT_TRUE(workload.ok());
  auto adapter = NeurSCAdapter::Full(*data, TinyConfig());
  CardinalityEstimator* iface = adapter.get();
  ASSERT_TRUE(iface->Train(workload->examples).ok());
  EXPECT_FALSE(adapter->train_stats().epoch_mean_loss.empty());
  auto est = iface->EstimateCount(workload->examples[0].query);
  ASSERT_TRUE(est.ok());
  EXPECT_GE(*est, 0.0);
}

TEST(NeurSCAdapterTest, NonLearnedInterfaceDefaultTrainIsNoOp) {
  auto data = GenerateErdosRenyiGraph(40, 120, 3, 4);
  ASSERT_TRUE(data.ok());
  // CardinalityEstimator's default Train (used by the G-CARE methods) is a
  // no-op returning OK even with an empty example list.
  class Dummy : public CardinalityEstimator {
   public:
    std::string Name() const override { return "Dummy"; }
    Result<double> EstimateCount(const Graph&) override { return 1.0; }
  };
  Dummy dummy;
  EXPECT_TRUE(dummy.Train({}).ok());
}

}  // namespace
}  // namespace neursc
