#include "graph/graph_io.h"

#include <fstream>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "test_util.h"

namespace neursc {
namespace {

using testing_util::MakeGraph;

TEST(GraphIoTest, RoundTripSmallGraph) {
  Graph g = MakeGraph({3, 1, 4, 1}, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  std::string text = WriteGraphToString(g);
  auto back = ReadGraphFromString(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->NumVertices(), g.NumVertices());
  EXPECT_EQ(back->NumEdges(), g.NumEdges());
  for (size_t v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(back->GetLabel(static_cast<VertexId>(v)),
              g.GetLabel(static_cast<VertexId>(v)));
    EXPECT_EQ(back->Degree(static_cast<VertexId>(v)),
              g.Degree(static_cast<VertexId>(v)));
  }
}

TEST(GraphIoTest, ParsesCanonicalFormat) {
  const std::string text =
      "t 3 2\n"
      "v 0 7 1\n"
      "v 1 8 2\n"
      "v 2 7 1\n"
      "e 0 1\n"
      "e 1 2\n";
  auto g = ReadGraphFromString(text);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 3u);
  EXPECT_EQ(g->GetLabel(1), 8u);
  EXPECT_TRUE(g->HasEdge(0, 1));
}

TEST(GraphIoTest, RejectsMissingHeader) {
  EXPECT_FALSE(ReadGraphFromString("v 0 0 0\n").ok());
}

TEST(GraphIoTest, RejectsVertexCountMismatch) {
  EXPECT_FALSE(ReadGraphFromString("t 2 0\nv 0 0 0\n").ok());
}

TEST(GraphIoTest, RejectsEdgeCountMismatch) {
  EXPECT_FALSE(
      ReadGraphFromString("t 2 2\nv 0 0 1\nv 1 0 1\ne 0 1\n").ok());
}

TEST(GraphIoTest, RejectsWrongDeclaredDegree) {
  EXPECT_FALSE(
      ReadGraphFromString("t 2 1\nv 0 0 5\nv 1 0 1\ne 0 1\n").ok());
}

TEST(GraphIoTest, RejectsOutOfOrderVertexIds) {
  EXPECT_FALSE(
      ReadGraphFromString("t 2 0\nv 1 0 0\nv 0 0 0\n").ok());
}

TEST(GraphIoTest, RejectsUnknownTag) {
  EXPECT_FALSE(ReadGraphFromString("t 1 0\nv 0 0 0\nx 1 2\n").ok());
}

TEST(GraphIoTest, FileRoundTrip) {
  auto g = GenerateErdosRenyiGraph(50, 120, 5, 3);
  ASSERT_TRUE(g.ok());
  const std::string path = ::testing::TempDir() + "/neursc_io_test.graph";
  ASSERT_TRUE(WriteGraphToFile(*g, path).ok());
  auto back = ReadGraphFromFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumVertices(), g->NumVertices());
  EXPECT_EQ(back->NumEdges(), g->NumEdges());
  EXPECT_EQ(WriteGraphToString(*back), WriteGraphToString(*g));
}

TEST(GraphIoTest, MissingFileFails) {
  auto g = ReadGraphFromFile("/nonexistent/path/graph.txt");
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIOError);
}


TEST(GraphIoBinaryTest, RoundTrip) {
  auto g = GenerateErdosRenyiGraph(80, 200, 6, 9);
  ASSERT_TRUE(g.ok());
  const std::string path = ::testing::TempDir() + "/neursc_io_test.nscg";
  ASSERT_TRUE(WriteGraphBinary(*g, path).ok());
  auto back = ReadGraphBinary(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(WriteGraphToString(*back), WriteGraphToString(*g));
}

TEST(GraphIoBinaryTest, RejectsTextFile) {
  auto g = GenerateErdosRenyiGraph(10, 20, 2, 1);
  ASSERT_TRUE(g.ok());
  const std::string path = ::testing::TempDir() + "/neursc_io_test_text.graph";
  ASSERT_TRUE(WriteGraphToFile(*g, path).ok());
  EXPECT_FALSE(ReadGraphBinary(path).ok());
}

TEST(GraphIoBinaryTest, RejectsTruncation) {
  auto g = GenerateErdosRenyiGraph(30, 60, 2, 2);
  ASSERT_TRUE(g.ok());
  const std::string path = ::testing::TempDir() + "/neursc_io_trunc.nscg";
  ASSERT_TRUE(WriteGraphBinary(*g, path).ok());
  // Truncate the file to half its size.
  {
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
  }
  EXPECT_FALSE(ReadGraphBinary(path).ok());
}

TEST(GraphIoBinaryTest, EmptyGraphRoundTrip) {
  GraphBuilder b;
  Graph g = std::move(b.Build()).value();
  const std::string path = ::testing::TempDir() + "/neursc_io_empty.nscg";
  ASSERT_TRUE(WriteGraphBinary(g, path).ok());
  auto back = ReadGraphBinary(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumVertices(), 0u);
}


TEST(GraphDotTest, ContainsVerticesAndEdges) {
  Graph g = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}});
  std::string dot = ToDot(g, "demo");
  EXPECT_NE(dot.find("graph demo {"), std::string::npos);
  EXPECT_NE(dot.find("v0 -- v1"), std::string::npos);
  EXPECT_NE(dot.find("v1 -- v2"), std::string::npos);
  EXPECT_EQ(dot.find("v0 -- v2"), std::string::npos);
  EXPECT_NE(dot.find("0:0"), std::string::npos);  // id:label text
}

TEST(GraphDotTest, EmptyGraphStillValid) {
  GraphBuilder b;
  Graph g = std::move(b.Build()).value();
  std::string dot = ToDot(g);
  EXPECT_NE(dot.find("graph g {"), std::string::npos);
  EXPECT_NE(dot.find("}"), std::string::npos);
}

}  // namespace
}  // namespace neursc
