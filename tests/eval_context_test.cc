// Differential suite for the tape-free inference engine (nn/eval.h).
//
// The execution-context refactor (docs/execution.md) promises that the
// forward-only EvalContext and the autograd Tape compute bit-identical
// values: both backends call the shared kernels in nn/kernels.h, so their
// floats agree by construction, not within a tolerance. These tests
// enforce that contract at three levels — op by op, one WEst forward
// pass, and end-to-end Estimate/EstimateBatch against a Tape-forced
// build — and pin the EvalContext's workspace-reuse guarantee: after a
// warm-up pass, repeated forwards on same-shaped inputs perform zero
// arena growth.
//
// The pooled-workspace cases carry the "concurrency" label so the ci.sh
// TSan lane exercises EvalContextPool under real thread contention.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/neursc_adapter.h"
#include "common/metrics_registry.h"
#include "common/rng.h"
#include "core/feature_init.h"
#include "core/neursc.h"
#include "core/west.h"
#include "graph/graph.h"
#include "matching/substructure.h"
#include "nn/eval.h"
#include "nn/tape.h"
#include "test_util.h"

namespace neursc {
namespace {

using testing_util::MakeGraph;

constexpr size_t kThreadCounts[] = {1, 2, 8};

/// Scoped NEURSC_THREADS override; restores the previous value on exit.
class ThreadsGuard {
 public:
  explicit ThreadsGuard(size_t n) {
    const char* old = std::getenv("NEURSC_THREADS");
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    setenv("NEURSC_THREADS", std::to_string(n).c_str(), 1);
  }
  ~ThreadsGuard() {
    if (had_old_) {
      setenv("NEURSC_THREADS", old_.c_str(), 1);
    } else {
      unsetenv("NEURSC_THREADS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

/// Bit-for-bit matrix equality: memcmp over the float payload, so even
/// -0.0 vs 0.0 or differently-rounded last bits fail loudly.
void ExpectBitEqual(const Matrix& a, const Matrix& b, const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what << ": value bits differ";
}

Matrix RandomMatrix(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      m.at(i, j) = static_cast<float>(rng->Uniform(-2.0, 2.0));
    }
  }
  return m;
}

NeurSCConfig TinyConfig(uint64_t seed) {
  NeurSCConfig config;
  config.west.intra_dim = 8;
  config.west.inter_dim = 8;
  config.west.predictor_hidden = 16;
  config.disc_hidden = 8;
  config.epochs = 3;
  config.pretrain_epochs = 1;
  config.seed = seed;
  return config;
}

Graph DisjointTriangles(size_t k) {
  std::vector<Label> labels(3 * k, 0);
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (size_t c = 0; c < k; ++c) {
    VertexId base = static_cast<VertexId>(3 * c);
    edges.push_back({base, static_cast<VertexId>(base + 1)});
    edges.push_back({static_cast<VertexId>(base + 1),
                     static_cast<VertexId>(base + 2)});
    edges.push_back({base, static_cast<VertexId>(base + 2)});
  }
  return MakeGraph(labels, edges);
}

std::vector<Graph> TestQueries() {
  std::vector<Graph> queries;
  queries.push_back(MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}, {0, 2}}));
  queries.push_back(MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}}));
  queries.push_back(MakeGraph({0, 0}, {{0, 1}}));
  return queries;
}

std::vector<TrainingExample> TinyExamples() {
  std::vector<TrainingExample> examples;
  for (const Graph& q : TestQueries()) {
    examples.push_back(TrainingExample{q, 6.0});
  }
  return examples;
}

/// Fixture matching west_test.cc: a triangle query against a data graph of
/// two triangles joined by a bridge edge.
struct WEstFixture {
  Graph query = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}, {0, 2}});
  Graph data = MakeGraph({0, 1, 2, 0, 1, 2},
                         {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5},
                          {2, 3}});
  ExtractionResult extraction;
  FeatureInitializer features{data, 1};

  WEstFixture() {
    auto ext = ExtractSubstructures(query, data);
    EXPECT_TRUE(ext.ok());
    extraction = std::move(ext).value();
    EXPECT_GE(extraction.substructures.size(), 1u);
  }
};

// --- Level 1: every op, bit for bit -----------------------------------

TEST(EvalContextOpTest, OpVocabularyMatchesTapeBitForBit) {
  Rng rng(2024);
  Matrix a4x3 = RandomMatrix(4, 3, &rng);
  Matrix b4x3 = RandomMatrix(4, 3, &rng);
  Matrix b3x5 = RandomMatrix(3, 5, &rng);
  Matrix bias = RandomMatrix(1, 3, &rng);
  Matrix col4 = RandomMatrix(4, 1, &rng);
  Matrix pred(1, 1);
  pred.at(0, 0) = 7.25f;
  std::vector<uint32_t> gather_rows = {2, 0, 3, 1, 2};
  std::vector<uint32_t> scatter_targets = {1, 0, 1, 2};
  std::vector<uint32_t> segments = {0, 0, 1, 1};

  Tape tape;
  EvalContext eval;

  // Each entry builds the same expression on both backends and returns the
  // pair of output nodes to compare.
  struct Case {
    std::string name;
    Var on_tape;
    Var on_eval;
  };
  std::vector<Case> cases;
  auto both = [&](const std::string& name, auto&& build) {
    cases.push_back(Case{name, build(&tape), build(&eval)});
  };

  both("MatMul", [&](auto* ctx) {
    return ctx->MatMul(ctx->Constant(a4x3), ctx->Constant(b3x5));
  });
  both("Add", [&](auto* ctx) {
    return ctx->Add(ctx->Constant(a4x3), ctx->Constant(b4x3));
  });
  both("AddRowBroadcast", [&](auto* ctx) {
    return ctx->AddRowBroadcast(ctx->Constant(a4x3), ctx->Constant(bias));
  });
  both("Sub", [&](auto* ctx) {
    return ctx->Sub(ctx->Constant(a4x3), ctx->Constant(b4x3));
  });
  both("Mul", [&](auto* ctx) {
    return ctx->Mul(ctx->Constant(a4x3), ctx->Constant(b4x3));
  });
  both("Scale", [&](auto* ctx) {
    return ctx->Scale(ctx->Constant(a4x3), 0.37f);
  });
  both("Relu", [&](auto* ctx) { return ctx->Relu(ctx->Constant(a4x3)); });
  both("LeakyRelu", [&](auto* ctx) {
    return ctx->LeakyRelu(ctx->Constant(a4x3), 0.2f);
  });
  both("Sigmoid", [&](auto* ctx) {
    return ctx->Sigmoid(ctx->Constant(a4x3));
  });
  both("Tanh", [&](auto* ctx) { return ctx->Tanh(ctx->Constant(a4x3)); });
  both("Exp", [&](auto* ctx) { return ctx->Exp(ctx->Constant(a4x3)); });
  both("Log", [&](auto* ctx) { return ctx->Log(ctx->Constant(a4x3)); });
  both("RowSoftmax", [&](auto* ctx) {
    return ctx->RowSoftmax(ctx->Constant(a4x3));
  });
  both("ConcatCols", [&](auto* ctx) {
    return ctx->ConcatCols(ctx->Constant(a4x3), ctx->Constant(b4x3));
  });
  both("ConcatRows", [&](auto* ctx) {
    std::vector<Var> parts = {ctx->Constant(a4x3), ctx->Constant(b4x3)};
    return ctx->ConcatRows(parts);
  });
  both("GatherRows", [&](auto* ctx) {
    return ctx->GatherRows(ctx->Constant(a4x3), gather_rows);
  });
  both("ScatterAddRows", [&](auto* ctx) {
    return ctx->ScatterAddRows(ctx->Constant(a4x3), scatter_targets, 3);
  });
  both("SegmentSoftmax", [&](auto* ctx) {
    return ctx->SegmentSoftmax(ctx->Constant(col4), segments, 2);
  });
  both("ColBroadcastMul", [&](auto* ctx) {
    return ctx->ColBroadcastMul(ctx->Constant(a4x3), ctx->Constant(col4));
  });
  both("SumRows", [&](auto* ctx) {
    return ctx->SumRows(ctx->Constant(a4x3));
  });
  both("MeanRows", [&](auto* ctx) {
    return ctx->MeanRows(ctx->Constant(a4x3));
  });
  both("ReduceSum", [&](auto* ctx) {
    return ctx->ReduceSum(ctx->Constant(a4x3));
  });
  both("QErrorLoss", [&](auto* ctx) {
    return ctx->QErrorLoss(ctx->Constant(pred), 12.0);
  });

  for (const Case& c : cases) {
    ExpectBitEqual(tape.Value(c.on_tape), eval.Value(c.on_eval), c.name);
  }
}

TEST(EvalContextOpTest, LeafBorrowsParameterWithoutCopy) {
  Rng rng(7);
  Parameter p;
  p.value = RandomMatrix(3, 3, &rng);
  EvalContext eval;
  Var leaf = eval.Leaf(&p);
  // Leaf is a borrow: the node aliases the parameter storage directly.
  EXPECT_EQ(&eval.Value(leaf), &p.value);
  EXPECT_EQ(eval.num_slots(), 0u);
}

// --- Level 2: one WEst forward pass, all variants ---------------------

TEST(EvalContextWEstTest, ForwardBitIdenticalAcrossBackends) {
  WEstFixture fx;
  const Substructure& sub = fx.extraction.substructures[0];
  Matrix qf = fx.features.Compute(fx.query);
  Matrix sf = fx.features.Compute(sub.graph);
  for (IntraGnnKind kind : {IntraGnnKind::kGin, IntraGnnKind::kMeanAggregator}) {
    for (bool use_inter : {true, false}) {
      for (uint64_t seed : {11u, 22u, 33u}) {
        WEstConfig config;
        config.intra_dim = 8;
        config.inter_dim = 8;
        config.predictor_hidden = 16;
        config.intra_kind = kind;
        config.use_inter = use_inter;
        config.seed = seed;
        WEstModel model(fx.features.FeatureDim(), config);
        const std::string what =
            std::string(kind == IntraGnnKind::kGin ? "gin" : "mean") +
            (use_inter ? "+inter" : "") + " seed=" + std::to_string(seed);

        Rng tape_rng(seed * 31 + 1);
        Tape tape;
        auto on_tape =
            model.Forward(&tape, fx.query, sub, qf, sf, &tape_rng);

        Rng eval_rng(seed * 31 + 1);
        EvalContext eval;
        auto on_eval =
            model.Forward(&eval, fx.query, sub, qf, sf, &eval_rng);

        ExpectBitEqual(tape.Value(on_tape.prediction),
                       eval.Value(on_eval.prediction), what + " prediction");
        ExpectBitEqual(tape.Value(on_tape.query_repr),
                       eval.Value(on_eval.query_repr), what + " query_repr");
        ExpectBitEqual(tape.Value(on_tape.sub_repr),
                       eval.Value(on_eval.sub_repr), what + " sub_repr");
      }
    }
  }
}

// --- Level 3: end to end against a Tape-forced build ------------------

TEST(EvalContextEndToEndTest, EstimateMatchesTapeForcedBuild) {
  Graph data = DisjointTriangles(8);
  std::vector<TrainingExample> examples = TinyExamples();
  auto fast = NeurSCAdapter::Full(data, TinyConfig(77));
  auto reference = NeurSCAdapter::TapeForced(data, TinyConfig(77));
  ASSERT_TRUE(fast->Train(examples).ok());
  ASSERT_TRUE(reference->Train(examples).ok());
  for (const Graph& q : TestQueries()) {
    auto got = fast->EstimateCount(q);
    auto want = reference->EstimateCount(q);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    // Exact double equality: the backends share forward kernels, so the
    // per-substructure predictions (and their ordered reduction) must
    // agree bit for bit, not within a tolerance.
    EXPECT_EQ(*got, *want);
  }
}

TEST(EvalContextEndToEndTest, EstimateBatchMatchesTapeForcedBuild) {
  Graph data = DisjointTriangles(8);
  std::vector<Graph> queries = TestQueries();
  queries.insert(queries.begin() + 1, MakeGraph({9, 9}, {{0, 1}}));
  NeurSCConfig fast_config = TinyConfig(123);
  NeurSCConfig tape_config = TinyConfig(123);
  tape_config.inference_backend = ExecutionBackend::kTape;
  NeurSCEstimator fast(data, fast_config);
  NeurSCEstimator reference(data, tape_config);
  auto got = fast.EstimateBatch(queries);
  auto want = reference.EstimateBatch(queries);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  ASSERT_EQ(got->size(), want->size());
  for (size_t i = 0; i < got->size(); ++i) {
    EXPECT_EQ((*got)[i].count, (*want)[i].count) << "query=" << i;
    EXPECT_EQ((*got)[i].early_terminated, (*want)[i].early_terminated);
    EXPECT_EQ((*got)[i].num_used, (*want)[i].num_used);
  }
}

TEST(EvalContextEndToEndTest, TrainValidationIdenticalAcrossBackends) {
  // The validation loop is forward-only, so it runs on the configured
  // backend — but early stopping decisions feed back into the final
  // weights, so the backends must agree exactly or training itself
  // diverges. Train twice, flipping only inference_backend.
  Graph data = DisjointTriangles(6);
  NeurSCConfig eval_config = TinyConfig(55);
  eval_config.validation_fraction = 0.34;
  eval_config.epochs = 4;
  NeurSCConfig tape_config = eval_config;
  tape_config.inference_backend = ExecutionBackend::kTape;

  std::vector<TrainingExample> examples = TinyExamples();
  examples.push_back(TrainingExample{DisjointTriangles(1), 8.0});
  examples.push_back(
      TrainingExample{MakeGraph({0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 3}}), 4.0});

  NeurSCEstimator on_eval(data, eval_config);
  NeurSCEstimator on_tape(data, tape_config);
  auto eval_stats = on_eval.Train(examples);
  auto tape_stats = on_tape.Train(examples);
  ASSERT_TRUE(eval_stats.ok()) << eval_stats.status().ToString();
  ASSERT_TRUE(tape_stats.ok()) << tape_stats.status().ToString();

  ASSERT_EQ(eval_stats->epoch_validation_qerror.size(),
            tape_stats->epoch_validation_qerror.size());
  ASSERT_FALSE(eval_stats->epoch_validation_qerror.empty());
  for (size_t e = 0; e < eval_stats->epoch_validation_qerror.size(); ++e) {
    EXPECT_EQ(eval_stats->epoch_validation_qerror[e],
              tape_stats->epoch_validation_qerror[e])
        << "epoch=" << e;
  }
  EXPECT_EQ(eval_stats->early_stopped, tape_stats->early_stopped);

  std::vector<Parameter*> eval_params = on_eval.model().Parameters();
  std::vector<Parameter*> tape_params = on_tape.model().Parameters();
  ASSERT_EQ(eval_params.size(), tape_params.size());
  for (size_t i = 0; i < eval_params.size(); ++i) {
    ExpectBitEqual(eval_params[i]->value, tape_params[i]->value,
                   "parameter " + std::to_string(i));
  }
}

// --- Pooled workspaces under parallelism (TSan lane) ------------------

TEST(EvalContextPoolTest, PooledEstimateBitIdenticalAcrossThreadCounts) {
  Graph data = DisjointTriangles(8);
  std::vector<Graph> queries = TestQueries();
  std::vector<double> reference;
  {
    ThreadsGuard guard(1);
    NeurSCEstimator estimator(data, TinyConfig(42));
    for (const Graph& q : queries) {
      auto info = estimator.Estimate(q);
      ASSERT_TRUE(info.ok()) << info.status().ToString();
      reference.push_back(info->count);
    }
  }
  for (size_t threads : kThreadCounts) {
    ThreadsGuard guard(threads);
    NeurSCEstimator estimator(data, TinyConfig(42));
    for (size_t i = 0; i < queries.size(); ++i) {
      auto info = estimator.Estimate(queries[i]);
      ASSERT_TRUE(info.ok()) << info.status().ToString();
      EXPECT_EQ(info->count, reference[i])
          << "threads=" << threads << " query=" << i;
    }
  }
}

TEST(EvalContextPoolTest, SequentialLeasesReuseOneContext) {
  EvalContextPool pool;
  for (int i = 0; i < 5; ++i) {
    auto lease = pool.Acquire();
    lease->Constant(Matrix(2, 2));
  }
  EXPECT_EQ(pool.created(), 1u);
  EXPECT_EQ(pool.idle(), 1u);
}

TEST(EvalContextPoolTest, ConcurrentLeasesAreExclusive) {
  // Hammer the pool from many threads; each lease runs a small forward
  // chain on its context. TSan (ci.sh lane 2) verifies exclusivity; the
  // created() bound verifies leases never alias.
  EvalContextPool pool;
  constexpr size_t kThreads = 8;
  constexpr int kItersPerThread = 50;
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&pool, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < kItersPerThread; ++i) {
        auto ctx = pool.Acquire();
        Matrix m = RandomMatrix(3, 3, &rng);
        Var x = ctx->Constant(m);
        Var y = ctx->Relu(ctx->MatMul(x, x));
        ASSERT_EQ(ctx->Value(y).rows(), 3u);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_LE(pool.created(), kThreads);
  EXPECT_EQ(pool.idle(), pool.created());
}

// --- Workspace reuse: zero arena growth after warm-up -----------------

TEST(EvalContextArenaTest, NoGrowthAfterWarmupOnWEstForward) {
  WEstFixture fx;
  const Substructure& sub = fx.extraction.substructures[0];
  Matrix qf = fx.features.Compute(fx.query);
  Matrix sf = fx.features.Compute(sub.graph);
  WEstConfig config;
  config.intra_dim = 8;
  config.inter_dim = 8;
  config.predictor_hidden = 16;
  WEstModel model(fx.features.FeatureDim(), config);

  EvalContext eval;
  Rng warm_rng(9);
  auto warm = model.Forward(&eval, fx.query, sub, qf, sf, &warm_rng);
  (void)warm;
  const uint64_t grows_after_warmup = eval.arena_grows();
  const size_t bytes_after_warmup = eval.arena_bytes();
  const size_t nodes_after_warmup = eval.NumNodes();
  EXPECT_GT(grows_after_warmup, 0u);
  EXPECT_GT(bytes_after_warmup, 0u);

  // Passes 2..5: identical shapes, so Reset() + Forward must reuse every
  // slot. Both the per-context counters and the global metrics counter
  // must stay flat.
  MetricsRegistry::Global().Reset();
  for (int pass = 2; pass <= 5; ++pass) {
    eval.Reset();
    Rng rng(9);
    auto fw = model.Forward(&eval, fx.query, sub, qf, sf, &rng);
    ExpectBitEqual(eval.Value(fw.prediction), eval.Value(fw.prediction),
                   "self");  // sanity: value readable after reuse
    EXPECT_EQ(eval.arena_grows(), grows_after_warmup) << "pass=" << pass;
    EXPECT_EQ(eval.arena_bytes(), bytes_after_warmup) << "pass=" << pass;
    EXPECT_EQ(eval.NumNodes(), nodes_after_warmup) << "pass=" << pass;
  }
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("eval/arena_grows")->Value(),
            0);
}

TEST(EvalContextArenaTest, EstimatorSteadyStateAllocationsAreZero) {
  // Estimator-level version of the reuse guarantee: after a warm-up
  // Estimate, re-estimating the same query grows no pooled arena. Pinned
  // to one thread so the pool hands the same warmed context to every task.
  ThreadsGuard guard(1);
  Graph data = DisjointTriangles(8);
  NeurSCEstimator estimator(data, TinyConfig(42));
  Graph query = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}, {0, 2}});
  auto warm = estimator.Estimate(query);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  MetricsRegistry::Global().Reset();
  for (int pass = 0; pass < 3; ++pass) {
    auto info = estimator.Estimate(query);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ(info->count, warm->count);
  }
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("eval/arena_grows")->Value(),
            0);
}

TEST(EvalContextArenaTest, ResetKeepsCapacityAndShrinksNodes) {
  EvalContext eval;
  Rng rng(3);
  Matrix m = RandomMatrix(6, 6, &rng);
  Var x = eval.Constant(m);
  eval.Relu(eval.MatMul(x, x));
  const size_t slots = eval.num_slots();
  const size_t bytes = eval.arena_bytes();
  ASSERT_GT(slots, 0u);
  eval.Reset();
  EXPECT_EQ(eval.NumNodes(), 0u);
  EXPECT_EQ(eval.num_slots(), slots);   // capacity retained
  EXPECT_EQ(eval.arena_bytes(), bytes);
}

}  // namespace
}  // namespace neursc
