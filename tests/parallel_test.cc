#include "common/parallel.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace neursc {
namespace {

TEST(ParallelForTest, VisitsEveryIndexOnce) {
  const size_t n = 1000;
  std::vector<std::atomic<int>> visits(n);
  ParallelFor(n, [&](size_t i) { visits[i].fetch_add(1); }, 4);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelForTest, ZeroItemsIsNoOp) {
  bool called = false;
  ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<size_t> order;
  ParallelFor(5, [&](size_t i) { order.push_back(i); }, 1);
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ResultsDeterministicPerSlot) {
  const size_t n = 200;
  std::vector<double> a(n);
  std::vector<double> b(n);
  auto fill = [](std::vector<double>* out) {
    ParallelFor(out->size(), [out](size_t i) {
      (*out)[i] = static_cast<double>(i) * 1.5;
    }, 4);
  };
  fill(&a);
  fill(&b);
  EXPECT_EQ(a, b);
}

TEST(ParallelForTest, MoreThreadsThanItems) {
  std::vector<std::atomic<int>> visits(3);
  ParallelFor(3, [&](size_t i) { visits[i].fetch_add(1); }, 16);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelForTest, DefaultThreadCountPositive) {
  EXPECT_GE(DefaultThreadCount(), 1u);
}

TEST(ParallelForTest, PropagatesWorkerException) {
  EXPECT_THROW(
      ParallelFor(100, [](size_t i) {
        if (i == 37) throw std::runtime_error("task 37 failed");
      }, 4),
      std::runtime_error);
}

TEST(ParallelForTest, PropagatesExceptionMessage) {
  try {
    ParallelFor(64, [](size_t i) {
      if (i >= 60) throw std::runtime_error("boom " + std::to_string(i));
    }, 8);
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("boom ", 0), 0u);
  }
}

TEST(ParallelForTest, PropagatesSerialException) {
  EXPECT_THROW(
      ParallelFor(10, [](size_t i) {
        if (i == 3) throw std::logic_error("serial failure");
      }, 1),
      std::logic_error);
}

TEST(ParallelForTest, StopsClaimingWorkAfterException) {
  std::atomic<size_t> executed{0};
  try {
    ParallelFor(100000, [&](size_t i) {
      executed.fetch_add(1);
      if (i == 0) throw std::runtime_error("early failure");
    }, 4);
  } catch (const std::runtime_error&) {
  }
  // Workers stop claiming new indices once a task has thrown; with the
  // failure on the very first index, the vast majority must be skipped.
  EXPECT_LT(executed.load(), 100000u);
}

TEST(ParallelForTest, SurvivesExceptionAndRemainsUsable) {
  try {
    ParallelFor(16, [](size_t) { throw std::runtime_error("x"); }, 4);
  } catch (const std::runtime_error&) {
  }
  std::vector<std::atomic<int>> visits(50);
  ParallelFor(50, [&](size_t i) { visits[i].fetch_add(1); }, 4);
  for (size_t i = 0; i < 50; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(WorkerPoolTest, PoolPersistsAcrossInvocations) {
  // Warm the pool, then check that repeated regions neither shrink nor
  // regrow it: the helpers stay parked between calls.
  ParallelFor(64, [](size_t) {}, 4);
  size_t after_first = WorkerPoolThreadCount();
  EXPECT_GE(after_first, 3u);  // 4 requested threads = caller + 3 helpers
  for (int round = 0; round < 5; ++round) {
    ParallelFor(64, [](size_t) {}, 4);
    EXPECT_EQ(WorkerPoolThreadCount(), after_first) << "round=" << round;
  }
}

TEST(WorkerPoolTest, PoolGrowsToLargestRequest) {
  ParallelFor(32, [](size_t) {}, 2);
  size_t small = WorkerPoolThreadCount();
  ParallelFor(32, [](size_t) {}, 6);
  size_t large = WorkerPoolThreadCount();
  EXPECT_GE(large, 5u);
  EXPECT_GE(large, small);
  // Shrinking requests keep the grown pool (idle helpers just sleep).
  ParallelFor(32, [](size_t) {}, 2);
  EXPECT_EQ(WorkerPoolThreadCount(), large);
}

TEST(WorkerPoolTest, ConcurrentCallersBothComplete) {
  // Two caller threads contend for the pool; regions serialize on the
  // region mutex but both must finish with every index visited once.
  const size_t n = 5000;
  std::vector<std::atomic<int>> a(n);
  std::vector<std::atomic<int>> b(n);
  std::thread t1([&] { ParallelFor(n, [&](size_t i) { a[i].fetch_add(1); }, 4); });
  std::thread t2([&] { ParallelFor(n, [&](size_t i) { b[i].fetch_add(1); }, 4); });
  t1.join();
  t2.join();
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(a[i].load(), 1);
    EXPECT_EQ(b[i].load(), 1);
  }
}

TEST(WorkerPoolTest, ThrowingBodyCannotDeadlockWaitingRegions) {
  // Regression for the lock-free-callback contract: a region whose body
  // throws must release region ownership before the exception is
  // rethrown, so callers queued for the next region always proceed. Run
  // several rounds of one throwing caller racing several clean callers.
  const size_t n = 2000;
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> clean_done{0};
    std::atomic<bool> threw{false};
    std::thread thrower([&] {
      try {
        ParallelFor(n, [](size_t i) {
          if (i % 7 == 0) throw std::runtime_error("poisoned index");
        }, 4);
      } catch (const std::runtime_error&) {
        threw.store(true);
      }
    });
    std::vector<std::thread> clean;
    for (int t = 0; t < 3; ++t) {
      clean.emplace_back([&] {
        std::vector<std::atomic<int>> visits(n);
        ParallelFor(n, [&](size_t i) { visits[i].fetch_add(1); }, 4);
        for (size_t i = 0; i < n; ++i) ASSERT_EQ(visits[i].load(), 1);
        clean_done.fetch_add(1);
      });
    }
    thrower.join();
    for (auto& t : clean) t.join();
    EXPECT_TRUE(threw.load()) << "round=" << round;
    EXPECT_EQ(clean_done.load(), 3) << "round=" << round;
  }
}

TEST(WorkerPoolTest, BodiesRunWithoutPoolLocksHeld) {
  // WorkerPoolThreadCount() takes the pool mutex; if Run() held any pool
  // lock while invoking user callbacks, the caller-participant's body
  // calling it here would self-deadlock.
  std::atomic<size_t> observed{0};
  ParallelFor(64, [&](size_t) {
    observed.store(WorkerPoolThreadCount(), std::memory_order_relaxed);
  }, 4);
  EXPECT_GE(observed.load(), 3u);
}

TEST(ParallelForTest, NestedParallelForRunsInline) {
  const size_t outer = 8;
  const size_t inner = 16;
  std::vector<std::vector<int>> hits(outer, std::vector<int>(inner, 0));
  std::vector<int> inline_flags(outer, 0);
  ParallelFor(outer, [&](size_t i) {
    EXPECT_TRUE(InParallelWorker());
    // The nested call must execute on this same worker thread, in order.
    ParallelFor(inner, [&, i](size_t j) { hits[i][j] += 1; }, 8);
    inline_flags[i] = 1;
  }, 4);
  EXPECT_FALSE(InParallelWorker());
  for (size_t i = 0; i < outer; ++i) {
    EXPECT_EQ(inline_flags[i], 1);
    for (size_t j = 0; j < inner; ++j) EXPECT_EQ(hits[i][j], 1);
  }
}

}  // namespace
}  // namespace neursc
