#include "common/parallel.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace neursc {
namespace {

TEST(ParallelForTest, VisitsEveryIndexOnce) {
  const size_t n = 1000;
  std::vector<std::atomic<int>> visits(n);
  ParallelFor(n, [&](size_t i) { visits[i].fetch_add(1); }, 4);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelForTest, ZeroItemsIsNoOp) {
  bool called = false;
  ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<size_t> order;
  ParallelFor(5, [&](size_t i) { order.push_back(i); }, 1);
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ResultsDeterministicPerSlot) {
  const size_t n = 200;
  std::vector<double> a(n);
  std::vector<double> b(n);
  auto fill = [](std::vector<double>* out) {
    ParallelFor(out->size(), [out](size_t i) {
      (*out)[i] = static_cast<double>(i) * 1.5;
    }, 4);
  };
  fill(&a);
  fill(&b);
  EXPECT_EQ(a, b);
}

TEST(ParallelForTest, MoreThreadsThanItems) {
  std::vector<std::atomic<int>> visits(3);
  ParallelFor(3, [&](size_t i) { visits[i].fetch_add(1); }, 16);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelForTest, DefaultThreadCountPositive) {
  EXPECT_GE(DefaultThreadCount(), 1u);
}

}  // namespace
}  // namespace neursc
