#include "graph/graph.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace neursc {
namespace {

using testing_util::MakeGraph;

TEST(GraphBuilderTest, BuildsTriangle) {
  Graph g = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.NumLabels(), 3u);
  EXPECT_EQ(g.MaxDegree(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(0, 0));
  EXPECT_DOUBLE_EQ(g.Density(), 1.0);
  EXPECT_TRUE(g.IsConnected());
}

TEST(GraphBuilderTest, RejectsSelfLoop) {
  GraphBuilder builder;
  builder.AddVertex(0);
  EXPECT_FALSE(builder.AddEdge(0, 0).ok());
}

TEST(GraphBuilderTest, RejectsOutOfRangeEdge) {
  GraphBuilder builder;
  builder.AddVertex(0);
  builder.AddVertex(1);
  EXPECT_FALSE(builder.AddEdge(0, 5).ok());
}

TEST(GraphBuilderTest, RejectsDuplicateEdge) {
  GraphBuilder builder;
  builder.AddVertex(0);
  builder.AddVertex(0);
  ASSERT_TRUE(builder.AddEdge(0, 1).ok());
  ASSERT_TRUE(builder.AddEdge(1, 0).ok());
  auto built = builder.Build();
  EXPECT_FALSE(built.ok());
  EXPECT_TRUE(built.status().IsInvalidArgument());
}

TEST(GraphTest, NeighborsAreSorted) {
  Graph g = MakeGraph({0, 0, 0, 0}, {{3, 0}, {1, 0}, {2, 0}});
  auto nbrs = g.Neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(nbrs[1], 2u);
  EXPECT_EQ(nbrs[2], 3u);
}

TEST(GraphTest, VerticesWithLabel) {
  Graph g = MakeGraph({2, 0, 2, 1}, {{0, 1}, {1, 2}, {2, 3}});
  auto with2 = g.VerticesWithLabel(2);
  ASSERT_EQ(with2.size(), 2u);
  EXPECT_EQ(with2[0], 0u);
  EXPECT_EQ(with2[1], 2u);
  EXPECT_EQ(g.LabelFrequency(0), 1u);
  EXPECT_EQ(g.LabelFrequency(1), 1u);
  EXPECT_TRUE(g.VerticesWithLabel(9).empty());
}

TEST(GraphTest, EmptyGraph) {
  GraphBuilder builder;
  auto built = builder.Build();
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->NumVertices(), 0u);
  EXPECT_EQ(built->NumEdges(), 0u);
  EXPECT_TRUE(built->IsConnected());
}

TEST(GraphTest, DisconnectedGraphDetection) {
  Graph g = MakeGraph({0, 0, 0, 0}, {{0, 1}, {2, 3}});
  EXPECT_FALSE(g.IsConnected());
}


TEST(GraphTest, SummaryMentionsCounts) {
  Graph g = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}, {0, 2}});
  std::string summary = g.Summary();
  EXPECT_NE(summary.find("|V|=3"), std::string::npos);
  EXPECT_NE(summary.find("|E|=3"), std::string::npos);
  EXPECT_NE(summary.find("|L|=3"), std::string::npos);
}

TEST(GraphTest, AverageDegree) {
  Graph g = MakeGraph({0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 1.5);
  GraphBuilder b;
  Graph empty = std::move(b.Build()).value();
  EXPECT_DOUBLE_EQ(empty.AverageDegree(), 0.0);
}

TEST(GraphTest, FingerprintStableForEqualGraphs) {
  Graph a = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}, {0, 2}});
  Graph b = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  // Edge insertion order does not matter: CSR adjacency is sorted.
  Graph c = MakeGraph({0, 1, 2}, {{0, 2}, {1, 2}, {0, 1}});
  EXPECT_EQ(a.Fingerprint(), c.Fingerprint());
}

TEST(GraphTest, FingerprintPinnedValues) {
  // The fingerprint is a persisted-adjacent contract: PreparedQueryCache
  // keys and any future on-disk caches depend on it, so the FNV-1a mixing
  // must stay bit-stable across refactors (the UBSan audit of ci.sh
  // stage 7 covers the unsigned arithmetic). These constants are the
  // current hash values; a change here is a cache-invalidating break.
  EXPECT_EQ(MakeGraph({}, {}).Fingerprint(), 9354609568656401157ull);
  EXPECT_EQ(MakeGraph({0}, {}).Fingerprint(), 11689819895610196388ull);
  EXPECT_EQ(MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}, {0, 2}}).Fingerprint(),
            18088492265983465222ull);
  EXPECT_EQ(MakeGraph({3, 1, 4, 1}, {{0, 1}, {1, 2}, {2, 3}}).Fingerprint(),
            2498827455893402599ull);
}

TEST(GraphTest, FingerprintSeparatesDifferentGraphs) {
  Graph triangle = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}, {0, 2}});
  Graph path = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}});
  Graph relabeled = MakeGraph({0, 0, 1}, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_NE(triangle.Fingerprint(), path.Fingerprint());
  EXPECT_NE(triangle.Fingerprint(), relabeled.Fingerprint());
  // Size is mixed in before the arrays, so degenerate graphs separate too.
  Graph empty = MakeGraph({}, {});
  Graph lone = MakeGraph({0}, {});
  EXPECT_NE(empty.Fingerprint(), lone.Fingerprint());
}

TEST(InducedSubgraphTest, KeepsEdgesAndLabels) {
  // Path 0-1-2-3 with a chord 0-2.
  Graph g = MakeGraph({5, 6, 7, 8}, {{0, 1}, {1, 2}, {2, 3}, {0, 2}});
  auto sub = BuildInducedSubgraph(g, {0, 2, 3});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->graph.NumVertices(), 3u);
  EXPECT_EQ(sub->graph.NumEdges(), 2u);  // 0-2 and 2-3
  EXPECT_EQ(sub->graph.GetLabel(0), 5u);
  EXPECT_EQ(sub->graph.GetLabel(1), 7u);
  EXPECT_EQ(sub->graph.GetLabel(2), 8u);
  EXPECT_TRUE(sub->graph.HasEdge(0, 1));
  EXPECT_TRUE(sub->graph.HasEdge(1, 2));
  EXPECT_FALSE(sub->graph.HasEdge(0, 2));
  EXPECT_EQ(sub->original_id, (std::vector<VertexId>{0, 2, 3}));
}

TEST(InducedSubgraphTest, RejectsDuplicates) {
  Graph g = MakeGraph({0, 0}, {{0, 1}});
  EXPECT_FALSE(BuildInducedSubgraph(g, {0, 0}).ok());
}

TEST(InducedSubgraphTest, RejectsOutOfRange) {
  Graph g = MakeGraph({0, 0}, {{0, 1}});
  EXPECT_FALSE(BuildInducedSubgraph(g, {0, 7}).ok());
}

TEST(ConnectedComponentsTest, SplitsComponents) {
  Graph g = MakeGraph({0, 0, 0, 0, 0}, {{0, 1}, {1, 2}, {3, 4}});
  auto components = ConnectedComponents(g);
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0], (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(components[1], (std::vector<VertexId>{3, 4}));
}

TEST(ConnectedComponentsTest, IsolatedVertices) {
  Graph g = MakeGraph({0, 0, 0}, {});
  auto components = ConnectedComponents(g);
  EXPECT_EQ(components.size(), 3u);
}

}  // namespace
}  // namespace neursc
