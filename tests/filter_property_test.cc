// Property tests of candidate-filter invariants: pruning only ever
// shrinks candidate sets (more refinement rounds / larger profile radius
// never add candidates), and the homomorphism-safe mode is a superset of
// the isomorphism filter.

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/query_generator.h"
#include "matching/candidate_filter.h"

namespace neursc {
namespace {

struct Instance {
  Graph data;
  Graph query;
};

Instance MakeInstance(int seed) {
  auto data = GenerateErdosRenyiGraph(40, 100, 3, seed);
  EXPECT_TRUE(data.ok());
  QueryGeneratorConfig qc;
  qc.query_size = 4;
  qc.seed = seed + 77;
  QueryGenerator generator(*data, qc);
  auto query = generator.Generate();
  EXPECT_TRUE(query.ok());
  return {std::move(data).value(), std::move(query).value()};
}

bool IsSubsetOf(const std::vector<VertexId>& a,
                const std::vector<VertexId>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

class FilterMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(FilterMonotonicityTest, MoreRefinementNeverAddsCandidates) {
  Instance inst = MakeInstance(GetParam());
  CandidateFilterOptions weak;
  weak.refinement_rounds = 1;
  CandidateFilterOptions strong;
  strong.refinement_rounds = 4;
  auto cs_weak = ComputeCandidateSets(inst.query, inst.data, weak);
  auto cs_strong = ComputeCandidateSets(inst.query, inst.data, strong);
  ASSERT_TRUE(cs_weak.ok());
  ASSERT_TRUE(cs_strong.ok());
  for (size_t u = 0; u < inst.query.NumVertices(); ++u) {
    EXPECT_TRUE(
        IsSubsetOf(cs_strong->candidates[u], cs_weak->candidates[u]));
  }
}

TEST_P(FilterMonotonicityTest, GlobalRefinementSubsetOfLocal) {
  Instance inst = MakeInstance(GetParam());
  CandidateFilterOptions local;
  local.local_only = true;
  auto cs_local = ComputeCandidateSets(inst.query, inst.data, local);
  auto cs_full = ComputeCandidateSets(inst.query, inst.data);
  ASSERT_TRUE(cs_local.ok());
  ASSERT_TRUE(cs_full.ok());
  for (size_t u = 0; u < inst.query.NumVertices(); ++u) {
    EXPECT_TRUE(IsSubsetOf(cs_full->candidates[u], cs_local->candidates[u]));
  }
}

// Note: a radius-2 profile filter is NOT per-vertex stronger than the
// radius-1 filter (the merged <=r multiset lets 2-hop labels stand in for
// missing 1-hop labels), so no subset property is asserted across radii —
// only completeness, which CandidateCompletenessTest covers per radius.

TEST_P(FilterMonotonicityTest, HomomorphismModeIsSuperset) {
  Instance inst = MakeInstance(GetParam());
  CandidateFilterOptions iso;
  auto cs_iso = ComputeCandidateSets(inst.query, inst.data, iso);
  CandidateFilterOptions hom;
  hom.homomorphism_safe = true;
  auto cs_hom = ComputeCandidateSets(inst.query, inst.data, hom);
  ASSERT_TRUE(cs_iso.ok());
  ASSERT_TRUE(cs_hom.ok());
  for (size_t u = 0; u < inst.query.NumVertices(); ++u) {
    EXPECT_TRUE(IsSubsetOf(cs_iso->candidates[u], cs_hom->candidates[u]));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, FilterMonotonicityTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace neursc
