#include "eval/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "eval/reporting.h"

namespace neursc {
namespace {

TEST(QErrorTest, ExactEstimateIsOne) {
  EXPECT_DOUBLE_EQ(QError(100.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(QError(0.0, 0.0), 1.0);
}

TEST(QErrorTest, SymmetricOverUnder) {
  EXPECT_DOUBLE_EQ(QError(10.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(QError(100.0, 10.0), 10.0);
}

TEST(QErrorTest, ClampsBelowOne) {
  EXPECT_DOUBLE_EQ(QError(0.5, 0.2), 1.0);
  EXPECT_DOUBLE_EQ(QError(0.0, 5.0), 5.0);
}

TEST(SignedQErrorTest, SignEncodesDirection) {
  EXPECT_DOUBLE_EQ(SignedQError(10.0, 100.0), -10.0);
  EXPECT_DOUBLE_EQ(SignedQError(100.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(SignedQError(7.0, 7.0), 1.0);
}

TEST(BoxStatsTest, KnownFiveNumberSummary) {
  BoxStats s = ComputeBoxStats({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_EQ(s.count, 5u);
}

TEST(BoxStatsTest, EmptyInput) {
  BoxStats s = ComputeBoxStats({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.median, 0.0);
}

TEST(BoxStatsTest, SingleValue) {
  BoxStats s = ComputeBoxStats({7.0});
  EXPECT_DOUBLE_EQ(s.min, 7.0);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
}

TEST(PercentileTest, Interpolates) {
  EXPECT_DOUBLE_EQ(Percentile({0, 10}, 50), 5.0);
  EXPECT_DOUBLE_EQ(Percentile({0, 10}, 0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({0, 10}, 100), 10.0);
  EXPECT_DOUBLE_EQ(Percentile({3, 1, 2}, 50), 2.0);  // unsorted input
}

TEST(GeometricMeanTest, KnownValue) {
  EXPECT_NEAR(GeometricMean({1, 100}), 10.0, 1e-9);
  EXPECT_NEAR(GeometricMean({2, 8}), 4.0, 1e-9);
}

TEST(MeanTest, KnownValue) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(ReportingTest, FormatQ) {
  EXPECT_EQ(FormatQ(12345.0), "1.23e+04");
}

TEST(ReportingTest, BoxRowContainsAllFields) {
  BoxStats s = ComputeBoxStats({-4, -2, 1, 3, 9});
  std::string row = FormatBoxRow("TestMethod", s);
  EXPECT_NE(row.find("TestMethod"), std::string::npos);
  EXPECT_NE(row.find("min"), std::string::npos);
  EXPECT_NE(row.find("med"), std::string::npos);
  EXPECT_NE(row.find("n=5"), std::string::npos);
}


TEST(CalibrationTest, CountsDirections) {
  // Two underestimates, one overestimate, one exact.
  std::vector<double> signed_qerrors = {-4.0, -2.0, 8.0, 1.0};
  CalibrationStats stats = ComputeCalibration(signed_qerrors);
  EXPECT_EQ(stats.count, 4u);
  EXPECT_DOUBLE_EQ(stats.underestimate_fraction, 0.5);
  EXPECT_DOUBLE_EQ(stats.overestimate_fraction, 0.25);
  EXPECT_NEAR(stats.geomean_qerror, std::pow(4.0 * 2.0 * 8.0 * 1.0, 0.25),
              1e-9);
  EXPECT_DOUBLE_EQ(stats.max_qerror, 8.0);
}

TEST(CalibrationTest, EmptyInput) {
  CalibrationStats stats = ComputeCalibration({});
  EXPECT_EQ(stats.count, 0u);
  EXPECT_DOUBLE_EQ(stats.geomean_qerror, 1.0);
}

TEST(CalibrationTest, AllExact) {
  CalibrationStats stats = ComputeCalibration({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(stats.underestimate_fraction, 0.0);
  EXPECT_DOUBLE_EQ(stats.overestimate_fraction, 0.0);
  EXPECT_DOUBLE_EQ(stats.geomean_qerror, 1.0);
}


TEST(ReportingTest, PrintTableHandlesRaggedRows) {
  // Rows narrower/wider than the header must not crash or misindex.
  PrintTable({"a", "b", "c"},
             {{"1"}, {"1", "2", "3"}, {"1", "2", "3", "4"}});
}

TEST(ReportingTest, PrintSectionAndBoxSmoke) {
  PrintSection("smoke");
  PrintQErrorBox("method", {-2.0, 1.0, 3.0});
  PrintQErrorBox("empty", {});
}

TEST(PercentileTest, EmptyInputIsZero) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(GeometricMeanTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(GeometricMean({}), 0.0);
}

}  // namespace
}  // namespace neursc
