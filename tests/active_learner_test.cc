#include "core/active_learner.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/workload.h"
#include "graph/generators.h"
#include "graph/query_generator.h"

namespace neursc {
namespace {

struct TestEnv {
  Graph data;
  Workload workload;
  std::vector<Graph> pool;

  static TestEnv Build() {
    GeneratorConfig gen;
    gen.num_vertices = 200;
    gen.num_edges = 600;
    gen.num_labels = 5;
    gen.seed = 3;
    auto data = GeneratePowerLawGraph(gen);
    EXPECT_TRUE(data.ok());
    auto workload = BuildWorkload(*data, {3, 4}, 8);
    EXPECT_TRUE(workload.ok());
    QueryGeneratorConfig qc;
    qc.query_size = 4;
    qc.seed = 55;
    QueryGenerator generator(*data, qc);
    auto pool = generator.GenerateMany(15);
    EXPECT_TRUE(pool.ok());
    return TestEnv{std::move(data).value(), std::move(workload).value(),
                 std::move(pool).value()};
  }
};

NeurSCConfig TinyConfig() {
  NeurSCConfig config;
  config.west.intra_dim = 8;
  config.west.inter_dim = 8;
  config.west.predictor_hidden = 16;
  config.disc_hidden = 8;
  config.epochs = 2;
  config.pretrain_epochs = 1;
  return config;
}

TEST(ActiveLearnerTest, AcquiresFromPool) {
  TestEnv s = TestEnv::Build();
  std::unique_ptr<NeurSCEstimator> model;
  ActiveLearner::Options options;
  options.rounds = 2;
  options.acquisitions_per_round = 3;
  ActiveLearner learner(s.data,
                        MakeNeurSCHooks(&model, s.data, TinyConfig()),
                        options);
  size_t initial = s.workload.examples.size();
  auto labeled = learner.Run(s.workload.examples, s.pool);
  ASSERT_TRUE(labeled.ok()) << labeled.status().ToString();
  EXPECT_GT(labeled->size(), initial);
  EXPECT_LE(labeled->size(), initial + 6);
  // Acquired examples carry real oracle counts from the data graph.
  for (size_t i = initial; i < labeled->size(); ++i) {
    EXPECT_GE((*labeled)[i].count, 0.0);
  }
  // The final model is trained and usable.
  ASSERT_NE(model, nullptr);
  auto info = model->Estimate(s.pool[0]);
  ASSERT_TRUE(info.ok());
  EXPECT_GE(info->count, 0.0);
}

TEST(ActiveLearnerTest, ScoresCoverPool) {
  TestEnv s = TestEnv::Build();
  std::unique_ptr<NeurSCEstimator> model;
  ActiveLearner::Options options;
  options.rounds = 1;
  options.acquisitions_per_round = 2;
  ActiveLearner learner(s.data,
                        MakeNeurSCHooks(&model, s.data, TinyConfig()),
                        options);
  auto labeled = learner.Run(s.workload.examples, s.pool);
  ASSERT_TRUE(labeled.ok());
  EXPECT_EQ(learner.last_scores().size(), s.pool.size());
}

TEST(ActiveLearnerTest, RejectsEmptyLabeledSet) {
  TestEnv s = TestEnv::Build();
  std::unique_ptr<NeurSCEstimator> model;
  ActiveLearner learner(s.data,
                        MakeNeurSCHooks(&model, s.data, TinyConfig()),
                        ActiveLearner::Options());
  EXPECT_FALSE(learner.Run({}, s.pool).ok());
}

TEST(ActiveLearnerTest, EmptyPoolDegradesToPlainTraining) {
  TestEnv s = TestEnv::Build();
  std::unique_ptr<NeurSCEstimator> model;
  ActiveLearner learner(s.data,
                        MakeNeurSCHooks(&model, s.data, TinyConfig()),
                        ActiveLearner::Options());
  auto labeled = learner.Run(s.workload.examples, {});
  ASSERT_TRUE(labeled.ok());
  EXPECT_EQ(labeled->size(), s.workload.examples.size());
  ASSERT_NE(model, nullptr);
}

}  // namespace
}  // namespace neursc
