#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/graph_io.h"

namespace neursc {
namespace {

TEST(GeneratorsTest, PowerLawRespectsSize) {
  GeneratorConfig config;
  config.num_vertices = 500;
  config.num_edges = 1500;
  config.num_labels = 10;
  auto g = GeneratePowerLawGraph(config);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 500u);
  // Edge budget is approximate (dedup + connectification), but close.
  EXPECT_GT(g->NumEdges(), 1200u);
  EXPECT_LT(g->NumEdges(), 1800u);
  EXPECT_EQ(g->NumLabels(), 10u);
  EXPECT_TRUE(g->IsConnected());
}

TEST(GeneratorsTest, DeterministicGivenSeed) {
  GeneratorConfig config;
  config.num_vertices = 200;
  config.num_edges = 600;
  config.seed = 123;
  auto a = GeneratePowerLawGraph(config);
  auto b = GeneratePowerLawGraph(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(WriteGraphToString(*a), WriteGraphToString(*b));
}

TEST(GeneratorsTest, DifferentSeedsDiffer) {
  GeneratorConfig config;
  config.num_vertices = 200;
  config.num_edges = 600;
  config.seed = 1;
  auto a = GeneratePowerLawGraph(config);
  config.seed = 2;
  auto b = GeneratePowerLawGraph(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(WriteGraphToString(*a), WriteGraphToString(*b));
}

TEST(GeneratorsTest, PowerLawIsSkewed) {
  GeneratorConfig config;
  config.num_vertices = 1000;
  config.num_edges = 3000;
  config.degree_exponent = 2.2;
  auto g = GeneratePowerLawGraph(config);
  ASSERT_TRUE(g.ok());
  // Max degree should far exceed the average for a heavy-tailed graph.
  EXPECT_GT(g->MaxDegree(), 3 * static_cast<uint32_t>(g->AverageDegree()));
}

TEST(GeneratorsTest, LabelSkewProducesImbalance) {
  GeneratorConfig config;
  config.num_vertices = 2000;
  config.num_edges = 4000;
  config.num_labels = 10;
  config.label_skew = 1.2;
  auto g = GeneratePowerLawGraph(config);
  ASSERT_TRUE(g.ok());
  size_t max_freq = 0;
  size_t min_freq = g->NumVertices();
  for (size_t l = 0; l < g->NumLabels(); ++l) {
    size_t f = g->LabelFrequency(static_cast<Label>(l));
    max_freq = std::max(max_freq, f);
    min_freq = std::min(min_freq, f);
  }
  EXPECT_GT(max_freq, 4 * min_freq);
  EXPECT_GE(min_freq, 1u);  // every label used at least once
}

TEST(GeneratorsTest, RejectsDegenerateInput) {
  GeneratorConfig config;
  config.num_vertices = 1;
  EXPECT_FALSE(GeneratePowerLawGraph(config).ok());
  config.num_vertices = 10;
  config.num_labels = 0;
  EXPECT_FALSE(GeneratePowerLawGraph(config).ok());
}

TEST(GeneratorsTest, ErdosRenyiConnectedAndSized) {
  auto g = GenerateErdosRenyiGraph(300, 900, 5, 9);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 300u);
  EXPECT_TRUE(g->IsConnected());
}

TEST(DatasetProfilesTest, AllSevenPresent) {
  const auto& profiles = AllDatasetProfiles();
  ASSERT_EQ(profiles.size(), 7u);
  EXPECT_EQ(profiles[0].name, "Yeast");
  EXPECT_EQ(profiles[0].full_vertices, 3112u);
  EXPECT_EQ(profiles[0].num_labels, 71u);
  EXPECT_EQ(profiles[6].name, "Youtube");
}

TEST(DatasetProfilesTest, LookupByName) {
  auto p = FindDatasetProfile("DBLP");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->full_vertices, 317080u);
  EXPECT_FALSE(FindDatasetProfile("NoSuch").ok());
}

TEST(DatasetProfilesTest, GenerateDatasetMatchesScaledStats) {
  auto p = FindDatasetProfile("Yeast");
  ASSERT_TRUE(p.ok());
  auto g = GenerateDataset(*p, 0.25, 42);
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(static_cast<double>(g->NumVertices()), 3112 * 0.25, 32);
  // Average degree approximately preserved.
  EXPECT_NEAR(g->AverageDegree(), p->avg_degree, p->avg_degree * 0.4);
  EXPECT_TRUE(g->IsConnected());
}

}  // namespace
}  // namespace neursc
