// Randomized end-to-end stress: community-structured data graphs, mixed
// workloads (including zero-count queries), dedup on, full adversarial
// training, then invariant checks over every estimate. Catches crashes,
// non-finite numerics and Status misuse across the whole pipeline.

#include <cmath>

#include <gtest/gtest.h>

#include "core/neursc.h"
#include "eval/metrics.h"
#include "eval/workload.h"
#include "graph/generators.h"
#include "matching/enumeration.h"

namespace neursc {
namespace {

class PipelineStressTest : public ::testing::TestWithParam<int> {};

TEST_P(PipelineStressTest, FullPipelineInvariants) {
  const int seed = GetParam();
  GeneratorConfig gen;
  gen.num_vertices = 300 + 40 * seed;
  gen.num_edges = 3 * gen.num_vertices;
  gen.num_labels = 4 + seed % 5;
  gen.num_communities = 4;
  gen.seed = 100 + seed;
  auto data = GeneratePowerLawGraph(gen);
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(data->IsConnected());

  WorkloadOptions wopts;
  wopts.seed = seed;
  wopts.deduplicate_isomorphic = true;
  wopts.unmatchable_fraction = 0.3;
  auto workload = BuildWorkload(*data, {3, 4}, 8, wopts);
  ASSERT_TRUE(workload.ok());
  ASSERT_GE(workload->examples.size(), 8u);

  NeurSCConfig config;
  config.west.intra_dim = 8;
  config.west.inter_dim = 8;
  config.west.predictor_hidden = 16;
  config.disc_hidden = 8;
  config.epochs = 4;
  config.pretrain_epochs = 2;
  config.seed = seed;
  NeurSCEstimator estimator(*data, config);
  auto stats = estimator.Train(workload->examples);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // Zero-count examples are skipped at extraction (early termination), so
  // used + skipped == total.
  EXPECT_EQ(stats->examples_used + stats->examples_skipped,
            workload->examples.size());
  for (double loss : stats->epoch_mean_loss) {
    EXPECT_TRUE(std::isfinite(loss));
  }

  for (const auto& example : workload->examples) {
    auto info = estimator.Estimate(example.query);
    ASSERT_TRUE(info.ok());
    EXPECT_TRUE(std::isfinite(info->count));
    EXPECT_GE(info->count, 0.0);
    if (info->early_terminated) {
      // Early termination must be sound: the exact count is 0.
      EnumerationOptions eopts;
      eopts.max_matches = 1;
      auto counted = CountSubgraphIsomorphisms(example.query, *data, eopts);
      ASSERT_TRUE(counted.ok());
      EXPECT_EQ(counted->count, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineStressTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace neursc
