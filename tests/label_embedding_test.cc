#include "baselines/label_embedding.h"

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/lss.h"
#include "graph/generators.h"
#include "test_util.h"

namespace neursc {
namespace {

using testing_util::MakeGraph;

double Distance(const float* a, const float* b, size_t dim) {
  double s = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

TEST(LabelEmbeddingTest, DimensionsClampToLabelCount) {
  Graph g = MakeGraph({0, 1, 0}, {{0, 1}, {1, 2}});
  LabelEmbedding embedding(g, 16);
  EXPECT_EQ(embedding.num_labels(), 2u);
  EXPECT_LE(embedding.dim(), 2u);
}

TEST(LabelEmbeddingTest, OutOfRangeLabelIsZero) {
  Graph g = MakeGraph({0, 1}, {{0, 1}});
  LabelEmbedding embedding(g, 2);
  const float* v = embedding.Vector(99);
  for (size_t i = 0; i < embedding.dim(); ++i) EXPECT_FLOAT_EQ(v[i], 0.0f);
}

TEST(LabelEmbeddingTest, SameProfileLabelsCloserThanDifferentOnes) {
  // Labels 0 and 1 have identical co-occurrence profiles (both only touch
  // the hub label 2); label 3 lives in a separate block (only touches 4).
  // The spectral embedding must place 0 near 1 and far from 3.
  GraphBuilder b;
  for (int i = 0; i < 20; ++i) {
    VertexId x = b.AddVertex(0);
    VertexId hub = b.AddVertex(2);
    VertexId y = b.AddVertex(1);
    EXPECT_TRUE(b.AddEdge(x, hub).ok());
    EXPECT_TRUE(b.AddEdge(y, hub).ok());
  }
  for (int i = 0; i < 20; ++i) {
    VertexId x = b.AddVertex(3);
    VertexId y = b.AddVertex(4);
    EXPECT_TRUE(b.AddEdge(x, y).ok());
  }
  Graph g = std::move(b.Build()).value();
  LabelEmbedding embedding(g, 4);
  size_t dim = embedding.dim();
  double same_profile =
      Distance(embedding.Vector(0), embedding.Vector(1), dim);
  double across = Distance(embedding.Vector(0), embedding.Vector(3), dim);
  EXPECT_LT(same_profile, across);
}

TEST(LabelEmbeddingTest, DeterministicGivenSeed) {
  auto g = GenerateErdosRenyiGraph(100, 300, 6, 5);
  ASSERT_TRUE(g.ok());
  LabelEmbedding a(*g, 4, 30, 9);
  LabelEmbedding c(*g, 4, 30, 9);
  EXPECT_LT(Matrix::MaxAbsDiff(a.vectors(), c.vectors()), 1e-6f);
}

TEST(LssFeatureModeTest, EmbeddingModeTrainsAndEstimates) {
  auto data = GenerateErdosRenyiGraph(80, 240, 4, 7);
  ASSERT_TRUE(data.ok());
  LssEstimator::Options options;
  options.feature_mode = LssEstimator::FeatureMode::kLabelEmbedding;
  options.label_embedding_dim = 4;
  options.hidden_dim = 16;
  options.attention_dim = 16;
  options.epochs = 3;
  LssEstimator lss(*data, options);
  Graph query = MakeGraph({0, 1}, {{0, 1}});
  auto est = lss.EstimateCount(query);
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(std::isfinite(*est));
  std::vector<TrainingExample> train;
  train.push_back(TrainingExample{query, 5.0});
  EXPECT_TRUE(lss.Train(train).ok());
}

}  // namespace
}  // namespace neursc
