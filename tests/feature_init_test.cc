#include "core/feature_init.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace neursc {
namespace {

using testing_util::MakeGraph;

TEST(BitsForTest, KnownValues) {
  EXPECT_EQ(BitsFor(0), 1u);
  EXPECT_EQ(BitsFor(1), 1u);
  EXPECT_EQ(BitsFor(2), 2u);
  EXPECT_EQ(BitsFor(3), 2u);
  EXPECT_EQ(BitsFor(4), 3u);
  EXPECT_EQ(BitsFor(255), 8u);
  EXPECT_EQ(BitsFor(256), 9u);
}

TEST(FeatureInitTest, DimensionFormula) {
  FeatureInitializer f(/*degree_bits=*/4, /*label_bits=*/3, /*num_hops=*/2);
  EXPECT_EQ(f.FeatureDim(), 3u * 7u);
}

TEST(FeatureInitTest, SizedFromDataGraph) {
  Graph data = MakeGraph({0, 1, 2, 3, 4, 5, 6, 7},
                         {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}});
  // Max degree 5 -> 3 bits; 8 labels -> max label 7 -> 3 bits.
  FeatureInitializer f(data, 1);
  EXPECT_EQ(f.degree_bits(), 3u);
  EXPECT_EQ(f.label_bits(), 3u);
  EXPECT_EQ(f.FeatureDim(), 2u * 6u);
}

TEST(FeatureInitTest, OwnBlockEncodesDegreeAndLabel) {
  // Path: v0(l=2)-v1(l=5)-v2(l=1).
  Graph g = MakeGraph({2, 5, 1}, {{0, 1}, {1, 2}});
  FeatureInitializer f(/*degree_bits=*/3, /*label_bits=*/3, /*num_hops=*/0);
  Matrix x = f.Compute(g);
  ASSERT_EQ(x.cols(), 6u);
  // v1: degree 2 -> bits 010 (LSB first: 0,1,0); label 5 -> 101 (1,0,1).
  EXPECT_FLOAT_EQ(x.at(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(x.at(1, 1), 1.0f);
  EXPECT_FLOAT_EQ(x.at(1, 2), 0.0f);
  EXPECT_FLOAT_EQ(x.at(1, 3), 1.0f);
  EXPECT_FLOAT_EQ(x.at(1, 4), 0.0f);
  EXPECT_FLOAT_EQ(x.at(1, 5), 1.0f);
}

TEST(FeatureInitTest, SaturatesOutOfRangeValues) {
  Graph g = MakeGraph({7, 0, 0, 0}, {{0, 1}, {0, 2}, {0, 3}});
  // Only 1 bit for everything: degree 3 and label 7 saturate to 1.
  FeatureInitializer f(1, 1, 0);
  Matrix x = f.Compute(g);
  EXPECT_FLOAT_EQ(x.at(0, 0), 1.0f);  // degree
  EXPECT_FLOAT_EQ(x.at(0, 1), 1.0f);  // label
}

TEST(FeatureInitTest, OneHopMeanPooling) {
  // Star center v0 with leaves labeled 1 and 3; degree bits 2, label bits 2.
  Graph g = MakeGraph({0, 1, 3}, {{0, 1}, {0, 2}});
  FeatureInitializer f(2, 2, 1);
  Matrix x = f.Compute(g);
  ASSERT_EQ(x.cols(), 8u);
  // Hop-1 block of v0 = mean of leaves' (degree=1 -> 10; label bits).
  // leaf degrees: 1 -> bits (1,0). labels: 1 -> (1,0); 3 -> (1,1).
  EXPECT_FLOAT_EQ(x.at(0, 4), 1.0f);   // mean degree bit0 = 1
  EXPECT_FLOAT_EQ(x.at(0, 5), 0.0f);   // mean degree bit1 = 0
  EXPECT_FLOAT_EQ(x.at(0, 6), 1.0f);   // label bit0: both 1
  EXPECT_FLOAT_EQ(x.at(0, 7), 0.5f);   // label bit1: one of two
}

TEST(FeatureInitTest, TwoHopRings) {
  // Path v0-v1-v2: v0's 2-hop ring is {v2}.
  Graph g = MakeGraph({0, 0, 3}, {{0, 1}, {1, 2}});
  FeatureInitializer f(2, 2, 2);
  Matrix x = f.Compute(g);
  ASSERT_EQ(x.cols(), 12u);
  // v0 hop2 block: v2 has degree 1 (1,0) and label 3 (1,1).
  EXPECT_FLOAT_EQ(x.at(0, 8), 1.0f);
  EXPECT_FLOAT_EQ(x.at(0, 9), 0.0f);
  EXPECT_FLOAT_EQ(x.at(0, 10), 1.0f);
  EXPECT_FLOAT_EQ(x.at(0, 11), 1.0f);
}

TEST(FeatureInitTest, EmptyRingStaysZero) {
  Graph g = MakeGraph({0, 0}, {{0, 1}});
  FeatureInitializer f(2, 2, 2);  // 2-hop ring of both vertices is empty
  Matrix x = f.Compute(g);
  for (size_t c = 8; c < 12; ++c) {
    EXPECT_FLOAT_EQ(x.at(0, c), 0.0f);
    EXPECT_FLOAT_EQ(x.at(1, c), 0.0f);
  }
}

TEST(FeatureInitTest, FeaturesAreBinaryOrAverages) {
  Graph g = MakeGraph({0, 1, 2, 1}, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  FeatureInitializer f(g, 1);
  Matrix x = f.Compute(g);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_GE(x.data()[i], 0.0f);
    EXPECT_LE(x.data()[i], 1.0f);
  }
}

}  // namespace
}  // namespace neursc
