#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include "nn/tape.h"

namespace neursc {
namespace {

TEST(AdamTest, MinimizesQuadratic) {
  // f(x) = (x - 3)^2, start at 10.
  Parameter x(Matrix::Scalar(10.0f));
  AdamOptimizer::Options opts;
  opts.learning_rate = 0.1;
  AdamOptimizer optimizer({&x}, opts);
  for (int i = 0; i < 500; ++i) {
    optimizer.ZeroGrad();
    Tape tape;
    Var v = tape.Leaf(&x);
    Var diff = tape.Sub(v, tape.Constant(Matrix::Scalar(3.0f)));
    Var loss = tape.Mul(diff, diff);
    tape.Backward(loss);
    optimizer.Step();
  }
  EXPECT_NEAR(x.value.scalar(), 3.0f, 1e-2);
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  Parameter x(Matrix::Scalar(1.0f));
  AdamOptimizer::Options opts;
  opts.learning_rate = 0.01;
  opts.weight_decay = 1.0;
  AdamOptimizer optimizer({&x}, opts);
  // Zero gradient; only decay drives the update.
  for (int i = 0; i < 100; ++i) {
    optimizer.ZeroGrad();
    optimizer.Step();
  }
  EXPECT_LT(std::abs(x.value.scalar()), 1.0f);
}

TEST(AdamTest, ClipGradNorm) {
  Parameter a(Matrix::Scalar(0.0f));
  Parameter b(Matrix::Scalar(0.0f));
  a.grad = Matrix::Scalar(3.0f);
  b.grad = Matrix::Scalar(4.0f);
  AdamOptimizer optimizer({&a, &b});
  double pre = optimizer.ClipGradNorm(1.0);
  EXPECT_NEAR(pre, 5.0, 1e-6);
  double norm = std::sqrt(a.grad.scalar() * a.grad.scalar() +
                          b.grad.scalar() * b.grad.scalar());
  EXPECT_NEAR(norm, 1.0, 1e-5);
}

TEST(AdamTest, ClipIsNoOpBelowThreshold) {
  Parameter a(Matrix::Scalar(0.0f));
  a.grad = Matrix::Scalar(0.5f);
  AdamOptimizer optimizer({&a});
  optimizer.ClipGradNorm(1.0);
  EXPECT_FLOAT_EQ(a.grad.scalar(), 0.5f);
}

TEST(SgdTest, MinimizesQuadratic) {
  Parameter x(Matrix::Scalar(5.0f));
  SgdOptimizer optimizer({&x}, 0.1);
  for (int i = 0; i < 200; ++i) {
    optimizer.ZeroGrad();
    Tape tape;
    Var v = tape.Leaf(&x);
    Var loss = tape.Mul(v, v);
    tape.Backward(loss);
    optimizer.Step();
  }
  EXPECT_NEAR(x.value.scalar(), 0.0f, 1e-3);
}

TEST(ClampParametersTest, EnforcesBox) {
  Rng rng(1);
  Parameter p(Matrix::Uniform(4, 4, -1.0f, 1.0f, &rng));
  ClampParameters({&p}, 0.01f);
  for (size_t i = 0; i < p.value.size(); ++i) {
    EXPECT_LE(std::abs(p.value.data()[i]), 0.01f);
  }
}

TEST(AdamTest, StepCountBiasCorrection) {
  // First step with gradient g moves by ~lr regardless of g's magnitude
  // (Adam property), direction matches -sign(g).
  Parameter x(Matrix::Scalar(0.0f));
  AdamOptimizer::Options opts;
  opts.learning_rate = 0.5;
  AdamOptimizer optimizer({&x}, opts);
  x.grad = Matrix::Scalar(1e-3f);
  optimizer.Step();
  EXPECT_NEAR(x.value.scalar(), -0.5f, 1e-2);
}

}  // namespace
}  // namespace neursc
