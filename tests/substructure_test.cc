#include "matching/substructure.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/query_generator.h"
#include "matching/enumeration.h"
#include "test_util.h"

namespace neursc {
namespace {

using testing_util::MakeGraph;

TEST(SubstructureTest, EarlyTerminateOnEmptyCandidates) {
  Graph query = MakeGraph({9, 9}, {{0, 1}});
  Graph data = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}});
  auto result = ExtractSubstructures(query, data);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->early_terminate);
  EXPECT_TRUE(result->substructures.empty());
}

TEST(SubstructureTest, EarlyTerminateWhenUnionTooSmall) {
  // Query needs 3 vertices but only 2 data vertices can ever qualify.
  Graph query = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}});
  Graph data = MakeGraph({0, 0, 1, 1}, {{0, 1}, {1, 2}, {2, 3}});
  auto result = ExtractSubstructures(query, data);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->early_terminate);
}

TEST(SubstructureTest, ExtractsMatchingRegion) {
  // Data contains a labeled triangle (matching the query) plus an
  // unrelated differently-labeled region.
  Graph query = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}, {0, 2}});
  Graph data = MakeGraph({0, 1, 2, 5, 5, 5},
                         {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {2, 3}});
  auto result = ExtractSubstructures(query, data);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->early_terminate);
  ASSERT_EQ(result->substructures.size(), 1u);
  const auto& sub = result->substructures[0];
  EXPECT_EQ(sub.graph.NumVertices(), 3u);
  EXPECT_EQ(sub.graph.NumEdges(), 3u);
  // Candidate sets localize correctly.
  ASSERT_EQ(sub.local_candidates.size(), 3u);
  for (size_t u = 0; u < 3; ++u) {
    ASSERT_EQ(sub.local_candidates[u].size(), 1u);
    EXPECT_EQ(sub.graph.GetLabel(sub.local_candidates[u][0]),
              query.GetLabel(static_cast<VertexId>(u)));
  }
}

TEST(SubstructureTest, SkipsComponentsSmallerThanQuery) {
  // Two disjoint candidate regions; one is a single vertex (too small).
  Graph query = MakeGraph({0, 0}, {{0, 1}});
  Graph data = MakeGraph({0, 0, 0, 1, 0}, {{0, 1}, {3, 4}});
  // v2 is isolated with label 0: local pruning for query vertices of
  // degree 1 requires a 0-labeled neighbor, so v2 and v4 drop out anyway;
  // the surviving component is {v0, v1}.
  auto result = ExtractSubstructures(query, data);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->substructures.size(), 1u);
  EXPECT_EQ(result->substructures[0].graph.NumVertices(), 2u);
}

TEST(SubstructureTest, OriginalIdsMapBack) {
  Graph query = MakeGraph({1, 1}, {{0, 1}});
  Graph data = MakeGraph({0, 1, 1, 0}, {{0, 1}, {1, 2}, {2, 3}});
  auto result = ExtractSubstructures(query, data);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->substructures.size(), 1u);
  const auto& sub = result->substructures[0];
  for (size_t i = 0; i < sub.graph.NumVertices(); ++i) {
    EXPECT_EQ(sub.graph.GetLabel(static_cast<VertexId>(i)),
              data.GetLabel(sub.original_id[i]));
  }
}

TEST(SubstructureTest, BuildFromExplicitVertices) {
  Graph query = MakeGraph({0, 0}, {{0, 1}});
  Graph data = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}});
  auto cs = ComputeCandidateSets(query, data);
  ASSERT_TRUE(cs.ok());
  auto result = BuildSubstructuresFromVertices(query, data, {0, 1}, *cs);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->substructures.size(), 1u);
  EXPECT_EQ(result->substructures[0].graph.NumVertices(), 2u);
}


TEST(SubstructureTest, StatsReflectExtraction) {
  Graph query = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}, {0, 2}});
  Graph data = MakeGraph({0, 1, 2, 5, 5, 5},
                         {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {2, 3}});
  auto result = ExtractSubstructures(query, data);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.candidate_union_size, 3u);
  EXPECT_EQ(result->stats.total_candidates, 3u);
  EXPECT_EQ(result->stats.components_total, 1u);
  EXPECT_EQ(result->stats.components_kept, 1u);
  EXPECT_EQ(result->stats.largest_substructure_vertices, 3u);
}

// Property: substructures jointly contain every embedding — counting the
// query on each substructure and summing equals the count on the full
// graph (embeddings never span substructures because substructures are
// connected components of the candidate-induced region).
class SubstructureCoverageTest : public ::testing::TestWithParam<int> {};

TEST_P(SubstructureCoverageTest, SubstructureCountsSumToTotal) {
  auto data = GenerateErdosRenyiGraph(30, 70, 3, GetParam());
  ASSERT_TRUE(data.ok());
  QueryGeneratorConfig qc;
  qc.query_size = 4;
  qc.seed = GetParam() + 11;
  QueryGenerator generator(*data, qc);
  auto query = generator.Generate();
  if (!query.ok()) GTEST_SKIP();

  auto total = CountSubgraphIsomorphisms(*query, *data);
  ASSERT_TRUE(total.ok());

  auto extraction = ExtractSubstructures(*query, *data);
  ASSERT_TRUE(extraction.ok());
  if (extraction->early_terminate) {
    EXPECT_EQ(total->count, 0u);
    return;
  }
  uint64_t sum = 0;
  for (const auto& sub : extraction->substructures) {
    auto c = CountSubgraphIsomorphisms(*query, sub.graph);
    ASSERT_TRUE(c.ok());
    sum += c->count;
  }
  EXPECT_EQ(sum, total->count);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, SubstructureCoverageTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace neursc
