#include "matching/candidate_filter.h"

#include <set>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/query_generator.h"
#include "matching/enumeration.h"
#include "test_util.h"

namespace neursc {
namespace {

using testing_util::MakeGraph;

TEST(CandidateFilterTest, LabelMismatchEmpties) {
  Graph query = MakeGraph({5}, {});
  Graph data = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}});
  auto cs = ComputeCandidateSets(query, data);
  ASSERT_TRUE(cs.ok());
  EXPECT_TRUE(cs->AnyEmpty());
}

TEST(CandidateFilterTest, LocalPruningUsesNeighborLabels) {
  // Query: center labeled 0 with neighbors labeled 1 and 2.
  Graph query = MakeGraph({0, 1, 2}, {{0, 1}, {0, 2}});
  // Data: v0 (label 0) has neighbors labeled 1,2 -> candidate of u0.
  //       v3 (label 0) has neighbors labeled 1,1 -> not a candidate.
  Graph data = MakeGraph({0, 1, 2, 0, 1, 1},
                         {{0, 1}, {0, 2}, {3, 4}, {3, 5}});
  CandidateFilterOptions options;
  options.local_only = true;
  auto cs = ComputeCandidateSets(query, data, options);
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(cs->candidates[0], (std::vector<VertexId>{0}));
}

TEST(CandidateFilterTest, DegreeFilterApplies) {
  Graph query = MakeGraph({0, 1, 1}, {{0, 1}, {0, 2}});  // center degree 2
  Graph data = MakeGraph({0, 1, 0, 1, 1}, {{0, 1}, {2, 3}, {2, 4}});
  CandidateFilterOptions options;
  options.local_only = true;
  auto cs = ComputeCandidateSets(query, data, options);
  ASSERT_TRUE(cs.ok());
  // v0 has degree 1 < 2, only v2 qualifies for u0.
  EXPECT_EQ(cs->candidates[0], (std::vector<VertexId>{2}));
}

TEST(CandidateFilterTest, GlobalRefinementPrunes) {
  // Query: path u0(A)-u1(B)-u2(C).
  Graph query = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}});
  // Data: v0(A)-v1(B)-v2(C) is a real path.
  //       v3(B) has neighbors v4(A) and v5(C)... but v4 lacks a B neighbor
  //       with a C neighbor? Build: v4(A)-v3(B), v3(B)-v5(C): also real.
  //       v6(B) with only an A neighbor v7 -> locally plausible for u1
  //       only if it has both A and C neighbors; it doesn't, so local
  //       pruning already removes it. For a pure *global* case: v8(B) with
  //       neighbors v9(A) and v10(C), where v10 has no B neighbor other
  //       than v8 — still fine. Instead make v9's profile wrong at
  //       distance 2: global refinement with radius 1 profiles catches
  //       cases where the *neighbor* fails membership. v11(A) adjacent to
  //       v12(B), v12 adjacent to nothing labeled C: local pruning drops
  //       v12 from CS(u1), and refinement must then drop v11 from CS(u0).
  Graph data = MakeGraph({0, 1, 2, 1, 0, 2, 0, 1},
                         {{0, 1},
                          {1, 2},
                          {4, 3},
                          {3, 5},
                          {6, 7}});
  auto cs = ComputeCandidateSets(query, data);
  ASSERT_TRUE(cs.ok());
  // u0 (label A): v0 and v4 survive; v6's only neighbor v7 (B) was locally
  // pruned from CS(u1) (no C neighbor), so refinement removes v6.
  EXPECT_EQ(cs->candidates[0], (std::vector<VertexId>{0, 4}));
  EXPECT_EQ(cs->candidates[1], (std::vector<VertexId>{1, 3}));
  EXPECT_EQ(cs->candidates[2], (std::vector<VertexId>{2, 5}));
}

TEST(CandidateFilterTest, UnionHelpers) {
  Graph query = MakeGraph({0, 0}, {{0, 1}});
  Graph data = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}});
  auto cs = ComputeCandidateSets(query, data);
  ASSERT_TRUE(cs.ok());
  EXPECT_FALSE(cs->AnyEmpty());
  EXPECT_EQ(cs->UnionSize(), cs->Union().size());
  EXPECT_GE(cs->TotalSize(), cs->UnionSize());
}

// Definition 2 (complete candidate set) as a property: for every embedding
// found by exact enumeration, every (u, v) pair must be inside CS(u). Swept
// over random graphs and both radius settings.
class CandidateCompletenessTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CandidateCompletenessTest, ContainsAllEmbeddingVertices) {
  auto [seed, radius] = GetParam();
  auto data = GenerateErdosRenyiGraph(24, 60, 3, seed);
  ASSERT_TRUE(data.ok());
  QueryGeneratorConfig qc;
  qc.query_size = 3 + seed % 2;
  qc.seed = seed + 100;
  QueryGenerator generator(*data, qc);
  auto query = generator.Generate();
  if (!query.ok()) GTEST_SKIP();

  CandidateFilterOptions options;
  options.profile_radius = radius;
  auto cs = ComputeCandidateSets(*query, *data, options);
  ASSERT_TRUE(cs.ok());

  EnumerationOptions eopts;
  eopts.collect_embeddings = 100000;
  auto counted = CountSubgraphIsomorphisms(*query, *data, eopts);
  ASSERT_TRUE(counted.ok());
  EXPECT_GE(counted->count, 1u);  // query was extracted from data

  for (const auto& embedding : counted->embeddings) {
    for (size_t u = 0; u < embedding.size(); ++u) {
      const auto& candidates = cs->candidates[u];
      EXPECT_TRUE(std::binary_search(candidates.begin(), candidates.end(),
                                     embedding[u]))
          << "vertex " << embedding[u] << " missing from CS(" << u << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, CandidateCompletenessTest,
    ::testing::Combine(::testing::Range(1, 13), ::testing::Values(1, 2)));

// The filter must never *increase* enumeration results: counting with
// filtered candidates equals brute-force counting.
TEST(CandidateFilterTest, FilteredEnumerationMatchesBruteForce) {
  auto data = GenerateErdosRenyiGraph(14, 30, 2, 77);
  ASSERT_TRUE(data.ok());
  QueryGeneratorConfig qc;
  qc.query_size = 3;
  qc.seed = 5;
  QueryGenerator generator(*data, qc);
  auto query = generator.Generate();
  ASSERT_TRUE(query.ok());
  auto counted = CountSubgraphIsomorphisms(*query, *data);
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted->count, testing_util::BruteForceCount(*query, *data));
}

}  // namespace
}  // namespace neursc
