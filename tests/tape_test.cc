#include "nn/tape.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"

namespace neursc {
namespace {

using testing_util::MaxGradCheckError;

// Builds a parameter with reproducible random contents away from
// non-differentiable kinks (relu at 0 etc. is avoided by the offsets used
// in individual tests).
Parameter RandomParam(size_t rows, size_t cols, uint64_t seed,
                      float lo = -1.0f, float hi = 1.0f) {
  Rng rng(seed);
  return Parameter(Matrix::Uniform(rows, cols, lo, hi, &rng));
}

TEST(TapeTest, ConstantHasNoGradient) {
  Tape tape;
  Var c = tape.Constant(Matrix::Scalar(3.0f));
  EXPECT_FLOAT_EQ(tape.Value(c).scalar(), 3.0f);
  Var d = tape.Scale(c, 2.0f);
  EXPECT_FLOAT_EQ(tape.Value(d).scalar(), 6.0f);
}

TEST(TapeTest, LeafAccumulatesIntoParameter) {
  Parameter p(Matrix::Scalar(2.0f));
  Tape tape;
  Var x = tape.Leaf(&p);
  Var y = tape.Scale(x, 3.0f);
  tape.Backward(y);
  EXPECT_FLOAT_EQ(p.grad.scalar(), 3.0f);
}

TEST(TapeTest, GradientSinkMatchesDirectAccumulation) {
  // The same graph run twice: once writing Parameter::grad directly, once
  // through a GradientSink that is reduced afterwards. The results must be
  // bit-identical — this equivalence is what lets training route parallel
  // backward passes through per-tape sinks.
  Parameter a = RandomParam(3, 4, 61);
  Parameter b = RandomParam(4, 2, 62);
  auto build = [&](Tape* tape) {
    Var x = tape->Leaf(&a);
    Var y = tape->Leaf(&b);
    // Reuse x so one parameter accumulates more than once within the tape.
    Var z = tape->MatMul(tape->Add(x, x), y);
    return tape->ReduceSum(z);
  };
  {
    Tape tape;
    tape.Backward(build(&tape));
  }
  Matrix direct_a = a.grad;
  Matrix direct_b = b.grad;
  a.grad.ScaleInPlace(0.0f);
  b.grad.ScaleInPlace(0.0f);
  {
    Tape tape;
    GradientSink sink;
    tape.set_gradient_sink(&sink);
    EXPECT_TRUE(sink.empty());
    tape.Backward(build(&tape));
    EXPECT_EQ(sink.size(), 2u);
    // Grads stay buffered until the reduction.
    EXPECT_FLOAT_EQ(a.grad.Norm(), 0.0f);
    sink.ReduceIntoParameters();
  }
  EXPECT_EQ(Matrix::MaxAbsDiff(a.grad, direct_a), 0.0f);
  EXPECT_EQ(Matrix::MaxAbsDiff(b.grad, direct_b), 0.0f);
}

TEST(TapeTest, GradientSinkClearAndReuse) {
  Parameter p(Matrix::Scalar(2.0f));
  GradientSink sink;
  Tape tape;
  tape.set_gradient_sink(&sink);
  Var y = tape.Scale(tape.Leaf(&p), 3.0f);
  tape.Backward(y);
  sink.Clear();
  EXPECT_TRUE(sink.empty());
  sink.ReduceIntoParameters();  // no-op after Clear
  EXPECT_FLOAT_EQ(p.grad.scalar(), 0.0f);
}

TEST(TapeTest, ReserveNodesDoesNotAffectResults) {
  Parameter p(Matrix::Scalar(3.0f));
  Tape tape;
  tape.ReserveNodes(64);
  Var x = tape.Leaf(&p);
  Var y = tape.Add(tape.Mul(x, x), x);
  tape.Backward(y);
  EXPECT_FLOAT_EQ(p.grad.scalar(), 7.0f);
  EXPECT_GE(tape.NumNodes(), 3u);
}

TEST(TapeTest, BackwardThroughSharedSubexpression) {
  // y = x*x + x  => dy/dx = 2x + 1.
  Parameter p(Matrix::Scalar(3.0f));
  Tape tape;
  Var x = tape.Leaf(&p);
  Var y = tape.Add(tape.Mul(x, x), x);
  tape.Backward(y);
  EXPECT_FLOAT_EQ(p.grad.scalar(), 7.0f);
}

TEST(TapeTest, GradCheckMatMul) {
  Parameter a = RandomParam(3, 4, 1);
  Parameter b = RandomParam(4, 2, 2);
  auto loss = [&]() {
    Tape tape;
    Var out = tape.MatMul(tape.Leaf(&a), tape.Leaf(&b));
    Var l = tape.ReduceSum(tape.Mul(out, out));
    return static_cast<double>(tape.Value(l).scalar());
  };
  {
    Tape tape;
    Var out = tape.MatMul(tape.Leaf(&a), tape.Leaf(&b));
    Var l = tape.ReduceSum(tape.Mul(out, out));
    tape.Backward(l);
  }
  EXPECT_LT(MaxGradCheckError({&a, &b}, loss), 2e-2);
}

TEST(TapeTest, GradCheckAddSubScaleBroadcast) {
  Parameter x = RandomParam(3, 4, 3);
  Parameter bias = RandomParam(1, 4, 4);
  auto build = [&](Tape* tape) {
    Var vx = tape->Leaf(&x);
    Var vb = tape->Leaf(&bias);
    Var sum = tape->AddRowBroadcast(vx, vb);
    Var scaled = tape->Scale(sum, 1.7f);
    Var diff = tape->Sub(scaled, vx);
    return tape->ReduceSum(tape->Mul(diff, diff));
  };
  auto loss = [&]() {
    Tape tape;
    return static_cast<double>(tape.Value(build(&tape)).scalar());
  };
  {
    Tape tape;
    tape.Backward(build(&tape));
  }
  EXPECT_LT(MaxGradCheckError({&x, &bias}, loss), 2e-2);
}

// Pointwise nonlinearities, checked away from their kinks.
struct PointwiseCase {
  const char* name;
  std::function<Var(Tape*, Var)> op;
};

class PointwiseGradTest : public ::testing::TestWithParam<int> {};

TEST_P(PointwiseGradTest, GradCheck) {
  static const PointwiseCase kCases[] = {
      {"relu", [](Tape* t, Var v) { return t->Relu(v); }},
      {"leaky", [](Tape* t, Var v) { return t->LeakyRelu(v, 0.2f); }},
      {"sigmoid", [](Tape* t, Var v) { return t->Sigmoid(v); }},
      {"tanh", [](Tape* t, Var v) { return t->Tanh(v); }},
      {"exp", [](Tape* t, Var v) { return t->Exp(v); }},
      {"log", [](Tape* t, Var v) { return t->Log(t->Exp(v)); }},
      {"rowsoftmax", [](Tape* t, Var v) { return t->RowSoftmax(v); }},
  };
  const auto& c = kCases[GetParam()];
  SCOPED_TRACE(c.name);
  // Offset inputs away from 0 so relu kinks are not straddled by the
  // finite-difference step.
  Parameter x = RandomParam(4, 3, 10 + GetParam(), 0.1f, 1.2f);
  auto build = [&](Tape* tape) {
    Var v = tape->Leaf(&x);
    Var y = c.op(tape, v);
    // Quadratic head makes the loss sensitive to every coordinate.
    return tape->ReduceSum(tape->Mul(y, y));
  };
  auto loss = [&]() {
    Tape tape;
    return static_cast<double>(tape.Value(build(&tape)).scalar());
  };
  {
    Tape tape;
    tape.Backward(build(&tape));
  }
  EXPECT_LT(MaxGradCheckError({&x}, loss), 2e-2);
}

INSTANTIATE_TEST_SUITE_P(AllPointwiseOps, PointwiseGradTest,
                         ::testing::Range(0, 7));

TEST(TapeTest, GradCheckConcatAndGather) {
  Parameter a = RandomParam(3, 2, 20);
  Parameter b = RandomParam(3, 3, 21);
  std::vector<uint32_t> rows = {2, 0, 0, 1};
  auto build = [&](Tape* tape) {
    Var cat = tape->ConcatCols(tape->Leaf(&a), tape->Leaf(&b));
    Var gathered = tape->GatherRows(cat, rows);
    return tape->ReduceSum(tape->Mul(gathered, gathered));
  };
  auto loss = [&]() {
    Tape tape;
    return static_cast<double>(tape.Value(build(&tape)).scalar());
  };
  {
    Tape tape;
    tape.Backward(build(&tape));
  }
  EXPECT_LT(MaxGradCheckError({&a, &b}, loss), 2e-2);
}

TEST(TapeTest, GradCheckConcatRows) {
  Parameter a = RandomParam(2, 3, 22);
  Parameter b = RandomParam(1, 3, 23);
  Parameter c = RandomParam(3, 3, 24);
  auto build = [&](Tape* tape) {
    Var stacked = tape->ConcatRows(
        {tape->Leaf(&a), tape->Leaf(&b), tape->Leaf(&c)});
    return tape->ReduceSum(tape->Mul(stacked, stacked));
  };
  auto loss = [&]() {
    Tape tape;
    return static_cast<double>(tape.Value(build(&tape)).scalar());
  };
  {
    Tape tape;
    tape.Backward(build(&tape));
  }
  EXPECT_LT(MaxGradCheckError({&a, &b, &c}, loss), 2e-2);
}

TEST(TapeTest, GradCheckScatterAddAndColBroadcast) {
  Parameter x = RandomParam(5, 3, 30);
  Parameter w = RandomParam(5, 1, 31, 0.2f, 1.0f);
  std::vector<uint32_t> targets = {0, 1, 1, 2, 0};
  auto build = [&](Tape* tape) {
    Var weighted = tape->ColBroadcastMul(tape->Leaf(&x), tape->Leaf(&w));
    Var scattered = tape->ScatterAddRows(weighted, targets, 3);
    return tape->ReduceSum(tape->Mul(scattered, scattered));
  };
  auto loss = [&]() {
    Tape tape;
    return static_cast<double>(tape.Value(build(&tape)).scalar());
  };
  {
    Tape tape;
    tape.Backward(build(&tape));
  }
  EXPECT_LT(MaxGradCheckError({&x, &w}, loss), 2e-2);
}

TEST(TapeTest, SegmentSoftmaxForward) {
  Tape tape;
  Matrix logits(4, 1);
  logits.at(0, 0) = 1.0f;
  logits.at(1, 0) = 1.0f;  // segment 0: equal -> 0.5/0.5
  logits.at(2, 0) = 0.0f;
  logits.at(3, 0) = std::log(3.0f);  // segment 1: 1/4, 3/4
  Var out = tape.SegmentSoftmax(tape.Constant(logits), {0, 0, 1, 1}, 2);
  EXPECT_NEAR(tape.Value(out).at(0, 0), 0.5f, 1e-5);
  EXPECT_NEAR(tape.Value(out).at(1, 0), 0.5f, 1e-5);
  EXPECT_NEAR(tape.Value(out).at(2, 0), 0.25f, 1e-5);
  EXPECT_NEAR(tape.Value(out).at(3, 0), 0.75f, 1e-5);
}

TEST(TapeTest, GradCheckSegmentSoftmax) {
  Parameter x = RandomParam(6, 1, 40);
  std::vector<uint32_t> segments = {0, 0, 1, 1, 1, 2};
  Parameter v = RandomParam(6, 1, 41);
  auto build = [&](Tape* tape) {
    Var alpha = tape->SegmentSoftmax(tape->Leaf(&x), segments, 3);
    Var weighted = tape->Mul(alpha, tape->Leaf(&v));
    return tape->ReduceSum(tape->Mul(weighted, weighted));
  };
  auto loss = [&]() {
    Tape tape;
    return static_cast<double>(tape.Value(build(&tape)).scalar());
  };
  {
    Tape tape;
    tape.Backward(build(&tape));
  }
  EXPECT_LT(MaxGradCheckError({&x, &v}, loss), 2e-2);
}

TEST(TapeTest, GradCheckSumMeanRows) {
  Parameter x = RandomParam(4, 3, 50);
  auto build = [&](Tape* tape) {
    Var s = tape->SumRows(tape->Leaf(&x));
    Var m = tape->MeanRows(tape->Leaf(&x));
    Var joined = tape->ConcatCols(s, m);
    return tape->ReduceSum(tape->Mul(joined, joined));
  };
  auto loss = [&]() {
    Tape tape;
    return static_cast<double>(tape.Value(build(&tape)).scalar());
  };
  {
    Tape tape;
    tape.Backward(build(&tape));
  }
  EXPECT_LT(MaxGradCheckError({&x}, loss), 2e-2);
}

TEST(TapeTest, QErrorLossValueAndGradient) {
  // Overestimation branch: pred=10, target=2 -> loss 5, dL/dpred = 1/2.
  {
    Parameter p(Matrix::Scalar(10.0f));
    Tape tape;
    Var loss = tape.QErrorLoss(tape.Leaf(&p), 2.0);
    EXPECT_NEAR(tape.Value(loss).scalar(), 5.0, 1e-5);
    tape.Backward(loss);
    EXPECT_NEAR(p.grad.scalar(), 0.5, 1e-5);
  }
  // Underestimation branch: pred=2, target=10 -> loss ~5, dL/dpred=-10/4.
  {
    Parameter p(Matrix::Scalar(2.0f));
    Tape tape;
    Var loss = tape.QErrorLoss(tape.Leaf(&p), 10.0);
    EXPECT_NEAR(tape.Value(loss).scalar(), 5.0, 1e-4);
    tape.Backward(loss);
    EXPECT_NEAR(p.grad.scalar(), -2.5, 1e-3);
  }
}

TEST(TapeTest, QErrorLossTreatsSmallTargetsAsOne) {
  Parameter p(Matrix::Scalar(4.0f));
  Tape tape;
  Var loss = tape.QErrorLoss(tape.Leaf(&p), 0.0);
  EXPECT_NEAR(tape.Value(loss).scalar(), 4.0, 1e-5);
}

TEST(TapeTest, DeepCompositeGradCheck) {
  // A miniature end-to-end network: gather/scatter message passing,
  // nonlinearity, readout, exp head, q-error loss.
  Parameter w1 = RandomParam(3, 4, 60);
  Parameter w2 = RandomParam(4, 1, 61);
  Parameter feat = RandomParam(5, 3, 62, 0.1f, 0.9f);
  std::vector<uint32_t> src = {0, 1, 2, 3, 4, 0};
  std::vector<uint32_t> dst = {1, 0, 3, 2, 0, 4};
  auto build = [&](Tape* tape) {
    Var h = tape->MatMul(tape->Leaf(&feat), tape->Leaf(&w1));
    Var msg = tape->GatherRows(h, src);
    Var agg = tape->ScatterAddRows(msg, dst, 5);
    Var act = tape->Tanh(tape->Add(h, agg));
    Var pooled = tape->SumRows(act);
    Var z = tape->MatMul(pooled, tape->Leaf(&w2));
    Var pred = tape->Exp(z);
    return tape->QErrorLoss(pred, 7.0);
  };
  auto loss = [&]() {
    Tape tape;
    return static_cast<double>(tape.Value(build(&tape)).scalar());
  };
  {
    Tape tape;
    tape.Backward(build(&tape));
  }
  EXPECT_LT(MaxGradCheckError({&w1, &w2, &feat}, loss, 5e-4f), 3e-2);
}

}  // namespace
}  // namespace neursc
