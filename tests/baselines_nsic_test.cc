#include "baselines/nsic.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/workload.h"
#include "graph/generators.h"
#include "test_util.h"

namespace neursc {
namespace {

using testing_util::MakeGraph;

NsicEstimator::Options TinyOptions(NsicEstimator::GnnKind kind) {
  NsicEstimator::Options options;
  options.kind = kind;
  options.hidden_dim = 16;
  options.epochs = 4;
  return options;
}

TEST(NsicTest, NamesReflectVariant) {
  auto data = GenerateErdosRenyiGraph(40, 120, 3, 1);
  ASSERT_TRUE(data.ok());
  NsicEstimator gin(*data, TinyOptions(NsicEstimator::GnnKind::kGin));
  EXPECT_EQ(gin.Name(), "NSIC-I");
  NsicEstimator gcn(*data, TinyOptions(NsicEstimator::GnnKind::kGcn));
  EXPECT_EQ(gcn.Name(), "NSIC-C");
  auto options = TinyOptions(NsicEstimator::GnnKind::kGin);
  options.use_substructure_extraction = true;
  NsicEstimator se(*data, options);
  EXPECT_EQ(se.Name(), "NSIC-I w/ SE");
}

TEST(NsicTest, BothKindsEstimateFinite) {
  auto data = GenerateErdosRenyiGraph(60, 180, 3, 2);
  ASSERT_TRUE(data.ok());
  Graph query = MakeGraph({0, 1}, {{0, 1}});
  for (auto kind :
       {NsicEstimator::GnnKind::kGin, NsicEstimator::GnnKind::kGcn}) {
    NsicEstimator nsic(*data, TinyOptions(kind));
    auto est = nsic.EstimateCount(query);
    ASSERT_TRUE(est.ok());
    EXPECT_GT(*est, 0.0);
    EXPECT_TRUE(std::isfinite(*est));
  }
}

TEST(NsicTest, TrainingRunsAndImproves) {
  auto data = GenerateErdosRenyiGraph(80, 240, 3, 3);
  ASSERT_TRUE(data.ok());
  auto workload = BuildWorkload(*data, {3}, 10);
  ASSERT_TRUE(workload.ok());
  NsicEstimator nsic(*data, TinyOptions(NsicEstimator::GnnKind::kGin));

  auto evaluate = [&]() {
    std::vector<double> qerrors;
    for (const auto& example : workload->examples) {
      auto est = nsic.EstimateCount(example.query);
      EXPECT_TRUE(est.ok());
      qerrors.push_back(QError(*est, example.count));
    }
    return GeometricMean(qerrors);
  };
  double before = evaluate();
  ASSERT_TRUE(nsic.Train(workload->examples).ok());
  EXPECT_LT(evaluate(), before);
}

TEST(NsicTest, QueriesAreNearlyIndistinguishable) {
  // The architectural flaw the paper demonstrates: the data-side embedding
  // dominates, so two different queries get very similar estimates
  // relative to the spread of their true counts.
  auto data = GenerateErdosRenyiGraph(100, 300, 2, 4);
  ASSERT_TRUE(data.ok());
  NsicEstimator nsic(*data, TinyOptions(NsicEstimator::GnnKind::kGin));
  Graph q1 = MakeGraph({0, 1}, {{0, 1}});
  Graph q2 = MakeGraph({0, 1, 0, 1}, {{0, 1}, {1, 2}, {2, 3}});
  auto e1 = nsic.EstimateCount(q1);
  auto e2 = nsic.EstimateCount(q2);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  // Untrained estimates driven by a shared data embedding: within 100x of
  // each other even though true counts differ by far more.
  double ratio = std::max(*e1, *e2) / std::max(1e-12, std::min(*e1, *e2));
  EXPECT_LT(ratio, 100.0);
}

TEST(NsicTest, SubstructureVariantHandlesImpossibleQuery) {
  auto data = GenerateErdosRenyiGraph(60, 180, 3, 5);
  ASSERT_TRUE(data.ok());
  auto options = TinyOptions(NsicEstimator::GnnKind::kGin);
  options.use_substructure_extraction = true;
  NsicEstimator nsic(*data, options);
  Graph query = MakeGraph({9, 9}, {{0, 1}});  // label absent
  auto est = nsic.EstimateCount(query);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(*est, 0.0);
}

TEST(NsicTest, TimeoutSurfacesAsStatus) {
  auto data = GenerateErdosRenyiGraph(200, 600, 3, 6);
  ASSERT_TRUE(data.ok());
  auto options = TinyOptions(NsicEstimator::GnnKind::kGin);
  options.time_limit_seconds = 1e-9;
  NsicEstimator nsic(*data, options);
  Graph query = MakeGraph({0, 1}, {{0, 1}});
  auto est = nsic.EstimateCount(query);
  EXPECT_FALSE(est.ok());
  EXPECT_TRUE(est.status().IsTimeout());
}

}  // namespace
}  // namespace neursc
