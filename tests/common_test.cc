#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"

namespace neursc {
namespace {

// Sink that keeps busy-loops from being optimized away without the
// deprecated volatile compound assignment.
double benchmark_dont_optimize_sink = 0.0;

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status st = Status::InvalidArgument("bad vertex");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad vertex");
}

TEST(StatusTest, CodePredicates) {
  EXPECT_TRUE(Status::Timeout("x").IsTimeout());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_FALSE(Status::IOError("x").IsTimeout());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}


Status FailingStep() { return Status::NotFound("missing"); }

Status UsesReturnIfError(bool fail) {
  if (fail) {
    NEURSC_RETURN_IF_ERROR(FailingStep());
  }
  NEURSC_RETURN_IF_ERROR(Status::OK());
  return Status::OK();
}

TEST(StatusMacroTest, PropagatesError) {
  EXPECT_TRUE(UsesReturnIfError(false).ok());
  Status st = UsesReturnIfError(true);
  EXPECT_TRUE(st.IsNotFound());
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(3);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  size_t counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) {
    size_t idx = rng.Discrete(weights);
    ASSERT_LT(idx, 3u);
    ++counts[idx];
  }
  EXPECT_EQ(counts[0], 0u);
  EXPECT_GT(counts[2], counts[1]);  // ~3x more likely
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.5);
}

TEST(RngTest, DiscreteAllZeroReturnsSize) {
  Rng rng(4);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(rng.Discrete(weights), 2u);
}

TEST(RngTest, ZipfStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Zipf(50, 1.2);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 50);
  }
}

TEST(RngTest, ZipfIsSkewed) {
  Rng rng(6);
  size_t low = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Zipf(100, 1.5) <= 10) ++low;
  }
  // Heavy head: far more than the uniform 10%.
  EXPECT_GT(low, 4000u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(7);
  std::vector<int> v = {1, 2, 3, 4, 5};
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5}));
}


TEST(RngTest, NormalHasRoughlyUnitSpread) {
  Rng rng(8);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(2.0);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(TimerTest, MeasuresElapsed) {
  Timer timer;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  benchmark_dont_optimize_sink = sink;
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMicros(), 0);
}

TEST(DeadlineTest, NoneNeverExpires) {
  Deadline d = Deadline::None();
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingSeconds(), 1e9);
}

TEST(DeadlineTest, NoDeadlineRemainingIsInfinite) {
  Deadline d = Deadline::None();
  EXPECT_TRUE(std::isinf(d.RemainingSeconds()));
  EXPECT_EQ(d.RemainingSeconds(), Deadline::kNoDeadline);
  // Arithmetic downstream of an unlimited budget stays well-behaved.
  EXPECT_TRUE(d.RemainingSeconds() > 1e18);
  EXPECT_TRUE(std::isinf(d.RemainingSeconds() - 1e18));
}

TEST(DeadlineTest, FiniteBudgetIsNotInfinite) {
  Deadline d(60.0);
  EXPECT_FALSE(std::isinf(d.RemainingSeconds()));
  EXPECT_LE(d.RemainingSeconds(), 60.0);
}

TEST(DeadlineTest, TinyBudgetExpires) {
  Deadline d(1e-9);
  double sink = 0;
  for (int i = 0; i < 10000; ++i) sink += i;
  benchmark_dont_optimize_sink = sink;
  EXPECT_TRUE(d.Expired());
}

TEST(LoggingTest, LevelsOrdered) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug),
            static_cast<int>(LogLevel::kInfo));
  internal_logging::SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(internal_logging::GetLogLevel(), LogLevel::kWarning);
  internal_logging::SetLogLevel(LogLevel::kInfo);
}

TEST(LoggingTest, EveryNFiresOnFirstThenEveryNth) {
  std::atomic<uint64_t> counter{0};
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (internal_logging::EveryN(&counter, 3)) ++fired;
  }
  // Calls 1, 4, 7, 10 fire.
  EXPECT_EQ(fired, 4);
}

TEST(LoggingTest, EveryNWithOneAlwaysFires) {
  std::atomic<uint64_t> counter{0};
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(internal_logging::EveryN(&counter, 1));
  }
}

TEST(LoggingTest, LogEveryNMacroEvaluatesBodyLazily) {
  internal_logging::SetLogLevel(LogLevel::kError);
  int evaluated = 0;
  for (int i = 0; i < 6; ++i) {
    NEURSC_LOG_EVERY_N(Warning, 2) << "sampled " << ++evaluated;
  }
  // The stream body runs only on sampled iterations (1, 3, 5), and the
  // macro nests safely inside an unbraced if/else.
  EXPECT_EQ(evaluated, 3);
  bool else_branch = false;
  if (false)
    NEURSC_LOG_EVERY_N(Warning, 1) << "dead";
  else
    else_branch = true;
  EXPECT_TRUE(else_branch);
  internal_logging::SetLogLevel(LogLevel::kInfo);
}

TEST(LoggingTest, ConcurrentEmitDoesNotInterleaveOrCrash) {
  internal_logging::SetLogLevel(LogLevel::kInfo);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t]() {
      for (int i = 0; i < 50; ++i) {
        NEURSC_LOG(Debug) << "thread " << t << " line " << i;  // filtered out
        NEURSC_LOG_EVERY_N(Info, 25) << "thread " << t << " sampled " << i;
      }
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace
}  // namespace neursc
