#include "nn/serialize.h"

#include <sstream>

#include <gtest/gtest.h>

#include "core/neursc.h"
#include "eval/workload.h"
#include "graph/generators.h"
#include "nn/modules.h"

namespace neursc {
namespace {

TEST(SerializeTest, RoundTripParameters) {
  Rng rng(1);
  Mlp mlp({4, 8, 2}, Activation::kRelu, &rng);
  std::ostringstream out;
  ASSERT_TRUE(SaveParameters(mlp.Parameters(), out).ok());

  Rng rng2(99);  // different init
  Mlp copy({4, 8, 2}, Activation::kRelu, &rng2);
  std::istringstream in(out.str());
  ASSERT_TRUE(LoadParameters(copy.Parameters(), in).ok());

  auto orig = mlp.Parameters();
  auto loaded = copy.Parameters();
  ASSERT_EQ(orig.size(), loaded.size());
  for (size_t i = 0; i < orig.size(); ++i) {
    EXPECT_LT(Matrix::MaxAbsDiff(orig[i]->value, loaded[i]->value), 1e-6f);
  }
}

TEST(SerializeTest, RejectsCountMismatch) {
  Rng rng(2);
  Mlp small({2, 2}, Activation::kNone, &rng);
  Mlp big({2, 2, 2}, Activation::kNone, &rng);
  std::ostringstream out;
  ASSERT_TRUE(SaveParameters(small.Parameters(), out).ok());
  std::istringstream in(out.str());
  auto st = LoadParameters(big.Parameters(), in);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST(SerializeTest, RejectsShapeMismatch) {
  Rng rng(3);
  Mlp a({2, 3}, Activation::kNone, &rng);
  Mlp b({3, 2}, Activation::kNone, &rng);
  std::ostringstream out;
  ASSERT_TRUE(SaveParameters(a.Parameters(), out).ok());
  std::istringstream in(out.str());
  EXPECT_FALSE(LoadParameters(b.Parameters(), in).ok());
}

TEST(SerializeTest, RejectsGarbage) {
  Rng rng(4);
  Mlp mlp({2, 2}, Activation::kNone, &rng);
  std::istringstream in("not a model file");
  EXPECT_FALSE(LoadParameters(mlp.Parameters(), in).ok());
}

TEST(SerializeTest, NeurSCModelRoundTripPreservesEstimates) {
  auto data = GenerateErdosRenyiGraph(100, 300, 4, 17);
  ASSERT_TRUE(data.ok());
  auto workload = BuildWorkload(*data, {3}, 8);
  ASSERT_TRUE(workload.ok());

  NeurSCConfig config;
  config.west.intra_dim = 8;
  config.west.inter_dim = 8;
  config.epochs = 3;
  config.pretrain_epochs = 2;
  NeurSCEstimator trained(*data, config);
  ASSERT_TRUE(trained.Train(workload->examples).ok());

  const std::string path = ::testing::TempDir() + "/neursc_model.txt";
  ASSERT_TRUE(trained.SaveModel(path).ok());

  NeurSCEstimator restored(*data, config);
  ASSERT_TRUE(restored.LoadModel(path).ok());

  for (const auto& example : workload->examples) {
    auto a = trained.Estimate(example.query);
    auto b = restored.Estimate(example.query);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    // Same weights, same deterministic pipeline seeds differ only through
    // the internal rng consumed during training; the forward pass may add
    // random linking edges, so compare loosely.
    EXPECT_NEAR(a->count, b->count,
                0.05 * std::abs(a->count) + 1e-3);
  }
}

}  // namespace
}  // namespace neursc
