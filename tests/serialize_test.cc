#include "nn/serialize.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "core/neursc.h"
#include "eval/workload.h"
#include "graph/generators.h"
#include "nn/modules.h"

namespace neursc {
namespace {

TEST(SerializeTest, RoundTripParameters) {
  Rng rng(1);
  Mlp mlp({4, 8, 2}, Activation::kRelu, &rng);
  std::ostringstream out;
  ASSERT_TRUE(SaveParameters(mlp.Parameters(), out).ok());

  Rng rng2(99);  // different init
  Mlp copy({4, 8, 2}, Activation::kRelu, &rng2);
  std::istringstream in(out.str());
  ASSERT_TRUE(LoadParameters(copy.Parameters(), in).ok());

  auto orig = mlp.Parameters();
  auto loaded = copy.Parameters();
  ASSERT_EQ(orig.size(), loaded.size());
  for (size_t i = 0; i < orig.size(); ++i) {
    EXPECT_LT(Matrix::MaxAbsDiff(orig[i]->value, loaded[i]->value), 1e-6f);
  }
}

TEST(SerializeTest, RoundTripIsBitExactAndResaveIsByteIdentical) {
  // The hexfloat format must reproduce every weight bit for bit, and a
  // Save -> Load -> Save cycle must therefore reproduce the checkpoint
  // byte for byte (the property that makes checkpoints diffable and
  // re-training-free pipelines deterministic).
  Rng rng(11);
  Mlp mlp({4, 8, 2}, Activation::kRelu, &rng);
  // Include values a short decimal rendering would mangle.
  auto params = mlp.Parameters();
  params[0]->value.at(0, 0) = std::nextafterf(1.0f, 2.0f);
  params[0]->value.at(0, 1) = -0.0f;
  params[0]->value.at(0, 2) = std::numeric_limits<float>::denorm_min();
  params[0]->value.at(0, 3) = std::numeric_limits<float>::max();

  std::ostringstream first;
  ASSERT_TRUE(SaveParameters(params, first).ok());

  Rng rng2(99);
  Mlp copy({4, 8, 2}, Activation::kRelu, &rng2);
  std::istringstream in(first.str());
  ASSERT_TRUE(LoadParameters(copy.Parameters(), in).ok());

  auto loaded = copy.Parameters();
  for (size_t i = 0; i < params.size(); ++i) {
    const Matrix& a = params[i]->value;
    const Matrix& b = loaded[i]->value;
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
        << "param " << i << " not bit-identical";
  }

  std::ostringstream second;
  ASSERT_TRUE(SaveParameters(loaded, second).ok());
  EXPECT_EQ(first.str(), second.str());
}

TEST(SerializeTest, AcceptsLegacyDecimalCheckpoints) {
  Rng rng(12);
  Mlp mlp({2, 2}, Activation::kNone, &rng);
  // A pre-hexfloat checkpoint: plain decimal floats.
  std::istringstream in(
      "neursc-params v1 2\n"
      "param 2 2\n"
      "0.5 -1.25 3.0e-2 100\n"
      "param 1 2\n"
      "0 -0.75\n");
  ASSERT_TRUE(LoadParameters(mlp.Parameters(), in).ok());
  EXPECT_FLOAT_EQ(mlp.Parameters()[0]->value.at(0, 0), 0.5f);
  EXPECT_FLOAT_EQ(mlp.Parameters()[0]->value.at(1, 1), 100.0f);
  EXPECT_FLOAT_EQ(mlp.Parameters()[1]->value.at(0, 1), -0.75f);
}

TEST(SerializeTest, SaveRejectsNonFiniteWeights) {
  for (float bad : {std::numeric_limits<float>::quiet_NaN(),
                    std::numeric_limits<float>::infinity(),
                    -std::numeric_limits<float>::infinity()}) {
    Rng rng(13);
    Mlp mlp({2, 2}, Activation::kNone, &rng);
    mlp.Parameters()[0]->value.at(1, 0) = bad;
    std::ostringstream out;
    auto st = SaveParameters(mlp.Parameters(), out);
    EXPECT_FALSE(st.ok());
    EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  }
}

TEST(SerializeTest, LoadRejectsNonFiniteValues) {
  // strtof parses "nan"/"inf" spellings and saturates overflowing
  // decimals to infinity; all three must be rejected as InvalidArgument.
  for (const char* bad : {"nan", "inf", "-inf", "1e999"}) {
    Rng rng(14);
    Mlp mlp({2, 2}, Activation::kNone, &rng);
    std::istringstream in(std::string("neursc-params v1 2\n"
                                      "param 2 2\n"
                                      "0.5 ") +
                          bad +
                          " 1.0 2.0\n"
                          "param 1 2\n"
                          "0 0\n");
    auto st = LoadParameters(mlp.Parameters(), in);
    EXPECT_FALSE(st.ok()) << "value: " << bad;
    EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  }
}

TEST(SerializeTest, LoadRejectsMalformedValueTokens) {
  Rng rng(15);
  Mlp mlp({2, 2}, Activation::kNone, &rng);
  std::istringstream in(
      "neursc-params v1 2\n"
      "param 2 2\n"
      "0.5 bogus 1.0 2.0\n"
      "param 1 2\n"
      "0 0\n");
  auto st = LoadParameters(mlp.Parameters(), in);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError) << st.ToString();
}

TEST(SerializeTest, RejectsCountMismatch) {
  Rng rng(2);
  Mlp small({2, 2}, Activation::kNone, &rng);
  Mlp big({2, 2, 2}, Activation::kNone, &rng);
  std::ostringstream out;
  ASSERT_TRUE(SaveParameters(small.Parameters(), out).ok());
  std::istringstream in(out.str());
  auto st = LoadParameters(big.Parameters(), in);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST(SerializeTest, RejectsShapeMismatch) {
  Rng rng(3);
  Mlp a({2, 3}, Activation::kNone, &rng);
  Mlp b({3, 2}, Activation::kNone, &rng);
  std::ostringstream out;
  ASSERT_TRUE(SaveParameters(a.Parameters(), out).ok());
  std::istringstream in(out.str());
  EXPECT_FALSE(LoadParameters(b.Parameters(), in).ok());
}

TEST(SerializeTest, RejectsGarbage) {
  Rng rng(4);
  Mlp mlp({2, 2}, Activation::kNone, &rng);
  std::istringstream in("not a model file");
  EXPECT_FALSE(LoadParameters(mlp.Parameters(), in).ok());
}

TEST(SerializeTest, NeurSCModelRoundTripPreservesEstimates) {
  auto data = GenerateErdosRenyiGraph(100, 300, 4, 17);
  ASSERT_TRUE(data.ok());
  auto workload = BuildWorkload(*data, {3}, 8);
  ASSERT_TRUE(workload.ok());

  NeurSCConfig config;
  config.west.intra_dim = 8;
  config.west.inter_dim = 8;
  config.epochs = 3;
  config.pretrain_epochs = 2;
  NeurSCEstimator trained(*data, config);
  ASSERT_TRUE(trained.Train(workload->examples).ok());

  const std::string path = ::testing::TempDir() + "/neursc_model.txt";
  ASSERT_TRUE(trained.SaveModel(path).ok());

  NeurSCEstimator restored(*data, config);
  ASSERT_TRUE(restored.LoadModel(path).ok());

  for (const auto& example : workload->examples) {
    auto a = trained.Estimate(example.query);
    auto b = restored.Estimate(example.query);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    // Same weights, same deterministic pipeline seeds differ only through
    // the internal rng consumed during training; the forward pass may add
    // random linking edges, so compare loosely.
    EXPECT_NEAR(a->count, b->count,
                0.05 * std::abs(a->count) + 1e-3);
  }
}

}  // namespace
}  // namespace neursc
