#include "nn/modules.h"

#include <gtest/gtest.h>

#include "nn/optimizer.h"
#include "test_util.h"

namespace neursc {
namespace {

using testing_util::MaxGradCheckError;

TEST(LinearTest, ForwardShape) {
  Rng rng(1);
  Linear layer(4, 3, &rng);
  Tape tape;
  Var x = tape.Constant(Matrix::Uniform(5, 4, -1, 1, &rng));
  Var y = layer.Forward(&tape, x);
  EXPECT_EQ(tape.Value(y).rows(), 5u);
  EXPECT_EQ(tape.Value(y).cols(), 3u);
  EXPECT_EQ(layer.Parameters().size(), 2u);
}

TEST(LinearTest, GradCheck) {
  Rng rng(2);
  Linear layer(3, 2, &rng);
  Matrix input = Matrix::Uniform(4, 3, -1, 1, &rng);
  auto build = [&](Tape* tape) {
    Var y = layer.Forward(tape, tape->Constant(input));
    return tape->ReduceSum(tape->Mul(y, y));
  };
  auto loss = [&]() {
    Tape tape;
    return static_cast<double>(tape.Value(build(&tape)).scalar());
  };
  {
    Tape tape;
    tape.Backward(build(&tape));
  }
  EXPECT_LT(MaxGradCheckError(layer.Parameters(), loss), 2e-2);
}

TEST(MlpTest, ShapeAndParamCount) {
  Rng rng(3);
  Mlp mlp({6, 8, 8, 1}, Activation::kRelu, &rng);
  EXPECT_EQ(mlp.in_features(), 6u);
  EXPECT_EQ(mlp.out_features(), 1u);
  EXPECT_EQ(mlp.Parameters().size(), 6u);  // 3 layers x (W, b)
  Tape tape;
  Var y = mlp.Forward(&tape, tape.Constant(Matrix::Uniform(2, 6, -1, 1,
                                                           &rng)));
  EXPECT_EQ(tape.Value(y).rows(), 2u);
  EXPECT_EQ(tape.Value(y).cols(), 1u);
}

TEST(MlpTest, CanFitTinyRegression) {
  // y = 2*x0 - x1; train a small MLP to near-zero loss.
  Rng rng(4);
  Mlp mlp({2, 16, 1}, Activation::kTanh, &rng);
  AdamOptimizer::Options opts;
  opts.learning_rate = 5e-3;
  AdamOptimizer optimizer(mlp.Parameters(), opts);
  std::vector<std::pair<Matrix, float>> dataset;
  for (int i = 0; i < 32; ++i) {
    Matrix x = Matrix::Uniform(1, 2, -1, 1, &rng);
    dataset.emplace_back(x, 2.0f * x.at(0, 0) - x.at(0, 1));
  }
  double final_loss = 0.0;
  for (int epoch = 0; epoch < 300; ++epoch) {
    final_loss = 0.0;
    optimizer.ZeroGrad();
    for (const auto& [x, target] : dataset) {
      Tape tape;
      Var pred = mlp.Forward(&tape, tape.Constant(x));
      Var diff = tape.Sub(pred, tape.Constant(Matrix::Scalar(target)));
      Var loss = tape.Mul(diff, diff);
      final_loss += tape.Value(loss).scalar();
      tape.Backward(loss);
    }
    optimizer.Step();
    optimizer.ZeroGrad();
  }
  EXPECT_LT(final_loss / dataset.size(), 1e-2);
}

TEST(GinLayerTest, ForwardShapeAndIsolation) {
  Rng rng(5);
  GinLayer layer(4, 6, &rng);
  Tape tape;
  Matrix features = Matrix::Uniform(3, 4, 0.1f, 1.0f, &rng);
  EdgeIndex edges;
  edges.Add(0, 1);
  edges.Add(1, 0);
  Var h = layer.Forward(&tape, tape.Constant(features), edges);
  EXPECT_EQ(tape.Value(h).rows(), 3u);
  EXPECT_EQ(tape.Value(h).cols(), 6u);
}

TEST(GinLayerTest, EmptyEdgeListWorks) {
  Rng rng(6);
  GinLayer layer(4, 4, &rng);
  Tape tape;
  EdgeIndex edges;
  Var h = layer.Forward(&tape,
                        tape.Constant(Matrix::Uniform(2, 4, 0, 1, &rng)),
                        edges);
  EXPECT_EQ(tape.Value(h).rows(), 2u);
}

TEST(GinLayerTest, GradCheckThroughMessagePassing) {
  Rng rng(7);
  GinLayer layer(3, 4, &rng);
  Matrix features = Matrix::Uniform(4, 3, 0.1f, 1.0f, &rng);
  EdgeIndex edges;  // path 0-1-2-3 in both directions
  for (uint32_t v = 0; v + 1 < 4; ++v) {
    edges.Add(v, v + 1);
    edges.Add(v + 1, v);
  }
  auto build = [&](Tape* tape) {
    Var h = layer.Forward(tape, tape->Constant(features), edges);
    return tape->ReduceSum(tape->Mul(h, h));
  };
  auto loss = [&]() {
    Tape tape;
    return static_cast<double>(tape.Value(build(&tape)).scalar());
  };
  {
    Tape tape;
    tape.Backward(build(&tape));
  }
  EXPECT_LT(MaxGradCheckError(layer.Parameters(), loss), 3e-2);
}

TEST(GinLayerTest, DistinguishesNonIsomorphicNeighborhoods) {
  // Same labels but different structure: sum aggregation must produce
  // different embeddings for a vertex with 1 vs 2 neighbors.
  Rng rng(8);
  GinLayer layer(2, 4, &rng);
  Matrix features = Matrix::Ones(3, 2);
  EdgeIndex star;  // 1 and 2 attach to 0
  star.Add(1, 0);
  star.Add(0, 1);
  star.Add(2, 0);
  star.Add(0, 2);
  Tape tape;
  Var h = layer.Forward(&tape, tape.Constant(features), star);
  const Matrix& out = tape.Value(h);
  // Vertex 0 (degree 2) differs from vertex 1 (degree 1).
  float diff = 0.0f;
  for (size_t c = 0; c < out.cols(); ++c) {
    diff += std::abs(out.at(0, c) - out.at(1, c));
  }
  EXPECT_GT(diff, 1e-4f);
  // Vertices 1 and 2 are symmetric -> identical embeddings.
  for (size_t c = 0; c < out.cols(); ++c) {
    EXPECT_NEAR(out.at(1, c), out.at(2, c), 1e-5f);
  }
}

TEST(BipartiteAttentionTest, ForwardShape) {
  Rng rng(9);
  BipartiteAttentionLayer layer(4, 5, &rng);
  Tape tape;
  Matrix features = Matrix::Uniform(6, 4, -1, 1, &rng);
  EdgeIndex edges;
  edges.Add(0, 3);
  edges.Add(3, 0);
  edges.Add(1, 4);
  edges.Add(4, 1);
  Var h = layer.Forward(&tape, tape.Constant(features), edges);
  EXPECT_EQ(tape.Value(h).rows(), 6u);
  EXPECT_EQ(tape.Value(h).cols(), 5u);
  EXPECT_EQ(layer.Parameters().size(), 3u);
}

TEST(BipartiteAttentionTest, GradCheck) {
  Rng rng(10);
  BipartiteAttentionLayer layer(3, 3, &rng);
  Matrix features = Matrix::Uniform(4, 3, -1, 1, &rng);
  EdgeIndex edges;
  edges.Add(0, 2);
  edges.Add(2, 0);
  edges.Add(1, 3);
  edges.Add(3, 1);
  edges.Add(1, 2);
  edges.Add(2, 1);
  auto build = [&](Tape* tape) {
    Var h = layer.Forward(tape, tape->Constant(features), edges);
    return tape->ReduceSum(tape->Mul(h, h));
  };
  auto loss = [&]() {
    Tape tape;
    return static_cast<double>(tape.Value(build(&tape)).scalar());
  };
  {
    Tape tape;
    tape.Backward(build(&tape));
  }
  EXPECT_LT(MaxGradCheckError(layer.Parameters(), loss, 5e-4f), 3e-2);
}

TEST(BipartiteAttentionTest, AttentionWeightsSumToOnePerVertex) {
  // Indirect check: with identical inputs everywhere, output equals the
  // projected input (softmax-weighted average of identical messages).
  Rng rng(11);
  BipartiteAttentionLayer layer(2, 3, &rng);
  Tape tape;
  Matrix features(4, 2);
  features.Fill(0.5f);
  EdgeIndex edges;
  edges.Add(0, 2);
  edges.Add(2, 0);
  edges.Add(1, 2);
  edges.Add(2, 1);
  Var h = layer.Forward(&tape, tape.Constant(features), edges);
  const Matrix& out = tape.Value(h);
  // All rows saw only copies of the same message, so rows 0 and 1 (and 3,
  // which only has its self loop) must coincide.
  for (size_t c = 0; c < out.cols(); ++c) {
    EXPECT_NEAR(out.at(0, c), out.at(1, c), 1e-5f);
    EXPECT_NEAR(out.at(0, c), out.at(3, c), 1e-5f);
    EXPECT_NEAR(out.at(0, c), out.at(2, c), 1e-5f);
  }
}

TEST(ModuleTest, ZeroGradAndWeightCount) {
  Rng rng(12);
  Mlp mlp({2, 3, 1}, Activation::kRelu, &rng);
  EXPECT_EQ(mlp.NumWeights(), 2u * 3 + 3 + 3u * 1 + 1);
  for (Parameter* p : mlp.Parameters()) p->grad.Fill(5.0f);
  mlp.ZeroGrad();
  for (Parameter* p : mlp.Parameters()) {
    EXPECT_FLOAT_EQ(p->grad.Norm(), 0.0f);
  }
}


TEST(MeanAggregatorTest, ForwardShapeAndMean) {
  Rng rng(13);
  MeanAggregatorLayer layer(2, 4, &rng);
  Tape tape;
  Matrix features = Matrix::FromRows({{1, 0}, {0, 1}, {1, 1}});
  EdgeIndex edges;  // 0 <- {1, 2}
  edges.Add(1, 0);
  edges.Add(2, 0);
  Var h = layer.Forward(&tape, tape.Constant(features), edges);
  EXPECT_EQ(tape.Value(h).rows(), 3u);
  EXPECT_EQ(tape.Value(h).cols(), 4u);
  EXPECT_EQ(layer.Parameters().size(), 2u);
}

TEST(MeanAggregatorTest, GradCheck) {
  Rng rng(14);
  MeanAggregatorLayer layer(3, 3, &rng);
  Matrix features = Matrix::Uniform(4, 3, 0.1f, 1.0f, &rng);
  EdgeIndex edges;
  edges.Add(0, 1);
  edges.Add(1, 0);
  edges.Add(2, 3);
  edges.Add(3, 2);
  auto build = [&](Tape* tape) {
    Var h = layer.Forward(tape, tape->Constant(features), edges);
    return tape->ReduceSum(tape->Mul(h, h));
  };
  auto loss = [&]() {
    Tape tape;
    return static_cast<double>(tape.Value(build(&tape)).scalar());
  };
  {
    Tape tape;
    tape.Backward(build(&tape));
  }
  EXPECT_LT(MaxGradCheckError(layer.Parameters(), loss), 3e-2);
}

TEST(MeanAggregatorTest, CannotDistinguishNeighborMultiplicity) {
  // Two neighbors with identical features vs one: the mean is the same,
  // so mean aggregation produces identical embeddings where GIN differs —
  // the expressiveness gap Sec. 5.2 motivates GIN with.
  Rng rng(15);
  MeanAggregatorLayer mean_layer(2, 4, &rng);
  Rng rng2(15);
  GinLayer gin_layer(2, 4, &rng2);
  Matrix features = Matrix::Ones(4, 2);
  // Vertex 0 has neighbors {1}; vertex 3 has neighbors {1, 2}... use two
  // separate graphs encoded in one edge list: 0<-1 and 3<-{1,2}.
  EdgeIndex edges;
  edges.Add(1, 0);
  edges.Add(1, 3);
  edges.Add(2, 3);
  Tape tape;
  Var hm = mean_layer.Forward(&tape, tape.Constant(features), edges);
  const Matrix& mean_out = tape.Value(hm);
  for (size_t c = 0; c < mean_out.cols(); ++c) {
    EXPECT_NEAR(mean_out.at(0, c), mean_out.at(3, c), 1e-5f);
  }
  Tape tape2;
  Var hg = gin_layer.Forward(&tape2, tape2.Constant(features), edges);
  const Matrix& gin_out = tape2.Value(hg);
  float diff = 0.0f;
  for (size_t c = 0; c < gin_out.cols(); ++c) {
    diff += std::abs(gin_out.at(0, c) - gin_out.at(3, c));
  }
  EXPECT_GT(diff, 1e-4f);
}

}  // namespace
}  // namespace neursc
