#include "core/discriminator.h"

#include <gtest/gtest.h>

#include "nn/optimizer.h"

namespace neursc {
namespace {

TEST(DiscriminatorTest, ScoreShapeAndClip) {
  Discriminator critic(8, 16, 0.01f, 1);
  for (Parameter* p : critic.Parameters()) {
    for (size_t i = 0; i < p->value.size(); ++i) {
      EXPECT_LE(std::abs(p->value.data()[i]), 0.01f);
    }
  }
  Rng rng(2);
  Tape tape;
  Var h = tape.Constant(Matrix::Uniform(5, 8, -1, 1, &rng));
  Var scores = critic.Score(&tape, h);
  EXPECT_EQ(tape.Value(scores).rows(), 5u);
  EXPECT_EQ(tape.Value(scores).cols(), 1u);
}

TEST(DiscriminatorTest, ClampAfterUpdateKeepsBox) {
  Discriminator critic(4, 8, 0.01f, 3);
  for (Parameter* p : critic.Parameters()) p->value.Fill(1.0f);
  critic.ClampWeights();
  for (Parameter* p : critic.Parameters()) {
    for (size_t i = 0; i < p->value.size(); ++i) {
      EXPECT_FLOAT_EQ(p->value.data()[i], 0.01f);
    }
  }
}

TEST(CorrespondenceTest, GreedyPrefersHighScoreCandidates) {
  Matrix query_scores = Matrix::FromRows({{0.1f}, {0.5f}});
  Matrix sub_scores = Matrix::FromRows({{0.9f}, {0.2f}, {0.7f}});
  std::vector<std::vector<VertexId>> candidates = {{0, 1, 2}, {0, 2}};
  auto pairs =
      SelectCorrespondenceByScores(query_scores, sub_scores, candidates);
  ASSERT_EQ(pairs.size(), 2u);
  // u0 (lowest query score) picks v0 (highest sub score); u1 then takes v2.
  EXPECT_EQ(pairs.query_rows[0], 0u);
  EXPECT_EQ(pairs.sub_rows[0], 0u);
  EXPECT_EQ(pairs.query_rows[1], 1u);
  EXPECT_EQ(pairs.sub_rows[1], 2u);
}

TEST(CorrespondenceTest, ReassignsWhenCandidateTaken) {
  // u0 and u1 both only want v0 first, but u1 can be re-routed to v1
  // through the augmenting search.
  Matrix query_scores = Matrix::FromRows({{0.0f}, {1.0f}});
  Matrix sub_scores = Matrix::FromRows({{1.0f}, {0.5f}});
  std::vector<std::vector<VertexId>> candidates = {{0}, {0, 1}};
  auto pairs =
      SelectCorrespondenceByScores(query_scores, sub_scores, candidates);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs.sub_rows[0], 0u);  // u0 keeps v0
  EXPECT_EQ(pairs.sub_rows[1], 1u);  // u1 re-assigned to v1
}

TEST(CorrespondenceTest, AugmentingPathDisplacesEarlierChoice) {
  // u0: {v0, v1}; u1: {v0} only. u0 processed first takes v0, then u1
  // must displace u0 to v1.
  Matrix query_scores = Matrix::FromRows({{0.0f}, {1.0f}});
  Matrix sub_scores = Matrix::FromRows({{1.0f}, {0.1f}});
  std::vector<std::vector<VertexId>> candidates = {{0, 1}, {0}};
  auto pairs =
      SelectCorrespondenceByScores(query_scores, sub_scores, candidates);
  ASSERT_EQ(pairs.size(), 2u);
  // Every query vertex got a candidate from its own set, all distinct.
  EXPECT_NE(pairs.sub_rows[0], pairs.sub_rows[1]);
  for (size_t i = 0; i < 2; ++i) {
    size_t u = pairs.query_rows[i];
    const auto& cs = candidates[u];
    EXPECT_TRUE(std::find(cs.begin(), cs.end(), pairs.sub_rows[i]) !=
                cs.end());
  }
}

TEST(CorrespondenceTest, ReusesWhenNoDistinctSystemExists) {
  // Three query vertices all restricted to a single candidate.
  Matrix query_scores = Matrix::FromRows({{0.0f}, {0.5f}, {1.0f}});
  Matrix sub_scores = Matrix::FromRows({{1.0f}});
  std::vector<std::vector<VertexId>> candidates = {{0}, {0}, {0}};
  auto pairs =
      SelectCorrespondenceByScores(query_scores, sub_scores, candidates);
  EXPECT_EQ(pairs.size(), 3u);
  for (uint32_t v : pairs.sub_rows) EXPECT_EQ(v, 0u);
}

TEST(CorrespondenceTest, SkipsEmptyCandidateSets) {
  Matrix query_scores = Matrix::FromRows({{0.0f}, {1.0f}});
  Matrix sub_scores = Matrix::FromRows({{1.0f}});
  std::vector<std::vector<VertexId>> candidates = {{}, {0}};
  auto pairs =
      SelectCorrespondenceByScores(query_scores, sub_scores, candidates);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs.query_rows[0], 1u);
}

TEST(DistanceTest, EuclideanMatchesHandValue) {
  float a[] = {0.0f, 0.0f};
  float b[] = {3.0f, 4.0f};
  EXPECT_NEAR(RepresentationDistance(a, b, 2, DistanceMetric::kEuclidean),
              5.0, 1e-6);
}

TEST(DistanceTest, KLOfIdenticalIsZero) {
  float a[] = {0.3f, 0.7f, -0.2f};
  EXPECT_NEAR(RepresentationDistance(a, a, 3, DistanceMetric::kKL), 0.0,
              1e-9);
  EXPECT_NEAR(RepresentationDistance(a, a, 3, DistanceMetric::kJS), 0.0,
              1e-9);
}

TEST(DistanceTest, JSIsSymmetricKLIsNot) {
  float a[] = {1.0f, 0.0f};
  float b[] = {0.0f, 1.0f};
  double js_ab = RepresentationDistance(a, b, 2, DistanceMetric::kJS);
  double js_ba = RepresentationDistance(b, a, 2, DistanceMetric::kJS);
  EXPECT_NEAR(js_ab, js_ba, 1e-9);
  EXPECT_GT(js_ab, 0.0);
}

TEST(CorrespondenceByDistanceTest, PicksNearestCandidate) {
  Matrix query_repr = Matrix::FromRows({{1.0f, 0.0f}});
  Matrix sub_repr = Matrix::FromRows({{0.0f, 5.0f}, {1.1f, 0.0f}});
  std::vector<std::vector<VertexId>> candidates = {{0, 1}};
  auto pairs = SelectCorrespondenceByDistance(
      query_repr, sub_repr, candidates, DistanceMetric::kEuclidean);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs.sub_rows[0], 1u);
}

TEST(LossTest, WassersteinLossValue) {
  Tape tape;
  Var sq = tape.Constant(Matrix::FromRows({{2.0f}, {3.0f}}));
  Var ss = tape.Constant(Matrix::FromRows({{1.0f}, {0.5f}, {4.0f}}));
  Correspondence pairs;
  pairs.query_rows = {0, 1};
  pairs.sub_rows = {2, 0};
  Var lw = WassersteinLoss(&tape, sq, ss, pairs);
  // (2 + 3) - (4 + 1) = 0.
  EXPECT_NEAR(tape.Value(lw).scalar(), 0.0f, 1e-6);
}

TEST(LossTest, PairDistanceLossGradientsFlow) {
  Parameter a(Matrix::FromRows({{0.4f, 0.6f}}));
  Parameter b(Matrix::FromRows({{0.9f, 0.1f}}));
  Correspondence pairs;
  pairs.query_rows = {0};
  pairs.sub_rows = {0};
  for (DistanceMetric metric :
       {DistanceMetric::kEuclidean, DistanceMetric::kKL,
        DistanceMetric::kJS}) {
    Tape tape;
    Var loss = PairDistanceLoss(&tape, tape.Leaf(&a), tape.Leaf(&b), pairs,
                                metric);
    EXPECT_GT(tape.Value(loss).scalar(), 0.0f);
    a.ZeroGrad();
    b.ZeroGrad();
    tape.Backward(loss);
    EXPECT_GT(a.grad.Norm() + b.grad.Norm(), 0.0f)
        << DistanceMetricName(metric);
  }
}

TEST(LossTest, CriticTrainingIncreasesSeparation) {
  // Maximizing L_w should separate the critic's scores of two fixed
  // point clouds.
  Rng rng(9);
  Matrix hq = Matrix::Uniform(6, 4, 0.5f, 1.0f, &rng);
  Matrix hs = Matrix::Uniform(6, 4, -1.0f, -0.5f, &rng);
  Discriminator critic(4, 16, 0.05f, 10);
  AdamOptimizer::Options opts;
  opts.learning_rate = 5e-3;
  AdamOptimizer optimizer(critic.Parameters(), opts);
  Correspondence pairs;
  for (uint32_t i = 0; i < 6; ++i) {
    pairs.query_rows.push_back(i);
    pairs.sub_rows.push_back(i);
  }
  double first = 0.0;
  double last = 0.0;
  for (int step = 0; step < 60; ++step) {
    Tape tape;
    Var sq = critic.Score(&tape, tape.Constant(hq));
    Var ss = critic.Score(&tape, tape.Constant(hs));
    Var lw = WassersteinLoss(&tape, sq, ss, pairs);
    if (step == 0) first = tape.Value(lw).scalar();
    last = tape.Value(lw).scalar();
    Var loss = tape.Scale(lw, -1.0f);
    optimizer.ZeroGrad();
    tape.Backward(loss);
    optimizer.Step();
    optimizer.ZeroGrad();
    critic.ClampWeights();
  }
  EXPECT_GT(last, first);
}

}  // namespace
}  // namespace neursc
