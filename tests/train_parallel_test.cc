// Differential serial-vs-parallel harness for the training path.
//
// The threading contract (docs/threading.md) promises that Train() is
// bit-identical at every NEURSC_THREADS value: the example shuffle and all
// forward-pass seeds are drawn from the estimator RNG serially, each
// example's forward+backward runs on its own tape with a tape-local
// GradientSink, sinks are reduced into Parameter::grad in example-index
// order, and the critic's inner maximization runs serially in a fixed
// order. These tests enforce the contract with exact (EXPECT_EQ on float)
// comparisons of final weights and per-epoch statistics across seeds,
// covering the pretrain-only, adversarial, and early-stopping regimes.

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/neursc.h"
#include "graph/graph.h"
#include "nn/matrix.h"
#include "test_util.h"

namespace neursc {
namespace {

using testing_util::MakeGraph;

constexpr uint64_t kSeeds[] = {7, 123, 4242};
constexpr size_t kThreadCounts[] = {1, 2, 8};

/// Scoped NEURSC_THREADS override; restores the previous value on exit so
/// tests do not leak thread settings into each other.
class ThreadsGuard {
 public:
  explicit ThreadsGuard(size_t n) {
    const char* old = std::getenv("NEURSC_THREADS");
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    setenv("NEURSC_THREADS", std::to_string(n).c_str(), 1);
  }
  ~ThreadsGuard() {
    if (had_old_) {
      setenv("NEURSC_THREADS", old_.c_str(), 1);
    } else {
      unsetenv("NEURSC_THREADS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

NeurSCConfig TrainConfig(uint64_t seed) {
  NeurSCConfig config;
  config.west.intra_dim = 8;
  config.west.inter_dim = 8;
  config.west.predictor_hidden = 16;
  config.disc_hidden = 8;
  config.batch_size = 4;
  config.pretrain_epochs = 2;
  config.epochs = 5;  // epochs 2..4 run the adversarial phase
  config.seed = seed;
  return config;
}

/// Data graph with several connected components so extraction yields
/// multiple substructures per query: `k` disjoint triangles, label 0.
Graph DisjointTriangles(size_t k) {
  std::vector<Label> labels(3 * k, 0);
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (size_t c = 0; c < k; ++c) {
    VertexId base = static_cast<VertexId>(3 * c);
    edges.push_back({base, static_cast<VertexId>(base + 1)});
    edges.push_back(
        {static_cast<VertexId>(base + 1), static_cast<VertexId>(base + 2)});
    edges.push_back({base, static_cast<VertexId>(base + 2)});
  }
  return MakeGraph(labels, edges);
}

/// A small labeled workload with enough distinct examples for batching,
/// validation splits, and per-example parallelism to all kick in.
std::vector<TrainingExample> TrainingSet(size_t data_components) {
  std::vector<TrainingExample> examples;
  double triangles = static_cast<double>(data_components);
  examples.push_back(
      {MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}, {0, 2}}), triangles});
  examples.push_back({MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}}), 6 * triangles});
  examples.push_back({MakeGraph({0, 0}, {{0, 1}}), 6 * triangles});
  examples.push_back({MakeGraph({0}, {}), 3 * triangles});
  examples.push_back({MakeGraph({0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 3}}),
                      12 * triangles});
  examples.push_back(
      {MakeGraph({0, 0, 0}, {{0, 1}, {0, 2}}), 6 * triangles});
  examples.push_back(
      {MakeGraph({0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 3}, {0, 3}}), 0.0});
  examples.push_back({MakeGraph({0, 0}, {{0, 1}}), 6 * triangles});
  return examples;
}

struct TrainOutcome {
  std::vector<Matrix> model_params;
  std::vector<Matrix> critic_params;
  TrainStats stats;
};

TrainOutcome RunTraining(const Graph& data, const NeurSCConfig& config,
                         const std::vector<TrainingExample>& examples,
                         PreparedQueryCache* cache = nullptr) {
  NeurSCEstimator estimator(data, config);
  auto stats = estimator.Train(examples, cache);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  TrainOutcome outcome;
  if (!stats.ok()) return outcome;
  outcome.stats = *stats;
  for (Parameter* p : estimator.model().Parameters()) {
    outcome.model_params.push_back(p->value);
  }
  if (estimator.critic() != nullptr) {
    for (Parameter* p : estimator.critic()->Parameters()) {
      outcome.critic_params.push_back(p->value);
    }
  }
  return outcome;
}

void ExpectBitIdenticalMatrices(const std::vector<Matrix>& got,
                                const std::vector<Matrix>& want,
                                const std::string& what, size_t threads) {
  ASSERT_EQ(got.size(), want.size()) << what << " threads=" << threads;
  for (size_t p = 0; p < got.size(); ++p) {
    ASSERT_EQ(got[p].rows(), want[p].rows());
    ASSERT_EQ(got[p].cols(), want[p].cols());
    const float* g = got[p].data();
    const float* w = want[p].data();
    for (size_t i = 0; i < got[p].rows() * got[p].cols(); ++i) {
      // Exact equality: the contract is bit-identical weights, not
      // approximately equal ones.
      ASSERT_EQ(g[i], w[i])
          << what << " param=" << p << " elem=" << i << " threads=" << threads;
    }
  }
}

void ExpectBitIdenticalOutcome(const TrainOutcome& got,
                               const TrainOutcome& want, size_t threads) {
  ExpectBitIdenticalMatrices(got.model_params, want.model_params, "model",
                             threads);
  ExpectBitIdenticalMatrices(got.critic_params, want.critic_params, "critic",
                             threads);
  ASSERT_EQ(got.stats.epoch_mean_loss.size(),
            want.stats.epoch_mean_loss.size());
  for (size_t e = 0; e < got.stats.epoch_mean_loss.size(); ++e) {
    EXPECT_EQ(got.stats.epoch_mean_loss[e], want.stats.epoch_mean_loss[e])
        << "epoch=" << e << " threads=" << threads;
  }
  ASSERT_EQ(got.stats.epoch_validation_qerror.size(),
            want.stats.epoch_validation_qerror.size());
  for (size_t e = 0; e < got.stats.epoch_validation_qerror.size(); ++e) {
    EXPECT_EQ(got.stats.epoch_validation_qerror[e],
              want.stats.epoch_validation_qerror[e])
        << "epoch=" << e << " threads=" << threads;
  }
  EXPECT_EQ(got.stats.early_stopped, want.stats.early_stopped)
      << "threads=" << threads;
  EXPECT_EQ(got.stats.examples_used, want.stats.examples_used);
  EXPECT_EQ(got.stats.examples_skipped, want.stats.examples_skipped);
}

TEST(TrainParallelTest, AdversarialTrainingBitIdenticalAcrossThreadCounts) {
  Graph data = DisjointTriangles(6);
  std::vector<TrainingExample> examples = TrainingSet(6);
  for (uint64_t seed : kSeeds) {
    NeurSCConfig config = TrainConfig(seed);
    ASSERT_GT(config.epochs, config.pretrain_epochs)
        << "test must cover the adversarial phase";
    TrainOutcome reference;
    {
      ThreadsGuard guard(1);
      reference = RunTraining(data, config, examples);
    }
    ASSERT_EQ(reference.stats.epoch_mean_loss.size(), config.epochs);
    ASSERT_FALSE(reference.critic_params.empty());
    for (size_t threads : kThreadCounts) {
      ThreadsGuard guard(threads);
      TrainOutcome got = RunTraining(data, config, examples);
      ExpectBitIdenticalOutcome(got, reference, threads);
    }
  }
}

TEST(TrainParallelTest, EarlyStoppingBitIdenticalAcrossThreadCounts) {
  Graph data = DisjointTriangles(6);
  std::vector<TrainingExample> examples = TrainingSet(6);
  for (uint64_t seed : kSeeds) {
    NeurSCConfig config = TrainConfig(seed);
    config.epochs = 10;
    config.validation_fraction = 0.25;
    config.early_stop_patience = 2;
    TrainOutcome reference;
    {
      ThreadsGuard guard(1);
      reference = RunTraining(data, config, examples);
    }
    // The parallel validation loop must both produce the same q-errors and
    // make the same stop/restore decision.
    ASSERT_FALSE(reference.stats.epoch_validation_qerror.empty());
    for (size_t threads : kThreadCounts) {
      ThreadsGuard guard(threads);
      TrainOutcome got = RunTraining(data, config, examples);
      ExpectBitIdenticalOutcome(got, reference, threads);
    }
  }
}

TEST(TrainParallelTest, NoDiscriminatorVariantBitIdentical) {
  Graph data = DisjointTriangles(6);
  std::vector<TrainingExample> examples = TrainingSet(6);
  NeurSCConfig config = TrainConfig(31);
  config.use_discriminator = false;  // NeurSC-D: pure L_c path
  TrainOutcome reference;
  {
    ThreadsGuard guard(1);
    reference = RunTraining(data, config, examples);
  }
  EXPECT_TRUE(reference.critic_params.empty());
  for (size_t threads : kThreadCounts) {
    ThreadsGuard guard(threads);
    TrainOutcome got = RunTraining(data, config, examples);
    ExpectBitIdenticalOutcome(got, reference, threads);
  }
}

TEST(TrainParallelTest, PreparedCacheDoesNotChangeResults) {
  ThreadsGuard guard(8);
  Graph data = DisjointTriangles(6);
  std::vector<TrainingExample> examples = TrainingSet(6);
  NeurSCConfig config = TrainConfig(99);
  TrainOutcome uncached = RunTraining(data, config, examples);

  PreparedQueryCache cache;
  TrainOutcome cold = RunTraining(data, config, examples, &cache);
  EXPECT_GT(cache.misses(), 0u);
  EXPECT_GT(cache.size(), 0u);
  // Duplicate queries in the training set hit within the first pass or on
  // the warm rerun; either way the warm pass must be all hits.
  uint64_t misses_after_cold = cache.misses();
  TrainOutcome warm = RunTraining(data, config, examples, &cache);
  EXPECT_EQ(cache.misses(), misses_after_cold);
  EXPECT_GT(cache.hits(), 0u);

  ExpectBitIdenticalOutcome(cold, uncached, 8);
  ExpectBitIdenticalOutcome(warm, uncached, 8);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace neursc
