#include "common/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace neursc {
namespace {

TEST(CounterTest, AddAndValue) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.counter.basic");
  c->Reset();
  EXPECT_EQ(c->Value(), 0);
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->Value(), 42);
  c->Reset();
  EXPECT_EQ(c->Value(), 0);
}

TEST(CounterTest, SameNameSamePointer) {
  Counter* a = MetricsRegistry::Global().GetCounter("test.counter.shared");
  Counter* b = MetricsRegistry::Global().GetCounter("test.counter.shared");
  EXPECT_EQ(a, b);
}

TEST(CounterTest, MergesAcrossParallelForThreads) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.counter.parallel");
  c->Reset();
  const size_t kTasks = 10000;
  ParallelFor(kTasks, [&](size_t) { c->Add(3); }, /*num_threads=*/8);
  EXPECT_EQ(c->Value(), static_cast<int64_t>(3 * kTasks));
}

TEST(GaugeTest, LastWriteWins) {
  Gauge* g = MetricsRegistry::Global().GetGauge("test.gauge");
  g->Set(2.5);
  EXPECT_DOUBLE_EQ(g->Value(), 2.5);
  g->Set(-1.0);
  EXPECT_DOUBLE_EQ(g->Value(), -1.0);
  g->Reset();
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
}

TEST(HistogramTest, BucketIndexIsMonotone) {
  size_t prev = Histogram::BucketIndex(0.0);
  EXPECT_EQ(prev, 0u);
  for (double v = 1e-9; v < 1e8; v *= 1.05) {
    size_t idx = Histogram::BucketIndex(v);
    EXPECT_GE(idx, prev) << "value " << v;
    EXPECT_LT(idx, Histogram::kNumBuckets);
    prev = idx;
  }
}

TEST(HistogramTest, BucketRepresentativeLandsInOwnBucket) {
  for (double v : {1e-8, 3.7e-4, 0.5, 1.0, 2.0, 123.0, 7.5e6}) {
    size_t idx = Histogram::BucketIndex(v);
    double rep = Histogram::BucketRepresentative(idx);
    EXPECT_EQ(Histogram::BucketIndex(rep), idx) << "value " << v;
    // The representative is within one bucket width (~9%) of any member.
    EXPECT_NEAR(rep / v, 1.0, 0.10) << "value " << v;
  }
}

TEST(HistogramTest, ExactCountSumMinMax) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.hist.exact");
  h->Reset();
  double sum = 0.0;
  for (int i = 1; i <= 100; ++i) {
    h->Record(static_cast<double>(i));
    sum += i;
  }
  EXPECT_EQ(h->Count(), 100u);
  EXPECT_DOUBLE_EQ(h->Sum(), sum);
  EXPECT_DOUBLE_EQ(h->Min(), 1.0);
  EXPECT_DOUBLE_EQ(h->Max(), 100.0);
  EXPECT_DOUBLE_EQ(h->Mean(), sum / 100.0);
}

TEST(HistogramTest, PercentilesWithinBucketResolution) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.hist.pct");
  h->Reset();
  for (int i = 1; i <= 1000; ++i) h->Record(static_cast<double>(i));
  // Buckets are ~9% wide, so allow 10% relative error on the order statistic.
  EXPECT_NEAR(h->Percentile(0.5), 500.0, 50.0);
  EXPECT_NEAR(h->Percentile(0.95), 950.0, 95.0);
  EXPECT_NEAR(h->Percentile(0.99), 990.0, 99.0);
  // The extremes are exact: clamped to the observed min and max.
  EXPECT_DOUBLE_EQ(h->Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h->Percentile(1.0), 1000.0);
}

TEST(HistogramTest, ZeroAndNegativeGoToZeroBucket) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.hist.zero");
  h->Reset();
  h->Record(0.0);
  h->Record(-5.0);
  h->Record(1.0);
  EXPECT_EQ(h->Count(), 3u);
  EXPECT_DOUBLE_EQ(h->Min(), -5.0);
  EXPECT_DOUBLE_EQ(h->Max(), 1.0);
}

TEST(HistogramTest, BucketIndexPinnedValues) {
  // UBSan-audit regression pins (ci.sh stage 7): the +inf guard added to
  // BucketIndex (casting frexp's unspecified-exponent inf mantissa was
  // float-cast-overflow UB) must not move any finite value's bucket.
  // These constants are the pre-fix bucket assignments.
  EXPECT_EQ(Histogram::kNumBuckets, 513u);
  EXPECT_EQ(Histogram::BucketIndex(1e-3), 201u);
  EXPECT_EQ(Histogram::BucketIndex(0.5), 273u);
  EXPECT_EQ(Histogram::BucketIndex(1.0), 281u);
  EXPECT_EQ(Histogram::BucketIndex(3.14159), 293u);
}

TEST(HistogramTest, NonFiniteValuesClampToEndBuckets) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // +inf is "outside the range upward": the overflow bucket, like any
  // too-large finite value. NaN and -inf fail (value > 0) and land in the
  // zero bucket.
  EXPECT_EQ(Histogram::BucketIndex(inf), Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(-inf), 0u);
  EXPECT_EQ(Histogram::BucketIndex(nan), 0u);

  Histogram* h = MetricsRegistry::Global().GetHistogram("test.hist.nonfinite");
  h->Reset();
  h->Record(inf);
  h->Record(1.0);
  EXPECT_EQ(h->Count(), 2u);
  EXPECT_DOUBLE_EQ(h->Min(), 1.0);
  EXPECT_EQ(h->Max(), inf);
}

TEST(HistogramTest, CountMergesAcrossParallelForThreads) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.hist.parallel");
  h->Reset();
  const size_t kTasks = 5000;
  ParallelFor(kTasks,
              [&](size_t i) { h->Record(1e-3 * static_cast<double>(i + 1)); },
              /*num_threads=*/8);
  EXPECT_EQ(h->Count(), kTasks);
  EXPECT_DOUBLE_EQ(h->Min(), 1e-3);
  EXPECT_DOUBLE_EQ(h->Max(), 1e-3 * static_cast<double>(kTasks));
}

TEST(SnapshotTest, ContainsRegisteredMetricsSorted) {
  MetricsRegistry::Global().GetCounter("test.snap.a")->Add(7);
  MetricsRegistry::Global().GetCounter("test.snap.b")->Add(9);
  MetricsRegistry::Global().GetHistogram("test.snap.h")->Record(0.25);
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_TRUE(std::is_sorted(
      snap.counters.begin(), snap.counters.end(),
      [](const auto& x, const auto& y) { return x.name < y.name; }));
  const HistogramSnapshot* h = snap.FindHistogram("test.snap.h");
  ASSERT_NE(h, nullptr);
  EXPECT_GE(h->count, 1u);
  EXPECT_EQ(snap.FindHistogram("test.snap.missing"), nullptr);
}

TEST(SnapshotTest, JsonIsBalancedAndQuoted) {
  MetricsRegistry::Global().GetCounter(R"(test.snap."quoted\name)")->Add(1);
  std::string json = MetricsRegistry::Global().Snapshot().ToJson();
  EXPECT_TRUE(testing_util::IsBalancedJson(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(SnapshotTest, WriteJsonFileRoundTrips) {
  MetricsRegistry::Global().GetCounter("test.snap.file")->Add(3);
  std::string path = ::testing::TempDir() + "/metrics_registry_test.json";
  Status st = MetricsRegistry::Global().Snapshot().WriteJsonFile(path);
  ASSERT_TRUE(st.ok()) << st.ToString();
  std::string contents = testing_util::ReadFileToString(path);
  EXPECT_TRUE(testing_util::IsBalancedJson(contents));
  EXPECT_NE(contents.find("test.snap.file"), std::string::npos);
}

TEST(SnapshotTest, WriteJsonFileReportsBadPath) {
  Status st = MetricsRegistry::Global().Snapshot().WriteJsonFile(
      "/nonexistent-dir-xyz/metrics.json");
  EXPECT_FALSE(st.ok());
}

TEST(MacroTest, CounterMacroAccumulates) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.macro.counter");
  c->Reset();
  for (int i = 0; i < 5; ++i) NEURSC_COUNTER_INC("test.macro.counter");
  NEURSC_COUNTER_ADD("test.macro.counter", 10);
  EXPECT_EQ(c->Value(), 15);
}

TEST(MacroTest, HistogramMacroRecords) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.macro.hist");
  h->Reset();
  NEURSC_HISTOGRAM_RECORD("test.macro.hist", 0.125);
  EXPECT_EQ(h->Count(), 1u);
  EXPECT_DOUBLE_EQ(h->Min(), 0.125);
}

TEST(RegistryTest, ResetZeroesButKeepsPointers) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.reset.counter");
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.reset.hist");
  c->Add(5);
  h->Record(1.0);
  MetricsRegistry::Global().Reset();
  EXPECT_EQ(c->Value(), 0);
  EXPECT_EQ(h->Count(), 0u);
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("test.reset.counter"), c);
  c->Add(2);
  EXPECT_EQ(c->Value(), 2);
}

}  // namespace
}  // namespace neursc
