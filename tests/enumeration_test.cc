#include "matching/enumeration.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/query_generator.h"
#include "test_util.h"

namespace neursc {
namespace {

using testing_util::BruteForceCount;
using testing_util::MakeGraph;

TEST(EnumerationTest, SingleEdgeDistinctLabels) {
  Graph query = MakeGraph({0, 1}, {{0, 1}});
  Graph data = MakeGraph({0, 1, 0, 1}, {{0, 1}, {2, 3}, {0, 3}});
  auto result = CountSubgraphIsomorphisms(query, data);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, 3u);  // 0-1, 2-3, 0-3
  EXPECT_TRUE(result->exact);
}

TEST(EnumerationTest, SingleEdgeSameLabelCountsBothOrientations) {
  Graph query = MakeGraph({0, 0}, {{0, 1}});
  Graph data = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}});
  auto result = CountSubgraphIsomorphisms(query, data);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, 4u);  // each data edge in both orientations
}

TEST(EnumerationTest, TriangleInClique) {
  // K4 unlabeled: 4 choose 3 triangles x 6 automorphisms = 24.
  Graph query = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}, {0, 2}});
  Graph data = MakeGraph({0, 0, 0, 0},
                         {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  auto result = CountSubgraphIsomorphisms(query, data);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, 24u);
}

TEST(EnumerationTest, NoMatchWhenLabelMissing) {
  Graph query = MakeGraph({9, 9}, {{0, 1}});
  Graph data = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}});
  auto result = CountSubgraphIsomorphisms(query, data);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, 0u);
}

TEST(EnumerationTest, QueryLargerThanDataIsZero) {
  Graph query = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}});
  Graph data = MakeGraph({0, 0}, {{0, 1}});
  auto result = CountSubgraphIsomorphisms(query, data);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, 0u);
}

TEST(EnumerationTest, CollectsEmbeddings) {
  Graph query = MakeGraph({0, 1}, {{0, 1}});
  Graph data = MakeGraph({0, 1, 1}, {{0, 1}, {0, 2}});
  EnumerationOptions options;
  options.collect_embeddings = 10;
  auto result = CountSubgraphIsomorphisms(query, data, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, 2u);
  ASSERT_EQ(result->embeddings.size(), 2u);
  for (const auto& embedding : result->embeddings) {
    ASSERT_EQ(embedding.size(), 2u);
    EXPECT_EQ(embedding[0], 0u);
    EXPECT_TRUE(data.HasEdge(embedding[0], embedding[1]));
  }
}

TEST(EnumerationTest, MaxMatchesTruncates) {
  Graph query = MakeGraph({0, 0}, {{0, 1}});
  Graph data = MakeGraph({0, 0, 0, 0},
                         {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  EnumerationOptions options;
  options.max_matches = 3;
  auto result = CountSubgraphIsomorphisms(query, data, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->exact);
  EXPECT_GE(result->count, 3u);
}

TEST(EnumerationTest, EmptyQueryRejected) {
  GraphBuilder b;
  Graph query = std::move(b.Build()).value();
  Graph data = MakeGraph({0}, {});
  EXPECT_FALSE(CountSubgraphIsomorphisms(query, data).ok());
}


TEST(EnumerationTest, ReportsWorkCounters) {
  Graph query = MakeGraph({0, 0}, {{0, 1}});
  Graph data = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}});
  auto result = CountSubgraphIsomorphisms(query, data);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->recursive_calls, 0u);
  EXPECT_GE(result->elapsed_seconds, 0.0);
}

TEST(EnumerationTest, ReusesCallerCandidates) {
  Graph query = MakeGraph({0, 1}, {{0, 1}});
  Graph data = MakeGraph({0, 1, 0, 1}, {{0, 1}, {2, 3}});
  auto cs = ComputeCandidateSets(query, data);
  ASSERT_TRUE(cs.ok());
  auto result =
      CountSubgraphIsomorphismsWithCandidates(query, data, *cs);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, 2u);
  // Mismatched candidate-set arity is rejected.
  CandidateSets wrong;
  wrong.candidates.resize(1);
  EXPECT_FALSE(
      CountSubgraphIsomorphismsWithCandidates(query, data, wrong).ok());
}

TEST(EnumerationTest, StarQueryWithRepeatedLabels) {
  // Center 0, three leaves labeled 1 in data; query asks for 2 leaves.
  Graph data = MakeGraph({0, 1, 1, 1}, {{0, 1}, {0, 2}, {0, 3}});
  Graph query = MakeGraph({0, 1, 1}, {{0, 1}, {0, 2}});
  auto result = CountSubgraphIsomorphisms(query, data);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, 6u);  // 3 * 2 ordered leaf assignments
}


TEST(IsomorphismTest, DetectsRelabeledIsomorphs) {
  Graph a = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}});
  Graph b = MakeGraph({2, 1, 0}, {{0, 1}, {1, 2}});  // reversed order
  EXPECT_TRUE(AreIsomorphic(a, b));
  EXPECT_TRUE(AreIsomorphic(a, a));
}

TEST(IsomorphismTest, RejectsDifferentStructures) {
  Graph path = MakeGraph({0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 3}});
  Graph star = MakeGraph({0, 0, 0, 0}, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_FALSE(AreIsomorphic(path, star));  // same |V|,|E|, degrees differ
  Graph triangle = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}, {0, 2}});
  Graph p3 = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}});
  EXPECT_FALSE(AreIsomorphic(triangle, p3));  // different |E|
}

TEST(IsomorphismTest, LabelsMatter) {
  Graph a = MakeGraph({0, 1}, {{0, 1}});
  Graph b = MakeGraph({0, 0}, {{0, 1}});
  EXPECT_FALSE(AreIsomorphic(a, b));
}

TEST(IsomorphismTest, SameDegreesDifferentWiring) {
  // C6 vs 2xC3 have identical degree sequences but are not isomorphic
  // (2xC3 is disconnected).
  Graph c6 = MakeGraph({0, 0, 0, 0, 0, 0},
                       {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}});
  Graph two_c3 = MakeGraph({0, 0, 0, 0, 0, 0},
                           {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  EXPECT_FALSE(AreIsomorphic(c6, two_c3));
}

TEST(IsomorphismTest, EmptyGraphs) {
  GraphBuilder b1;
  GraphBuilder b2;
  Graph e1 = std::move(b1.Build()).value();
  Graph e2 = std::move(b2.Build()).value();
  EXPECT_TRUE(AreIsomorphic(e1, e2));
}

// Property: the enumerator agrees with brute force on random small
// query/data pairs across seeds and label alphabet sizes.
class EnumerationPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EnumerationPropertyTest, MatchesBruteForce) {
  auto [seed, num_labels] = GetParam();
  auto data = GenerateErdosRenyiGraph(12, 22, num_labels, seed);
  ASSERT_TRUE(data.ok());
  Rng rng(seed * 31 + 1);
  // Random connected query extracted from the data graph itself.
  QueryGeneratorConfig qc;
  qc.query_size = 2 + static_cast<size_t>(seed % 3);
  qc.seed = seed;
  QueryGenerator generator(*data, qc);
  auto query = generator.Generate();
  if (!query.ok()) GTEST_SKIP() << "extraction failed on this seed";
  auto fast = CountSubgraphIsomorphisms(*query, *data);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast->count, BruteForceCount(*query, *data));
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, EnumerationPropertyTest,
    ::testing::Combine(::testing::Range(1, 16), ::testing::Values(1, 2, 4)));

}  // namespace
}  // namespace neursc
