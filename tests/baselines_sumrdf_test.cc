#include "baselines/sumrdf.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "matching/enumeration.h"
#include "test_util.h"

namespace neursc {
namespace {

using testing_util::MakeGraph;

TEST(SumRdfTest, ExactOnHomogeneousEdge) {
  // One bucket per label: the possible-worlds estimate for an edge query
  // with distinct labels equals the real edge count.
  Graph data = MakeGraph({0, 1, 0, 1}, {{0, 1}, {2, 3}, {0, 3}});
  SumRdfEstimator::Options options;
  options.buckets_per_label = 1;
  SumRdfEstimator sumrdf(data, options);
  Graph query = MakeGraph({0, 1}, {{0, 1}});
  auto est = sumrdf.EstimateCount(query);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(*est, 3.0, 1e-6);
}

TEST(SumRdfTest, BucketCountGrowsWithOption) {
  auto data = GenerateErdosRenyiGraph(200, 600, 4, 7);
  ASSERT_TRUE(data.ok());
  SumRdfEstimator::Options one;
  one.buckets_per_label = 1;
  SumRdfEstimator coarse(*data, one);
  SumRdfEstimator::Options four;
  four.buckets_per_label = 4;
  SumRdfEstimator fine(*data, four);
  EXPECT_GT(fine.NumBuckets(), coarse.NumBuckets());
  EXPECT_EQ(coarse.NumBuckets(), data->NumLabels());
}

TEST(SumRdfTest, PathEstimateReasonable) {
  auto data = GenerateErdosRenyiGraph(150, 500, 3, 11);
  ASSERT_TRUE(data.ok());
  SumRdfEstimator sumrdf(*data);
  Graph query = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}});
  auto est = sumrdf.EstimateCount(query);
  ASSERT_TRUE(est.ok());
  auto truth = CountSubgraphIsomorphisms(query, *data);
  ASSERT_TRUE(truth.ok());
  // Homomorphism-style summary estimate: same order of magnitude.
  if (truth->count > 0) {
    EXPECT_GT(*est, 0.01 * static_cast<double>(truth->count));
    EXPECT_LT(*est, 100.0 * static_cast<double>(truth->count));
  }
}

TEST(SumRdfTest, TimesOutOnLargeQueries) {
  auto data = GenerateErdosRenyiGraph(400, 1600, 2, 13);
  ASSERT_TRUE(data.ok());
  SumRdfEstimator::Options options;
  options.buckets_per_label = 8;
  options.time_limit_seconds = 1e-6;
  SumRdfEstimator sumrdf(*data, options);
  // A larger query makes the bucket enumeration blow past the tiny budget.
  GraphBuilder b;
  for (int i = 0; i < 12; ++i) b.AddVertex(i % 2);
  for (int i = 0; i + 1 < 12; ++i) {
    ASSERT_TRUE(b.AddEdge(i, i + 1).ok());
  }
  Graph query = std::move(b.Build()).value();
  auto est = sumrdf.EstimateCount(query);
  EXPECT_FALSE(est.ok());
  EXPECT_TRUE(est.status().IsTimeout());
}

TEST(SumRdfTest, ZeroWhenLabelMissing) {
  Graph data = MakeGraph({0, 1}, {{0, 1}});
  SumRdfEstimator sumrdf(data);
  Graph query = MakeGraph({5, 5}, {{0, 1}});
  auto est = sumrdf.EstimateCount(query);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(*est, 0.0);
}


TEST(SumRdfTest, SingleVertexQueryCountsLabelOccurrences) {
  Graph data = MakeGraph({0, 0, 1}, {{0, 1}, {1, 2}});
  SumRdfEstimator sumrdf(data);
  Graph query = MakeGraph({0}, {});
  auto est = sumrdf.EstimateCount(query);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(*est, 2.0, 1e-6);
}

TEST(SumRdfTest, TriangleOnBipartiteDataIsZero) {
  // Bipartite data (labels alternate): no 0-0 edges, so a same-label
  // triangle has zero summary weight along at least one edge.
  Graph data = MakeGraph({0, 1, 0, 1}, {{0, 1}, {1, 2}, {2, 3}});
  SumRdfEstimator sumrdf(data);
  Graph query = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}, {0, 2}});
  auto est = sumrdf.EstimateCount(query);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(*est, 0.0);
}

}  // namespace
}  // namespace neursc
