// Differential serial-vs-parallel property tests for candidate filtering.
//
// ComputeCandidateSets parallelizes its stage-1 local-pruning loop (and the
// data-profile precomputation feeding it); the contract is that the
// resulting candidate sets are *identical* to a serial run — same vertices,
// same order — for every NEURSC_THREADS value and every option combination.
// The TSan stress case at the bottom is part of the ci.sh sanitizer lane
// (ctest -L concurrency).

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/query_generator.h"
#include "matching/candidate_filter.h"

namespace neursc {
namespace {

class ThreadsGuard {
 public:
  explicit ThreadsGuard(size_t n) {
    const char* old = std::getenv("NEURSC_THREADS");
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    setenv("NEURSC_THREADS", std::to_string(n).c_str(), 1);
  }
  ~ThreadsGuard() {
    if (had_old_) {
      setenv("NEURSC_THREADS", old_.c_str(), 1);
    } else {
      unsetenv("NEURSC_THREADS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

/// Candidate sets computed with the given thread count.
CandidateSets ComputeWithThreads(const Graph& query, const Graph& data,
                                 const CandidateFilterOptions& options,
                                 size_t threads) {
  ThreadsGuard guard(threads);
  auto result = ComputeCandidateSets(query, data, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

void ExpectIdenticalCandidates(const CandidateSets& a,
                               const CandidateSets& b,
                               const std::string& context) {
  ASSERT_EQ(a.candidates.size(), b.candidates.size()) << context;
  for (size_t u = 0; u < a.candidates.size(); ++u) {
    EXPECT_EQ(a.candidates[u], b.candidates[u])
        << context << " query vertex " << u;
  }
}

TEST(CandidateFilterParallelTest, MatchesSerialOnRandomGraphs) {
  const std::vector<CandidateFilterOptions> option_variants = [] {
    CandidateFilterOptions defaults;
    CandidateFilterOptions local_only;
    local_only.local_only = true;
    CandidateFilterOptions homomorphism;
    homomorphism.homomorphism_safe = true;
    CandidateFilterOptions radius2;
    radius2.profile_radius = 2;
    return std::vector<CandidateFilterOptions>{defaults, local_only,
                                               homomorphism, radius2};
  }();
  for (uint64_t seed : {11u, 29u, 47u, 83u, 131u}) {
    GeneratorConfig gconfig;
    gconfig.num_vertices = 220;
    gconfig.num_edges = 700;
    gconfig.num_labels = 6;
    gconfig.seed = seed;
    auto data = GeneratePowerLawGraph(gconfig);
    ASSERT_TRUE(data.ok());
    QueryGeneratorConfig qconfig;
    qconfig.query_size = 5;
    qconfig.seed = seed + 1;
    QueryGenerator generator(*data, qconfig);
    auto queries = generator.GenerateMany(4);
    ASSERT_TRUE(queries.ok());
    for (const Graph& query : *queries) {
      for (const CandidateFilterOptions& options : option_variants) {
        CandidateSets serial =
            ComputeWithThreads(query, *data, options, 1);
        for (size_t threads : {2u, 8u}) {
          CandidateSets parallel =
              ComputeWithThreads(query, *data, options, threads);
          ExpectIdenticalCandidates(
              serial, parallel,
              "seed=" + std::to_string(seed) +
                  " threads=" + std::to_string(threads));
        }
      }
    }
  }
}

TEST(CandidateFilterParallelTest, MatchesSerialOnErdosRenyi) {
  for (uint64_t seed : {5u, 17u, 61u}) {
    auto data = GenerateErdosRenyiGraph(150, 450, 4, seed);
    ASSERT_TRUE(data.ok());
    QueryGeneratorConfig qconfig;
    qconfig.query_size = 4;
    qconfig.edge_keep_probability = 0.7;
    qconfig.seed = seed;
    QueryGenerator generator(*data, qconfig);
    auto queries = generator.GenerateMany(3);
    ASSERT_TRUE(queries.ok());
    for (const Graph& query : *queries) {
      CandidateSets serial = ComputeWithThreads(query, *data, {}, 1);
      CandidateSets parallel = ComputeWithThreads(query, *data, {}, 8);
      ExpectIdenticalCandidates(serial, parallel,
                                "er seed=" + std::to_string(seed));
    }
  }
}

/// TSan stress: repeated 8-thread filtering on a larger graph so the
/// sanitizer lane gets real concurrency over the shared read-only
/// profiles. Run under NEURSC_SANITIZE=thread by ci.sh.
TEST(CandidateFilterParallelTest, TsanStressEightThreads) {
  ThreadsGuard guard(8);
  GeneratorConfig gconfig;
  gconfig.num_vertices = 400;
  gconfig.num_edges = 1600;
  gconfig.num_labels = 5;
  gconfig.seed = 303;
  auto data = GeneratePowerLawGraph(gconfig);
  ASSERT_TRUE(data.ok());
  QueryGeneratorConfig qconfig;
  qconfig.query_size = 6;
  qconfig.seed = 9;
  QueryGenerator generator(*data, qconfig);
  auto queries = generator.GenerateMany(6);
  ASSERT_TRUE(queries.ok());
  for (int iter = 0; iter < 3; ++iter) {
    for (const Graph& query : *queries) {
      auto result = ComputeCandidateSets(query, *data, {});
      ASSERT_TRUE(result.ok());
      ASSERT_EQ(result->candidates.size(), query.NumVertices());
    }
  }
}

}  // namespace
}  // namespace neursc
