#include "matching/bipartite_matching.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace neursc {
namespace {

TEST(BipartiteMatchingTest, PerfectMatchingOnIdentity) {
  BipartiteGraph g(3, 3);
  for (size_t i = 0; i < 3; ++i) g.AddEdge(i, i);
  EXPECT_EQ(MaximumBipartiteMatching(g), 3u);
  EXPECT_TRUE(HasLeftSaturatingMatching(g));
}

TEST(BipartiteMatchingTest, EmptyLeftIsTriviallySaturated) {
  BipartiteGraph g(0, 5);
  EXPECT_EQ(MaximumBipartiteMatching(g), 0u);
  EXPECT_TRUE(HasLeftSaturatingMatching(g));
}

TEST(BipartiteMatchingTest, IsolatedLeftVertexFails) {
  BipartiteGraph g(2, 2);
  g.AddEdge(0, 0);
  EXPECT_FALSE(HasLeftSaturatingMatching(g));
}

TEST(BipartiteMatchingTest, MoreLeftThanRightFails) {
  BipartiteGraph g(3, 2);
  for (size_t l = 0; l < 3; ++l) {
    g.AddEdge(l, 0);
    g.AddEdge(l, 1);
  }
  EXPECT_FALSE(HasLeftSaturatingMatching(g));
  EXPECT_EQ(MaximumBipartiteMatching(g), 2u);
}

TEST(BipartiteMatchingTest, RequiresAugmentingPath) {
  // l0 -> {r0}, l1 -> {r0, r1}: greedy could block l0, Hopcroft-Karp must
  // route l1 to r1.
  BipartiteGraph g(2, 2);
  g.AddEdge(0, 0);
  g.AddEdge(1, 0);
  g.AddEdge(1, 1);
  EXPECT_EQ(MaximumBipartiteMatching(g), 2u);
  EXPECT_TRUE(HasLeftSaturatingMatching(g));
}

TEST(BipartiteMatchingTest, ClassicHallViolation) {
  // Three left vertices all restricted to the same two right vertices.
  BipartiteGraph g(3, 3);
  for (size_t l = 0; l < 3; ++l) {
    g.AddEdge(l, 0);
    g.AddEdge(l, 1);
  }
  EXPECT_EQ(MaximumBipartiteMatching(g), 2u);
  EXPECT_FALSE(HasLeftSaturatingMatching(g));
}

// Property: Hopcroft-Karp matches a simple exhaustive matcher on random
// bipartite graphs.
size_t BruteForceMatching(const BipartiteGraph& g) {
  // Try all subsets of left vertices in decreasing size; check if a
  // perfect assignment of the subset exists via backtracking.
  std::vector<int> owner(g.NumRight(), -1);
  size_t best = 0;
  auto recurse = [&](auto&& self, size_t l, size_t matched) -> void {
    if (l == g.NumLeft()) {
      best = std::max(best, matched);
      return;
    }
    self(self, l + 1, matched);  // skip l
    for (size_t r : g.NeighborsOfLeft(l)) {
      if (owner[r] < 0) {
        owner[r] = static_cast<int>(l);
        self(self, l + 1, matched + 1);
        owner[r] = -1;
      }
    }
  };
  recurse(recurse, 0, 0);
  return best;
}

class BipartitePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BipartitePropertyTest, MatchesBruteForce) {
  Rng rng(GetParam());
  size_t nl = 1 + rng.UniformIndex(5);
  size_t nr = 1 + rng.UniformIndex(5);
  BipartiteGraph g(nl, nr);
  for (size_t l = 0; l < nl; ++l) {
    for (size_t r = 0; r < nr; ++r) {
      if (rng.Bernoulli(0.4)) g.AddEdge(l, r);
    }
  }
  EXPECT_EQ(MaximumBipartiteMatching(g), BruteForceMatching(g));
}

INSTANTIATE_TEST_SUITE_P(RandomBipartite, BipartitePropertyTest,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace neursc
