#include "baselines/sampling.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/query_generator.h"
#include "matching/enumeration.h"
#include "test_util.h"

namespace neursc {
namespace {

using testing_util::MakeGraph;

TEST(ConnectedQueryOrderTest, CoversAllVerticesConnected) {
  Graph query = MakeGraph({0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  auto order = ConnectedQueryOrder(query);
  ASSERT_EQ(order.size(), 4u);
  std::vector<bool> seen(4, false);
  seen[order[0]] = true;
  for (size_t i = 1; i < order.size(); ++i) {
    bool attached = false;
    for (VertexId w : query.Neighbors(order[i])) {
      if (seen[w]) attached = true;
    }
    EXPECT_TRUE(attached) << "vertex " << order[i] << " at position " << i;
    seen[order[i]] = true;
  }
}

TEST(CorrelatedSamplingTest, EstimateNonNegative) {
  auto data = GenerateErdosRenyiGraph(300, 900, 3, 3);
  ASSERT_TRUE(data.ok());
  CorrelatedSamplingEstimator cs(*data);
  Graph query = MakeGraph({0, 1}, {{0, 1}});
  auto est = cs.EstimateCount(query);
  ASSERT_TRUE(est.ok());
  EXPECT_GE(*est, 0.0);
}

TEST(CorrelatedSamplingTest, HighRateApproachesTruth) {
  auto data = GenerateErdosRenyiGraph(200, 600, 2, 5);
  ASSERT_TRUE(data.ok());
  CorrelatedSamplingEstimator::Options options;
  options.sample_probability = 0.999999;
  CorrelatedSamplingEstimator cs(*data, options);
  Graph query = MakeGraph({0, 1}, {{0, 1}});
  auto truth = CountSubgraphIsomorphisms(query, *data);
  ASSERT_TRUE(truth.ok());
  auto est = cs.EstimateCount(query);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(*est, static_cast<double>(truth->count),
              0.01 * truth->count + 1.0);
}

TEST(CorrelatedSamplingTest, SelectiveQueriesCanFail) {
  // A single rare structure is likely lost at a low sampling rate:
  // the estimate collapses to 0 (sampling failure) rather than erroring.
  GraphBuilder b;
  VertexId a = b.AddVertex(5);
  VertexId c = b.AddVertex(6);
  ASSERT_TRUE(b.AddEdge(a, c).ok());
  for (int i = 0; i < 400; ++i) {
    VertexId x = b.AddVertex(0);
    VertexId y = b.AddVertex(0);
    ASSERT_TRUE(b.AddEdge(x, y).ok());
  }
  Graph data = std::move(b.Build()).value();
  CorrelatedSamplingEstimator::Options options;
  options.sample_probability = 0.05;
  options.seed = 12345;
  CorrelatedSamplingEstimator cs(data, options);
  Graph query = MakeGraph({5, 6}, {{0, 1}});
  auto est = cs.EstimateCount(query);
  ASSERT_TRUE(est.ok());
  // With p=0.05 the unique 5-6 edge survives with probability 0.0025.
  EXPECT_DOUBLE_EQ(*est, 0.0);
}

TEST(WanderJoinTest, UnbiasedOnEdgeQuery) {
  auto data = GenerateErdosRenyiGraph(100, 300, 2, 7);
  ASSERT_TRUE(data.ok());
  WanderJoinEstimator::Options options;
  options.num_walks = 2000;
  WanderJoinEstimator wj(*data, options);
  Graph query = MakeGraph({0, 1}, {{0, 1}});
  auto truth = CountSubgraphIsomorphisms(query, *data);
  ASSERT_TRUE(truth.ok());
  auto est = wj.EstimateCount(query);
  ASSERT_TRUE(est.ok());
  // Single-edge walks always succeed: the estimate is exactly the number
  // of label-matching first edges.
  EXPECT_NEAR(*est, static_cast<double>(truth->count),
              0.05 * truth->count + 1.0);
}

TEST(WanderJoinTest, PathQueryWithinTolerance) {
  auto data = GenerateErdosRenyiGraph(80, 240, 2, 9);
  ASSERT_TRUE(data.ok());
  WanderJoinEstimator::Options options;
  options.num_walks = 8000;
  options.seed = 101;
  WanderJoinEstimator wj(*data, options);
  Graph query = MakeGraph({0, 1, 0}, {{0, 1}, {1, 2}});
  auto truth = CountSubgraphIsomorphisms(query, *data);
  ASSERT_TRUE(truth.ok());
  ASSERT_GT(truth->count, 0u);
  auto est = wj.EstimateCount(query);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(*est, static_cast<double>(truth->count),
              0.35 * truth->count + 5.0);
}

TEST(WanderJoinTest, ZeroWhenNoMatchingFirstEdge) {
  Graph data = MakeGraph({0, 0}, {{0, 1}});
  WanderJoinEstimator wj(data);
  Graph query = MakeGraph({5, 6}, {{0, 1}});
  auto est = wj.EstimateCount(query);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(*est, 0.0);
}

TEST(JsubTest, UnbiasedOnPathQuery) {
  auto data = GenerateErdosRenyiGraph(80, 240, 2, 11);
  ASSERT_TRUE(data.ok());
  JsubEstimator::Options options;
  options.num_walks = 8000;
  options.seed = 103;
  JsubEstimator jsub(*data, options);
  Graph query = MakeGraph({0, 1, 0}, {{0, 1}, {1, 2}});
  auto truth = CountSubgraphIsomorphisms(query, *data);
  ASSERT_TRUE(truth.ok());
  ASSERT_GT(truth->count, 0u);
  auto est = jsub.EstimateCount(query);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(*est, static_cast<double>(truth->count),
              0.35 * truth->count + 5.0);
}

TEST(JsubTest, TriangleQueryReasonable) {
  auto data = GenerateErdosRenyiGraph(60, 400, 1, 13);
  ASSERT_TRUE(data.ok());
  JsubEstimator::Options options;
  options.num_walks = 20000;
  JsubEstimator jsub(*data, options);
  Graph query = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}, {0, 2}});
  auto truth = CountSubgraphIsomorphisms(query, *data);
  ASSERT_TRUE(truth.ok());
  if (truth->count == 0) GTEST_SKIP();
  auto est = jsub.EstimateCount(query);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(*est, static_cast<double>(truth->count),
              0.6 * truth->count + 10.0);
}

TEST(JsubTest, ZeroWhenRootLabelMissing) {
  Graph data = MakeGraph({0, 0}, {{0, 1}});
  JsubEstimator jsub(data);
  Graph query = MakeGraph({5, 5}, {{0, 1}});
  auto est = jsub.EstimateCount(query);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(*est, 0.0);
}


TEST(WanderJoinTest, DeadlineReturnsTimeout) {
  auto data = GenerateErdosRenyiGraph(100, 300, 2, 15);
  ASSERT_TRUE(data.ok());
  WanderJoinEstimator::Options options;
  options.time_limit_seconds = -1.0;  // Deadline(<=0) means unlimited...
  options.num_walks = 10;
  WanderJoinEstimator wj(*data, options);
  Graph query = MakeGraph({0, 1}, {{0, 1}});
  auto est = wj.EstimateCount(query);
  EXPECT_TRUE(est.ok());  // unlimited budget still completes
}

TEST(CorrelatedSamplingTest, SampleSharedAcrossQueries) {
  // The "correlated" property: repeated estimates of the same query are
  // identical because the vertex sample is fixed at construction.
  auto data = GenerateErdosRenyiGraph(200, 600, 2, 17);
  ASSERT_TRUE(data.ok());
  CorrelatedSamplingEstimator cs(*data);
  Graph query = MakeGraph({0, 1}, {{0, 1}});
  auto a = cs.EstimateCount(query);
  auto b = cs.EstimateCount(query);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(*a, *b);
}

TEST(JsubTest, DegreeFilteredRootsExcludeSmallVertices) {
  // Root requires degree >= 2; only the center of the star qualifies, so
  // every walk starts there and the estimate is exact for the star.
  Graph data = MakeGraph({0, 1, 1, 1}, {{0, 1}, {0, 2}, {0, 3}});
  JsubEstimator::Options options;
  options.num_walks = 500;
  JsubEstimator jsub(data, options);
  Graph query = MakeGraph({0, 1, 1}, {{0, 1}, {0, 2}});
  auto est = jsub.EstimateCount(query);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(*est, 6.0, 1e-6);
}

}  // namespace
}  // namespace neursc
