// Property-based stress test of the autograd tape: random programs of
// smooth ops over 3x3 matrices must pass a finite-difference gradient
// check, and CHECK-guarded misuse must abort.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/tape.h"
#include "test_util.h"

namespace neursc {
namespace {

using testing_util::MaxGradCheckError;

class TapeFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(TapeFuzzTest, RandomSmoothProgramGradCheck) {
  const int seed = GetParam();
  Rng init_rng(seed);
  Parameter a(Matrix::Uniform(3, 3, -0.8f, 0.8f, &init_rng));
  Parameter b(Matrix::Uniform(3, 3, -0.8f, 0.8f, &init_rng));

  // The program is a fixed random sequence of smooth ops; the RNG that
  // drives op selection is reseeded per build so the loss closure and the
  // backward build follow the identical program.
  auto build = [&](Tape* tape) {
    Rng program(seed * 977 + 3);
    Var x = tape->Leaf(&a);
    Var y = tape->Leaf(&b);
    for (int step = 0; step < 6; ++step) {
      switch (program.UniformIndex(8)) {
        case 0:
          x = tape->Add(x, y);
          break;
        case 1:
          x = tape->Sub(x, y);
          break;
        case 2:
          x = tape->Mul(x, y);
          break;
        case 3:
          x = tape->MatMul(x, y);
          break;
        case 4:
          x = tape->Sigmoid(x);
          break;
        case 5:
          x = tape->Tanh(x);
          break;
        case 6:
          x = tape->Scale(x, 0.7f);
          break;
        case 7:
          y = tape->Tanh(tape->MatMul(y, x));
          break;
      }
    }
    Var joined = tape->Add(tape->Tanh(x), tape->Sigmoid(y));
    return tape->ReduceSum(tape->Mul(joined, joined));
  };

  auto loss = [&]() {
    Tape tape;
    return static_cast<double>(tape.Value(build(&tape)).scalar());
  };
  a.ZeroGrad();
  b.ZeroGrad();
  {
    Tape tape;
    tape.Backward(build(&tape));
  }
  EXPECT_LT(MaxGradCheckError({&a, &b}, loss, 5e-4f), 3e-2)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, TapeFuzzTest,
                         ::testing::Range(0, 20));

using TapeDeathTest = ::testing::Test;

TEST(TapeDeathTest, DoubleBackwardAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Parameter p(Matrix::Scalar(1.0f));
        Tape tape;
        Var x = tape.Leaf(&p);
        Var y = tape.Mul(x, x);
        tape.Backward(y);
        tape.Backward(y);
      },
      "Backward");
}

TEST(TapeDeathTest, NonScalarBackwardAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Parameter p(Matrix(2, 2, 1.0f));
        Tape tape;
        Var x = tape.Leaf(&p);
        tape.Backward(x);
      },
      "scalar");
}

TEST(TapeDeathTest, MatMulShapeMismatchAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Tape tape;
        Var a = tape.Constant(Matrix(2, 3));
        Var b = tape.Constant(Matrix(2, 3));
        tape.MatMul(a, b);
      },
      "matmul");
}

TEST(TapeDeathTest, GatherOutOfRangeAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Tape tape;
        Var a = tape.Constant(Matrix(2, 2));
        tape.GatherRows(a, {5});
      },
      "");
}

}  // namespace
}  // namespace neursc
