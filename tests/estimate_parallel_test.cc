// Differential serial-vs-parallel harness for the estimation hot path.
//
// The threading contract (docs/threading.md) promises that Estimate,
// EstimateOnSubstructures, and EstimateBatch return bit-identical results
// at every NEURSC_THREADS value: all random decisions are drawn from the
// estimator RNG serially before the parallel region, every forward pass
// runs on its own tape with a private RNG, and per-substructure counts are
// reduced in index order. These tests enforce the contract by comparing
// each parallel configuration against the single-threaded reference across
// RNG seeds, including the r_s < 1 sampling path.

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics_registry.h"
#include "common/trace.h"
#include "core/neursc.h"
#include "eval/workload.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "matching/substructure.h"
#include "test_util.h"

namespace neursc {
namespace {

using testing_util::MakeGraph;
using testing_util::ReadFileToString;

constexpr uint64_t kSeeds[] = {31, 77, 123, 4242, 99991};
constexpr size_t kThreadCounts[] = {1, 2, 8};
constexpr double kTol = 1e-10;

/// Scoped NEURSC_THREADS override; restores the previous value on exit so
/// tests do not leak thread settings into each other.
class ThreadsGuard {
 public:
  explicit ThreadsGuard(size_t n) {
    const char* old = std::getenv("NEURSC_THREADS");
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    setenv("NEURSC_THREADS", std::to_string(n).c_str(), 1);
  }
  ~ThreadsGuard() {
    if (had_old_) {
      setenv("NEURSC_THREADS", old_.c_str(), 1);
    } else {
      unsetenv("NEURSC_THREADS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

NeurSCConfig TinyConfig(uint64_t seed) {
  NeurSCConfig config;
  config.west.intra_dim = 8;
  config.west.inter_dim = 8;
  config.west.predictor_hidden = 16;
  config.disc_hidden = 8;
  config.seed = seed;
  return config;
}

/// Data graph with many connected components so extraction yields several
/// substructures per query (the interesting case for the work pool and for
/// r_s sampling): `k` disjoint triangles, uniform label 0.
Graph DisjointTriangles(size_t k) {
  std::vector<Label> labels(3 * k, 0);
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (size_t c = 0; c < k; ++c) {
    VertexId base = static_cast<VertexId>(3 * c);
    edges.push_back({base, static_cast<VertexId>(base + 1)});
    edges.push_back({static_cast<VertexId>(base + 1),
                     static_cast<VertexId>(base + 2)});
    edges.push_back({base, static_cast<VertexId>(base + 2)});
  }
  return MakeGraph(labels, edges);
}

/// Like DisjointTriangles but with components of varying cycle lengths
/// (3..6), so substructures are pairwise non-isomorphic: a wrong r_s
/// sample or a misrouted per-substructure seed changes the final count,
/// which the differential comparison then catches.
Graph MixedCycles(size_t k) {
  std::vector<Label> labels;
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (size_t c = 0; c < k; ++c) {
    size_t len = 3 + (c % 4);
    VertexId base = static_cast<VertexId>(labels.size());
    for (size_t i = 0; i < len; ++i) labels.push_back(0);
    for (size_t i = 0; i < len; ++i) {
      edges.push_back({static_cast<VertexId>(base + i),
                       static_cast<VertexId>(base + (i + 1) % len)});
    }
  }
  return MakeGraph(labels, edges);
}

std::vector<Graph> TestQueries() {
  std::vector<Graph> queries;
  queries.push_back(MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}, {0, 2}}));  // triangle
  queries.push_back(MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}}));          // path
  queries.push_back(MakeGraph({0, 0}, {{0, 1}}));                     // edge
  return queries;
}

/// Runs `fn` under every thread count and checks the outputs against the
/// single-threaded run, field by field, within kTol.
void ExpectSameAcrossThreadCounts(
    const std::function<std::vector<EstimateInfo>(size_t threads)>& run) {
  std::vector<EstimateInfo> reference;
  {
    ThreadsGuard guard(1);
    reference = run(1);
  }
  for (size_t threads : kThreadCounts) {
    ThreadsGuard guard(threads);
    std::vector<EstimateInfo> got = run(threads);
    ASSERT_EQ(got.size(), reference.size()) << "threads=" << threads;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].count, reference[i].count, kTol)
          << "threads=" << threads << " query=" << i;
      EXPECT_EQ(got[i].early_terminated, reference[i].early_terminated)
          << "threads=" << threads << " query=" << i;
      EXPECT_EQ(got[i].num_substructures, reference[i].num_substructures)
          << "threads=" << threads << " query=" << i;
      EXPECT_EQ(got[i].num_used, reference[i].num_used)
          << "threads=" << threads << " query=" << i;
    }
  }
}

TEST(EstimateParallelTest, EstimateMatchesSerialAcrossSeedsAndThreads) {
  Graph data = DisjointTriangles(8);
  std::vector<Graph> queries = TestQueries();
  for (uint64_t seed : kSeeds) {
    ExpectSameAcrossThreadCounts([&](size_t) {
      NeurSCEstimator estimator(data, TinyConfig(seed));
      std::vector<EstimateInfo> infos;
      for (const Graph& q : queries) {
        auto info = estimator.Estimate(q);
        EXPECT_TRUE(info.ok()) << info.status().ToString();
        infos.push_back(*info);
      }
      return infos;
    });
  }
}

TEST(EstimateParallelTest, SamplingPathDrawsSameSampleAtEveryThreadCount) {
  Graph data = MixedCycles(12);
  Graph query = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}, {0, 2}});
  for (uint64_t seed : kSeeds) {
    NeurSCConfig config = TinyConfig(seed);
    config.sample_rate = 0.5;  // r_s < 1: ceil(0.5 * n) substructures
    ExpectSameAcrossThreadCounts([&](size_t) {
      NeurSCEstimator estimator(data, config);
      auto info = estimator.Estimate(query);
      EXPECT_TRUE(info.ok()) << info.status().ToString();
      // The sampled subset must be a strict subset for this test to
      // exercise the shuffle; the components are non-isomorphic, so a
      // thread-count-dependent sample would change the count and fail
      // the comparison.
      EXPECT_LT(info->num_used, info->num_substructures);
      return std::vector<EstimateInfo>{*info};
    });
  }
}

TEST(EstimateParallelTest, EstimateOnSubstructuresMatchesSerial) {
  Graph data = DisjointTriangles(8);
  Graph query = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}, {0, 2}});
  auto ext = ExtractSubstructures(query, data, {});
  ASSERT_TRUE(ext.ok());
  ASSERT_GT(ext->substructures.size(), 1u);
  for (uint64_t seed : kSeeds) {
    ExpectSameAcrossThreadCounts([&](size_t) {
      NeurSCEstimator estimator(data, TinyConfig(seed));
      auto info = estimator.EstimateOnSubstructures(query, *ext);
      EXPECT_TRUE(info.ok()) << info.status().ToString();
      return std::vector<EstimateInfo>{*info};
    });
  }
}

TEST(EstimateParallelTest, EstimateBatchMatchesSequentialEstimate) {
  Graph data = DisjointTriangles(8);
  std::vector<Graph> queries = TestQueries();
  // A query whose label is absent exercises the batch early-termination
  // path in the middle of the pool.
  queries.insert(queries.begin() + 1, MakeGraph({9, 9}, {{0, 1}}));
  for (uint64_t seed : kSeeds) {
    for (size_t threads : kThreadCounts) {
      ThreadsGuard guard(threads);
      NeurSCEstimator sequential(data, TinyConfig(seed));
      std::vector<EstimateInfo> expected;
      for (const Graph& q : queries) {
        auto info = sequential.Estimate(q);
        ASSERT_TRUE(info.ok()) << info.status().ToString();
        expected.push_back(*info);
      }
      NeurSCEstimator batched(data, TinyConfig(seed));
      auto infos = batched.EstimateBatch(queries);
      ASSERT_TRUE(infos.ok()) << infos.status().ToString();
      ASSERT_EQ(infos->size(), queries.size());
      for (size_t i = 0; i < queries.size(); ++i) {
        EXPECT_NEAR((*infos)[i].count, expected[i].count, kTol)
            << "seed=" << seed << " threads=" << threads << " query=" << i;
        EXPECT_EQ((*infos)[i].early_terminated, expected[i].early_terminated);
        EXPECT_EQ((*infos)[i].num_used, expected[i].num_used);
      }
    }
  }
}

TEST(EstimateParallelTest, EstimateBatchOnGeneratedWorkload) {
  auto data = GenerateErdosRenyiGraph(80, 240, 4, 31);
  ASSERT_TRUE(data.ok());
  auto workload = BuildWorkload(*data, {3, 4}, 4);
  ASSERT_TRUE(workload.ok());
  std::vector<size_t> indices(workload->examples.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  for (size_t threads : kThreadCounts) {
    ThreadsGuard guard(threads);
    NeurSCEstimator sequential(*data, TinyConfig(55));
    std::vector<double> expected;
    for (const auto& example : workload->examples) {
      auto info = sequential.Estimate(example.query);
      ASSERT_TRUE(info.ok());
      expected.push_back(info->count);
    }
    NeurSCEstimator batched(*data, TinyConfig(55));
    auto evaluation = EvaluateBatch(&batched, *workload, indices);
    ASSERT_TRUE(evaluation.ok()) << evaluation.status().ToString();
    ASSERT_EQ(evaluation->infos.size(), expected.size());
    ASSERT_EQ(evaluation->signed_qerrors.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR(evaluation->infos[i].count, expected[i], kTol)
          << "threads=" << threads << " query=" << i;
    }
  }
}

TEST(EstimateParallelTest, BatchTimingInvariantsHoldUnderParallelism) {
  ThreadsGuard guard(8);
  Graph data = DisjointTriangles(10);
  std::vector<Graph> queries = TestQueries();
  queries.push_back(MakeGraph({9, 9}, {{0, 1}}));  // early-terminated
  NeurSCEstimator estimator(data, TinyConfig(42));
  auto infos = estimator.EstimateBatch(queries);
  ASSERT_TRUE(infos.ok());
  for (size_t i = 0; i < infos->size(); ++i) {
    const EstimateInfo& info = (*infos)[i];
    EXPECT_GE(info.extraction_seconds, 0.0) << "query=" << i;
    EXPECT_GE(info.inference_seconds, 0.0) << "query=" << i;
    // The headline invariant: the whole-query interval covers extraction
    // plus the inference window even when substructure passes ran on
    // worker threads interleaved with other queries' work.
    EXPECT_GE(info.total_seconds + 1e-12,
              info.extraction_seconds + info.inference_seconds)
        << "query=" << i;
    if (info.early_terminated) {
      EXPECT_EQ(info.num_used, 0u);
      EXPECT_DOUBLE_EQ(info.count, 0.0);
    } else {
      EXPECT_GE(info.num_used, 1u);
      EXPECT_GT(info.inference_seconds, 0.0);
    }
  }
}

TEST(EstimateParallelTest, SingleEstimateTimingInvariantUnderParallelism) {
  ThreadsGuard guard(8);
  Graph data = DisjointTriangles(10);
  NeurSCEstimator estimator(data, TinyConfig(42));
  auto info =
      estimator.Estimate(MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}, {0, 2}}));
  ASSERT_TRUE(info.ok());
  EXPECT_GE(info->total_seconds + 1e-12,
            info->extraction_seconds + info->inference_seconds);
}

TEST(EstimateParallelTest, SubstructureHistogramCountsEveryForwardOnce) {
  ThreadsGuard guard(8);
  Graph data = DisjointTriangles(10);
  std::vector<Graph> queries = TestQueries();
  NeurSCEstimator estimator(data, TinyConfig(42));
  MetricsRegistry::Global().Reset();
  auto infos = estimator.EstimateBatch(queries);
  ASSERT_TRUE(infos.ok());
  size_t expected_forwards = 0;
  for (const EstimateInfo& info : *infos) expected_forwards += info.num_used;
  ASSERT_GT(expected_forwards, 0u);
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  // Each evaluated substructure records exactly one "estimate/substructure"
  // span, no matter which worker thread ran it.
  const HistogramSnapshot* hist =
      snapshot.FindHistogram("span/estimate/substructure");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, expected_forwards);
  for (const CounterSnapshot& counter : snapshot.counters) {
    if (counter.name == "estimate.substructures_evaluated") {
      EXPECT_EQ(counter.value,
                static_cast<int64_t>(expected_forwards));
    }
  }
}

TEST(EstimateParallelTest, WorkerThreadSpansLandInTrace) {
  ThreadsGuard guard(8);
  Graph data = DisjointTriangles(10);
  std::vector<Graph> queries = TestQueries();
  NeurSCEstimator estimator(data, TinyConfig(42));
  TraceRecorder::Global().Stop();
  TraceRecorder::Global().Clear();
  TraceRecorder::Global().Start();
  if (!TraceRecorder::Global().enabled()) {
    GTEST_SKIP() << "tracing vetoed by NEURSC_TRACE=off";
  }
  auto infos = estimator.EstimateBatch(queries);
  ASSERT_TRUE(infos.ok());
  size_t expected_forwards = 0;
  for (const EstimateInfo& info : *infos) expected_forwards += info.num_used;
  // Every worker-side substructure span must be buffered (plus the
  // prepare/infer/batch spans from the calling thread).
  EXPECT_GE(TraceRecorder::Global().EventCount(), expected_forwards + 3);
  const std::string path = ::testing::TempDir() + "/batch_trace.json";
  Status st = TraceRecorder::Global().WriteChromeTrace(path);
  ASSERT_TRUE(st.ok()) << st.ToString();
  std::string json = ReadFileToString(path);
  EXPECT_NE(json.find("estimate/substructure"), std::string::npos);
  EXPECT_NE(json.find("estimate/batch"), std::string::npos);
  TraceRecorder::Global().Stop();
  TraceRecorder::Global().Clear();
}

}  // namespace
}  // namespace neursc
