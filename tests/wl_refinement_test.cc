#include "graph/wl_refinement.h"

#include <gtest/gtest.h>

#include "core/feature_init.h"
#include "graph/generators.h"
#include "nn/modules.h"
#include "test_util.h"

namespace neursc {
namespace {

using testing_util::MakeGraph;

TEST(WlRefinementTest, RegularUnlabeledGraphStaysUniform) {
  // A cycle is vertex-transitive: one color forever.
  Graph cycle = MakeGraph({0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  auto colors = WlColors(cycle);
  for (uint32_t c : colors) EXPECT_EQ(c, colors[0]);
}

TEST(WlRefinementTest, PathEndpointsSeparateFromMiddle) {
  Graph path = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}});
  auto colors = WlColors(path);
  EXPECT_EQ(colors[0], colors[2]);
  EXPECT_NE(colors[0], colors[1]);
}

TEST(WlRefinementTest, LabelsSeedTheColoring) {
  Graph g = MakeGraph({0, 1, 0}, {{0, 1}, {1, 2}});
  auto colors = WlColors(g, 0);
  EXPECT_EQ(colors[0], colors[2]);
  EXPECT_NE(colors[0], colors[1]);
}

TEST(WlRefinementTest, DistinguishesTriangleFromPath) {
  Graph triangle = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}, {0, 2}});
  Graph path = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}});
  EXPECT_TRUE(WlDistinguishes(triangle, path));
}

TEST(WlRefinementTest, IsomorphicGraphsNotDistinguished) {
  Graph a = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}});
  // Same path, different vertex order.
  Graph b = MakeGraph({2, 1, 0}, {{0, 1}, {1, 2}});
  EXPECT_FALSE(WlDistinguishes(a, b));
}

TEST(WlRefinementTest, ClassicWlBlindSpot) {
  // Two 6-vertex 2-regular graphs: C6 vs 2xC3 — 1-WL famously cannot
  // distinguish them (unlabeled).
  Graph c6 = MakeGraph({0, 0, 0, 0, 0, 0},
                       {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}});
  Graph two_c3 = MakeGraph({0, 0, 0, 0, 0, 0},
                           {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  EXPECT_FALSE(WlDistinguishes(c6, two_c3));
}

TEST(WlRefinementTest, RoundLimitWeakensTest) {
  // A long path needs several rounds to separate near-middle vertices;
  // with 0 rounds (initial labels only) everything is one color.
  GraphBuilder b;
  for (int i = 0; i < 9; ++i) b.AddVertex(0);
  for (int i = 0; i + 1 < 9; ++i) EXPECT_TRUE(b.AddEdge(i, i + 1).ok());
  Graph path = std::move(b.Build()).value();
  auto one_round = WlColors(path, 1);
  auto converged = WlColors(path, 0);
  std::set<uint32_t> colors_one(one_round.begin(), one_round.end());
  std::set<uint32_t> colors_full(converged.begin(), converged.end());
  EXPECT_LT(colors_one.size(), colors_full.size());
}

// Theorem 5.3 (empirical): when 1-WL distinguishes two graphs, the
// sum-pooled GIN embedding (random weights) distinguishes them too. Swept
// over random graph pairs; pairs 1-WL cannot distinguish are skipped.
class ExpressivenessTest : public ::testing::TestWithParam<int> {};

TEST_P(ExpressivenessTest, GinSeparatesWlDistinguishablePairs) {
  int seed = GetParam();
  auto g1 = GenerateErdosRenyiGraph(10, 18, 2, seed);
  auto g2 = GenerateErdosRenyiGraph(10, 18, 2, seed + 1000);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  if (!WlDistinguishes(*g1, *g2, 2)) GTEST_SKIP() << "1-WL tie";

  // Shared encoder + 2-layer GIN, as in WEst's intra branch.
  FeatureInitializer features(3, 2, 1);
  Rng rng(seed);
  GinLayer layer1(features.FeatureDim(), 16, &rng);
  GinLayer layer2(16, 16, &rng);

  auto embed = [&](const Graph& g) {
    EdgeIndex edges;
    for (size_t v = 0; v < g.NumVertices(); ++v) {
      for (VertexId w : g.Neighbors(static_cast<VertexId>(v))) {
        edges.Add(static_cast<uint32_t>(w), static_cast<uint32_t>(v));
      }
    }
    Tape tape;
    Var h = tape.Constant(features.Compute(g));
    h = layer1.Forward(&tape, h, edges);
    h = layer2.Forward(&tape, h, edges);
    Var pooled = tape.SumRows(h);
    return tape.Value(pooled);
  };

  Matrix e1 = embed(*g1);
  Matrix e2 = embed(*g2);
  EXPECT_GT(Matrix::MaxAbsDiff(e1, e2), 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(RandomPairs, ExpressivenessTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace neursc
