#include "core/west.h"

#include <gtest/gtest.h>

#include "core/feature_init.h"
#include "matching/substructure.h"
#include "test_util.h"

namespace neursc {
namespace {

using testing_util::MakeGraph;

struct TestFixture {
  Graph query = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}, {0, 2}});
  Graph data = MakeGraph({0, 1, 2, 0, 1, 2},
                         {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5},
                          {2, 3}});
  ExtractionResult extraction;
  FeatureInitializer features{data, 1};

  TestFixture() {
    auto ext = ExtractSubstructures(query, data);
    EXPECT_TRUE(ext.ok());
    extraction = std::move(ext).value();
    EXPECT_FALSE(extraction.early_terminate);
    EXPECT_GE(extraction.substructures.size(), 1u);
  }
};

TEST(BipartiteEdgesTest, CandidateEdgesBothDirections) {
  TestFixture fx;
  Rng rng(1);
  const Substructure& sub = fx.extraction.substructures[0];
  EdgeIndex edges = BuildBipartiteEdges(fx.query, sub, &rng);
  ASSERT_GT(edges.size(), 0u);
  EXPECT_EQ(edges.src.size(), edges.dst.size());
  const size_t nq = fx.query.NumVertices();
  // Every edge crosses the bipartition.
  for (size_t i = 0; i < edges.size(); ++i) {
    bool src_query = edges.src[i] < nq;
    bool dst_query = edges.dst[i] < nq;
    EXPECT_NE(src_query, dst_query);
  }
}

TEST(BipartiteEdgesTest, ConnectsIsolatedVertices) {
  // Substructure with a vertex that is nobody's candidate: the random
  // linking edges must still make G_B connected.
  Graph query = MakeGraph({0, 1}, {{0, 1}});
  Substructure sub;
  sub.graph = MakeGraph({0, 1, 5}, {{0, 1}, {1, 2}});
  sub.original_id = {0, 1, 2};
  sub.local_candidates = {{0}, {1}};  // vertex 2 is isolated in G_B
  Rng rng(2);
  EdgeIndex edges = BuildBipartiteEdges(query, sub, &rng);
  // Union-find check over nq + ns = 5 vertices.
  std::vector<int> parent(5);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (size_t i = 0; i < edges.size(); ++i) {
    parent[find(static_cast<int>(edges.src[i]))] =
        find(static_cast<int>(edges.dst[i]));
  }
  for (int v = 1; v < 5; ++v) EXPECT_EQ(find(v), find(0));
}

TEST(WEstModelTest, ForwardShapesAndPositivity) {
  TestFixture fx;
  WEstConfig config;
  config.intra_dim = 8;
  config.inter_dim = 8;
  config.predictor_hidden = 16;
  WEstModel model(fx.features.FeatureDim(), config);
  Rng rng(3);
  Tape tape;
  const Substructure& sub = fx.extraction.substructures[0];
  auto fw = model.Forward(&tape, fx.query, sub,
                          fx.features.Compute(fx.query),
                          fx.features.Compute(sub.graph), &rng);
  EXPECT_EQ(tape.Value(fw.query_repr).rows(), fx.query.NumVertices());
  EXPECT_EQ(tape.Value(fw.query_repr).cols(), model.ReprDim());
  EXPECT_EQ(tape.Value(fw.sub_repr).rows(), sub.graph.NumVertices());
  EXPECT_GT(tape.Value(fw.prediction).scalar(), 0.0f);
}

TEST(WEstModelTest, IntraOnlyVariantShrinksRepr) {
  TestFixture fx;
  WEstConfig config;
  config.intra_dim = 8;
  config.inter_dim = 8;
  config.use_inter = false;
  WEstModel model(fx.features.FeatureDim(), config);
  EXPECT_EQ(model.ReprDim(), 8u);
  Rng rng(4);
  Tape tape;
  const Substructure& sub = fx.extraction.substructures[0];
  auto fw = model.Forward(&tape, fx.query, sub,
                          fx.features.Compute(fx.query),
                          fx.features.Compute(sub.graph), &rng);
  EXPECT_EQ(tape.Value(fw.query_repr).cols(), 8u);
}

TEST(WEstModelTest, ParameterCountMatchesConfig) {
  WEstConfig config;
  config.intra_layers = 2;
  config.inter_layers = 2;
  WEstModel model(16, config);
  EXPECT_GT(model.Parameters().size(), 0u);
  size_t weights = 0;
  for (Parameter* p : model.Parameters()) weights += p->value.size();
  EXPECT_EQ(weights, model.NumWeights());
}

TEST(WEstModelTest, DeterministicForwardGivenSeeds) {
  TestFixture fx;
  WEstConfig config;
  config.intra_dim = 8;
  config.inter_dim = 8;
  config.seed = 99;
  WEstModel m1(fx.features.FeatureDim(), config);
  WEstModel m2(fx.features.FeatureDim(), config);
  const Substructure& sub = fx.extraction.substructures[0];
  Matrix qf = fx.features.Compute(fx.query);
  Matrix sf = fx.features.Compute(sub.graph);
  Rng r1(5);
  Rng r2(5);
  Tape t1;
  Tape t2;
  auto f1 = m1.Forward(&t1, fx.query, sub, qf, sf, &r1);
  auto f2 = m2.Forward(&t2, fx.query, sub, qf, sf, &r2);
  EXPECT_FLOAT_EQ(t1.Value(f1.prediction).scalar(),
                  t2.Value(f2.prediction).scalar());
}

TEST(WEstModelTest, GradientsFlowToAllParameters) {
  TestFixture fx;
  WEstConfig config;
  config.intra_dim = 6;
  config.inter_dim = 6;
  config.predictor_hidden = 8;
  WEstModel model(fx.features.FeatureDim(), config);
  Rng rng(6);
  Tape tape;
  const Substructure& sub = fx.extraction.substructures[0];
  auto fw = model.Forward(&tape, fx.query, sub,
                          fx.features.Compute(fx.query),
                          fx.features.Compute(sub.graph), &rng);
  Var loss = tape.QErrorLoss(fw.prediction, 12.0);
  tape.Backward(loss);
  size_t nonzero = 0;
  for (Parameter* p : model.Parameters()) {
    if (p->grad.Norm() > 0.0f) ++nonzero;
  }
  // The epsilon parameters may have tiny gradients, but the bulk of the
  // network must receive signal.
  EXPECT_GT(nonzero, model.Parameters().size() / 2);
}


TEST(WEstModelTest, MeanAggregatorVariantRuns) {
  TestFixture fx;
  WEstConfig config;
  config.intra_kind = IntraGnnKind::kMeanAggregator;
  config.intra_dim = 8;
  config.inter_dim = 8;
  WEstModel model(fx.features.FeatureDim(), config);
  Rng rng(7);
  Tape tape;
  const Substructure& sub = fx.extraction.substructures[0];
  auto fw = model.Forward(&tape, fx.query, sub,
                          fx.features.Compute(fx.query),
                          fx.features.Compute(sub.graph), &rng);
  EXPECT_GT(tape.Value(fw.prediction).scalar(), 0.0f);
  EXPECT_EQ(tape.Value(fw.query_repr).cols(), model.ReprDim());
}

}  // namespace
}  // namespace neursc
