#include "common/trace.h"

#include <chrono>
#include <string>
#include <thread>

#include "common/metrics_registry.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace neursc {
namespace {

/// Each test drives the global recorder, so serialize state around it.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Global().Stop();
    TraceRecorder::Global().Clear();
  }
  void TearDown() override {
    TraceRecorder::Global().Stop();
    TraceRecorder::Global().Clear();
  }
};

TEST_F(TraceTest, DisabledByDefaultRecordsNothing) {
  { TraceSpan span("test/disabled"); }
  EXPECT_EQ(TraceRecorder::Global().EventCount(), 0u);
}

TEST_F(TraceTest, SpanRecordsWhenEnabled) {
  TraceRecorder::Global().Start();
  { TraceSpan span("test/enabled"); }
  EXPECT_EQ(TraceRecorder::Global().EventCount(), 1u);
}

TEST_F(TraceTest, EndIsIdempotent) {
  TraceRecorder::Global().Start();
  TraceSpan span("test/idempotent");
  span.End();
  span.End();
  EXPECT_EQ(TraceRecorder::Global().EventCount(), 1u);
}

TEST_F(TraceTest, ElapsedSecondsGrowsAndFreezesAtEnd) {
  TraceSpan span("test/elapsed");
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  span.End();
  double at_end = span.ElapsedSeconds();
  EXPECT_GE(at_end, 0.004);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_DOUBLE_EQ(span.ElapsedSeconds(), at_end);
}

TEST_F(TraceTest, SpanFeedsHistogram) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("span/test.feed");
  h->Reset();
  { TraceSpan span("test.feed", h); }
  EXPECT_EQ(h->Count(), 1u);
  EXPECT_GE(h->Min(), 0.0);
}

TEST_F(TraceTest, SpanMacroFeedsSpanHistogram) {
  Histogram* h =
      MetricsRegistry::Global().GetHistogram("span/test/macro_feed");
  h->Reset();
  { NEURSC_SPAN(span, "test/macro_feed"); }
  EXPECT_EQ(h->Count(), 1u);
}

TEST_F(TraceTest, ClearDiscardsBufferedEvents) {
  TraceRecorder::Global().Start();
  { TraceSpan span("test/cleared"); }
  EXPECT_EQ(TraceRecorder::Global().EventCount(), 1u);
  TraceRecorder::Global().Clear();
  EXPECT_EQ(TraceRecorder::Global().EventCount(), 0u);
}

TEST_F(TraceTest, WriteChromeTraceIsWellFormedAndNested) {
  TraceRecorder::Global().Start();
  {
    TraceSpan outer("test/outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      TraceSpan inner("test/inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  std::string path = ::testing::TempDir() + "/trace_test.json";
  Status st = TraceRecorder::Global().WriteChromeTrace(path);
  ASSERT_TRUE(st.ok()) << st.ToString();
  // Writing stops the recorder.
  EXPECT_FALSE(TraceRecorder::Global().enabled());

  std::string json = testing_util::ReadFileToString(path);
  EXPECT_TRUE(testing_util::IsBalancedJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test/outer\""), std::string::npos);
  EXPECT_NE(json.find("\"test/inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  // Complete events carry timestamps and durations in microseconds.
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST_F(TraceTest, WriteChromeTraceReportsBadPath) {
  TraceRecorder::Global().Start();
  { TraceSpan span("test/badpath"); }
  Status st = TraceRecorder::Global().WriteChromeTrace(
      "/nonexistent-dir-xyz/trace.json");
  EXPECT_FALSE(st.ok());
}

TEST_F(TraceTest, EventsFromWorkerThreadsAreCollected) {
  TraceRecorder::Global().Start();
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([]() {
      for (int i = 0; i < 8; ++i) {
        TraceSpan span("test/worker");
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(TraceRecorder::Global().EventCount(), 32u);
}

TEST_F(TraceTest, DisabledSpanOverheadIsSmall) {
  // With the recorder stopped, a span is two clock reads and an atomic
  // load. Bound the per-span cost loosely so the test stays robust on
  // loaded CI machines while still catching accidental locking or
  // allocation on the disabled path.
  constexpr int kSpans = 200000;
  TraceSpan total("test/overhead_total");
  for (int i = 0; i < kSpans; ++i) {
    TraceSpan span("test/overhead");
  }
  total.End();
  EXPECT_EQ(TraceRecorder::Global().EventCount(), 0u);
  EXPECT_LT(total.ElapsedSeconds() / kSpans, 5e-6);
}

}  // namespace
}  // namespace neursc
