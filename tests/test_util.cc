#include "test_util.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "common/logging.h"

namespace neursc {
namespace testing_util {

Graph MakeGraph(const std::vector<Label>& labels,
                const std::vector<std::pair<VertexId, VertexId>>& edges) {
  GraphBuilder builder;
  for (Label l : labels) builder.AddVertex(l);
  for (const auto& [u, v] : edges) {
    Status st = builder.AddEdge(u, v);
    NEURSC_CHECK(st.ok()) << st.ToString();
  }
  auto built = builder.Build();
  NEURSC_CHECK(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

uint64_t BruteForceCount(const Graph& query, const Graph& data) {
  const size_t nq = query.NumVertices();
  const size_t nd = data.NumVertices();
  if (nq > nd) return 0;
  std::vector<VertexId> mapping(nq, kInvalidVertex);
  std::vector<bool> used(nd, false);
  uint64_t count = 0;

  auto recurse = [&](auto&& self, size_t u) -> void {
    if (u == nq) {
      ++count;
      return;
    }
    for (size_t v = 0; v < nd; ++v) {
      if (used[v]) continue;
      if (data.GetLabel(static_cast<VertexId>(v)) !=
          query.GetLabel(static_cast<VertexId>(u))) {
        continue;
      }
      bool ok = true;
      for (VertexId w : query.Neighbors(static_cast<VertexId>(u))) {
        if (w < u && !data.HasEdge(static_cast<VertexId>(v), mapping[w])) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      mapping[u] = static_cast<VertexId>(v);
      used[v] = true;
      self(self, u + 1);
      used[v] = false;
      mapping[u] = kInvalidVertex;
    }
  };
  recurse(recurse, 0);
  return count;
}

double MaxGradCheckError(const std::vector<Parameter*>& params,
                         const std::function<double()>& loss,
                         float step) {
  double max_rel_error = 0.0;
  for (Parameter* p : params) {
    for (size_t i = 0; i < p->value.size(); ++i) {
      float original = p->value.data()[i];
      p->value.data()[i] = original + step;
      double plus = loss();
      p->value.data()[i] = original - step;
      double minus = loss();
      p->value.data()[i] = original;
      double numeric = (plus - minus) / (2.0 * step);
      double analytic = p->grad.data()[i];
      double denom = std::max({std::abs(numeric), std::abs(analytic), 1.0});
      max_rel_error =
          std::max(max_rel_error, std::abs(numeric - analytic) / denom);
    }
  }
  return max_rel_error;
}

std::string ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  NEURSC_CHECK(f != nullptr) << "cannot open " << path;
  std::string out;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, got);
  }
  std::fclose(f);
  return out;
}

bool IsBalancedJson(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  bool saw_container = false;
  for (char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        saw_container = true;
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return saw_container && stack.empty() && !in_string;
}

}  // namespace testing_util
}  // namespace neursc
