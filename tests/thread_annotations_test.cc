// Tests for the annotated synchronization wrappers (common/mutex.h) and
// the thread-safety annotation macros (common/thread_annotations.h): the
// wrappers must behave exactly like the std primitives they wrap (the
// TSan `concurrency` lane runs this suite under real contention), and
// every macro must compile away to nothing on compilers without the
// capability attributes (GCC).

#include "common/thread_annotations.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "gtest/gtest.h"

namespace neursc {
namespace {

// --- Macro no-op contract ---------------------------------------------------

// Every macro in thread_annotations.h, used once, on a class that the
// whole suite then exercises: if a macro expanded to something invalid on
// this compiler, this file would not build.
class NEURSC_CAPABILITY("mutex") AnnotatedDummyLock {
 public:
  void Lock() NEURSC_ACQUIRE() {}
  void Unlock() NEURSC_RELEASE() {}
  bool TryLock() NEURSC_TRY_ACQUIRE(true) { return true; }
  void AssertHeld() NEURSC_ASSERT_CAPABILITY(this) {}
};

class AnnotatedDummyUser {
 public:
  void LockedOp() NEURSC_REQUIRES(mu_) { ++guarded_; }
  void LockingOp() NEURSC_EXCLUDES(mu_) {
    mu_.Lock();
    ++guarded_;
    mu_.Unlock();
  }
  AnnotatedDummyLock* lock() NEURSC_RETURN_CAPABILITY(mu_) { return &mu_; }
  // Rationale comment required by policy: exercises the exemption macro
  // itself; the body intentionally skips the analysis.
  int Unchecked() NEURSC_NO_THREAD_SAFETY_ANALYSIS { return guarded_; }

 private:
  AnnotatedDummyLock mu_;
  AnnotatedDummyLock later_ NEURSC_ACQUIRED_AFTER(mu_);
  int guarded_ NEURSC_GUARDED_BY(mu_) = 0;
  int* pt_guarded_ NEURSC_PT_GUARDED_BY(mu_) = nullptr;
};

#if !defined(__clang__)
// On compilers without the capability attributes every macro must expand
// to NOTHING — stringifying an invocation yields the empty string. This
// is what keeps GCC builds (including this container's) byte-identical
// with or without the annotation layer.
#define NEURSC_TEST_STR_INNER(x) #x
#define NEURSC_TEST_STR(x) NEURSC_TEST_STR_INNER(x)
static_assert(sizeof(NEURSC_TEST_STR(NEURSC_GUARDED_BY(mu_))) == 1,
              "NEURSC_GUARDED_BY must expand to nothing on non-Clang");
static_assert(sizeof(NEURSC_TEST_STR(NEURSC_REQUIRES(mu_))) == 1,
              "NEURSC_REQUIRES must expand to nothing on non-Clang");
static_assert(sizeof(NEURSC_TEST_STR(NEURSC_CAPABILITY("mutex"))) == 1,
              "NEURSC_CAPABILITY must expand to nothing on non-Clang");
static_assert(sizeof(NEURSC_TEST_STR(NEURSC_SCOPED_CAPABILITY)) == 1,
              "NEURSC_SCOPED_CAPABILITY must expand to nothing on non-Clang");
static_assert(
    sizeof(NEURSC_TEST_STR(NEURSC_NO_THREAD_SAFETY_ANALYSIS)) == 1,
    "NEURSC_NO_THREAD_SAFETY_ANALYSIS must expand to nothing on non-Clang");
static_assert(sizeof(NEURSC_TEST_STR(NEURSC_EXCLUDES(mu_))) == 1,
              "NEURSC_EXCLUDES must expand to nothing on non-Clang");
#undef NEURSC_TEST_STR
#undef NEURSC_TEST_STR_INNER
#endif  // !__clang__

TEST(ThreadAnnotationsTest, MacrosAreInertAtRuntime) {
  AnnotatedDummyUser user;
  user.LockingOp();
  EXPECT_EQ(user.Unchecked(), 1);
}

// --- Mutex / MutexLock behave like std::mutex / std::lock_guard ------------

TEST(MutexTest, MutualExclusionUnderContention) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(&mu);
        ++counter;  // data race (and lost updates) unless mu excludes
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(MutexTest, ManualLockUnlockInterleavesWithMutexLock) {
  Mutex mu;
  int counter = 0;
  std::thread manual([&] {
    for (int i = 0; i < 1000; ++i) {
      mu.Lock();
      ++counter;
      mu.Unlock();
    }
  });
  for (int i = 0; i < 1000; ++i) {
    MutexLock lock(&mu);
    ++counter;
  }
  manual.join();
  EXPECT_EQ(counter, 2000);
}

TEST(MutexTest, TryLockFailsWhileHeldAndSucceedsWhenFree) {
  Mutex mu;
  mu.Lock();
  // std::mutex forbids recursive try_lock, so probe from another thread.
  // Branch directly on the result: the capability is conditional, and the
  // thread-safety analysis (and correctness) require releasing it only on
  // the acquired path.
  bool acquired_while_held = true;
  std::thread probe([&] {
    if (mu.TryLock()) {
      acquired_while_held = true;
      mu.Unlock();
    } else {
      acquired_while_held = false;
    }
  });
  probe.join();
  EXPECT_FALSE(acquired_while_held);
  mu.Unlock();
  bool reacquired = mu.TryLock();
  EXPECT_TRUE(reacquired);
  if (reacquired) mu.Unlock();
}

// --- CondVar behaves like std::condition_variable ---------------------------

TEST(CondVarTest, WaitReleasesMutexAndReacquiresOnSignal) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool observed = false;

  std::thread waiter([&] {
    mu.Lock();
    while (!ready) cv.Wait(&mu);
    observed = true;  // must hold mu again here
    mu.Unlock();
  });

  // If Wait failed to release the mutex, this Lock would deadlock.
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.Signal();
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(CondVarTest, SignalAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int awake = 0;
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      mu.Lock();
      while (!go) cv.Wait(&mu);
      ++awake;
      mu.Unlock();
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.SignalAll();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(awake, kWaiters);
}

TEST(CondVarTest, ProducerConsumerHandshake) {
  Mutex mu;
  CondVar item_cv;
  CondVar space_cv;
  // One-slot queue: strict alternation is the strongest behavioral match
  // with the equivalent std::condition_variable program.
  bool full = false;
  int produced_sum = 0;
  int consumed_sum = 0;
  constexpr int kItems = 500;
  int slot = 0;

  std::thread producer([&] {
    for (int i = 1; i <= kItems; ++i) {
      mu.Lock();
      while (full) space_cv.Wait(&mu);
      slot = i;
      produced_sum += i;
      full = true;
      mu.Unlock();
      item_cv.Signal();
    }
  });
  std::thread consumer([&] {
    for (int i = 1; i <= kItems; ++i) {
      mu.Lock();
      while (!full) item_cv.Wait(&mu);
      consumed_sum += slot;
      full = false;
      mu.Unlock();
      space_cv.Signal();
    }
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(produced_sum, consumed_sum);
  EXPECT_EQ(consumed_sum, kItems * (kItems + 1) / 2);
}

TEST(CondVarTest, SpuriousWakeupTolerantLoopTerminates) {
  // Signal before the waiter sleeps: the while-loop protocol must not
  // hang on a missed notification because the predicate is re-checked
  // under the lock.
  Mutex mu;
  CondVar cv;
  bool done = false;
  {
    MutexLock lock(&mu);
    done = true;
  }
  cv.Signal();  // no waiter yet; the wakeup is "lost"
  mu.Lock();
  while (!done) cv.Wait(&mu);
  mu.Unlock();
  SUCCEED();
}

}  // namespace
}  // namespace neursc
