#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/query_generator.h"
#include "matching/enumeration.h"
#include "test_util.h"

namespace neursc {
namespace {

using testing_util::MakeGraph;

// Brute-force homomorphism counting for validation.
uint64_t BruteForceHomomorphisms(const Graph& query, const Graph& data) {
  const size_t nq = query.NumVertices();
  const size_t nd = data.NumVertices();
  std::vector<VertexId> mapping(nq, kInvalidVertex);
  uint64_t count = 0;
  auto recurse = [&](auto&& self, size_t u) -> void {
    if (u == nq) {
      ++count;
      return;
    }
    for (size_t v = 0; v < nd; ++v) {
      if (data.GetLabel(static_cast<VertexId>(v)) !=
          query.GetLabel(static_cast<VertexId>(u))) {
        continue;
      }
      bool ok = true;
      for (VertexId w : query.Neighbors(static_cast<VertexId>(u))) {
        if (w < u && !data.HasEdge(static_cast<VertexId>(v), mapping[w])) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      mapping[u] = static_cast<VertexId>(v);
      self(self, u + 1);
      mapping[u] = kInvalidVertex;
    }
  };
  recurse(recurse, 0);
  return count;
}

EnumerationOptions Homo() {
  EnumerationOptions options;
  options.homomorphism = true;
  return options;
}

TEST(HomomorphismTest, PathIntoEdgeFoldsBack) {
  // Path a-b-a maps homomorphically onto a single a-b edge (fold), but has
  // no isomorphic embedding there.
  Graph query = MakeGraph({0, 1, 0}, {{0, 1}, {1, 2}});
  Graph data = MakeGraph({0, 1}, {{0, 1}});
  auto iso = CountSubgraphIsomorphisms(query, data);
  ASSERT_TRUE(iso.ok());
  EXPECT_EQ(iso->count, 0u);
  auto hom = CountSubgraphIsomorphisms(query, data, Homo());
  ASSERT_TRUE(hom.ok());
  EXPECT_EQ(hom->count, 1u);  // both path endpoints -> the a vertex
}

TEST(HomomorphismTest, AtLeastAsManyAsIsomorphisms) {
  auto data = GenerateErdosRenyiGraph(20, 50, 2, 3);
  ASSERT_TRUE(data.ok());
  QueryGeneratorConfig qc;
  qc.query_size = 3;
  qc.seed = 5;
  QueryGenerator generator(*data, qc);
  for (int i = 0; i < 5; ++i) {
    auto query = generator.Generate();
    if (!query.ok()) continue;
    auto iso = CountSubgraphIsomorphisms(*query, *data);
    auto hom = CountSubgraphIsomorphisms(*query, *data, Homo());
    ASSERT_TRUE(iso.ok());
    ASSERT_TRUE(hom.ok());
    EXPECT_GE(hom->count, iso->count);
  }
}

TEST(HomomorphismTest, TriangleCannotFold) {
  // Odd cycles admit no homomorphism into bipartite structures, and a
  // triangle's homomorphisms into a triangle are exactly its 6
  // automorphism images.
  Graph triangle = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}, {0, 2}});
  auto hom = CountSubgraphIsomorphisms(triangle, triangle, Homo());
  ASSERT_TRUE(hom.ok());
  EXPECT_EQ(hom->count, 6u);

  Graph edge_graph = MakeGraph({0, 0}, {{0, 1}});
  auto folded = CountSubgraphIsomorphisms(triangle, edge_graph, Homo());
  ASSERT_TRUE(folded.ok());
  EXPECT_EQ(folded->count, 0u);
}

class HomomorphismPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HomomorphismPropertyTest, MatchesBruteForce) {
  auto data = GenerateErdosRenyiGraph(10, 20, 2, GetParam());
  ASSERT_TRUE(data.ok());
  QueryGeneratorConfig qc;
  qc.query_size = 3;
  qc.seed = GetParam() + 50;
  QueryGenerator generator(*data, qc);
  auto query = generator.Generate();
  if (!query.ok()) GTEST_SKIP();
  auto hom = CountSubgraphIsomorphisms(*query, *data, Homo());
  ASSERT_TRUE(hom.ok());
  EXPECT_EQ(hom->count, BruteForceHomomorphisms(*query, *data));
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, HomomorphismPropertyTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace neursc
