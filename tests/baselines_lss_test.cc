#include "baselines/lss.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/workload.h"
#include "graph/generators.h"
#include "test_util.h"

namespace neursc {
namespace {

using testing_util::MakeGraph;

LssEstimator::Options TinyOptions() {
  LssEstimator::Options options;
  options.hidden_dim = 16;
  options.attention_dim = 16;
  options.epochs = 6;
  return options;
}

TEST(LssTest, DecompositionOnePerVertex) {
  auto data = GenerateErdosRenyiGraph(50, 150, 3, 1);
  ASSERT_TRUE(data.ok());
  LssEstimator lss(*data, TinyOptions());
  Graph query = MakeGraph({0, 1, 2, 0}, {{0, 1}, {1, 2}, {2, 3}});
  auto subs = lss.Decompose(query);
  EXPECT_EQ(subs.size(), query.NumVertices());
}

TEST(LssTest, SmallDiameterQueryYieldsIdenticalBalls) {
  // Triangle with k=3 hops: every ball is the whole query — the failure
  // mode Sec. 1 of the NeurSC paper calls out.
  auto data = GenerateErdosRenyiGraph(50, 150, 3, 2);
  ASSERT_TRUE(data.ok());
  LssEstimator lss(*data, TinyOptions());
  Graph query = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}, {0, 2}});
  auto subs = lss.Decompose(query);
  ASSERT_EQ(subs.size(), 3u);
  for (const Graph& s : subs) {
    EXPECT_EQ(s.NumVertices(), 3u);
    EXPECT_EQ(s.NumEdges(), 3u);
  }
}

TEST(LssTest, SmallHopKTruncatesBalls) {
  auto data = GenerateErdosRenyiGraph(50, 150, 3, 3);
  ASSERT_TRUE(data.ok());
  LssEstimator::Options options = TinyOptions();
  options.hop_k = 1;
  LssEstimator lss(*data, options);
  // Path of 5: the 1-hop ball of an endpoint has 2 vertices.
  Graph query = MakeGraph({0, 0, 0, 0, 0},
                          {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto subs = lss.Decompose(query);
  ASSERT_EQ(subs.size(), 5u);
  EXPECT_EQ(subs[0].NumVertices(), 2u);
  EXPECT_EQ(subs[2].NumVertices(), 3u);
}

TEST(LssTest, UntrainedEstimateIsFinitePositive) {
  auto data = GenerateErdosRenyiGraph(60, 180, 3, 4);
  ASSERT_TRUE(data.ok());
  LssEstimator lss(*data, TinyOptions());
  Graph query = MakeGraph({0, 1}, {{0, 1}});
  auto est = lss.EstimateCount(query);
  ASSERT_TRUE(est.ok());
  EXPECT_GT(*est, 0.0);
  EXPECT_TRUE(std::isfinite(*est));
}

TEST(LssTest, TrainingImprovesQError) {
  auto data = GenerateErdosRenyiGraph(100, 300, 3, 5);
  ASSERT_TRUE(data.ok());
  auto workload = BuildWorkload(*data, {3, 4}, 10);
  ASSERT_TRUE(workload.ok());
  LssEstimator lss(*data, TinyOptions());

  auto evaluate = [&]() {
    std::vector<double> qerrors;
    for (const auto& example : workload->examples) {
      auto est = lss.EstimateCount(example.query);
      EXPECT_TRUE(est.ok());
      qerrors.push_back(QError(*est, example.count));
    }
    return GeometricMean(qerrors);
  };

  double before = evaluate();
  ASSERT_TRUE(lss.Train(workload->examples).ok());
  double after = evaluate();
  EXPECT_LT(after, before);
  EXPECT_EQ(lss.epoch_seconds().size(), TinyOptions().epochs);
}

TEST(LssTest, TrainRejectsEmpty) {
  auto data = GenerateErdosRenyiGraph(40, 120, 3, 6);
  ASSERT_TRUE(data.ok());
  LssEstimator lss(*data, TinyOptions());
  EXPECT_FALSE(lss.Train({}).ok());
}

}  // namespace
}  // namespace neursc
