#include "nn/matrix.h"

#include <gtest/gtest.h>

namespace neursc {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_FLOAT_EQ(m.at(1, 2), 1.5f);
  m.at(0, 1) = 7.0f;
  EXPECT_FLOAT_EQ(m.at(0, 1), 7.0f);
}

TEST(MatrixTest, FromRowsAndScalar) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_FLOAT_EQ(m.at(1, 0), 3.0f);
  EXPECT_FLOAT_EQ(Matrix::Scalar(9.0f).scalar(), 9.0f);
}

TEST(MatrixTest, MatMulKnownValues) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = Matrix::MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(MatrixTest, TransposeVariantsAgreeWithExplicit) {
  Rng rng(3);
  Matrix a = Matrix::Uniform(4, 3, -1, 1, &rng);
  Matrix b = Matrix::Uniform(4, 5, -1, 1, &rng);
  // a^T b via MatMulTransposeA.
  Matrix at(3, 4);
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 3; ++c) at.at(c, r) = a.at(r, c);
  }
  Matrix expected = Matrix::MatMul(at, b);
  Matrix got = Matrix::MatMulTransposeA(a, b);
  EXPECT_LT(Matrix::MaxAbsDiff(expected, got), 1e-5f);

  Matrix c = Matrix::Uniform(6, 5, -1, 1, &rng);
  // b c^T via MatMulTransposeB.
  Matrix ct(5, 6);
  for (size_t r = 0; r < 6; ++r) {
    for (size_t k = 0; k < 5; ++k) ct.at(k, r) = c.at(r, k);
  }
  Matrix expected2 = Matrix::MatMul(b, ct);
  Matrix got2 = Matrix::MatMulTransposeB(b, c);
  EXPECT_LT(Matrix::MaxAbsDiff(expected2, got2), 1e-5f);
}

TEST(MatrixTest, InPlaceOps) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{10, 20}});
  a.AddInPlace(b);
  EXPECT_FLOAT_EQ(a.at(0, 0), 11.0f);
  a.AxpyInPlace(0.5f, b);
  EXPECT_FLOAT_EQ(a.at(0, 1), 32.0f);
  a.ScaleInPlace(2.0f);
  EXPECT_FLOAT_EQ(a.at(0, 0), 32.0f);
}

TEST(MatrixTest, ClampInPlace) {
  Matrix m = Matrix::FromRows({{-5, 0.005f, 5}});
  m.ClampInPlace(0.01f);
  EXPECT_FLOAT_EQ(m.at(0, 0), -0.01f);
  EXPECT_FLOAT_EQ(m.at(0, 1), 0.005f);
  EXPECT_FLOAT_EQ(m.at(0, 2), 0.01f);
}

TEST(MatrixTest, NormAndSum) {
  Matrix m = Matrix::FromRows({{3, 4}});
  EXPECT_FLOAT_EQ(m.Norm(), 5.0f);
  EXPECT_FLOAT_EQ(m.Sum(), 7.0f);
}

TEST(MatrixTest, GlorotBounds) {
  Rng rng(1);
  Matrix m = Matrix::GlorotUniform(10, 6, &rng);
  float bound = std::sqrt(6.0f / 16.0f);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::abs(m.data()[i]), bound);
  }
}

TEST(MatrixTest, ZerosOnesFill) {
  Matrix z = Matrix::Zeros(2, 2);
  EXPECT_FLOAT_EQ(z.Sum(), 0.0f);
  Matrix o = Matrix::Ones(2, 2);
  EXPECT_FLOAT_EQ(o.Sum(), 4.0f);
  o.Fill(0.25f);
  EXPECT_FLOAT_EQ(o.Sum(), 1.0f);
}

}  // namespace
}  // namespace neursc
