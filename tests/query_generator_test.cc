#include "graph/query_generator.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace neursc {
namespace {

Graph TestData(uint64_t seed = 11) {
  auto g = GenerateErdosRenyiGraph(200, 700, 6, seed);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(QueryGeneratorTest, ProducesRequestedSize) {
  Graph data = TestData();
  QueryGeneratorConfig config;
  config.query_size = 8;
  QueryGenerator generator(data, config);
  auto q = generator.Generate();
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->NumVertices(), 8u);
  EXPECT_TRUE(q->IsConnected());
}

TEST(QueryGeneratorTest, RejectsTinyQuerySize) {
  Graph data = TestData();
  QueryGeneratorConfig config;
  config.query_size = 1;
  QueryGenerator generator(data, config);
  EXPECT_FALSE(generator.Generate().ok());
}

TEST(QueryGeneratorTest, RejectsQueryLargerThanData) {
  Graph data = TestData();
  QueryGeneratorConfig config;
  config.query_size = 10000;
  QueryGenerator generator(data, config);
  EXPECT_FALSE(generator.Generate().ok());
}

TEST(QueryGeneratorTest, LabelsComeFromData) {
  Graph data = TestData();
  QueryGeneratorConfig config;
  config.query_size = 6;
  QueryGenerator generator(data, config);
  auto q = generator.Generate();
  ASSERT_TRUE(q.ok());
  for (size_t v = 0; v < q->NumVertices(); ++v) {
    EXPECT_LT(q->GetLabel(static_cast<VertexId>(v)), data.NumLabels());
  }
}

TEST(QueryGeneratorTest, SparsifiedQueriesStayConnected) {
  Graph data = TestData();
  QueryGeneratorConfig config;
  config.query_size = 10;
  config.edge_keep_probability = 0.2;
  QueryGenerator generator(data, config);
  for (int i = 0; i < 10; ++i) {
    auto q = generator.Generate();
    if (!q.ok()) continue;
    EXPECT_EQ(q->NumVertices(), 10u);
    EXPECT_TRUE(q->IsConnected());
    EXPECT_GE(q->NumEdges(), 9u);  // at least the spanning tree
  }
}

TEST(QueryGeneratorTest, GenerateManyDeliversCount) {
  Graph data = TestData();
  QueryGeneratorConfig config;
  config.query_size = 4;
  QueryGenerator generator(data, config);
  auto queries = generator.GenerateMany(20);
  ASSERT_TRUE(queries.ok());
  EXPECT_EQ(queries->size(), 20u);
  for (const Graph& q : *queries) {
    EXPECT_EQ(q.NumVertices(), 4u);
    EXPECT_TRUE(q.IsConnected());
  }
}

TEST(QueryGeneratorTest, DeterministicGivenSeed) {
  Graph data = TestData();
  QueryGeneratorConfig config;
  config.query_size = 5;
  config.seed = 77;
  QueryGenerator a(data, config);
  QueryGenerator b(data, config);
  auto qa = a.Generate();
  auto qb = b.Generate();
  ASSERT_TRUE(qa.ok());
  ASSERT_TRUE(qb.ok());
  EXPECT_EQ(qa->NumEdges(), qb->NumEdges());
  for (size_t v = 0; v < qa->NumVertices(); ++v) {
    EXPECT_EQ(qa->GetLabel(static_cast<VertexId>(v)),
              qb->GetLabel(static_cast<VertexId>(v)));
  }
}

// Property sweep: extraction across sizes always yields connected
// subgraphs of the right size whose (label, degree-capped) structure can
// embed into the data graph.
class QuerySizeSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(QuerySizeSweepTest, SizeAndConnectivity) {
  Graph data = TestData(31);
  QueryGeneratorConfig config;
  config.query_size = GetParam();
  config.seed = GetParam();
  QueryGenerator generator(data, config);
  auto q = generator.Generate();
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->NumVertices(), GetParam());
  EXPECT_TRUE(q->IsConnected());
}

INSTANTIATE_TEST_SUITE_P(PaperSizes, QuerySizeSweepTest,
                         ::testing::Values(4u, 8u, 16u, 24u, 32u));

}  // namespace
}  // namespace neursc
