#ifndef NEURSC_TESTS_TEST_UTIL_H_
#define NEURSC_TESTS_TEST_UTIL_H_

#include <functional>
#include <vector>

#include "graph/graph.h"
#include "nn/tape.h"

namespace neursc {
namespace testing_util {

/// Builds a graph from labels + edge list; dies on invalid input.
Graph MakeGraph(const std::vector<Label>& labels,
                const std::vector<std::pair<VertexId, VertexId>>& edges);

/// Exact subgraph isomorphism count by brute force over all injective
/// mappings (only for tiny graphs; used to validate the real enumerator).
uint64_t BruteForceCount(const Graph& query, const Graph& data);

/// Finite-difference gradient check: `loss` recomputes the scalar loss from
/// the current parameter values. Checks every coordinate of every
/// parameter against the analytic gradient stored in param->grad.
/// Returns the max relative error.
double MaxGradCheckError(const std::vector<Parameter*>& params,
                         const std::function<double()>& loss,
                         float step = 1e-3f);

}  // namespace testing_util
}  // namespace neursc

#endif  // NEURSC_TESTS_TEST_UTIL_H_
