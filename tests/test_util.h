#ifndef NEURSC_TESTS_TEST_UTIL_H_
#define NEURSC_TESTS_TEST_UTIL_H_

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "nn/tape.h"

namespace neursc {
namespace testing_util {

/// Builds a graph from labels + edge list; dies on invalid input.
Graph MakeGraph(const std::vector<Label>& labels,
                const std::vector<std::pair<VertexId, VertexId>>& edges);

/// Exact subgraph isomorphism count by brute force over all injective
/// mappings (only for tiny graphs; used to validate the real enumerator).
uint64_t BruteForceCount(const Graph& query, const Graph& data);

/// Finite-difference gradient check: `loss` recomputes the scalar loss from
/// the current parameter values. Checks every coordinate of every
/// parameter against the analytic gradient stored in param->grad.
/// Returns the max relative error.
double MaxGradCheckError(const std::vector<Parameter*>& params,
                         const std::function<double()>& loss,
                         float step = 1e-3f);

/// Whole file as a string; dies if the file cannot be read.
std::string ReadFileToString(const std::string& path);

/// Structural JSON well-formedness: non-empty, braces/brackets balance
/// (string- and escape-aware), and the text is a single object or array.
/// Not a full parser, but catches truncation and quoting bugs.
bool IsBalancedJson(const std::string& text);

}  // namespace testing_util
}  // namespace neursc

#endif  // NEURSC_TESTS_TEST_UTIL_H_
