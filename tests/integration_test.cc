// End-to-end integration: build a dataset stand-in, construct a workload
// with exact ground truth, train NeurSC and LSS, and check the headline
// qualitative claim of the paper at miniature scale — the trained NeurSC
// produces calibrated estimates, and the full pipeline (extraction +
// estimation) stays consistent with exact counting semantics.

#include <gtest/gtest.h>

#include "baselines/cset.h"
#include "baselines/lss.h"
#include "baselines/neursc_adapter.h"
#include "baselines/sampling.h"
#include "eval/metrics.h"
#include "eval/workload.h"
#include "graph/generators.h"

namespace neursc {
namespace {

struct Pipeline {
  Graph data;
  Workload workload;
  WorkloadSplit split;

  static Pipeline Build() {
    // Few labels on a moderately sized graph so that ground-truth counts
    // span several orders of magnitude (a degenerate all-counts-1 workload
    // cannot distinguish trained from untrained models).
    GeneratorConfig config;
    config.num_vertices = 300;
    config.num_edges = 900;
    config.num_labels = 6;
    config.seed = 7;
    auto data = GeneratePowerLawGraph(config);
    EXPECT_TRUE(data.ok());
    auto workload = BuildWorkload(*data, {4}, 24);
    EXPECT_TRUE(workload.ok());
    auto split = SplitWorkload(*workload, 0.8, 5);
    return Pipeline{std::move(data).value(), std::move(workload).value(),
                    std::move(split)};
  }
};

NeurSCConfig SmallConfig() {
  NeurSCConfig config;
  config.west.intra_dim = 16;
  config.west.inter_dim = 16;
  config.west.predictor_hidden = 32;
  config.disc_hidden = 16;
  config.epochs = 10;
  config.pretrain_epochs = 6;
  config.batch_size = 8;
  return config;
}

TEST(IntegrationTest, TrainedNeurSCBeatsUntrained) {
  Pipeline p = Pipeline::Build();
  auto train = Gather(p.workload, p.split.train);

  auto evaluate = [&](NeurSCAdapter& model) {
    std::vector<double> qerrors;
    for (size_t i : p.split.test) {
      const auto& example = p.workload.examples[i];
      auto est = model.EstimateCount(example.query);
      EXPECT_TRUE(est.ok());
      qerrors.push_back(QError(*est, example.count));
    }
    return GeometricMean(qerrors);
  };

  auto untrained = NeurSCAdapter::Full(p.data, SmallConfig());
  double before = evaluate(*untrained);

  auto trained = NeurSCAdapter::Full(p.data, SmallConfig());
  ASSERT_TRUE(trained->Train(train).ok());
  double after = evaluate(*trained);

  EXPECT_LT(after, before);
  // Calibrated at miniature scale: geometric-mean q-error within a loose
  // bound (the bench harnesses report the real distributions).
  EXPECT_LT(after, 50.0);
}

TEST(IntegrationTest, AllVariantsProduceFiniteEstimates) {
  Pipeline p = Pipeline::Build();
  auto train = Gather(p.workload, p.split.train);

  std::vector<std::unique_ptr<NeurSCAdapter>> variants;
  variants.push_back(NeurSCAdapter::Full(p.data, SmallConfig()));
  variants.push_back(NeurSCAdapter::IntraOnly(p.data, SmallConfig()));
  variants.push_back(NeurSCAdapter::Dual(p.data, SmallConfig()));
  variants.push_back(NeurSCAdapter::WithoutExtraction(p.data, SmallConfig()));
  variants.push_back(NeurSCAdapter::WithMetric(p.data, SmallConfig(),
                                               DistanceMetric::kEuclidean));

  for (auto& variant : variants) {
    NeurSCConfig quick = SmallConfig();
    (void)quick;
    ASSERT_TRUE(variant->Train(train).ok()) << variant->Name();
    for (size_t i : p.split.test) {
      auto est = variant->EstimateCount(p.workload.examples[i].query);
      ASSERT_TRUE(est.ok()) << variant->Name();
      EXPECT_TRUE(std::isfinite(*est)) << variant->Name();
      EXPECT_GE(*est, 0.0) << variant->Name();
    }
  }
}

TEST(IntegrationTest, NonLearnedBaselinesRunOnWorkload) {
  Pipeline p = Pipeline::Build();
  CSetEstimator cset(p.data);
  WanderJoinEstimator wj(p.data);
  JsubEstimator jsub(p.data);
  CorrelatedSamplingEstimator cs(p.data);
  std::vector<CardinalityEstimator*> methods = {&cset, &wj, &jsub, &cs};
  for (CardinalityEstimator* method : methods) {
    size_t ok_count = 0;
    for (size_t i : p.split.test) {
      auto est = method->EstimateCount(p.workload.examples[i].query);
      if (est.ok()) {
        EXPECT_GE(*est, 0.0) << method->Name();
        ++ok_count;
      }
    }
    EXPECT_GT(ok_count, 0u) << method->Name();
  }
}

TEST(IntegrationTest, LssTrainsOnSameWorkload) {
  Pipeline p = Pipeline::Build();
  auto train = Gather(p.workload, p.split.train);
  LssEstimator::Options options;
  options.hidden_dim = 16;
  options.attention_dim = 16;
  options.epochs = 6;
  LssEstimator lss(p.data, options);
  ASSERT_TRUE(lss.Train(train).ok());
  std::vector<double> qerrors;
  for (size_t i : p.split.test) {
    const auto& example = p.workload.examples[i];
    auto est = lss.EstimateCount(example.query);
    ASSERT_TRUE(est.ok());
    qerrors.push_back(QError(*est, example.count));
  }
  EXPECT_LT(GeometricMean(qerrors), 1e4);
}

}  // namespace
}  // namespace neursc
