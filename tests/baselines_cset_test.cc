#include "baselines/cset.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "matching/enumeration.h"
#include "test_util.h"

namespace neursc {
namespace {

using testing_util::MakeGraph;

TEST(CSetTest, ExactOnSingleEdgeDistinctLabels) {
  Graph data = MakeGraph({0, 1, 0, 1}, {{0, 1}, {2, 3}, {0, 3}});
  CSetEstimator cset(data);
  Graph query = MakeGraph({0, 1}, {{0, 1}});
  auto est = cset.EstimateCount(query);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(*est, 3.0, 1e-6);
}

TEST(CSetTest, ExactOnSingleEdgeSameLabel) {
  Graph data = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}});
  CSetEstimator cset(data);
  Graph query = MakeGraph({0, 0}, {{0, 1}});
  auto est = cset.EstimateCount(query);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(*est, 4.0, 1e-6);  // 2 edges x 2 orientations
}

TEST(CSetTest, ExactOnStars) {
  // Data: center(0) with three leaves labeled 1, plus noise.
  Graph data = MakeGraph({0, 1, 1, 1, 0, 1},
                         {{0, 1}, {0, 2}, {0, 3}, {4, 5}});
  CSetEstimator cset(data);
  // Star query: center 0, two leaves labeled 1.
  Graph query = MakeGraph({0, 1, 1}, {{0, 1}, {0, 2}});
  auto est = cset.EstimateCount(query);
  ASSERT_TRUE(est.ok());
  auto truth = CountSubgraphIsomorphisms(query, data);
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(truth->count, 6u);  // 3*2 ordered leaf choices
  EXPECT_NEAR(*est, 6.0, 1e-6);
}

TEST(CSetTest, ExactOnPathsThroughCenter) {
  Graph data = MakeGraph({1, 0, 2, 1, 2}, {{0, 1}, {1, 2}, {3, 1}, {1, 4}});
  CSetEstimator cset(data);
  // Path 1-0-2 (labels: leaf 1, center 0, leaf 2).
  Graph query = MakeGraph({1, 0, 2}, {{0, 1}, {1, 2}});
  auto est = cset.EstimateCount(query);
  ASSERT_TRUE(est.ok());
  auto truth = CountSubgraphIsomorphisms(query, data);
  ASSERT_TRUE(truth.ok());
  EXPECT_NEAR(*est, static_cast<double>(truth->count), 1e-6);
}

TEST(CSetTest, ZeroWhenLabelPairAbsent) {
  Graph data = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}});
  CSetEstimator cset(data);
  Graph query = MakeGraph({0, 2}, {{0, 1}});  // no 0-2 edge in data
  auto est = cset.EstimateCount(query);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(*est, 0.0);
}

TEST(CSetTest, TriangleEstimateIsFiniteAndFast) {
  auto data = GenerateErdosRenyiGraph(200, 800, 3, 5);
  ASSERT_TRUE(data.ok());
  CSetEstimator cset(*data);
  Graph query = MakeGraph({0, 1, 2}, {{0, 1}, {1, 2}, {0, 2}});
  auto est = cset.EstimateCount(query);
  ASSERT_TRUE(est.ok());
  EXPECT_GE(*est, 0.0);
  EXPECT_TRUE(std::isfinite(*est));
}

TEST(CSetTest, StarCountMatchesEnumeration) {
  auto data = GenerateErdosRenyiGraph(100, 350, 4, 9);
  ASSERT_TRUE(data.ok());
  CSetEstimator cset(*data);
  // Random star query from the data graph.
  Graph query = MakeGraph({1, 2, 3}, {{0, 1}, {0, 2}});
  auto truth = CountSubgraphIsomorphisms(query, *data);
  ASSERT_TRUE(truth.ok());
  EXPECT_NEAR(cset.StarCount(query, 0),
              static_cast<double>(truth->count),
              1e-6 * std::max<double>(1.0, truth->count));
}


TEST(CSetTest, FallingFactorialForRepeatedLeafLabels) {
  // Star with two leaves of the same label: matches need two *distinct*
  // data leaves, i.e. falling factorial 3*2 = 6 around the data center.
  Graph data = MakeGraph({0, 1, 1, 1}, {{0, 1}, {0, 2}, {0, 3}});
  CSetEstimator cset(data);
  Graph query = MakeGraph({0, 1, 1}, {{0, 1}, {0, 2}});
  EXPECT_NEAR(cset.StarCount(query, 0), 6.0, 1e-9);
  auto truth = CountSubgraphIsomorphisms(query, data);
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(truth->count, 6u);
  auto est = cset.EstimateCount(query);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(*est, 6.0, 1e-6);
}

TEST(CSetTest, StarCountZeroWhenMultiplicityUnmet) {
  // Query needs two leaves labeled 1 but every data center has only one.
  Graph data = MakeGraph({0, 1, 0, 1}, {{0, 1}, {2, 3}});
  CSetEstimator cset(data);
  Graph query = MakeGraph({0, 1, 1}, {{0, 1}, {0, 2}});
  EXPECT_DOUBLE_EQ(cset.StarCount(query, 0), 0.0);
}

}  // namespace
}  // namespace neursc
