# Empty dependencies file for bench_micro_ablations.
# This may be replaced when dependencies are built.
