file(REMOVE_RECURSE
  "../bench/bench_micro_ablations"
  "../bench/bench_micro_ablations.pdb"
  "CMakeFiles/bench_micro_ablations.dir/bench_micro_ablations.cc.o"
  "CMakeFiles/bench_micro_ablations.dir/bench_micro_ablations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
