# Empty dependencies file for bench_fig8_count_ranges.
# This may be replaced when dependencies are built.
