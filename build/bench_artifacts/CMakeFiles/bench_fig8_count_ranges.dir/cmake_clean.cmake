file(REMOVE_RECURSE
  "../bench/bench_fig8_count_ranges"
  "../bench/bench_fig8_count_ranges.pdb"
  "CMakeFiles/bench_fig8_count_ranges.dir/bench_fig8_count_ranges.cc.o"
  "CMakeFiles/bench_fig8_count_ranges.dir/bench_fig8_count_ranges.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_count_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
