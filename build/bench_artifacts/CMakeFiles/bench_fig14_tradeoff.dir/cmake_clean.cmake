file(REMOVE_RECURSE
  "../bench/bench_fig14_tradeoff"
  "../bench/bench_fig14_tradeoff.pdb"
  "CMakeFiles/bench_fig14_tradeoff.dir/bench_fig14_tradeoff.cc.o"
  "CMakeFiles/bench_fig14_tradeoff.dir/bench_fig14_tradeoff.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
