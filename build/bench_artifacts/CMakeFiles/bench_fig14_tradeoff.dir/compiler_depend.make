# Empty compiler generated dependencies file for bench_fig14_tradeoff.
# This may be replaced when dependencies are built.
