file(REMOVE_RECURSE
  "../bench/bench_fig10_robustness"
  "../bench/bench_fig10_robustness.pdb"
  "CMakeFiles/bench_fig10_robustness.dir/bench_fig10_robustness.cc.o"
  "CMakeFiles/bench_fig10_robustness.dir/bench_fig10_robustness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
