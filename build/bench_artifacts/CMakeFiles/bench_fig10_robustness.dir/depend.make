# Empty dependencies file for bench_fig10_robustness.
# This may be replaced when dependencies are built.
