file(REMOVE_RECURSE
  "../bench/bench_fig12_distance"
  "../bench/bench_fig12_distance.pdb"
  "CMakeFiles/bench_fig12_distance.dir/bench_fig12_distance.cc.o"
  "CMakeFiles/bench_fig12_distance.dir/bench_fig12_distance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
