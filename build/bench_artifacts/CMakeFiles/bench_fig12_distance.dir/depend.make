# Empty dependencies file for bench_fig12_distance.
# This may be replaced when dependencies are built.
