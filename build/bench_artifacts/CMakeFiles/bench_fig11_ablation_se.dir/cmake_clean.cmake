file(REMOVE_RECURSE
  "../bench/bench_fig11_ablation_se"
  "../bench/bench_fig11_ablation_se.pdb"
  "CMakeFiles/bench_fig11_ablation_se.dir/bench_fig11_ablation_se.cc.o"
  "CMakeFiles/bench_fig11_ablation_se.dir/bench_fig11_ablation_se.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_ablation_se.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
