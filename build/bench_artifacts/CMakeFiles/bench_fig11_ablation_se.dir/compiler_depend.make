# Empty compiler generated dependencies file for bench_fig11_ablation_se.
# This may be replaced when dependencies are built.
