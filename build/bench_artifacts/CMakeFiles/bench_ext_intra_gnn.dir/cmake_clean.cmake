file(REMOVE_RECURSE
  "../bench/bench_ext_intra_gnn"
  "../bench/bench_ext_intra_gnn.pdb"
  "CMakeFiles/bench_ext_intra_gnn.dir/bench_ext_intra_gnn.cc.o"
  "CMakeFiles/bench_ext_intra_gnn.dir/bench_ext_intra_gnn.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_intra_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
