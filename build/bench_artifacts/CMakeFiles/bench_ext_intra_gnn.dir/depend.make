# Empty dependencies file for bench_ext_intra_gnn.
# This may be replaced when dependencies are built.
