# Empty dependencies file for bench_fig9_query_chars.
# This may be replaced when dependencies are built.
