file(REMOVE_RECURSE
  "../bench/bench_fig9_query_chars"
  "../bench/bench_fig9_query_chars.pdb"
  "CMakeFiles/bench_fig9_query_chars.dir/bench_fig9_query_chars.cc.o"
  "CMakeFiles/bench_fig9_query_chars.dir/bench_fig9_query_chars.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_query_chars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
