file(REMOVE_RECURSE
  "../bench/bench_table4_training_time"
  "../bench/bench_table4_training_time.pdb"
  "CMakeFiles/bench_table4_training_time.dir/bench_table4_training_time.cc.o"
  "CMakeFiles/bench_table4_training_time.dir/bench_table4_training_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_training_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
