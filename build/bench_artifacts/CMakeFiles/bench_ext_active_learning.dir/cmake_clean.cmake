file(REMOVE_RECURSE
  "../bench/bench_ext_active_learning"
  "../bench/bench_ext_active_learning.pdb"
  "CMakeFiles/bench_ext_active_learning.dir/bench_ext_active_learning.cc.o"
  "CMakeFiles/bench_ext_active_learning.dir/bench_ext_active_learning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_active_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
