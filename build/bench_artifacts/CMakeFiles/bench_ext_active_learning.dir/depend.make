# Empty dependencies file for bench_ext_active_learning.
# This may be replaced when dependencies are built.
