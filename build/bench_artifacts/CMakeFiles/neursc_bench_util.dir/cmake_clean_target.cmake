file(REMOVE_RECURSE
  "libneursc_bench_util.a"
)
