# Empty dependencies file for neursc_bench_util.
# This may be replaced when dependencies are built.
