file(REMOVE_RECURSE
  "CMakeFiles/neursc_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/neursc_bench_util.dir/bench_util.cc.o.d"
  "libneursc_bench_util.a"
  "libneursc_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neursc_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
