
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/active_learner.cc" "src/core/CMakeFiles/neursc_core.dir/active_learner.cc.o" "gcc" "src/core/CMakeFiles/neursc_core.dir/active_learner.cc.o.d"
  "/root/repo/src/core/discriminator.cc" "src/core/CMakeFiles/neursc_core.dir/discriminator.cc.o" "gcc" "src/core/CMakeFiles/neursc_core.dir/discriminator.cc.o.d"
  "/root/repo/src/core/feature_init.cc" "src/core/CMakeFiles/neursc_core.dir/feature_init.cc.o" "gcc" "src/core/CMakeFiles/neursc_core.dir/feature_init.cc.o.d"
  "/root/repo/src/core/neursc.cc" "src/core/CMakeFiles/neursc_core.dir/neursc.cc.o" "gcc" "src/core/CMakeFiles/neursc_core.dir/neursc.cc.o.d"
  "/root/repo/src/core/optimal_transport.cc" "src/core/CMakeFiles/neursc_core.dir/optimal_transport.cc.o" "gcc" "src/core/CMakeFiles/neursc_core.dir/optimal_transport.cc.o.d"
  "/root/repo/src/core/west.cc" "src/core/CMakeFiles/neursc_core.dir/west.cc.o" "gcc" "src/core/CMakeFiles/neursc_core.dir/west.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matching/CMakeFiles/neursc_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/neursc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/neursc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/neursc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
