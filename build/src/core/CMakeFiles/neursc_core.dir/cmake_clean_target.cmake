file(REMOVE_RECURSE
  "libneursc_core.a"
)
