# Empty compiler generated dependencies file for neursc_core.
# This may be replaced when dependencies are built.
