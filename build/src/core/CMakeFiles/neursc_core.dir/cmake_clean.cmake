file(REMOVE_RECURSE
  "CMakeFiles/neursc_core.dir/active_learner.cc.o"
  "CMakeFiles/neursc_core.dir/active_learner.cc.o.d"
  "CMakeFiles/neursc_core.dir/discriminator.cc.o"
  "CMakeFiles/neursc_core.dir/discriminator.cc.o.d"
  "CMakeFiles/neursc_core.dir/feature_init.cc.o"
  "CMakeFiles/neursc_core.dir/feature_init.cc.o.d"
  "CMakeFiles/neursc_core.dir/neursc.cc.o"
  "CMakeFiles/neursc_core.dir/neursc.cc.o.d"
  "CMakeFiles/neursc_core.dir/optimal_transport.cc.o"
  "CMakeFiles/neursc_core.dir/optimal_transport.cc.o.d"
  "CMakeFiles/neursc_core.dir/west.cc.o"
  "CMakeFiles/neursc_core.dir/west.cc.o.d"
  "libneursc_core.a"
  "libneursc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neursc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
