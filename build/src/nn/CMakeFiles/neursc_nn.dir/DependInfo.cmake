
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/matrix.cc" "src/nn/CMakeFiles/neursc_nn.dir/matrix.cc.o" "gcc" "src/nn/CMakeFiles/neursc_nn.dir/matrix.cc.o.d"
  "/root/repo/src/nn/modules.cc" "src/nn/CMakeFiles/neursc_nn.dir/modules.cc.o" "gcc" "src/nn/CMakeFiles/neursc_nn.dir/modules.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/neursc_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/neursc_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/neursc_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/neursc_nn.dir/serialize.cc.o.d"
  "/root/repo/src/nn/tape.cc" "src/nn/CMakeFiles/neursc_nn.dir/tape.cc.o" "gcc" "src/nn/CMakeFiles/neursc_nn.dir/tape.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/neursc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
