file(REMOVE_RECURSE
  "libneursc_nn.a"
)
