file(REMOVE_RECURSE
  "CMakeFiles/neursc_nn.dir/matrix.cc.o"
  "CMakeFiles/neursc_nn.dir/matrix.cc.o.d"
  "CMakeFiles/neursc_nn.dir/modules.cc.o"
  "CMakeFiles/neursc_nn.dir/modules.cc.o.d"
  "CMakeFiles/neursc_nn.dir/optimizer.cc.o"
  "CMakeFiles/neursc_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/neursc_nn.dir/serialize.cc.o"
  "CMakeFiles/neursc_nn.dir/serialize.cc.o.d"
  "CMakeFiles/neursc_nn.dir/tape.cc.o"
  "CMakeFiles/neursc_nn.dir/tape.cc.o.d"
  "libneursc_nn.a"
  "libneursc_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neursc_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
