# Empty compiler generated dependencies file for neursc_nn.
# This may be replaced when dependencies are built.
