file(REMOVE_RECURSE
  "libneursc_common.a"
)
