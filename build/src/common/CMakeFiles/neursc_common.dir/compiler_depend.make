# Empty compiler generated dependencies file for neursc_common.
# This may be replaced when dependencies are built.
