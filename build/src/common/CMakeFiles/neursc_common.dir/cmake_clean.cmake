file(REMOVE_RECURSE
  "CMakeFiles/neursc_common.dir/logging.cc.o"
  "CMakeFiles/neursc_common.dir/logging.cc.o.d"
  "CMakeFiles/neursc_common.dir/parallel.cc.o"
  "CMakeFiles/neursc_common.dir/parallel.cc.o.d"
  "CMakeFiles/neursc_common.dir/rng.cc.o"
  "CMakeFiles/neursc_common.dir/rng.cc.o.d"
  "CMakeFiles/neursc_common.dir/status.cc.o"
  "CMakeFiles/neursc_common.dir/status.cc.o.d"
  "libneursc_common.a"
  "libneursc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neursc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
