
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/generators.cc" "src/graph/CMakeFiles/neursc_graph.dir/generators.cc.o" "gcc" "src/graph/CMakeFiles/neursc_graph.dir/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/neursc_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/neursc_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/graph/CMakeFiles/neursc_graph.dir/graph_io.cc.o" "gcc" "src/graph/CMakeFiles/neursc_graph.dir/graph_io.cc.o.d"
  "/root/repo/src/graph/query_generator.cc" "src/graph/CMakeFiles/neursc_graph.dir/query_generator.cc.o" "gcc" "src/graph/CMakeFiles/neursc_graph.dir/query_generator.cc.o.d"
  "/root/repo/src/graph/stats.cc" "src/graph/CMakeFiles/neursc_graph.dir/stats.cc.o" "gcc" "src/graph/CMakeFiles/neursc_graph.dir/stats.cc.o.d"
  "/root/repo/src/graph/wl_refinement.cc" "src/graph/CMakeFiles/neursc_graph.dir/wl_refinement.cc.o" "gcc" "src/graph/CMakeFiles/neursc_graph.dir/wl_refinement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/neursc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
