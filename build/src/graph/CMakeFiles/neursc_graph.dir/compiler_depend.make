# Empty compiler generated dependencies file for neursc_graph.
# This may be replaced when dependencies are built.
