file(REMOVE_RECURSE
  "libneursc_graph.a"
)
