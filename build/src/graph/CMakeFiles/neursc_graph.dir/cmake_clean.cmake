file(REMOVE_RECURSE
  "CMakeFiles/neursc_graph.dir/generators.cc.o"
  "CMakeFiles/neursc_graph.dir/generators.cc.o.d"
  "CMakeFiles/neursc_graph.dir/graph.cc.o"
  "CMakeFiles/neursc_graph.dir/graph.cc.o.d"
  "CMakeFiles/neursc_graph.dir/graph_io.cc.o"
  "CMakeFiles/neursc_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/neursc_graph.dir/query_generator.cc.o"
  "CMakeFiles/neursc_graph.dir/query_generator.cc.o.d"
  "CMakeFiles/neursc_graph.dir/stats.cc.o"
  "CMakeFiles/neursc_graph.dir/stats.cc.o.d"
  "CMakeFiles/neursc_graph.dir/wl_refinement.cc.o"
  "CMakeFiles/neursc_graph.dir/wl_refinement.cc.o.d"
  "libneursc_graph.a"
  "libneursc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neursc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
