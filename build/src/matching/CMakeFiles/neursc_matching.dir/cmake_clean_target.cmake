file(REMOVE_RECURSE
  "libneursc_matching.a"
)
