
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matching/bipartite_matching.cc" "src/matching/CMakeFiles/neursc_matching.dir/bipartite_matching.cc.o" "gcc" "src/matching/CMakeFiles/neursc_matching.dir/bipartite_matching.cc.o.d"
  "/root/repo/src/matching/candidate_filter.cc" "src/matching/CMakeFiles/neursc_matching.dir/candidate_filter.cc.o" "gcc" "src/matching/CMakeFiles/neursc_matching.dir/candidate_filter.cc.o.d"
  "/root/repo/src/matching/enumeration.cc" "src/matching/CMakeFiles/neursc_matching.dir/enumeration.cc.o" "gcc" "src/matching/CMakeFiles/neursc_matching.dir/enumeration.cc.o.d"
  "/root/repo/src/matching/substructure.cc" "src/matching/CMakeFiles/neursc_matching.dir/substructure.cc.o" "gcc" "src/matching/CMakeFiles/neursc_matching.dir/substructure.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/neursc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/neursc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
