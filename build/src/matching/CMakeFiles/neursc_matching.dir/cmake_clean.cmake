file(REMOVE_RECURSE
  "CMakeFiles/neursc_matching.dir/bipartite_matching.cc.o"
  "CMakeFiles/neursc_matching.dir/bipartite_matching.cc.o.d"
  "CMakeFiles/neursc_matching.dir/candidate_filter.cc.o"
  "CMakeFiles/neursc_matching.dir/candidate_filter.cc.o.d"
  "CMakeFiles/neursc_matching.dir/enumeration.cc.o"
  "CMakeFiles/neursc_matching.dir/enumeration.cc.o.d"
  "CMakeFiles/neursc_matching.dir/substructure.cc.o"
  "CMakeFiles/neursc_matching.dir/substructure.cc.o.d"
  "libneursc_matching.a"
  "libneursc_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neursc_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
