# Empty compiler generated dependencies file for neursc_matching.
# This may be replaced when dependencies are built.
