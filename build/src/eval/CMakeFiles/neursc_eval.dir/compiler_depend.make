# Empty compiler generated dependencies file for neursc_eval.
# This may be replaced when dependencies are built.
