file(REMOVE_RECURSE
  "libneursc_eval.a"
)
