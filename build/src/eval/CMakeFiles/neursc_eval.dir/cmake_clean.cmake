file(REMOVE_RECURSE
  "CMakeFiles/neursc_eval.dir/metrics.cc.o"
  "CMakeFiles/neursc_eval.dir/metrics.cc.o.d"
  "CMakeFiles/neursc_eval.dir/reporting.cc.o"
  "CMakeFiles/neursc_eval.dir/reporting.cc.o.d"
  "CMakeFiles/neursc_eval.dir/workload.cc.o"
  "CMakeFiles/neursc_eval.dir/workload.cc.o.d"
  "libneursc_eval.a"
  "libneursc_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neursc_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
