file(REMOVE_RECURSE
  "CMakeFiles/neursc_baselines.dir/cset.cc.o"
  "CMakeFiles/neursc_baselines.dir/cset.cc.o.d"
  "CMakeFiles/neursc_baselines.dir/label_embedding.cc.o"
  "CMakeFiles/neursc_baselines.dir/label_embedding.cc.o.d"
  "CMakeFiles/neursc_baselines.dir/lss.cc.o"
  "CMakeFiles/neursc_baselines.dir/lss.cc.o.d"
  "CMakeFiles/neursc_baselines.dir/neursc_adapter.cc.o"
  "CMakeFiles/neursc_baselines.dir/neursc_adapter.cc.o.d"
  "CMakeFiles/neursc_baselines.dir/nsic.cc.o"
  "CMakeFiles/neursc_baselines.dir/nsic.cc.o.d"
  "CMakeFiles/neursc_baselines.dir/sampling.cc.o"
  "CMakeFiles/neursc_baselines.dir/sampling.cc.o.d"
  "CMakeFiles/neursc_baselines.dir/sumrdf.cc.o"
  "CMakeFiles/neursc_baselines.dir/sumrdf.cc.o.d"
  "libneursc_baselines.a"
  "libneursc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neursc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
