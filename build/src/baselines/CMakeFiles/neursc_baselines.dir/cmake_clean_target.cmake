file(REMOVE_RECURSE
  "libneursc_baselines.a"
)
