# Empty dependencies file for neursc_baselines.
# This may be replaced when dependencies are built.
