
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cset.cc" "src/baselines/CMakeFiles/neursc_baselines.dir/cset.cc.o" "gcc" "src/baselines/CMakeFiles/neursc_baselines.dir/cset.cc.o.d"
  "/root/repo/src/baselines/label_embedding.cc" "src/baselines/CMakeFiles/neursc_baselines.dir/label_embedding.cc.o" "gcc" "src/baselines/CMakeFiles/neursc_baselines.dir/label_embedding.cc.o.d"
  "/root/repo/src/baselines/lss.cc" "src/baselines/CMakeFiles/neursc_baselines.dir/lss.cc.o" "gcc" "src/baselines/CMakeFiles/neursc_baselines.dir/lss.cc.o.d"
  "/root/repo/src/baselines/neursc_adapter.cc" "src/baselines/CMakeFiles/neursc_baselines.dir/neursc_adapter.cc.o" "gcc" "src/baselines/CMakeFiles/neursc_baselines.dir/neursc_adapter.cc.o.d"
  "/root/repo/src/baselines/nsic.cc" "src/baselines/CMakeFiles/neursc_baselines.dir/nsic.cc.o" "gcc" "src/baselines/CMakeFiles/neursc_baselines.dir/nsic.cc.o.d"
  "/root/repo/src/baselines/sampling.cc" "src/baselines/CMakeFiles/neursc_baselines.dir/sampling.cc.o" "gcc" "src/baselines/CMakeFiles/neursc_baselines.dir/sampling.cc.o.d"
  "/root/repo/src/baselines/sumrdf.cc" "src/baselines/CMakeFiles/neursc_baselines.dir/sumrdf.cc.o" "gcc" "src/baselines/CMakeFiles/neursc_baselines.dir/sumrdf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/neursc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/neursc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/neursc_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/neursc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/neursc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
