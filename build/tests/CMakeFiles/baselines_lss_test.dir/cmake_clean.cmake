file(REMOVE_RECURSE
  "CMakeFiles/baselines_lss_test.dir/baselines_lss_test.cc.o"
  "CMakeFiles/baselines_lss_test.dir/baselines_lss_test.cc.o.d"
  "baselines_lss_test"
  "baselines_lss_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_lss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
