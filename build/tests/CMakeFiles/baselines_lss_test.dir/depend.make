# Empty dependencies file for baselines_lss_test.
# This may be replaced when dependencies are built.
