# Empty dependencies file for baselines_sumrdf_test.
# This may be replaced when dependencies are built.
