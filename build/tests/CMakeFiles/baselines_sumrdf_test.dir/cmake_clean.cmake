file(REMOVE_RECURSE
  "CMakeFiles/baselines_sumrdf_test.dir/baselines_sumrdf_test.cc.o"
  "CMakeFiles/baselines_sumrdf_test.dir/baselines_sumrdf_test.cc.o.d"
  "baselines_sumrdf_test"
  "baselines_sumrdf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_sumrdf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
