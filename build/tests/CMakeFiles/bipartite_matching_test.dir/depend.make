# Empty dependencies file for bipartite_matching_test.
# This may be replaced when dependencies are built.
