file(REMOVE_RECURSE
  "CMakeFiles/bipartite_matching_test.dir/bipartite_matching_test.cc.o"
  "CMakeFiles/bipartite_matching_test.dir/bipartite_matching_test.cc.o.d"
  "bipartite_matching_test"
  "bipartite_matching_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bipartite_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
