# Empty dependencies file for neursc_test.
# This may be replaced when dependencies are built.
