file(REMOVE_RECURSE
  "CMakeFiles/neursc_test.dir/neursc_test.cc.o"
  "CMakeFiles/neursc_test.dir/neursc_test.cc.o.d"
  "neursc_test"
  "neursc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neursc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
