file(REMOVE_RECURSE
  "CMakeFiles/neursc_adapter_test.dir/neursc_adapter_test.cc.o"
  "CMakeFiles/neursc_adapter_test.dir/neursc_adapter_test.cc.o.d"
  "neursc_adapter_test"
  "neursc_adapter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neursc_adapter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
