# Empty compiler generated dependencies file for neursc_adapter_test.
# This may be replaced when dependencies are built.
