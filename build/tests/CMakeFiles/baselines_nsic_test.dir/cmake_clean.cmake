file(REMOVE_RECURSE
  "CMakeFiles/baselines_nsic_test.dir/baselines_nsic_test.cc.o"
  "CMakeFiles/baselines_nsic_test.dir/baselines_nsic_test.cc.o.d"
  "baselines_nsic_test"
  "baselines_nsic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_nsic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
