# Empty compiler generated dependencies file for feature_init_test.
# This may be replaced when dependencies are built.
