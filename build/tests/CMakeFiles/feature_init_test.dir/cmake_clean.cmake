file(REMOVE_RECURSE
  "CMakeFiles/feature_init_test.dir/feature_init_test.cc.o"
  "CMakeFiles/feature_init_test.dir/feature_init_test.cc.o.d"
  "feature_init_test"
  "feature_init_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_init_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
