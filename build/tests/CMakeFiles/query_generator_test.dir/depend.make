# Empty dependencies file for query_generator_test.
# This may be replaced when dependencies are built.
