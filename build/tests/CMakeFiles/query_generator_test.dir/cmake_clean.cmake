file(REMOVE_RECURSE
  "CMakeFiles/query_generator_test.dir/query_generator_test.cc.o"
  "CMakeFiles/query_generator_test.dir/query_generator_test.cc.o.d"
  "query_generator_test"
  "query_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
