# Empty dependencies file for tape_fuzz_test.
# This may be replaced when dependencies are built.
