file(REMOVE_RECURSE
  "CMakeFiles/tape_fuzz_test.dir/tape_fuzz_test.cc.o"
  "CMakeFiles/tape_fuzz_test.dir/tape_fuzz_test.cc.o.d"
  "tape_fuzz_test"
  "tape_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tape_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
