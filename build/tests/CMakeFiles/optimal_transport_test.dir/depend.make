# Empty dependencies file for optimal_transport_test.
# This may be replaced when dependencies are built.
