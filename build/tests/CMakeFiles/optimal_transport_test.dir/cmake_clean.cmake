file(REMOVE_RECURSE
  "CMakeFiles/optimal_transport_test.dir/optimal_transport_test.cc.o"
  "CMakeFiles/optimal_transport_test.dir/optimal_transport_test.cc.o.d"
  "optimal_transport_test"
  "optimal_transport_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimal_transport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
