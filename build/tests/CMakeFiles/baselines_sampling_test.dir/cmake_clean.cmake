file(REMOVE_RECURSE
  "CMakeFiles/baselines_sampling_test.dir/baselines_sampling_test.cc.o"
  "CMakeFiles/baselines_sampling_test.dir/baselines_sampling_test.cc.o.d"
  "baselines_sampling_test"
  "baselines_sampling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
