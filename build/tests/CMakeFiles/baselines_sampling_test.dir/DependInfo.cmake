
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_sampling_test.cc" "tests/CMakeFiles/baselines_sampling_test.dir/baselines_sampling_test.cc.o" "gcc" "tests/CMakeFiles/baselines_sampling_test.dir/baselines_sampling_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/neursc_test_util.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/neursc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/neursc_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/neursc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/neursc_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/neursc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/neursc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/neursc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
