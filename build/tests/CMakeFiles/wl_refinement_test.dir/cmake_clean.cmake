file(REMOVE_RECURSE
  "CMakeFiles/wl_refinement_test.dir/wl_refinement_test.cc.o"
  "CMakeFiles/wl_refinement_test.dir/wl_refinement_test.cc.o.d"
  "wl_refinement_test"
  "wl_refinement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wl_refinement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
