# Empty dependencies file for wl_refinement_test.
# This may be replaced when dependencies are built.
