file(REMOVE_RECURSE
  "CMakeFiles/west_test.dir/west_test.cc.o"
  "CMakeFiles/west_test.dir/west_test.cc.o.d"
  "west_test"
  "west_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/west_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
