# Empty dependencies file for west_test.
# This may be replaced when dependencies are built.
