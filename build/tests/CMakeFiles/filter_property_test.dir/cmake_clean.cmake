file(REMOVE_RECURSE
  "CMakeFiles/filter_property_test.dir/filter_property_test.cc.o"
  "CMakeFiles/filter_property_test.dir/filter_property_test.cc.o.d"
  "filter_property_test"
  "filter_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
