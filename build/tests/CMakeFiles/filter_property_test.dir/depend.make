# Empty dependencies file for filter_property_test.
# This may be replaced when dependencies are built.
