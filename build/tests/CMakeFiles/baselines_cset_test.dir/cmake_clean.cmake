file(REMOVE_RECURSE
  "CMakeFiles/baselines_cset_test.dir/baselines_cset_test.cc.o"
  "CMakeFiles/baselines_cset_test.dir/baselines_cset_test.cc.o.d"
  "baselines_cset_test"
  "baselines_cset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_cset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
