# Empty compiler generated dependencies file for baselines_cset_test.
# This may be replaced when dependencies are built.
