# Empty compiler generated dependencies file for active_learner_test.
# This may be replaced when dependencies are built.
