file(REMOVE_RECURSE
  "CMakeFiles/active_learner_test.dir/active_learner_test.cc.o"
  "CMakeFiles/active_learner_test.dir/active_learner_test.cc.o.d"
  "active_learner_test"
  "active_learner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_learner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
