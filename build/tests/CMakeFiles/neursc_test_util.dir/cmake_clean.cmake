file(REMOVE_RECURSE
  "CMakeFiles/neursc_test_util.dir/test_util.cc.o"
  "CMakeFiles/neursc_test_util.dir/test_util.cc.o.d"
  "libneursc_test_util.a"
  "libneursc_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neursc_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
