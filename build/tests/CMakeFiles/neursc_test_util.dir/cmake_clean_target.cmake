file(REMOVE_RECURSE
  "libneursc_test_util.a"
)
