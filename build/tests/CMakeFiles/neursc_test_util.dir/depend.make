# Empty dependencies file for neursc_test_util.
# This may be replaced when dependencies are built.
