# Empty compiler generated dependencies file for label_embedding_test.
# This may be replaced when dependencies are built.
