file(REMOVE_RECURSE
  "CMakeFiles/label_embedding_test.dir/label_embedding_test.cc.o"
  "CMakeFiles/label_embedding_test.dir/label_embedding_test.cc.o.d"
  "label_embedding_test"
  "label_embedding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/label_embedding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
