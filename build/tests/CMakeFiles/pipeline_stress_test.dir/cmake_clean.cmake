file(REMOVE_RECURSE
  "CMakeFiles/pipeline_stress_test.dir/pipeline_stress_test.cc.o"
  "CMakeFiles/pipeline_stress_test.dir/pipeline_stress_test.cc.o.d"
  "pipeline_stress_test"
  "pipeline_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
