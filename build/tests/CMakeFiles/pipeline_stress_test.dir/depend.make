# Empty dependencies file for pipeline_stress_test.
# This may be replaced when dependencies are built.
