# Empty dependencies file for candidate_filter_test.
# This may be replaced when dependencies are built.
