file(REMOVE_RECURSE
  "CMakeFiles/candidate_filter_test.dir/candidate_filter_test.cc.o"
  "CMakeFiles/candidate_filter_test.dir/candidate_filter_test.cc.o.d"
  "candidate_filter_test"
  "candidate_filter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candidate_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
