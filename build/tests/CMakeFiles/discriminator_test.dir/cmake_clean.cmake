file(REMOVE_RECURSE
  "CMakeFiles/discriminator_test.dir/discriminator_test.cc.o"
  "CMakeFiles/discriminator_test.dir/discriminator_test.cc.o.d"
  "discriminator_test"
  "discriminator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discriminator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
