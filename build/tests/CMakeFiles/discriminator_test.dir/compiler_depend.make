# Empty compiler generated dependencies file for discriminator_test.
# This may be replaced when dependencies are built.
