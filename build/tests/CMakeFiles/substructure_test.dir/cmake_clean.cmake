file(REMOVE_RECURSE
  "CMakeFiles/substructure_test.dir/substructure_test.cc.o"
  "CMakeFiles/substructure_test.dir/substructure_test.cc.o.d"
  "substructure_test"
  "substructure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/substructure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
