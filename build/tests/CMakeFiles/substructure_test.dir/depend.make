# Empty dependencies file for substructure_test.
# This may be replaced when dependencies are built.
