file(REMOVE_RECURSE
  "CMakeFiles/motif_analysis.dir/motif_analysis.cpp.o"
  "CMakeFiles/motif_analysis.dir/motif_analysis.cpp.o.d"
  "motif_analysis"
  "motif_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motif_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
