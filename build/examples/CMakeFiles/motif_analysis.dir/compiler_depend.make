# Empty compiler generated dependencies file for motif_analysis.
# This may be replaced when dependencies are built.
