file(REMOVE_RECURSE
  "CMakeFiles/neursc_cli.dir/neursc_cli.cpp.o"
  "CMakeFiles/neursc_cli.dir/neursc_cli.cpp.o.d"
  "neursc_cli"
  "neursc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neursc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
