# Empty dependencies file for neursc_cli.
# This may be replaced when dependencies are built.
