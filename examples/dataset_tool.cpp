// Scenario: dataset management CLI. Generates a stand-in for any of the
// paper's 7 datasets (or a custom configuration), writes it in the standard
// `t/v/e` text format, reloads it, and extracts a query workload — the
// plumbing a practitioner needs before running their own experiments.
//
// Usage:
//   dataset_tool [profile-name] [output-path]
// Defaults: Yeast, /tmp/neursc_dataset.graph

#include <cstdio>
#include <string>

#include "eval/workload.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/stats.h"

using namespace neursc;

int main(int argc, char** argv) {
  std::string profile_name = argc > 1 ? argv[1] : "Yeast";
  std::string path = argc > 2 ? argv[2] : "/tmp/neursc_dataset.graph";

  auto profile = FindDatasetProfile(profile_name);
  if (!profile.ok()) {
    std::fprintf(stderr, "unknown profile '%s'; available:",
                 profile_name.c_str());
    for (const auto& p : AllDatasetProfiles()) {
      std::fprintf(stderr, " %s", p.name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }

  auto graph = GenerateDataset(*profile, 0, 42);
  if (!graph.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("generated %s stand-in: %s\n", profile->name.c_str(),
              graph->Summary().c_str());
  std::printf("  label entropy %.3f, degree entropy %.3f\n",
              LabelEntropy(*graph), DegreeEntropy(*graph));

  Status st = WriteGraphToFile(*graph, path);
  if (!st.ok()) {
    std::fprintf(stderr, "write: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());

  auto reloaded = ReadGraphFromFile(path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "reload: %s\n",
                 reloaded.status().ToString().c_str());
    return 1;
  }
  std::printf("reloaded: %s (round-trip ok)\n",
              reloaded->Summary().c_str());

  // Extract a small workload with ground truth, as the bench harnesses do.
  auto workload = BuildWorkload(*reloaded, {4, 8}, 5);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  std::printf("\nsample workload:\n");
  for (size_t i = 0; i < workload->examples.size(); ++i) {
    const auto& ex = workload->examples[i];
    std::printf("  query %zu: |V|=%zu |E|=%zu  count=%.0f\n", i,
                ex.query.NumVertices(), ex.query.NumEdges(), ex.count);
  }
  return 0;
}
