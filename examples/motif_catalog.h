#ifndef NEURSC_EXAMPLES_MOTIF_CATALOG_H_
#define NEURSC_EXAMPLES_MOTIF_CATALOG_H_

// Small catalog of labeled motif queries shared by the example programs.

#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace examples_motifs {

inline neursc::Graph BuildMotif(
    const std::vector<neursc::Label>& labels,
    const std::vector<std::pair<neursc::VertexId, neursc::VertexId>>&
        edges) {
  neursc::GraphBuilder builder;
  for (neursc::Label l : labels) builder.AddVertex(l);
  for (const auto& [u, v] : edges) {
    (void)builder.AddEdge(u, v);
  }
  auto built = builder.Build();
  return std::move(built).value();
}

/// Labeled wedge, triangle, square and tailed-triangle motifs over
/// community labels {0, 1, 2}.
inline std::vector<std::pair<std::string, neursc::Graph>>
BuildMotifCatalog() {
  std::vector<std::pair<std::string, neursc::Graph>> catalog;
  catalog.emplace_back("wedge 0-1-0",
                       BuildMotif({0, 1, 0}, {{0, 1}, {1, 2}}));
  catalog.emplace_back(
      "triangle 0-1-2",
      BuildMotif({0, 1, 2}, {{0, 1}, {1, 2}, {0, 2}}));
  catalog.emplace_back(
      "square 0-1-0-1",
      BuildMotif({0, 1, 0, 1}, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}));
  catalog.emplace_back(
      "tailed triangle",
      BuildMotif({0, 1, 2, 3}, {{0, 1}, {1, 2}, {0, 2}, {2, 3}}));
  return catalog;
}

}  // namespace examples_motifs

#endif  // NEURSC_EXAMPLES_MOTIF_CATALOG_H_
