// Quickstart: the 60-second tour of the NeurSC public API.
//
//   1. Build (or load) a labeled data graph.
//   2. Extract a workload of queries with exact ground truth.
//   3. Train the NeurSC estimator.
//   4. Estimate counts for unseen queries and compare with the truth.
//
// Everything is CPU-only and runs in a few seconds.

#include <cstdio>

#include "core/neursc.h"
#include "eval/metrics.h"
#include "eval/workload.h"
#include "graph/generators.h"
#include "matching/enumeration.h"

using namespace neursc;  // Example code; library code never does this.

int main() {
  // 1. A synthetic labeled graph (power-law degrees, skewed labels).
  GeneratorConfig gen;
  gen.num_vertices = 800;
  gen.num_edges = 3200;
  gen.num_labels = 8;
  gen.seed = 1;
  auto data = GeneratePowerLawGraph(gen);
  if (!data.ok()) {
    std::fprintf(stderr, "generate: %s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("data graph: %s\n", data->Summary().c_str());

  // 2. Queries of 4 and 8 vertices with exact counts (random-walk
  //    extraction + backtracking enumeration under the hood).
  auto workload = BuildWorkload(*data, {4, 8}, 20);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  auto split = StratifiedSplit(*workload, 0.8, 3);
  std::printf("workload: %zu queries (%zu train / %zu test)\n",
              workload->examples.size(), split.train.size(),
              split.test.size());

  // 3. Train NeurSC (substructure extraction + WEst + Wasserstein
  //    discriminator).
  NeurSCConfig config;
  config.epochs = 10;
  config.pretrain_epochs = 5;
  NeurSCEstimator estimator(*data, config);
  auto stats = estimator.Train(Gather(*workload, split.train));
  if (!stats.ok()) {
    std::fprintf(stderr, "train: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("trained %zu epochs in %.2fs (final mean loss %.3f)\n",
              stats->epoch_mean_loss.size(), stats->total_seconds,
              stats->epoch_mean_loss.back());

  // 4. Estimate unseen queries.
  std::printf("\n%-8s %12s %12s %8s\n", "query", "true", "estimated",
              "q-error");
  std::vector<double> qerrors;
  for (size_t i : split.test) {
    const auto& example = workload->examples[i];
    auto info = estimator.Estimate(example.query);
    if (!info.ok()) continue;
    double q = QError(info->count, example.count);
    qerrors.push_back(q);
    std::printf("|V|=%-5zu %12.0f %12.1f %8.2f\n",
                example.query.NumVertices(), example.count, info->count, q);
  }
  std::printf("\ngeometric-mean q-error on test queries: %.2f\n",
              GeometricMean(qerrors));
  return 0;
}
