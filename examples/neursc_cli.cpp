// Scenario: an end-to-end command-line driver, the artifact a practitioner
// deploys. Subcommands:
//
//   neursc_cli generate <profile|custom> <graph-path>
//       Generate a dataset stand-in and write it as t/v/e text.
//   neursc_cli train <graph-path> <model-path> [epochs]
//       Build a workload on the graph, train NeurSC, save the weights.
//   neursc_cli estimate <graph-path> <model-path> <query-path>
//       Load graph + trained model, estimate the count of a query graph.
//   neursc_cli evaluate <graph-path> <model-path>
//       Load model, rebuild the held-out workload, report q-error stats.
//
// Every subcommand also accepts --trace-out=<file> (Chrome trace_event
// JSON, see docs/observability.md) and --metrics-out=<file> (metrics
// snapshot JSON); estimate/evaluate print a per-stage cost table.
//
// Exit code 0 on success; errors go to stderr.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/neursc.h"
#include "eval/metrics.h"
#include "eval/reporting.h"
#include "eval/workload.h"
#include "graph/generators.h"
#include "graph/graph_io.h"

using namespace neursc;

namespace {

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

NeurSCConfig CliConfig(size_t epochs) {
  NeurSCConfig config;
  config.epochs = epochs;
  config.pretrain_epochs = epochs / 2;
  return config;
}

/// Shared workload recipe so train/evaluate see the same split.
Result<Workload> CliWorkload(const Graph& data) {
  return BuildWorkload(data, {4, 8}, 20);
}

/// Stage table scoped to estimation. Callers Reset() the registry right
/// before estimating so the table reflects only Estimate work; the two
/// tiles are the direct children of the parent span ("estimate/total" for
/// single-query runs, "estimate/batch" for EstimateBatch runs) and should
/// account for >=95% of its wall time.
void PrintEstimateBreakdown(const char* parent = "estimate/total") {
  PrintStageBreakdown(MetricsRegistry::Global().Snapshot(), parent,
                      {"estimate/prepare", "estimate/infer"});
}

int CmdGenerate(const std::string& profile_name, const std::string& path) {
  auto profile = FindDatasetProfile(profile_name);
  if (!profile.ok()) return Fail(profile.status());
  auto graph = GenerateDataset(*profile, 0, 42);
  if (!graph.ok()) return Fail(graph.status());
  Status st = WriteGraphToFile(*graph, path);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %s stand-in (%s) to %s\n", profile->name.c_str(),
              graph->Summary().c_str(), path.c_str());
  return 0;
}

int CmdTrain(const std::string& graph_path, const std::string& model_path,
             size_t epochs) {
  auto graph = ReadGraphFromFile(graph_path);
  if (!graph.ok()) return Fail(graph.status());
  auto workload = CliWorkload(*graph);
  if (!workload.ok()) return Fail(workload.status());
  auto split = StratifiedSplit(*workload, 0.8, 5);

  NeurSCEstimator estimator(*graph, CliConfig(epochs));
  auto stats = estimator.Train(Gather(*workload, split.train));
  if (!stats.ok()) return Fail(stats.status());
  Status st = estimator.SaveModel(model_path);
  if (!st.ok()) return Fail(st);
  std::printf("trained on %zu queries for %zu epochs (%.2fs); model at %s\n",
              stats->examples_used, stats->epoch_mean_loss.size(),
              stats->total_seconds, model_path.c_str());
  return 0;
}

int CmdEstimate(const std::string& graph_path,
                const std::string& model_path,
                const std::string& query_path, size_t epochs) {
  auto graph = ReadGraphFromFile(graph_path);
  if (!graph.ok()) return Fail(graph.status());
  auto query = ReadGraphFromFile(query_path);
  if (!query.ok()) return Fail(query.status());
  NeurSCEstimator estimator(*graph, CliConfig(epochs));
  Status st = estimator.LoadModel(model_path);
  if (!st.ok()) return Fail(st);
  MetricsRegistry::Global().Reset();
  auto info = estimator.Estimate(*query);
  if (!info.ok()) return Fail(info.status());
  std::printf("estimated count: %.1f\n", info->count);
  std::printf("substructures: %zu (used %zu), extraction %.1fms, "
              "inference %.1fms, total %.1fms\n",
              info->num_substructures, info->num_used,
              1e3 * info->extraction_seconds,
              1e3 * info->inference_seconds, 1e3 * info->total_seconds);
  PrintEstimateBreakdown();
  return 0;
}

int CmdEvaluate(const std::string& graph_path,
                const std::string& model_path, size_t epochs) {
  auto graph = ReadGraphFromFile(graph_path);
  if (!graph.ok()) return Fail(graph.status());
  auto workload = CliWorkload(*graph);
  if (!workload.ok()) return Fail(workload.status());
  auto split = StratifiedSplit(*workload, 0.8, 5);

  NeurSCEstimator estimator(*graph, CliConfig(epochs));
  Status st = estimator.LoadModel(model_path);
  if (!st.ok()) return Fail(st);

  MetricsRegistry::Global().Reset();
  // All held-out queries go through the batch API: their substructure
  // forward passes share one NEURSC_THREADS-wide work pool, and each
  // per-query estimate matches a sequential Estimate call bit-for-bit.
  auto evaluation = EvaluateBatch(&estimator, *workload, split.test);
  if (!evaluation.ok()) return Fail(evaluation.status());
  PrintQErrorBox("NeurSC", evaluation->signed_qerrors);
  std::printf("batch: %zu queries in %.2fs (%.1fms/query)\n",
              split.test.size(), evaluation->batch_seconds,
              split.test.empty()
                  ? 0.0
                  : 1e3 * evaluation->batch_seconds /
                        static_cast<double>(split.test.size()));
  PrintEstimateBreakdown("estimate/batch");
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  neursc_cli generate <profile> <graph-path>\n"
      "  neursc_cli train <graph-path> <model-path> [epochs]\n"
      "  neursc_cli estimate <graph-path> <model-path> <query-path>\n"
      "  neursc_cli evaluate <graph-path> <model-path> [epochs]\n"
      "common flags: --trace-out=<file> --metrics-out=<file>\n"
      "profiles: Yeast Human HPRD Wordnet DBLP EU2005 Youtube\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ObservabilitySession observability(&argc, argv);
  if (argc < 2) {
    // With no arguments, run a self-contained demo so the binary is
    // usable in the bench/example sweeps.
    std::printf("no subcommand; running self-demo\n");
    const std::string graph_path = "/tmp/neursc_cli_demo.graph";
    const std::string model_path = "/tmp/neursc_cli_demo.model";
    if (CmdGenerate("Yeast", graph_path) != 0) return 1;
    if (CmdTrain(graph_path, model_path, 6) != 0) return 1;
    return CmdEvaluate(graph_path, model_path, 6);
  }
  std::string cmd = argv[1];
  size_t epochs = 10;
  if (cmd == "generate" && argc >= 4) {
    return CmdGenerate(argv[2], argv[3]);
  }
  if (cmd == "train" && argc >= 4) {
    if (argc >= 5) epochs = static_cast<size_t>(std::atol(argv[4]));
    return CmdTrain(argv[2], argv[3], epochs);
  }
  if (cmd == "estimate" && argc >= 5) {
    return CmdEstimate(argv[2], argv[3], argv[4], epochs);
  }
  if (cmd == "evaluate" && argc >= 4) {
    if (argc >= 5) epochs = static_cast<size_t>(std::atol(argv[4]));
    return CmdEvaluate(argv[2], argv[3], epochs);
  }
  return Usage();
}
