// Scenario: a graph database query optimizer (the paper's headline
// application, Sec. 1). Given a batch of pattern queries, the optimizer
// must process the most selective patterns first — exactly the decision a
// cardinality estimator informs. We rank the batch by NeurSC's estimates
// and measure how well the predicted order agrees with the true
// selectivity order (Spearman rank correlation), comparing against a
// summary baseline (CSet).

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "baselines/cset.h"
#include "core/neursc.h"
#include "eval/workload.h"
#include "graph/generators.h"

using namespace neursc;

namespace {

// Ranks of values (average-free, ties broken by index — fine for a demo).
std::vector<double> Ranks(const std::vector<double>& values) {
  std::vector<size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(values.size());
  for (size_t r = 0; r < order.size(); ++r) {
    ranks[order[r]] = static_cast<double>(r);
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  auto ra = Ranks(a);
  auto rb = Ranks(b);
  double n = static_cast<double>(a.size());
  double mean = (n - 1) / 2.0;
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    cov += (ra[i] - mean) * (rb[i] - mean);
    va += (ra[i] - mean) * (ra[i] - mean);
    vb += (rb[i] - mean) * (rb[i] - mean);
  }
  return cov / std::sqrt(va * vb + 1e-12);
}

}  // namespace

int main() {
  GeneratorConfig gen;
  gen.num_vertices = 1200;
  gen.num_edges = 5000;
  gen.num_labels = 10;
  gen.seed = 13;
  auto data = GeneratePowerLawGraph(gen);
  if (!data.ok()) return 1;
  std::printf("graph store: %s\n", data->Summary().c_str());

  // A mixed batch of pattern queries with known true counts.
  auto workload = BuildWorkload(*data, {4, 8}, 25);
  if (!workload.ok()) return 1;
  auto split = StratifiedSplit(*workload, 0.7, 11);

  NeurSCConfig config;
  config.epochs = 10;
  config.pretrain_epochs = 5;
  NeurSCEstimator neursc(*data, config);
  auto stats = neursc.Train(Gather(*workload, split.train));
  if (!stats.ok()) return 1;

  CSetEstimator cset(*data);

  std::vector<double> truth;
  std::vector<double> neursc_estimates;
  std::vector<double> cset_estimates;
  for (size_t i : split.test) {
    const auto& example = workload->examples[i];
    auto n = neursc.Estimate(example.query);
    auto c = cset.EstimateCount(example.query);
    if (!n.ok() || !c.ok()) continue;
    truth.push_back(example.count);
    neursc_estimates.push_back(n->count);
    cset_estimates.push_back(*c);
  }

  std::printf("\nbatch of %zu pattern queries to order by selectivity\n",
              truth.size());
  std::printf("rank correlation with the true selectivity order:\n");
  std::printf("  NeurSC : %.3f\n",
              SpearmanCorrelation(neursc_estimates, truth));
  std::printf("  CSet   : %.3f\n", SpearmanCorrelation(cset_estimates, truth));

  // The optimizer's decision: process queries most-selective-first.
  std::vector<size_t> plan(truth.size());
  std::iota(plan.begin(), plan.end(), 0);
  std::sort(plan.begin(), plan.end(), [&](size_t a, size_t b) {
    return neursc_estimates[a] < neursc_estimates[b];
  });
  std::printf("\nNeurSC-chosen execution order (est -> true counts):\n");
  for (size_t i = 0; i < std::min<size_t>(plan.size(), 8); ++i) {
    std::printf("  %2zu. est %12.1f   true %12.0f\n", i + 1,
                neursc_estimates[plan[i]], truth[plan[i]]);
  }
  return 0;
}
