// Scenario: social-network motif analysis (Sec. 1's bioinformatics /
// social-network application). We count labeled motifs — wedges, triangles,
// labeled squares — on a synthetic social network, first exactly, then with
// the trained NeurSC estimator, and report motif concentrations.

#include <cstdio>

#include "core/neursc.h"
#include "eval/metrics.h"
#include "eval/workload.h"
#include "graph/generators.h"
#include "matching/enumeration.h"
#include "motif_catalog.h"

using namespace neursc;

int main() {
  // "Social network": heavy-tailed degrees, labels as user communities.
  GeneratorConfig gen;
  gen.num_vertices = 1500;
  gen.num_edges = 6000;
  gen.num_labels = 4;
  gen.degree_exponent = 2.3;
  gen.seed = 99;
  auto data = GeneratePowerLawGraph(gen);
  if (!data.ok()) return 1;
  std::printf("social network: %s\n", data->Summary().c_str());

  auto motifs = examples_motifs::BuildMotifCatalog();

  // Train NeurSC on induced random-walk queries from the same network
  // (induced queries keep triangles/dense patterns in-distribution).
  WorkloadOptions wopts;
  wopts.edge_keep_probability = 1.0;
  auto workload = BuildWorkload(*data, {3, 4}, 40, wopts);
  if (!workload.ok()) return 1;
  NeurSCConfig config;
  config.epochs = 20;
  config.pretrain_epochs = 10;
  NeurSCEstimator estimator(*data, config);
  auto stats = estimator.Train(workload->examples);
  if (!stats.ok()) return 1;

  std::printf("\n%-24s %14s %14s %9s\n", "motif", "exact", "NeurSC",
              "q-error");
  double total_exact = 0.0;
  std::vector<double> concentrations;
  std::vector<double> estimates;
  for (const auto& [name, motif] : motifs) {
    EnumerationOptions opts;
    opts.time_limit_seconds = 10.0;
    auto exact = CountSubgraphIsomorphisms(motif, *data, opts);
    auto approx = estimator.Estimate(motif);
    if (!exact.ok() || !approx.ok()) continue;
    double truth = static_cast<double>(exact->count);
    total_exact += truth;
    concentrations.push_back(truth);
    estimates.push_back(approx->count);
    std::printf("%-24s %14.0f %14.1f %9.2f\n", name.c_str(), truth,
                approx->count, QError(approx->count, truth));
  }

  std::printf(
      "\nnote: dense motifs (triangles) are out-of-distribution for a\n"
      "model trained on random-walk queries; the bench harnesses train\n"
      "and evaluate on matched workloads.\n");
  std::printf("\nmotif concentration (share of all motif embeddings):\n");
  size_t idx = 0;
  for (const auto& [name, motif] : motifs) {
    if (idx >= concentrations.size()) break;
    std::printf("  %-24s exact %6.2f%%\n", name.c_str(),
                100.0 * concentrations[idx] / total_exact);
    ++idx;
  }
  return 0;
}
