#ifndef NEURSC_BASELINES_LABEL_EMBEDDING_H_
#define NEURSC_BASELINES_LABEL_EMBEDDING_H_

#include "graph/graph.h"
#include "nn/matrix.h"

namespace neursc {

/// Task-independent label embeddings standing in for the ProNE embeddings
/// LSS initializes query-vertex features with (the paper: "we use the
/// enhanced label embedding produced by ProNE as the initial features").
///
/// Construction: the symmetric label co-occurrence matrix C (C[a][b] =
/// number of data edges joining labels a and b, diagonal = 2x same-label
/// edges) is degree-normalized to N = D^-1/2 (C + I) D^-1/2 and factorized
/// by subspace (orthogonal) power iteration; the embedding of label l is
/// its row of the top-`dim` eigenvector basis scaled by sqrt(|eigenvalue|).
/// Labels that co-occur with similar label distributions land close
/// together, which is the property the downstream GNN consumes.
class LabelEmbedding {
 public:
  /// Builds embeddings of dimension `dim` (clamped to the label count)
  /// from the data graph. `power_iterations` controls the subspace
  /// iteration count (enough for small label alphabets).
  LabelEmbedding(const Graph& data, size_t dim, size_t power_iterations = 30,
                 uint64_t seed = 61);

  size_t dim() const { return vectors_.cols(); }
  size_t num_labels() const { return vectors_.rows(); }

  /// Embedding row for a label; out-of-range labels get the zero vector.
  const float* Vector(Label label) const;

  /// Full (num_labels x dim) matrix.
  const Matrix& vectors() const { return vectors_; }

 private:
  Matrix vectors_;
  std::vector<float> zero_;
};

}  // namespace neursc

#endif  // NEURSC_BASELINES_LABEL_EMBEDDING_H_
