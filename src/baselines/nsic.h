#ifndef NEURSC_BASELINES_NSIC_H_
#define NEURSC_BASELINES_NSIC_H_

#include <memory>
#include <vector>

#include "baselines/estimator.h"
#include "common/rng.h"
#include "matching/substructure.h"
#include "nn/modules.h"
#include "nn/optimizer.h"
#include "nn/tape.h"

namespace neursc {

/// Re-implementation of NSIC, "Neural Subgraph Isomorphism Counting" (Liu
/// et al., KDD'20): a GNN encodes the query graph and the *entire* data
/// graph; an interaction network regresses the count from the pair of
/// graph embeddings. We simplify DIAMNet to a gated interaction MLP over
/// [h_q || h_G || h_q * h_G] (see DESIGN.md); what the comparison needs —
/// that encoding the whole data graph is slow and makes queries nearly
/// indistinguishable — is architectural and preserved.
///
/// Variants: kind=kGin is NSIC-I (RGIN), kind=kGcn is NSIC-C (RGCN-style
/// mean aggregation). use_substructure_extraction=true is the paper's
/// "NSIC w/ SE" ablation, which encodes the extracted candidate
/// substructures instead of the whole data graph.
class NsicEstimator : public CardinalityEstimator {
 public:
  enum class GnnKind { kGin, kGcn };

  struct Options {
    GnnKind kind = GnnKind::kGin;
    bool use_substructure_extraction = false;
    size_t layers = 2;
    size_t hidden_dim = 32;
    double learning_rate = 1e-3;
    size_t batch_size = 8;
    size_t epochs = 8;
    double grad_clip_norm = 5.0;
    /// Per-query wall budget; exceeded => Timeout (models the paper's
    /// 5-minute cutoff under which NSIC only completes on Yeast).
    double time_limit_seconds = 5.0;
    uint64_t seed = 4242;
  };

  NsicEstimator(const Graph& data, Options options);
  explicit NsicEstimator(const Graph& data) : NsicEstimator(data, Options()) {}

  std::string Name() const override;
  Status Train(const std::vector<TrainingExample>& examples) override;
  Result<double> EstimateCount(const Graph& query) override;

 private:
  /// One message-passing layer of the configured kind.
  Var GnnLayer(Tape* tape, size_t layer, Var h, const EdgeIndex& edges,
               const std::vector<float>& inv_degree);
  /// Encodes a graph to a 1 x hidden embedding.
  Var Encode(Tape* tape, const Graph& g, const Matrix& features);
  /// Interaction + regression from the two embeddings.
  Var Predict(Tape* tape, Var query_embedding, Var data_embedding);
  Matrix Featurize(const Graph& g) const;
  std::vector<Parameter*> AllParameters();
  /// Data-side embedding for a query (whole graph or substructures).
  Result<Var> DataEmbedding(Tape* tape, const Graph& query);

  const Graph& data_;
  Options options_;
  Rng rng_;
  size_t degree_bits_;
  size_t label_bits_;

  // kGin uses gin_, kGcn uses gcn_linear_ (one Linear per layer).
  std::vector<std::unique_ptr<GinLayer>> gin_;
  std::vector<std::unique_ptr<Linear>> gcn_linear_;
  std::unique_ptr<Mlp> interaction_;
};

}  // namespace neursc

#endif  // NEURSC_BASELINES_NSIC_H_
