#include "baselines/sumrdf.h"

#include <algorithm>
#include <cmath>

#include "common/timer.h"

namespace neursc {

SumRdfEstimator::SumRdfEstimator(const Graph& data, Options options)
    : data_(data), options_(options) {
  const size_t num_labels = data.NumLabels();
  vertex_bucket_.resize(data.NumVertices());
  buckets_of_label_.resize(num_labels);

  // Bucket vertices of each label by degree quantile.
  for (size_t l = 0; l < num_labels; ++l) {
    auto members = data.VerticesWithLabel(static_cast<Label>(l));
    if (members.empty()) continue;
    std::vector<VertexId> sorted(members.begin(), members.end());
    std::sort(sorted.begin(), sorted.end(), [&](VertexId a, VertexId b) {
      return data.Degree(a) < data.Degree(b);
    });
    size_t buckets =
        std::min<size_t>(options_.buckets_per_label, sorted.size());
    for (size_t i = 0; i < sorted.size(); ++i) {
      size_t local = i * buckets / sorted.size();
      if (local >= buckets) local = buckets - 1;
      // Bucket ids assigned lazily below.
      size_t needed = local + 1;
      while (buckets_of_label_[l].size() < needed) {
        uint32_t id = static_cast<uint32_t>(bucket_size_.size());
        buckets_of_label_[l].push_back(id);
        bucket_size_.push_back(0.0);
        bucket_label_.push_back(static_cast<Label>(l));
      }
      uint32_t bucket = buckets_of_label_[l][local];
      vertex_bucket_[sorted[i]] = bucket;
      bucket_size_[bucket] += 1.0;
    }
  }

  const size_t nb = bucket_size_.size();
  for (size_t v = 0; v < data.NumVertices(); ++v) {
    uint32_t bv = vertex_bucket_[v];
    for (VertexId w : data.Neighbors(static_cast<VertexId>(v))) {
      uint32_t bw = vertex_bucket_[w];
      summary_edges_[static_cast<uint64_t>(bv) * nb + bw] += 1.0;
    }
  }
}

Result<double> SumRdfEstimator::EstimateCount(const Graph& query) {
  if (query.NumVertices() == 0) {
    return Status::InvalidArgument("empty query");
  }
  const size_t nq = query.NumVertices();
  const size_t nb = bucket_size_.size();
  Deadline deadline(options_.time_limit_seconds);

  // Backtracking over bucket assignments; order query vertices so each new
  // vertex (after the first) touches an assigned neighbor, letting us prune
  // by summary-edge weight as we go.
  std::vector<VertexId> order;
  std::vector<bool> placed(nq, false);
  order.push_back(0);
  placed[0] = true;
  while (order.size() < nq) {
    VertexId next = kInvalidVertex;
    for (size_t u = 0; u < nq; ++u) {
      if (placed[u]) continue;
      for (VertexId w : query.Neighbors(static_cast<VertexId>(u))) {
        if (placed[w]) {
          next = static_cast<VertexId>(u);
          break;
        }
      }
      if (next != kInvalidVertex) break;
    }
    if (next == kInvalidVertex) {
      // Disconnected query (shouldn't happen in the workloads).
      for (size_t u = 0; u < nq; ++u) {
        if (!placed[u]) {
          next = static_cast<VertexId>(u);
          break;
        }
      }
    }
    placed[next] = true;
    order.push_back(next);
  }

  std::vector<uint32_t> assignment(nq, 0);
  double total = 0.0;
  bool timed_out = false;
  uint64_t steps = 0;

  // Recursive enumeration of label-consistent bucket assignments.
  auto recurse = [&](auto&& self, size_t depth, double partial) -> void {
    if (timed_out) return;
    if (((++steps) & 255u) == 0 && deadline.Expired()) {
      timed_out = true;
      return;
    }
    if (depth == nq) {
      total += partial;
      return;
    }
    VertexId u = order[depth];
    Label lu = query.GetLabel(u);
    if (lu >= buckets_of_label_.size()) return;
    for (uint32_t bucket : buckets_of_label_[lu]) {
      double factor = bucket_size_[bucket];
      bool feasible = factor > 0.0;
      if (!feasible) continue;
      for (VertexId w : query.Neighbors(u)) {
        // Only edges to already-assigned vertices contribute here; each
        // query edge is applied exactly once (when its second endpoint is
        // placed).
        bool w_assigned = false;
        for (size_t d = 0; d < depth; ++d) {
          if (order[d] == w) {
            w_assigned = true;
            break;
          }
        }
        if (!w_assigned) continue;
        uint32_t bw = assignment[w];
        auto it = summary_edges_.find(static_cast<uint64_t>(bucket) * nb + bw);
        double weight = (it == summary_edges_.end()) ? 0.0 : it->second;
        if (weight <= 0.0) {
          feasible = false;
          break;
        }
        factor *= weight / (bucket_size_[bucket] * bucket_size_[bw]);
      }
      if (!feasible) continue;
      assignment[u] = bucket;
      self(self, depth + 1, partial * factor);
      if (timed_out) return;
    }
  };
  recurse(recurse, 0, 1.0);

  if (timed_out) {
    return Status::Timeout("summary enumeration exceeded budget");
  }
  return total;
}

}  // namespace neursc
