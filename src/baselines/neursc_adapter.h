#ifndef NEURSC_BASELINES_NEURSC_ADAPTER_H_
#define NEURSC_BASELINES_NEURSC_ADAPTER_H_

#include <memory>
#include <string>

#include "baselines/estimator.h"
#include "core/neursc.h"

namespace neursc {

/// Adapts NeurSCEstimator (src/core) to the benchmark-facing
/// CardinalityEstimator interface, with named constructors for each paper
/// variant.
class NeurSCAdapter : public CardinalityEstimator {
 public:
  NeurSCAdapter(const Graph& data, NeurSCConfig config, std::string name);

  /// Full NeurSC (intra + inter + Wasserstein discriminator).
  static std::unique_ptr<NeurSCAdapter> Full(const Graph& data,
                                             NeurSCConfig config);
  /// NeurSC-I: intra-graph network only.
  static std::unique_ptr<NeurSCAdapter> IntraOnly(const Graph& data,
                                                  NeurSCConfig config);
  /// NeurSC-D: dual networks, no discriminator.
  static std::unique_ptr<NeurSCAdapter> Dual(const Graph& data,
                                             NeurSCConfig config);
  /// NeurSC w/o SE: no substructure extraction.
  static std::unique_ptr<NeurSCAdapter> WithoutExtraction(const Graph& data,
                                                          NeurSCConfig config);
  /// NeurSC-EU / NeurSC-KL / NeurSC-JS (Fig. 12 metric variants).
  static std::unique_ptr<NeurSCAdapter> WithMetric(const Graph& data,
                                                   NeurSCConfig config,
                                                   DistanceMetric metric);
  /// Full NeurSC forced onto the Tape inference backend. Differential
  /// reference for the default tape-free EvalContext path: estimates from
  /// the two builds must agree bit for bit (docs/execution.md).
  static std::unique_ptr<NeurSCAdapter> TapeForced(const Graph& data,
                                                   NeurSCConfig config);

  std::string Name() const override { return name_; }
  Status Train(const std::vector<TrainingExample>& examples) override;
  Result<double> EstimateCount(const Graph& query) override;

  NeurSCEstimator& estimator() { return estimator_; }
  const TrainStats& train_stats() const { return train_stats_; }

 private:
  NeurSCEstimator estimator_;
  std::string name_;
  TrainStats train_stats_;
};

}  // namespace neursc

#endif  // NEURSC_BASELINES_NEURSC_ADAPTER_H_
