#include "baselines/lss.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "common/logging.h"
#include "common/timer.h"
#include "core/feature_init.h"

namespace neursc {

namespace {

EdgeIndex UndirectedEdges(const Graph& g) {
  EdgeIndex edges;
  for (size_t v = 0; v < g.NumVertices(); ++v) {
    for (VertexId w : g.Neighbors(static_cast<VertexId>(v))) {
      edges.Add(static_cast<uint32_t>(w), static_cast<uint32_t>(v));
    }
  }
  return edges;
}

}  // namespace

LssEstimator::LssEstimator(const Graph& data, Options options)
    : data_(data),
      options_(options),
      rng_(options.seed),
      degree_bits_(BitsFor(data.MaxDegree())),
      label_bits_(BitsFor(data.NumLabels() == 0 ? 1 : data.NumLabels() - 1)) {
  label_frequency_.resize(std::max<size_t>(data.NumLabels(), 1), 0.0f);
  double denom = std::log(1.0 + static_cast<double>(data.NumVertices()));
  for (size_t l = 0; l < data.NumLabels(); ++l) {
    label_frequency_[l] = static_cast<float>(
        std::log(1.0 + static_cast<double>(
                           data.LabelFrequency(static_cast<Label>(l)))) /
        denom);
  }

  size_t input_dim = degree_bits_ + label_bits_ + 1;
  if (options_.feature_mode == FeatureMode::kLabelEmbedding) {
    label_embedding_ = std::make_unique<LabelEmbedding>(
        data, options_.label_embedding_dim);
    input_dim = degree_bits_ + label_embedding_->dim();
  }
  size_t in = input_dim;
  for (size_t k = 0; k < options_.gin_layers; ++k) {
    gin_.push_back(std::make_unique<GinLayer>(in, options_.hidden_dim, &rng_));
    in = options_.hidden_dim;
  }
  attn_proj_ = std::make_unique<Linear>(options_.hidden_dim,
                                        options_.attention_dim, &rng_);
  attn_vector_ =
      Parameter(Matrix::GlorotUniform(options_.attention_dim, 1, &rng_));
  predictor_ = std::make_unique<Mlp>(
      std::vector<size_t>{options_.hidden_dim, options_.hidden_dim, 1},
      Activation::kRelu, &rng_);
  predictor_->DampLastLayer();  // start the exp() head at c_hat = 1
  AdamOptimizer::Options aopts;
  aopts.learning_rate = options_.learning_rate;
  optimizer_ = std::make_unique<AdamOptimizer>(AllParameters(), aopts);
}

std::vector<Parameter*> LssEstimator::AllParameters() {
  std::vector<Parameter*> params;
  for (auto& layer : gin_) {
    for (Parameter* p : layer->Parameters()) params.push_back(p);
  }
  for (Parameter* p : attn_proj_->Parameters()) params.push_back(p);
  params.push_back(&attn_vector_);
  for (Parameter* p : predictor_->Parameters()) params.push_back(p);
  return params;
}

std::vector<Graph> LssEstimator::Decompose(const Graph& query) const {
  std::vector<Graph> substructures;
  substructures.reserve(query.NumVertices());
  for (size_t u = 0; u < query.NumVertices(); ++u) {
    // k-hop BFS ball around u.
    std::vector<uint32_t> dist(query.NumVertices(), UINT32_MAX);
    std::queue<VertexId> queue;
    std::vector<VertexId> ball;
    dist[u] = 0;
    queue.push(static_cast<VertexId>(u));
    ball.push_back(static_cast<VertexId>(u));
    while (!queue.empty()) {
      VertexId x = queue.front();
      queue.pop();
      if (dist[x] >= options_.hop_k) continue;
      for (VertexId w : query.Neighbors(x)) {
        if (dist[w] == UINT32_MAX) {
          dist[w] = dist[x] + 1;
          ball.push_back(w);
          queue.push(w);
        }
      }
    }
    std::sort(ball.begin(), ball.end());
    auto induced = BuildInducedSubgraph(query, ball);
    NEURSC_CHECK(induced.ok());
    substructures.push_back(std::move(induced->graph));
  }
  return substructures;
}

Matrix LssEstimator::Featurize(const Graph& g) const {
  const bool use_embedding =
      options_.feature_mode == FeatureMode::kLabelEmbedding;
  const size_t dim = use_embedding
                         ? degree_bits_ + label_embedding_->dim()
                         : degree_bits_ + label_bits_ + 1;
  Matrix features(g.NumVertices(), dim);
  for (size_t v = 0; v < g.NumVertices(); ++v) {
    float* row = features.row(v);
    size_t degree = g.Degree(static_cast<VertexId>(v));
    Label label = g.GetLabel(static_cast<VertexId>(v));
    size_t deg_clamped =
        std::min(degree, (static_cast<size_t>(1) << degree_bits_) - 1);
    for (size_t b = 0; b < degree_bits_; ++b) {
      row[b] = static_cast<float>((deg_clamped >> b) & 1u);
    }
    if (use_embedding) {
      const float* embedding = label_embedding_->Vector(label);
      std::copy(embedding, embedding + label_embedding_->dim(),
                row + degree_bits_);
      continue;
    }
    size_t lab_clamped = std::min<size_t>(
        label, (static_cast<size_t>(1) << label_bits_) - 1);
    for (size_t b = 0; b < label_bits_; ++b) {
      row[degree_bits_ + b] = static_cast<float>((lab_clamped >> b) & 1u);
    }
    row[degree_bits_ + label_bits_] =
        label < label_frequency_.size() ? label_frequency_[label] : 0.0f;
  }
  return features;
}

template <typename Ctx>
Var LssEstimator::Forward(Ctx* ctx,
                          const std::vector<Graph>& substructures,
                          const std::vector<Matrix>& features) {
  std::vector<Var> embeddings;
  embeddings.reserve(substructures.size());
  for (size_t i = 0; i < substructures.size(); ++i) {
    EdgeIndex edges = UndirectedEdges(substructures[i]);
    Var h = ctx->Constant(features[i]);
    for (auto& layer : gin_) h = layer->Forward(ctx, h, edges);
    // Scaled sum pooling keeps magnitudes bounded across ball sizes.
    float scale = 1.0f / std::sqrt(
        1.0f + static_cast<float>(substructures[i].NumVertices()));
    embeddings.push_back(ctx->Scale(ctx->SumRows(h), scale));
  }
  Var stacked = ctx->ConcatRows(embeddings);  // m x hidden
  // Self-attention pooling: alpha = softmax(a^T tanh(W e_i)).
  Var keys = ctx->Tanh(attn_proj_->Forward(ctx, stacked));
  Var attn_vec = ctx->Leaf(&attn_vector_);
  Var scores = ctx->MatMul(keys, attn_vec);  // m x 1
  std::vector<uint32_t> one_segment(substructures.size(), 0);
  Var alpha = ctx->SegmentSoftmax(scores, std::move(one_segment), 1);
  Var pooled = ctx->SumRows(ctx->ColBroadcastMul(stacked, alpha));
  Var log_count = predictor_->Forward(ctx, pooled);
  return ctx->Exp(log_count);
}

Status LssEstimator::Train(const std::vector<TrainingExample>& examples) {
  if (examples.empty()) return Status::InvalidArgument("no examples");
  epoch_seconds_.clear();

  // Decomposition and features are query-deterministic; hoist them.
  struct Prepared {
    std::vector<Graph> substructures;
    std::vector<Matrix> features;
    double count;
  };
  std::vector<Prepared> prepared;
  prepared.reserve(examples.size());
  for (const auto& example : examples) {
    Prepared prep;
    prep.substructures = Decompose(example.query);
    for (const Graph& s : prep.substructures) {
      prep.features.push_back(Featurize(s));
    }
    prep.count = example.count;
    prepared.push_back(std::move(prep));
  }

  std::vector<size_t> indices(prepared.size());
  std::iota(indices.begin(), indices.end(), 0);
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    Timer epoch_timer;
    rng_.Shuffle(&indices);
    for (size_t start = 0; start < indices.size();
         start += options_.batch_size) {
      size_t end = std::min(start + options_.batch_size, indices.size());
      optimizer_->ZeroGrad();
      for (size_t i = start; i < end; ++i) {
        const Prepared& prep = prepared[indices[i]];
        Tape tape;
        Var estimate = Forward(&tape, prep.substructures, prep.features);
        Var loss = tape.QErrorLoss(estimate, prep.count);
        tape.Backward(loss);
      }
      optimizer_->ClipGradNorm(options_.grad_clip_norm);
      optimizer_->Step();
      optimizer_->ZeroGrad();
    }
    epoch_seconds_.push_back(epoch_timer.ElapsedSeconds());
  }
  return Status::OK();
}

Result<double> LssEstimator::EstimateCount(const Graph& query) {
  std::vector<Graph> substructures = Decompose(query);
  std::vector<Matrix> features;
  features.reserve(substructures.size());
  for (const Graph& s : substructures) features.push_back(Featurize(s));
  eval_.Reset();
  Var estimate = Forward(&eval_, substructures, features);
  return static_cast<double>(eval_.Value(estimate).scalar());
}

}  // namespace neursc
