#include "baselines/cset.h"

#include <cmath>

namespace neursc {

CSetEstimator::CSetEstimator(const Graph& data)
    : data_(data), num_labels_(data.NumLabels()) {
  neighbor_label_counts_.resize(data.NumVertices());
  for (size_t v = 0; v < data.NumVertices(); ++v) {
    Label lv = data.GetLabel(static_cast<VertexId>(v));
    for (VertexId w : data.Neighbors(static_cast<VertexId>(v))) {
      Label lw = data.GetLabel(w);
      ++neighbor_label_counts_[v][lw];
      label_pair_edges_[static_cast<uint64_t>(lv) * num_labels_ + lw] += 1.0;
    }
  }
}

double CSetEstimator::StarCount(const Graph& query, VertexId u) const {
  // Required multiplicities of neighbor labels around u.
  std::unordered_map<Label, uint32_t> required;
  for (VertexId w : query.Neighbors(u)) ++required[query.GetLabel(w)];

  Label lu = query.GetLabel(u);
  double total = 0.0;
  for (VertexId v : data_.VerticesWithLabel(lu)) {
    const auto& available = neighbor_label_counts_[v];
    double embeddings = 1.0;
    for (const auto& [label, need] : required) {
      auto it = available.find(label);
      uint32_t have = (it == available.end()) ? 0 : it->second;
      if (have < need) {
        embeddings = 0.0;
        break;
      }
      // Distinct leaves: falling factorial have * (have-1) * ...
      for (uint32_t i = 0; i < need; ++i) {
        embeddings *= static_cast<double>(have - i);
      }
    }
    total += embeddings;
  }
  return total;
}

Result<double> CSetEstimator::EstimateCount(const Graph& query) {
  if (query.NumVertices() == 0) {
    return Status::InvalidArgument("empty query");
  }
  // est = prod_u star(u) / prod_{e(u,v)} E(l_u, l_v): every query edge is
  // covered by the stars of both endpoints; dividing by the label-pair edge
  // count removes the double-counted join. Work in log space to survive
  // large intermediate products.
  double log_est = 0.0;
  for (size_t u = 0; u < query.NumVertices(); ++u) {
    double star = StarCount(query, static_cast<VertexId>(u));
    if (star <= 0.0) return 0.0;
    log_est += std::log(star);
  }
  for (size_t u = 0; u < query.NumVertices(); ++u) {
    Label lu = query.GetLabel(static_cast<VertexId>(u));
    for (VertexId w : query.Neighbors(static_cast<VertexId>(u))) {
      if (w <= static_cast<VertexId>(u)) continue;  // each edge once
      Label lw = query.GetLabel(w);
      auto it = label_pair_edges_.find(static_cast<uint64_t>(lu) * num_labels_ +
                                       lw);
      // Directed counts include both orientations; undirected edge count
      // between the labels is the directed count (each undirected edge
      // contributes one l_u->l_w entry and one l_w->l_u entry).
      double edges = (it == label_pair_edges_.end()) ? 0.0 : it->second;
      if (edges <= 0.0) return 0.0;
      log_est -= std::log(edges);
    }
  }
  return std::exp(log_est);
}

}  // namespace neursc
