#include "baselines/neursc_adapter.h"

namespace neursc {

NeurSCAdapter::NeurSCAdapter(const Graph& data, NeurSCConfig config,
                             std::string name)
    : estimator_(data, std::move(config)), name_(std::move(name)) {}

std::unique_ptr<NeurSCAdapter> NeurSCAdapter::Full(const Graph& data,
                                                   NeurSCConfig config) {
  config.west.use_inter = true;
  config.use_discriminator = true;
  config.use_substructure_extraction = true;
  config.metric = DistanceMetric::kWasserstein;
  return std::make_unique<NeurSCAdapter>(data, std::move(config), "NeurSC");
}

std::unique_ptr<NeurSCAdapter> NeurSCAdapter::IntraOnly(const Graph& data,
                                                        NeurSCConfig config) {
  config.west.use_inter = false;
  config.use_discriminator = false;
  config.use_substructure_extraction = true;
  return std::make_unique<NeurSCAdapter>(data, std::move(config), "NeurSC-I");
}

std::unique_ptr<NeurSCAdapter> NeurSCAdapter::Dual(const Graph& data,
                                                   NeurSCConfig config) {
  config.west.use_inter = true;
  config.use_discriminator = false;
  config.use_substructure_extraction = true;
  return std::make_unique<NeurSCAdapter>(data, std::move(config), "NeurSC-D");
}

std::unique_ptr<NeurSCAdapter> NeurSCAdapter::WithoutExtraction(
    const Graph& data, NeurSCConfig config) {
  config.use_substructure_extraction = false;
  return std::make_unique<NeurSCAdapter>(data, std::move(config),
                                         "NeurSC w/o SE");
}

std::unique_ptr<NeurSCAdapter> NeurSCAdapter::WithMetric(
    const Graph& data, NeurSCConfig config, DistanceMetric metric) {
  config.west.use_inter = true;
  config.use_discriminator = true;
  config.use_substructure_extraction = true;
  config.metric = metric;
  std::string name = std::string("NeurSC-");
  switch (metric) {
    case DistanceMetric::kWasserstein:
      name = "NeurSC";
      break;
    case DistanceMetric::kEuclidean:
      name += "EU";
      break;
    case DistanceMetric::kKL:
      name += "KL";
      break;
    case DistanceMetric::kJS:
      name += "JS";
      break;
  }
  return std::make_unique<NeurSCAdapter>(data, std::move(config), name);
}

std::unique_ptr<NeurSCAdapter> NeurSCAdapter::TapeForced(
    const Graph& data, NeurSCConfig config) {
  config.west.use_inter = true;
  config.use_discriminator = true;
  config.use_substructure_extraction = true;
  config.metric = DistanceMetric::kWasserstein;
  config.inference_backend = ExecutionBackend::kTape;
  return std::make_unique<NeurSCAdapter>(data, std::move(config),
                                         "NeurSC (tape)");
}

Status NeurSCAdapter::Train(const std::vector<TrainingExample>& examples) {
  auto stats = estimator_.Train(examples);
  if (!stats.ok()) return stats.status();
  train_stats_ = std::move(stats).value();
  return Status::OK();
}

Result<double> NeurSCAdapter::EstimateCount(const Graph& query) {
  auto info = estimator_.Estimate(query);
  if (!info.ok()) return info.status();
  return info->count;
}

}  // namespace neursc
