#include "baselines/nsic.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/timer.h"
#include "core/feature_init.h"

namespace neursc {

namespace {

EdgeIndex UndirectedEdges(const Graph& g) {
  EdgeIndex edges;
  for (size_t v = 0; v < g.NumVertices(); ++v) {
    for (VertexId w : g.Neighbors(static_cast<VertexId>(v))) {
      edges.Add(static_cast<uint32_t>(w), static_cast<uint32_t>(v));
    }
  }
  return edges;
}

std::vector<float> InverseDegreePlusOne(const Graph& g) {
  std::vector<float> inv(g.NumVertices());
  for (size_t v = 0; v < g.NumVertices(); ++v) {
    inv[v] = 1.0f / (1.0f + static_cast<float>(
                                g.Degree(static_cast<VertexId>(v))));
  }
  return inv;
}

}  // namespace

NsicEstimator::NsicEstimator(const Graph& data, Options options)
    : data_(data),
      options_(options),
      rng_(options.seed),
      degree_bits_(BitsFor(data.MaxDegree())),
      label_bits_(BitsFor(data.NumLabels() == 0 ? 1 : data.NumLabels() - 1)) {
  const size_t input_dim = degree_bits_ + label_bits_;
  size_t in = input_dim;
  for (size_t k = 0; k < options_.layers; ++k) {
    if (options_.kind == GnnKind::kGin) {
      gin_.push_back(
          std::make_unique<GinLayer>(in, options_.hidden_dim, &rng_));
    } else {
      gcn_linear_.push_back(
          std::make_unique<Linear>(in, options_.hidden_dim, &rng_));
    }
    in = options_.hidden_dim;
  }
  // Interaction over [h_q || h_G || h_q*h_G].
  interaction_ = std::make_unique<Mlp>(
      std::vector<size_t>{3 * options_.hidden_dim, options_.hidden_dim, 1},
      Activation::kRelu, &rng_);
  interaction_->DampLastLayer();  // start the exp() head at c_hat = 1
}

std::string NsicEstimator::Name() const {
  std::string name =
      options_.kind == GnnKind::kGin ? "NSIC-I" : "NSIC-C";
  if (options_.use_substructure_extraction) name += " w/ SE";
  return name;
}

Matrix NsicEstimator::Featurize(const Graph& g) const {
  const size_t dim = degree_bits_ + label_bits_;
  Matrix features(g.NumVertices(), dim);
  for (size_t v = 0; v < g.NumVertices(); ++v) {
    float* row = features.row(v);
    size_t degree = std::min<size_t>(
        g.Degree(static_cast<VertexId>(v)),
        (static_cast<size_t>(1) << degree_bits_) - 1);
    for (size_t b = 0; b < degree_bits_; ++b) {
      row[b] = static_cast<float>((degree >> b) & 1u);
    }
    size_t label = std::min<size_t>(
        g.GetLabel(static_cast<VertexId>(v)),
        (static_cast<size_t>(1) << label_bits_) - 1);
    for (size_t b = 0; b < label_bits_; ++b) {
      row[degree_bits_ + b] = static_cast<float>((label >> b) & 1u);
    }
  }
  return features;
}

Var NsicEstimator::GnnLayer(Tape* tape, size_t layer, Var h,
                            const EdgeIndex& edges,
                            const std::vector<float>& inv_degree) {
  if (options_.kind == GnnKind::kGin) {
    return gin_[layer]->Forward(tape, h, edges);
  }
  // GCN-style mean aggregation over {v} union N(v), then linear + ReLU.
  const size_t n = tape->Value(h).rows();
  Var agg;
  if (edges.size() > 0) {
    Var messages = tape->GatherRows(h, edges.src);
    agg = tape->ScatterAddRows(messages, edges.dst, n);
    agg = tape->Add(agg, h);
  } else {
    agg = h;
  }
  Matrix inv(n, 1);
  for (size_t v = 0; v < n; ++v) inv.at(v, 0) = inv_degree[v];
  Var normalized = tape->ColBroadcastMul(agg, tape->Constant(std::move(inv)));
  return tape->Relu(gcn_linear_[layer]->Forward(tape, normalized));
}

Var NsicEstimator::Encode(Tape* tape, const Graph& g,
                          const Matrix& features) {
  EdgeIndex edges = UndirectedEdges(g);
  std::vector<float> inv_degree = InverseDegreePlusOne(g);
  Var h = tape->Constant(features);
  for (size_t k = 0; k < options_.layers; ++k) {
    h = GnnLayer(tape, k, h, edges, inv_degree);
  }
  // Scaled sum pooling: without it the whole-data-graph embedding has
  // magnitude O(|V|) and saturates the exp() count head.
  float scale =
      1.0f / std::sqrt(1.0f + static_cast<float>(g.NumVertices()));
  return tape->Scale(tape->SumRows(h), scale);
}

Var NsicEstimator::Predict(Tape* tape, Var query_embedding,
                           Var data_embedding) {
  Var product = tape->Mul(query_embedding, data_embedding);
  Var joint = tape->ConcatCols(tape->ConcatCols(query_embedding,
                                                data_embedding),
                               product);
  return tape->Exp(interaction_->Forward(tape, joint));
}

Result<Var> NsicEstimator::DataEmbedding(Tape* tape, const Graph& query) {
  if (!options_.use_substructure_extraction) {
    return Encode(tape, data_, Featurize(data_));
  }
  auto extraction = ExtractSubstructures(query, data_);
  if (!extraction.ok()) return extraction.status();
  if (extraction->early_terminate || extraction->substructures.empty()) {
    return Status::NotFound("no substructures (count is 0)");
  }
  std::vector<Var> parts;
  for (const auto& sub : extraction->substructures) {
    parts.push_back(Encode(tape, sub.graph, Featurize(sub.graph)));
  }
  // Sum the substructure embeddings into one data-side embedding.
  Var stacked = tape->ConcatRows(parts);
  return tape->SumRows(stacked);
}

std::vector<Parameter*> NsicEstimator::AllParameters() {
  std::vector<Parameter*> params;
  for (auto& layer : gin_) {
    for (Parameter* p : layer->Parameters()) params.push_back(p);
  }
  for (auto& layer : gcn_linear_) {
    for (Parameter* p : layer->Parameters()) params.push_back(p);
  }
  for (Parameter* p : interaction_->Parameters()) params.push_back(p);
  return params;
}

Status NsicEstimator::Train(const std::vector<TrainingExample>& examples) {
  if (examples.empty()) return Status::InvalidArgument("no examples");
  AdamOptimizer::Options aopts;
  aopts.learning_rate = options_.learning_rate;
  AdamOptimizer optimizer(AllParameters(), aopts);

  std::vector<size_t> indices(examples.size());
  std::iota(indices.begin(), indices.end(), 0);
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng_.Shuffle(&indices);
    for (size_t start = 0; start < indices.size();
         start += options_.batch_size) {
      size_t end = std::min(start + options_.batch_size, indices.size());
      optimizer.ZeroGrad();
      for (size_t i = start; i < end; ++i) {
        const TrainingExample& example = examples[indices[i]];
        Tape tape;
        Var hq = Encode(&tape, example.query, Featurize(example.query));
        auto hg = DataEmbedding(&tape, example.query);
        if (!hg.ok()) continue;
        Var estimate = Predict(&tape, hq, *hg);
        Var loss = tape.QErrorLoss(estimate, example.count);
        tape.Backward(loss);
      }
      optimizer.ClipGradNorm(options_.grad_clip_norm);
      optimizer.Step();
      optimizer.ZeroGrad();
    }
  }
  return Status::OK();
}

Result<double> NsicEstimator::EstimateCount(const Graph& query) {
  Timer timer;
  Tape tape;
  Var hq = Encode(&tape, query, Featurize(query));
  auto hg = DataEmbedding(&tape, query);
  if (!hg.ok()) {
    if (hg.status().IsNotFound()) return 0.0;
    return hg.status();
  }
  Var estimate = Predict(&tape, hq, *hg);
  double value = tape.Value(estimate).scalar();
  if (options_.time_limit_seconds > 0 &&
      timer.ElapsedSeconds() > options_.time_limit_seconds) {
    return Status::Timeout("NSIC forward pass exceeded query budget");
  }
  return value;
}

}  // namespace neursc
