#ifndef NEURSC_BASELINES_ESTIMATOR_H_
#define NEURSC_BASELINES_ESTIMATOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/neursc.h"
#include "graph/graph.h"

namespace neursc {

/// Common interface every compared method implements, so the benchmark
/// harnesses can sweep methods uniformly. Non-learned estimators have a
/// no-op Train().
class CardinalityEstimator {
 public:
  virtual ~CardinalityEstimator() = default;

  virtual std::string Name() const = 0;

  /// Trains on labeled examples; no-op for summary/sampling methods.
  virtual Status Train(const std::vector<TrainingExample>& examples) {
    (void)examples;
    return Status::OK();
  }

  /// Estimates the subgraph isomorphism count of `query` on the estimator's
  /// data graph. A Timeout status models the paper's 5-minute cutoff.
  virtual Result<double> EstimateCount(const Graph& query) = 0;
};

}  // namespace neursc

#endif  // NEURSC_BASELINES_ESTIMATOR_H_
