#ifndef NEURSC_BASELINES_SAMPLING_H_
#define NEURSC_BASELINES_SAMPLING_H_

#include <memory>
#include <vector>

#include "baselines/estimator.h"
#include "common/rng.h"

namespace neursc {

/// Correlated Sampling (Vengerov et al.), G-CARE adaptation: data vertices
/// are included in a sample by hashing (the same sample serves every
/// query — the "correlated" part), the query is counted exactly on the
/// induced sample graph, and the count is scaled by p^-|V(q)|. Selective
/// queries frequently see zero sampled matches ("sampling failure"),
/// producing the underestimates Sec. 6.2 describes.
class CorrelatedSamplingEstimator : public CardinalityEstimator {
 public:
  struct Options {
    double sample_probability = 0.2;
    double time_limit_seconds = 5.0;
    uint64_t seed = 17;
  };

  CorrelatedSamplingEstimator(const Graph& data, Options options);
  explicit CorrelatedSamplingEstimator(const Graph& data)
      : CorrelatedSamplingEstimator(data, Options()) {}

  std::string Name() const override { return "CS"; }
  Result<double> EstimateCount(const Graph& query) override;

 private:
  Options options_;
  Graph sample_;
};

/// WanderJoin (Li et al.): random walks over an edge order of the query.
/// Each walk samples the first data edge uniformly among label-matching
/// edges, then extends one query edge at a time by sampling a
/// label-matching neighbor uniformly; non-walk constraints (injectivity,
/// closing edges) are verified afterwards. The estimate is the average of
/// the walks' inverse sampling probabilities.
class WanderJoinEstimator : public CardinalityEstimator {
 public:
  struct Options {
    size_t num_walks = 200;
    double time_limit_seconds = 5.0;
    uint64_t seed = 23;
  };

  WanderJoinEstimator(const Graph& data, Options options);
  explicit WanderJoinEstimator(const Graph& data)
      : WanderJoinEstimator(data, Options()) {}

  std::string Name() const override { return "WJ"; }
  Result<double> EstimateCount(const Graph& query) override;

 private:
  const Graph& data_;
  Options options_;
  Rng rng_;
};

/// JSUB (Zhao et al., "random sampling over joins revisited"), G-CARE
/// adaptation: like WanderJoin but every extension step samples uniformly
/// from the *fully validated* extension set (label + adjacency to all
/// mapped neighbors + injectivity), i.e. the sampling distribution is
/// guided by the tighter bound. Lower failure rate and variance than WJ at
/// higher per-walk cost.
class JsubEstimator : public CardinalityEstimator {
 public:
  struct Options {
    size_t num_walks = 200;
    double time_limit_seconds = 5.0;
    uint64_t seed = 29;
  };

  JsubEstimator(const Graph& data, Options options);
  explicit JsubEstimator(const Graph& data)
      : JsubEstimator(data, Options()) {}

  std::string Name() const override { return "JSUB"; }
  Result<double> EstimateCount(const Graph& query) override;

 private:
  const Graph& data_;
  Options options_;
  Rng rng_;
};

/// Shared helper: connectivity-aware vertex order (each vertex after the
/// first has an already-ordered query neighbor).
std::vector<VertexId> ConnectedQueryOrder(const Graph& query);

}  // namespace neursc

#endif  // NEURSC_BASELINES_SAMPLING_H_
