#include "baselines/label_embedding.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace neursc {

namespace {

/// Gram-Schmidt orthonormalization of the columns of m (in place).
void Orthonormalize(Matrix* m) {
  const size_t rows = m->rows();
  const size_t cols = m->cols();
  for (size_t c = 0; c < cols; ++c) {
    // Remove projections onto previous columns.
    for (size_t prev = 0; prev < c; ++prev) {
      double dot = 0.0;
      for (size_t r = 0; r < rows; ++r) {
        dot += static_cast<double>(m->at(r, c)) * m->at(r, prev);
      }
      for (size_t r = 0; r < rows; ++r) {
        m->at(r, c) -= static_cast<float>(dot) * m->at(r, prev);
      }
    }
    double norm = 0.0;
    for (size_t r = 0; r < rows; ++r) {
      norm += static_cast<double>(m->at(r, c)) * m->at(r, c);
    }
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
      // Degenerate direction: re-seed with a unit basis vector.
      for (size_t r = 0; r < rows; ++r) m->at(r, c) = 0.0f;
      m->at(c % rows, c) = 1.0f;
    } else {
      float inv = static_cast<float>(1.0 / norm);
      for (size_t r = 0; r < rows; ++r) m->at(r, c) *= inv;
    }
  }
}

}  // namespace

LabelEmbedding::LabelEmbedding(const Graph& data, size_t dim,
                               size_t power_iterations, uint64_t seed) {
  const size_t num_labels = std::max<size_t>(data.NumLabels(), 1);
  dim = std::min(dim, num_labels);
  dim = std::max<size_t>(dim, 1);
  zero_.assign(dim, 0.0f);

  // Label co-occurrence matrix with self-loops for stability.
  Matrix cooc(num_labels, num_labels);
  for (size_t v = 0; v < data.NumVertices(); ++v) {
    Label lv = data.GetLabel(static_cast<VertexId>(v));
    for (VertexId w : data.Neighbors(static_cast<VertexId>(v))) {
      cooc.at(lv, data.GetLabel(w)) += 1.0f;
    }
  }
  for (size_t l = 0; l < num_labels; ++l) cooc.at(l, l) += 1.0f;

  // Symmetric normalization N = D^-1/2 C D^-1/2.
  std::vector<double> inv_sqrt_degree(num_labels, 0.0);
  for (size_t a = 0; a < num_labels; ++a) {
    double row_sum = 0.0;
    for (size_t b = 0; b < num_labels; ++b) row_sum += cooc.at(a, b);
    inv_sqrt_degree[a] = row_sum > 0.0 ? 1.0 / std::sqrt(row_sum) : 0.0;
  }
  for (size_t a = 0; a < num_labels; ++a) {
    for (size_t b = 0; b < num_labels; ++b) {
      cooc.at(a, b) = static_cast<float>(
          cooc.at(a, b) * inv_sqrt_degree[a] * inv_sqrt_degree[b]);
    }
  }

  // Subspace iteration for the top-dim eigenpairs.
  Rng rng(seed);
  Matrix basis = Matrix::Uniform(num_labels, dim, -1.0f, 1.0f, &rng);
  Orthonormalize(&basis);
  for (size_t it = 0; it < power_iterations; ++it) {
    basis = Matrix::MatMul(cooc, basis);
    Orthonormalize(&basis);
  }

  // Rayleigh quotients approximate the eigenvalues; scale columns by
  // sqrt(|lambda|) so dominant structure dominates the embedding.
  Matrix projected = Matrix::MatMul(cooc, basis);
  vectors_ = basis;
  for (size_t c = 0; c < dim; ++c) {
    double lambda = 0.0;
    for (size_t r = 0; r < num_labels; ++r) {
      lambda += static_cast<double>(basis.at(r, c)) * projected.at(r, c);
    }
    float scale = static_cast<float>(std::sqrt(std::abs(lambda)));
    for (size_t r = 0; r < num_labels; ++r) vectors_.at(r, c) *= scale;
  }
}

const float* LabelEmbedding::Vector(Label label) const {
  if (label >= vectors_.rows()) return zero_.data();
  return vectors_.row(label);
}

}  // namespace neursc
