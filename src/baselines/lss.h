#ifndef NEURSC_BASELINES_LSS_H_
#define NEURSC_BASELINES_LSS_H_

#include <memory>
#include <vector>

#include "baselines/estimator.h"
#include "baselines/label_embedding.h"
#include "common/rng.h"
#include "nn/eval.h"
#include "nn/modules.h"
#include "nn/optimizer.h"
#include "nn/tape.h"

namespace neursc {

/// Re-implementation of LSS, "A Learned Sketch for Subgraph Counting"
/// (Zhao et al., SIGMOD'21), the paper's strongest baseline. Pipeline:
///
/// 1. Decompose the query into |V(q)| substructures — the induced subgraph
///    of the k-hop ball around each query vertex (k fixed, default 3;
///    Sec. 1 of the NeurSC paper analyzes how small-diameter queries make
///    all balls identical).
/// 2. Embed every substructure with a GIN stack; sum-pooling readout.
///    Vertex features use only query-side information plus the data
///    graph's label frequencies (LSS does not extract from the data graph).
/// 3. Aggregate substructure embeddings with a self-attention layer, then
///    regress the (log-scale) count with an MLP.
///
/// Trained with Adam on the q-error loss.
class LssEstimator : public CardinalityEstimator {
 public:
  /// Vertex feature initialization mode, per [117]'s two options: plain
  /// label-frequency features, or task-independent label embeddings
  /// (ProNE in the original; a spectral co-occurrence embedding here).
  enum class FeatureMode { kBinaryFrequency, kLabelEmbedding };

  struct Options {
    size_t hop_k = 3;
    FeatureMode feature_mode = FeatureMode::kBinaryFrequency;
    size_t label_embedding_dim = 8;
    size_t gin_layers = 2;
    size_t hidden_dim = 32;
    size_t attention_dim = 32;
    double learning_rate = 1e-3;
    size_t batch_size = 8;
    size_t epochs = 12;
    double grad_clip_norm = 5.0;
    uint64_t seed = 5150;
  };

  LssEstimator(const Graph& data, Options options);
  explicit LssEstimator(const Graph& data) : LssEstimator(data, Options()) {}

  std::string Name() const override { return "LSS"; }
  Status Train(const std::vector<TrainingExample>& examples) override;
  Result<double> EstimateCount(const Graph& query) override;

  /// The k-hop-ball decomposition (exposed for tests): one induced
  /// substructure per query vertex.
  std::vector<Graph> Decompose(const Graph& query) const;

  /// Seconds spent in the last Train() call per epoch (Table 4).
  const std::vector<double>& epoch_seconds() const { return epoch_seconds_; }

 private:
  Matrix Featurize(const Graph& g) const;
  /// Forward over one query; returns the positive scalar estimate. Generic
  /// over the execution context: Train runs it on a Tape, EstimateCount on
  /// the reusable tape-free eval_ workspace (docs/execution.md).
  template <typename Ctx>
  Var Forward(Ctx* ctx, const std::vector<Graph>& substructures,
              const std::vector<Matrix>& features);
  std::vector<Parameter*> AllParameters();

  const Graph& data_;
  Options options_;
  Rng rng_;
  size_t degree_bits_;
  size_t label_bits_;
  /// log-normalized frequency of each data label.
  std::vector<float> label_frequency_;
  /// Populated only in kLabelEmbedding mode.
  std::unique_ptr<LabelEmbedding> label_embedding_;

  std::vector<std::unique_ptr<GinLayer>> gin_;
  std::unique_ptr<Linear> attn_proj_;      // hidden -> attention_dim
  Parameter attn_vector_;                  // attention_dim x 1
  std::unique_ptr<Mlp> predictor_;
  std::unique_ptr<AdamOptimizer> optimizer_;
  /// Forward-only workspace for EstimateCount; Reset() per call keeps the
  /// warmed-up arena so repeated estimates allocate nothing. EstimateCount
  /// is not called concurrently (the estimator confines itself to one
  /// caller thread; see docs/threading.md).
  EvalContext eval_;
  std::vector<double> epoch_seconds_;
};

}  // namespace neursc

#endif  // NEURSC_BASELINES_LSS_H_
