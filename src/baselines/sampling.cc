#include "baselines/sampling.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/timer.h"
#include "matching/enumeration.h"

namespace neursc {

std::vector<VertexId> ConnectedQueryOrder(const Graph& query) {
  const size_t nq = query.NumVertices();
  std::vector<VertexId> order;
  std::vector<bool> placed(nq, false);
  // Start from the highest-degree vertex (most constrained).
  VertexId start = 0;
  for (size_t u = 1; u < nq; ++u) {
    if (query.Degree(static_cast<VertexId>(u)) > query.Degree(start)) {
      start = static_cast<VertexId>(u);
    }
  }
  order.push_back(start);
  placed[start] = true;
  while (order.size() < nq) {
    VertexId next = kInvalidVertex;
    for (size_t u = 0; u < nq; ++u) {
      if (placed[u]) continue;
      for (VertexId w : query.Neighbors(static_cast<VertexId>(u))) {
        if (placed[w]) {
          next = static_cast<VertexId>(u);
          break;
        }
      }
      if (next != kInvalidVertex) break;
    }
    if (next == kInvalidVertex) {
      for (size_t u = 0; u < nq; ++u) {
        if (!placed[u]) {
          next = static_cast<VertexId>(u);
          break;
        }
      }
    }
    placed[next] = true;
    order.push_back(next);
  }
  return order;
}

namespace {

/// Splitmix-style hash for correlated vertex sampling.
uint64_t HashVertex(uint64_t v, uint64_t seed) {
  uint64_t x = v + seed + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

CorrelatedSamplingEstimator::CorrelatedSamplingEstimator(const Graph& data,
                                                         Options options)
    : options_(options) {
  // Deterministic hash-based vertex sample shared across queries.
  std::vector<VertexId> kept;
  const uint64_t threshold = static_cast<uint64_t>(
      options_.sample_probability * static_cast<double>(UINT64_MAX));
  for (size_t v = 0; v < data.NumVertices(); ++v) {
    if (HashVertex(v, options_.seed) <= threshold) {
      kept.push_back(static_cast<VertexId>(v));
    }
  }
  auto induced = BuildInducedSubgraph(data, kept);
  NEURSC_CHECK(induced.ok());
  sample_ = std::move(induced->graph);
}

Result<double> CorrelatedSamplingEstimator::EstimateCount(const Graph& query) {
  EnumerationOptions eopts;
  eopts.time_limit_seconds = options_.time_limit_seconds;
  auto counted = CountSubgraphIsomorphisms(query, sample_, eopts);
  if (!counted.ok()) return counted.status();
  if (!counted->exact) {
    return Status::Timeout("sample enumeration exceeded budget");
  }
  double scale = std::pow(options_.sample_probability,
                          -static_cast<double>(query.NumVertices()));
  return static_cast<double>(counted->count) * scale;
}

WanderJoinEstimator::WanderJoinEstimator(const Graph& data, Options options)
    : data_(data), options_(options), rng_(options.seed) {}

Result<double> WanderJoinEstimator::EstimateCount(const Graph& query) {
  if (query.NumVertices() < 2) {
    return Status::InvalidArgument("query too small");
  }
  Deadline deadline(options_.time_limit_seconds);
  std::vector<VertexId> order = ConnectedQueryOrder(query);
  const size_t nq = query.NumVertices();

  // First query edge: (order[0], order[1]); order[1] is adjacent to
  // order[0] by construction.
  VertexId q0 = order[0];
  VertexId q1 = order[1];
  NEURSC_CHECK(query.HasEdge(q0, q1));
  Label l0 = query.GetLabel(q0);
  Label l1 = query.GetLabel(q1);

  // Candidate first edges: directed (a, b) with matching labels.
  std::vector<std::pair<VertexId, VertexId>> first_edges;
  for (VertexId a : data_.VerticesWithLabel(l0)) {
    for (VertexId b : data_.Neighbors(a)) {
      if (data_.GetLabel(b) == l1) first_edges.emplace_back(a, b);
    }
  }
  if (first_edges.empty()) return 0.0;

  double sum = 0.0;
  size_t walks_done = 0;
  std::vector<VertexId> mapping(nq, kInvalidVertex);
  for (size_t walk = 0; walk < options_.num_walks; ++walk) {
    if (deadline.Expired()) break;
    ++walks_done;
    std::fill(mapping.begin(), mapping.end(), kInvalidVertex);
    auto [a, b] = first_edges[rng_.UniformIndex(first_edges.size())];
    if (a == b) continue;
    mapping[q0] = a;
    mapping[q1] = b;
    double weight = static_cast<double>(first_edges.size());
    bool alive = true;
    for (size_t depth = 2; depth < nq && alive; ++depth) {
      VertexId u = order[depth];
      Label lu = query.GetLabel(u);
      // Anchor: an already-mapped query neighbor of u.
      VertexId anchor = kInvalidVertex;
      for (VertexId w : query.Neighbors(u)) {
        if (mapping[w] != kInvalidVertex) {
          anchor = w;
          break;
        }
      }
      NEURSC_CHECK(anchor != kInvalidVertex);
      // Sample among label-matching neighbors of the anchor's image; other
      // constraints are verified after the draw (pure WanderJoin).
      std::vector<VertexId> extensions;
      for (VertexId v : data_.Neighbors(mapping[anchor])) {
        if (data_.GetLabel(v) == lu) extensions.push_back(v);
      }
      if (extensions.empty()) {
        alive = false;
        break;
      }
      VertexId chosen = extensions[rng_.UniformIndex(extensions.size())];
      weight *= static_cast<double>(extensions.size());
      // Injectivity.
      for (size_t d = 0; d < depth; ++d) {
        if (mapping[order[d]] == chosen) {
          alive = false;
          break;
        }
      }
      if (!alive) break;
      // All other query edges from u to mapped vertices must exist.
      for (VertexId w : query.Neighbors(u)) {
        if (w == anchor || mapping[w] == kInvalidVertex) continue;
        if (!data_.HasEdge(chosen, mapping[w])) {
          alive = false;
          break;
        }
      }
      if (alive) mapping[u] = chosen;
    }
    if (alive) sum += weight;
  }
  if (walks_done == 0) return Status::Timeout("no walks within budget");
  return sum / static_cast<double>(walks_done);
}

JsubEstimator::JsubEstimator(const Graph& data, Options options)
    : data_(data), options_(options), rng_(options.seed) {}

Result<double> JsubEstimator::EstimateCount(const Graph& query) {
  if (query.NumVertices() < 1) {
    return Status::InvalidArgument("empty query");
  }
  Deadline deadline(options_.time_limit_seconds);
  std::vector<VertexId> order = ConnectedQueryOrder(query);
  const size_t nq = query.NumVertices();

  VertexId root = order[0];
  auto root_candidates = data_.VerticesWithLabel(query.GetLabel(root));
  std::vector<VertexId> roots;
  for (VertexId v : root_candidates) {
    if (data_.Degree(v) >= query.Degree(root)) roots.push_back(v);
  }
  if (roots.empty()) return 0.0;

  double sum = 0.0;
  size_t walks_done = 0;
  std::vector<VertexId> mapping(nq, kInvalidVertex);
  std::vector<VertexId> extensions;
  for (size_t walk = 0; walk < options_.num_walks; ++walk) {
    if (deadline.Expired()) break;
    ++walks_done;
    std::fill(mapping.begin(), mapping.end(), kInvalidVertex);
    mapping[root] = roots[rng_.UniformIndex(roots.size())];
    double weight = static_cast<double>(roots.size());
    bool alive = true;
    for (size_t depth = 1; depth < nq && alive; ++depth) {
      VertexId u = order[depth];
      Label lu = query.GetLabel(u);
      VertexId anchor = kInvalidVertex;
      for (VertexId w : query.Neighbors(u)) {
        if (mapping[w] != kInvalidVertex) {
          anchor = w;
          break;
        }
      }
      NEURSC_CHECK(anchor != kInvalidVertex);
      // Fully validated extension set: label, adjacency to *all* mapped
      // neighbors, injectivity.
      extensions.clear();
      for (VertexId v : data_.Neighbors(mapping[anchor])) {
        if (data_.GetLabel(v) != lu) continue;
        bool ok = true;
        for (size_t d = 0; d < depth; ++d) {
          if (mapping[order[d]] == v) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        for (VertexId w : query.Neighbors(u)) {
          if (w == anchor || mapping[w] == kInvalidVertex) continue;
          if (!data_.HasEdge(v, mapping[w])) {
            ok = false;
            break;
          }
        }
        if (ok) extensions.push_back(v);
      }
      if (extensions.empty()) {
        alive = false;
        break;
      }
      mapping[u] = extensions[rng_.UniformIndex(extensions.size())];
      weight *= static_cast<double>(extensions.size());
    }
    if (alive) sum += weight;
  }
  if (walks_done == 0) return Status::Timeout("no walks within budget");
  return sum / static_cast<double>(walks_done);
}

}  // namespace neursc
