#ifndef NEURSC_BASELINES_SUMRDF_H_
#define NEURSC_BASELINES_SUMRDF_H_

#include <unordered_map>
#include <vector>

#include "baselines/estimator.h"

namespace neursc {

/// SumRDF-style summary estimator (Stefanoni et al.), adapted to labeled
/// graphs: data vertices are merged into buckets keyed by (label, degree
/// quantile); the summary is a weighted multigraph whose edge weight
/// w(b1, b2) counts data edges between the buckets. A query is estimated by
/// enumerating all homomorphisms of q into the summary and accumulating the
/// expected embedding count of each under a uniform "possible worlds"
/// semantics:
///   E[sigma] = prod_u |sigma(u)| * prod_{e(u,v)} w(sigma u, sigma v) /
///              (|sigma u| * |sigma v|).
/// The summary search is exponential in |V(q)| and is guarded by a
/// deadline; like the original system it times out on large queries
/// (Sec. 6.2 reports exactly this behaviour).
class SumRdfEstimator : public CardinalityEstimator {
 public:
  struct Options {
    /// Degree-quantile buckets per label.
    size_t buckets_per_label = 4;
    /// Per-query budget; the paper uses a 5-minute cutoff for G-CARE
    /// methods (scaled down here).
    double time_limit_seconds = 5.0;
  };

  SumRdfEstimator(const Graph& data, Options options);
  explicit SumRdfEstimator(const Graph& data)
      : SumRdfEstimator(data, Options()) {}

  std::string Name() const override { return "SumRDF"; }
  Result<double> EstimateCount(const Graph& query) override;

  size_t NumBuckets() const { return bucket_size_.size(); }

 private:
  const Graph& data_;
  Options options_;
  /// bucket id of each data vertex.
  std::vector<uint32_t> vertex_bucket_;
  std::vector<double> bucket_size_;
  std::vector<Label> bucket_label_;
  /// Buckets holding each label.
  std::vector<std::vector<uint32_t>> buckets_of_label_;
  /// Summary edge weights: key = b1 * num_buckets + b2 (both directions).
  std::unordered_map<uint64_t, double> summary_edges_;
};

}  // namespace neursc

#endif  // NEURSC_BASELINES_SUMRDF_H_
