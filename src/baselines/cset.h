#ifndef NEURSC_BASELINES_CSET_H_
#define NEURSC_BASELINES_CSET_H_

#include <unordered_map>
#include <vector>

#include "baselines/estimator.h"

namespace neursc {

/// CharacteristicSets (Neumann & Moerkotte), adapted from RDF to labeled
/// graphs as in G-CARE: the data graph is summarized per vertex by its
/// label and the multiset of neighbor labels. A query is decomposed into
/// the stars around each query vertex; the count of each star is computed
/// *exactly* from the per-vertex summaries (falling factorials over
/// neighbor-label multiplicities), and stars are combined assuming
/// independence, dividing by the label-pair edge counts shared by two
/// adjacent stars. Exact on trees that are stars/paths; the independence
/// assumption underestimates correlated/cyclic structures — the behaviour
/// Sec. 6.2 reports.
class CSetEstimator : public CardinalityEstimator {
 public:
  explicit CSetEstimator(const Graph& data);

  std::string Name() const override { return "CSet"; }
  Result<double> EstimateCount(const Graph& query) override;

  /// Exact embedding count of the star centered at query vertex u (its
  /// neighbors as leaves), from the precomputed summaries.
  double StarCount(const Graph& query, VertexId u) const;

 private:
  const Graph& data_;
  /// neighbor_label_counts_[v] maps label -> multiplicity among N(v).
  std::vector<std::unordered_map<Label, uint32_t>> neighbor_label_counts_;
  /// Directed label-pair edge counts: key = l1 * num_labels + l2.
  std::unordered_map<uint64_t, double> label_pair_edges_;
  size_t num_labels_;
};

}  // namespace neursc

#endif  // NEURSC_BASELINES_CSET_H_
