#ifndef NEURSC_GRAPH_GRAPH_IO_H_
#define NEURSC_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace neursc {

/// Serialization in the text format used by the in-memory subgraph matching
/// benchmark suite (Sun & Luo, SIGMOD'20), which the paper's datasets ship
/// in:
///
///   t <num_vertices> <num_edges>
///   v <vertex_id> <label> <degree>
///   ...
///   e <src> <dst>
///   ...
///
/// Vertex ids must be dense 0..n-1; the degree column is redundant and is
/// validated on load.
Result<Graph> ReadGraphFromStream(std::istream& in);
Result<Graph> ReadGraphFromFile(const std::string& path);
Result<Graph> ReadGraphFromString(const std::string& text);

Status WriteGraphToStream(const Graph& g, std::ostream& out);
Status WriteGraphToFile(const Graph& g, const std::string& path);
std::string WriteGraphToString(const Graph& g);

/// Compact binary serialization (little-endian, magic "NSCG" + version):
/// loads large graphs an order of magnitude faster than the text format.
/// Layout: magic(4) version(u32) |V|(u64) |E|(u64), labels (u32 each),
/// edges (u32 pairs with src < dst).
Status WriteGraphBinary(const Graph& g, const std::string& path);
Result<Graph> ReadGraphBinary(const std::string& path);

/// Graphviz DOT rendering (undirected), with labels as both node text and
/// a small categorical color palette. Intended for debugging small query
/// graphs and substructures.
std::string ToDot(const Graph& g, const std::string& name = "g");

}  // namespace neursc

#endif  // NEURSC_GRAPH_GRAPH_IO_H_
