#ifndef NEURSC_GRAPH_STATS_H_
#define NEURSC_GRAPH_STATS_H_

#include <cstdint>

#include "graph/graph.h"

namespace neursc {

/// Shannon entropy of the label distribution over vertices (bits, natural
/// log as in the paper's Sec. 6.2 definition).
double LabelEntropy(const Graph& g);

/// Shannon entropy of the degree distribution over vertices.
double DegreeEntropy(const Graph& g);

/// Graph diameter: the longest shortest path over all vertex pairs,
/// computed by BFS from each vertex. For disconnected graphs returns the
/// largest finite eccentricity. Intended for small (query) graphs.
uint32_t Diameter(const Graph& g);

/// Eccentricity of `source`: max BFS distance to any reachable vertex.
uint32_t Eccentricity(const Graph& g, VertexId source);

/// Number of triangles (unordered vertex triples forming 3-cycles).
uint64_t CountTriangles(const Graph& g);

/// Global clustering coefficient: 3 * triangles / #wedges (0 if no
/// wedges). Used to validate generator realism (real graphs cluster).
double GlobalClusteringCoefficient(const Graph& g);

/// Summary of the characteristics Figure 9 buckets queries by.
struct QueryCharacteristics {
  double label_entropy = 0.0;
  double degree_entropy = 0.0;
  double density = 0.0;
  uint32_t diameter = 0;
};

QueryCharacteristics ComputeQueryCharacteristics(const Graph& q);

}  // namespace neursc

#endif  // NEURSC_GRAPH_STATS_H_
