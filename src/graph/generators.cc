#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>
#include <utility>

#include "common/logging.h"

namespace neursc {

namespace {

/// Assigns Zipf-skewed labels over [0, num_labels). Every label in the
/// range is used at least once when num_vertices >= num_labels so that the
/// generated graph reports the intended |L|.
std::vector<Label> DrawLabels(size_t num_vertices, size_t num_labels,
                              double skew, Rng* rng) {
  std::vector<Label> labels(num_vertices);
  for (size_t v = 0; v < num_vertices; ++v) {
    if (v < num_labels) {
      labels[v] = static_cast<Label>(v);
    } else if (skew <= 0.0) {
      labels[v] = static_cast<Label>(rng->UniformIndex(num_labels));
    } else {
      labels[v] = static_cast<Label>(
          rng->Zipf(static_cast<int64_t>(num_labels), skew) - 1);
    }
  }
  rng->Shuffle(&labels);
  return labels;
}

/// Samples `num_edges` distinct undirected edges with both endpoints drawn
/// proportionally to `weights` (Chung-Lu style). Falls back to uniform
/// resampling when rejections pile up on tiny graphs.
std::vector<std::pair<VertexId, VertexId>> SampleWeightedEdges(
    const std::vector<double>& weights, size_t num_edges, Rng* rng) {
  const size_t n = weights.size();
  // Alias-free endpoint sampling via cumulative weights + binary search.
  std::vector<double> cumulative(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += weights[i];
    cumulative[i] = total;
  }
  auto sample_endpoint = [&]() -> VertexId {
    double r = rng->Uniform01() * total;
    auto it = std::lower_bound(cumulative.begin(), cumulative.end(), r);
    size_t idx = static_cast<size_t>(it - cumulative.begin());
    return static_cast<VertexId>(std::min(idx, n - 1));
  };

  std::set<std::pair<VertexId, VertexId>> edges;
  size_t attempts = 0;
  const size_t max_attempts = num_edges * 50 + 1000;
  while (edges.size() < num_edges && attempts < max_attempts) {
    ++attempts;
    VertexId u = sample_endpoint();
    VertexId v = sample_endpoint();
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    edges.emplace(u, v);
  }
  return {edges.begin(), edges.end()};
}

/// Ensures connectivity by linking every non-largest component to the
/// largest one through a random edge, then returns the rebuilt graph.
Result<Graph> Connectify(Graph g, Rng* rng) {
  auto components = ConnectedComponents(g);
  if (components.size() <= 1) return g;
  size_t largest = 0;
  for (size_t i = 1; i < components.size(); ++i) {
    if (components[i].size() > components[largest].size()) largest = i;
  }
  GraphBuilder builder;
  builder.Reserve(g.NumVertices(), g.NumEdges() + components.size());
  for (size_t v = 0; v < g.NumVertices(); ++v) {
    builder.AddVertex(g.GetLabel(static_cast<VertexId>(v)));
  }
  for (size_t v = 0; v < g.NumVertices(); ++v) {
    for (VertexId w : g.Neighbors(static_cast<VertexId>(v))) {
      if (v < w) {
        NEURSC_RETURN_IF_ERROR(builder.AddEdge(static_cast<VertexId>(v), w));
      }
    }
  }
  for (size_t i = 0; i < components.size(); ++i) {
    if (i == largest) continue;
    VertexId a = components[i][rng->UniformIndex(components[i].size())];
    VertexId b =
        components[largest][rng->UniformIndex(components[largest].size())];
    NEURSC_RETURN_IF_ERROR(builder.AddEdge(a, b));
  }
  return builder.Build();
}

double EnvScaleMultiplier() {
  const char* env = std::getenv("NEURSC_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

}  // namespace

namespace {

/// Community-structured variant: vertices are partitioned into
/// communities, most edges stay intra-community, and each community draws
/// most of its labels from a "home" block of the label space.
Result<Graph> GenerateCommunityGraph(const GeneratorConfig& config,
                                     Rng* rng) {
  const size_t n = config.num_vertices;
  const size_t communities = config.num_communities;

  // Community assignment (contiguous blocks of roughly equal size keep the
  // construction deterministic and simple).
  std::vector<uint32_t> community(n);
  std::vector<std::vector<VertexId>> members(communities);
  for (size_t v = 0; v < n; ++v) {
    uint32_t c = static_cast<uint32_t>(v * communities / n);
    community[v] = c;
    members[c].push_back(static_cast<VertexId>(v));
  }

  // Power-law weights, plus per-community cumulative tables for fast
  // weighted sampling within a community.
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    double u = std::max(rng->Uniform01(), 1e-12);
    double w = std::pow(u, -1.0 / (config.degree_exponent - 1.0));
    weights[i] = std::min(w, std::sqrt(static_cast<double>(n)));
  }
  std::vector<std::vector<double>> community_cumulative(communities);
  std::vector<double> community_total(communities, 0.0);
  for (uint32_t c = 0; c < communities; ++c) {
    community_cumulative[c].reserve(members[c].size());
    for (VertexId v : members[c]) {
      community_total[c] += weights[v];
      community_cumulative[c].push_back(community_total[c]);
    }
  }
  double global_total = 0.0;
  std::vector<double> global_cumulative(n);
  for (size_t v = 0; v < n; ++v) {
    global_total += weights[v];
    global_cumulative[v] = global_total;
  }
  auto sample_in_community = [&](uint32_t c) -> VertexId {
    const auto& cumulative = community_cumulative[c];
    double r = rng->Uniform01() * community_total[c];
    auto it = std::lower_bound(cumulative.begin(), cumulative.end(), r);
    size_t idx = static_cast<size_t>(it - cumulative.begin());
    return members[c][std::min(idx, members[c].size() - 1)];
  };
  auto sample_global = [&]() -> VertexId {
    double r = rng->Uniform01() * global_total;
    auto it =
        std::lower_bound(global_cumulative.begin(), global_cumulative.end(), r);
    size_t idx = static_cast<size_t>(it - global_cumulative.begin());
    return static_cast<VertexId>(std::min(idx, n - 1));
  };

  std::set<std::pair<VertexId, VertexId>> edges;
  size_t attempts = 0;
  const size_t max_attempts = config.num_edges * 50 + 1000;
  while (edges.size() < config.num_edges && attempts < max_attempts) {
    ++attempts;
    VertexId a = sample_global();
    VertexId b = rng->Bernoulli(config.intra_community_fraction)
                     ? sample_in_community(community[a])
                     : sample_global();
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    edges.emplace(a, b);
  }

  // Labels: each community owns a contiguous "home" block of the label
  // space; a vertex draws from its home block with probability
  // label_locality, globally (Zipf) otherwise. Every label is used at
  // least once so |L| matches the configuration.
  std::vector<Label> labels(n);
  const size_t num_labels = config.num_labels;
  for (size_t v = 0; v < n; ++v) {
    if (v < num_labels) {
      labels[v] = static_cast<Label>(v);
      continue;
    }
    uint32_t c = community[v];
    size_t block_lo = c * num_labels / communities;
    size_t block_hi =
        std::max<size_t>((c + 1) * num_labels / communities, block_lo + 1);
    if (rng->Bernoulli(config.label_locality)) {
      labels[v] = static_cast<Label>(
          block_lo + rng->UniformIndex(block_hi - block_lo));
    } else if (config.label_skew > 0.0) {
      labels[v] = static_cast<Label>(
          rng->Zipf(static_cast<int64_t>(num_labels), config.label_skew) -
          1);
    } else {
      labels[v] = static_cast<Label>(rng->UniformIndex(num_labels));
    }
  }

  GraphBuilder builder;
  builder.Reserve(n, edges.size());
  for (Label l : labels) builder.AddVertex(l);
  for (const auto& [a, b] : edges) {
    NEURSC_RETURN_IF_ERROR(builder.AddEdge(a, b));
  }
  auto built = builder.Build();
  if (!built.ok()) return built.status();
  return Connectify(std::move(built).value(), rng);
}

}  // namespace

Result<Graph> GeneratePowerLawGraph(const GeneratorConfig& config) {
  if (config.num_vertices < 2) {
    return Status::InvalidArgument("need at least 2 vertices");
  }
  if (config.num_labels == 0) {
    return Status::InvalidArgument("need at least 1 label");
  }
  Rng rng(config.seed);
  const size_t n = config.num_vertices;

  if (config.num_communities > 1) {
    return GenerateCommunityGraph(config, &rng);
  }

  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    // Power-law weights w ~ U^{-1/(gamma-1)}; clamp the tail so a single hub
    // cannot absorb the whole edge budget.
    double u = std::max(rng.Uniform01(), 1e-12);
    double w = std::pow(u, -1.0 / (config.degree_exponent - 1.0));
    weights[i] = std::min(w, std::sqrt(static_cast<double>(n)));
  }

  auto edge_list = SampleWeightedEdges(weights, config.num_edges, &rng);

  GraphBuilder builder;
  builder.Reserve(n, edge_list.size());
  auto labels =
      DrawLabels(n, config.num_labels, config.label_skew, &rng);
  for (Label l : labels) builder.AddVertex(l);
  for (const auto& [u, v] : edge_list) {
    NEURSC_RETURN_IF_ERROR(builder.AddEdge(u, v));
  }
  auto built = builder.Build();
  if (!built.ok()) return built.status();
  return Connectify(std::move(built).value(), &rng);
}

Result<Graph> GenerateErdosRenyiGraph(size_t num_vertices, size_t num_edges,
                                      size_t num_labels, uint64_t seed) {
  GeneratorConfig config;
  config.num_vertices = num_vertices;
  config.num_edges = num_edges;
  config.num_labels = num_labels;
  config.label_skew = 0.0;
  config.seed = seed;
  if (num_vertices < 2) {
    return Status::InvalidArgument("need at least 2 vertices");
  }
  Rng rng(seed);
  std::vector<double> weights(num_vertices, 1.0);
  auto edge_list = SampleWeightedEdges(weights, num_edges, &rng);
  GraphBuilder builder;
  builder.Reserve(num_vertices, edge_list.size());
  auto labels = DrawLabels(num_vertices, num_labels, 0.0, &rng);
  for (Label l : labels) builder.AddVertex(l);
  for (const auto& [u, v] : edge_list) {
    NEURSC_RETURN_IF_ERROR(builder.AddEdge(u, v));
  }
  auto built = builder.Build();
  if (!built.ok()) return built.status();
  return Connectify(std::move(built).value(), &rng);
}

const std::vector<DatasetProfile>& AllDatasetProfiles() {
  // Full-size statistics from Table 2; query sizes & workload sizes from
  // Table 3. default_scale keeps the synthetic stand-in small enough for
  // in-harness exact ground truth (see DESIGN.md substitutions).
  static const std::vector<DatasetProfile>& kProfiles =
      *new std::vector<DatasetProfile>{
          {"Yeast", 3112, 12519, 71, 8.0, 1.0, {4, 8, 16, 24, 32}, 60},
          {"Human", 4674, 86282, 44, 36.9, 0.35, {4, 8, 16}, 40},
          {"HPRD", 9460, 34998, 307, 7.4, 0.5, {4, 8, 16}, 40},
          {"Wordnet", 76853, 120399, 5, 3.1, 0.05, {4, 8}, 40},
          {"DBLP", 317080, 1049866, 15, 6.6, 0.01, {4, 8}, 40},
          {"EU2005", 862664, 16138468, 40, 37.4, 0.003, {4, 8}, 30},
          {"Youtube", 1134890, 2987624, 25, 5.3, 0.004, {4, 8, 16}, 40},
      };
  return kProfiles;
}

Result<DatasetProfile> FindDatasetProfile(const std::string& name) {
  for (const auto& p : AllDatasetProfiles()) {
    if (p.name == name) return p;
  }
  return Status::NotFound("unknown dataset profile '" + name + "'");
}

Result<Graph> GenerateDataset(const DatasetProfile& profile, double scale,
                              uint64_t seed) {
  double effective = (scale > 0 ? scale : profile.default_scale);
  effective *= EnvScaleMultiplier();
  effective = std::min(effective, 1.0);
  GeneratorConfig config;
  config.num_vertices = std::max<size_t>(
      64, static_cast<size_t>(profile.full_vertices * effective));
  config.num_edges = std::max<size_t>(
      config.num_vertices,
      static_cast<size_t>(config.num_vertices * profile.avg_degree / 2.0));
  config.num_labels = std::min(profile.num_labels, config.num_vertices / 2);
  // Real vertex-labeled graphs have strong label locality; the community
  // model reproduces it (and with it, the fragmentation of candidate
  // regions into multiple substructures that Sec. 5.8 exploits).
  config.num_communities = std::max<size_t>(4, config.num_labels / 4);
  config.seed = seed;
  NEURSC_LOG(Debug) << "Generating " << profile.name << " stand-in at scale "
                    << effective << " (" << config.num_vertices
                    << " vertices)";
  return GeneratePowerLawGraph(config);
}

}  // namespace neursc
