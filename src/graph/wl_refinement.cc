#include "graph/wl_refinement.h"

#include <algorithm>
#include <map>
#include <utility>

namespace neursc {

namespace {

/// One refinement round over an adjacency structure given as neighbor
/// lists; returns the number of distinct colors after the round.
size_t RefineOnce(const std::vector<std::vector<uint32_t>>& adjacency,
                  std::vector<uint32_t>* colors) {
  const size_t n = adjacency.size();
  // Signature of v: (old color, sorted neighbor colors).
  std::vector<std::pair<std::vector<uint32_t>, size_t>> signatures(n);
  for (size_t v = 0; v < n; ++v) {
    std::vector<uint32_t> sig;
    sig.reserve(adjacency[v].size() + 1);
    sig.push_back((*colors)[v]);
    for (uint32_t w : adjacency[v]) sig.push_back((*colors)[w]);
    std::sort(sig.begin() + 1, sig.end());
    signatures[v] = {std::move(sig), v};
  }
  // Canonical dense ids in signature order.
  std::map<std::vector<uint32_t>, uint32_t> palette;
  for (const auto& [sig, v] : signatures) {
    auto [it, inserted] =
        palette.emplace(sig, static_cast<uint32_t>(palette.size()));
    (*colors)[v] = it->second;
  }
  return palette.size();
}

std::vector<uint32_t> RunWl(
    const std::vector<std::vector<uint32_t>>& adjacency,
    std::vector<uint32_t> colors, int max_rounds) {
  size_t distinct = 0;
  {
    // Canonicalize the initial coloring too.
    std::map<uint32_t, uint32_t> palette;
    for (uint32_t& c : colors) {
      auto [it, inserted] =
          palette.emplace(c, static_cast<uint32_t>(palette.size()));
      c = it->second;
    }
    distinct = palette.size();
  }
  int round = 0;
  while (max_rounds <= 0 || round < max_rounds) {
    ++round;
    size_t next = RefineOnce(adjacency, &colors);
    if (next == distinct) break;  // stable partition
    distinct = next;
    if (distinct == adjacency.size()) break;  // fully discrete
  }
  return colors;
}

std::vector<std::vector<uint32_t>> AdjacencyOf(const Graph& g,
                                               uint32_t offset = 0) {
  std::vector<std::vector<uint32_t>> adjacency(g.NumVertices());
  for (size_t v = 0; v < g.NumVertices(); ++v) {
    for (VertexId w : g.Neighbors(static_cast<VertexId>(v))) {
      adjacency[v].push_back(offset + w);
    }
  }
  return adjacency;
}

}  // namespace

std::vector<uint32_t> WlColors(const Graph& g, int max_rounds) {
  std::vector<uint32_t> colors(g.NumVertices());
  for (size_t v = 0; v < g.NumVertices(); ++v) {
    colors[v] = g.GetLabel(static_cast<VertexId>(v));
  }
  return RunWl(AdjacencyOf(g), std::move(colors), max_rounds);
}

std::pair<WlSignature, WlSignature> JointWlSignatures(const Graph& g1,
                                                      const Graph& g2,
                                                      int max_rounds) {
  const size_t n1 = g1.NumVertices();
  const size_t n2 = g2.NumVertices();
  std::vector<std::vector<uint32_t>> adjacency = AdjacencyOf(g1);
  auto adjacency2 = AdjacencyOf(g2, static_cast<uint32_t>(n1));
  adjacency.insert(adjacency.end(), adjacency2.begin(), adjacency2.end());

  std::vector<uint32_t> colors(n1 + n2);
  for (size_t v = 0; v < n1; ++v) {
    colors[v] = g1.GetLabel(static_cast<VertexId>(v));
  }
  for (size_t v = 0; v < n2; ++v) {
    colors[n1 + v] = g2.GetLabel(static_cast<VertexId>(v));
  }
  colors = RunWl(adjacency, std::move(colors), max_rounds);

  WlSignature s1;
  WlSignature s2;
  s1.histogram.assign(colors.begin(), colors.begin() + n1);
  s2.histogram.assign(colors.begin() + n1, colors.end());
  std::sort(s1.histogram.begin(), s1.histogram.end());
  std::sort(s2.histogram.begin(), s2.histogram.end());
  return {std::move(s1), std::move(s2)};
}

bool WlDistinguishes(const Graph& g1, const Graph& g2, int max_rounds) {
  auto [s1, s2] = JointWlSignatures(g1, g2, max_rounds);
  return !(s1 == s2);
}

}  // namespace neursc
