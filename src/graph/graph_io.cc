#include "graph/graph_io.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace neursc {

Result<Graph> ReadGraphFromStream(std::istream& in) {
  std::string tag;
  size_t num_vertices = 0;
  size_t num_edges = 0;
  if (!(in >> tag) || tag != "t" || !(in >> num_vertices >> num_edges)) {
    return Status::IOError("missing or malformed 't' header line");
  }
  GraphBuilder builder;
  builder.Reserve(num_vertices, num_edges);
  std::vector<uint32_t> declared_degree(num_vertices, 0);
  size_t vertices_seen = 0;
  size_t edges_seen = 0;
  while (in >> tag) {
    if (tag == "v") {
      uint64_t id = 0;
      uint64_t label = 0;
      uint64_t degree = 0;
      if (!(in >> id >> label >> degree)) {
        return Status::IOError("malformed 'v' line");
      }
      if (id != vertices_seen) {
        return Status::IOError("vertex ids must be dense and in order");
      }
      builder.AddVertex(static_cast<Label>(label));
      declared_degree[id] = static_cast<uint32_t>(degree);
      ++vertices_seen;
    } else if (tag == "e") {
      uint64_t u = 0;
      uint64_t v = 0;
      if (!(in >> u >> v)) {
        return Status::IOError("malformed 'e' line");
      }
      Status st = builder.AddEdge(static_cast<VertexId>(u),
                                  static_cast<VertexId>(v));
      if (!st.ok()) return st;
      ++edges_seen;
    } else {
      return Status::IOError("unexpected line tag '" + tag + "'");
    }
  }
  if (vertices_seen != num_vertices) {
    return Status::IOError("header declared " + std::to_string(num_vertices) +
                           " vertices, found " + std::to_string(vertices_seen));
  }
  if (edges_seen != num_edges) {
    return Status::IOError("header declared " + std::to_string(num_edges) +
                           " edges, found " + std::to_string(edges_seen));
  }
  auto built = builder.Build();
  if (!built.ok()) return built.status();
  Graph g = std::move(built).value();
  for (size_t v = 0; v < g.NumVertices(); ++v) {
    if (g.Degree(static_cast<VertexId>(v)) != declared_degree[v]) {
      return Status::IOError("declared degree mismatch at vertex " +
                             std::to_string(v));
    }
  }
  return g;
}

Result<Graph> ReadGraphFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ReadGraphFromStream(in);
}

Result<Graph> ReadGraphFromString(const std::string& text) {
  std::istringstream in(text);
  return ReadGraphFromStream(in);
}

Status WriteGraphToStream(const Graph& g, std::ostream& out) {
  out << "t " << g.NumVertices() << " " << g.NumEdges() << "\n";
  for (size_t v = 0; v < g.NumVertices(); ++v) {
    out << "v " << v << " " << g.GetLabel(static_cast<VertexId>(v)) << " "
        << g.Degree(static_cast<VertexId>(v)) << "\n";
  }
  for (size_t v = 0; v < g.NumVertices(); ++v) {
    for (VertexId w : g.Neighbors(static_cast<VertexId>(v))) {
      if (v < w) out << "e " << v << " " << w << "\n";
    }
  }
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Status WriteGraphToFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  return WriteGraphToStream(g, out);
}

std::string WriteGraphToString(const Graph& g) {
  std::ostringstream out;
  WriteGraphToStream(g, out);
  return out.str();
}

namespace {

constexpr char kBinaryMagic[4] = {'N', 'S', 'C', 'G'};
constexpr uint32_t kBinaryVersion = 1;

template <typename T>
void WriteRaw(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadRaw(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status WriteGraphBinary(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path);
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  WriteRaw(out, kBinaryVersion);
  WriteRaw(out, static_cast<uint64_t>(g.NumVertices()));
  WriteRaw(out, static_cast<uint64_t>(g.NumEdges()));
  for (size_t v = 0; v < g.NumVertices(); ++v) {
    WriteRaw(out, static_cast<uint32_t>(g.GetLabel(static_cast<VertexId>(v))));
  }
  for (size_t v = 0; v < g.NumVertices(); ++v) {
    for (VertexId w : g.Neighbors(static_cast<VertexId>(v))) {
      if (v < w) {
        WriteRaw(out, static_cast<uint32_t>(v));
        WriteRaw(out, static_cast<uint32_t>(w));
      }
    }
  }
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Result<Graph> ReadGraphBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    return Status::IOError("bad magic (not a NSCG binary graph)");
  }
  uint32_t version = 0;
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  if (!ReadRaw(in, &version) || version != kBinaryVersion) {
    return Status::IOError("unsupported binary graph version");
  }
  if (!ReadRaw(in, &num_vertices) || !ReadRaw(in, &num_edges)) {
    return Status::IOError("truncated header");
  }
  GraphBuilder builder;
  builder.Reserve(num_vertices, num_edges);
  for (uint64_t v = 0; v < num_vertices; ++v) {
    uint32_t label = 0;
    if (!ReadRaw(in, &label)) return Status::IOError("truncated labels");
    builder.AddVertex(label);
  }
  for (uint64_t e = 0; e < num_edges; ++e) {
    uint32_t a = 0;
    uint32_t b = 0;
    if (!ReadRaw(in, &a) || !ReadRaw(in, &b)) {
      return Status::IOError("truncated edges");
    }
    NEURSC_RETURN_IF_ERROR(builder.AddEdge(a, b));
  }
  return builder.Build();
}

std::string ToDot(const Graph& g, const std::string& name) {
  static const char* kPalette[] = {"#4C72B0", "#DD8452", "#55A868",
                                   "#C44E52", "#8172B3", "#937860",
                                   "#DA8BC3", "#8C8C8C"};
  std::ostringstream out;
  out << "graph " << name << " {\n";
  out << "  node [style=filled, fontcolor=white];\n";
  for (size_t v = 0; v < g.NumVertices(); ++v) {
    Label l = g.GetLabel(static_cast<VertexId>(v));
    out << "  v" << v << " [label=\"" << v << ":" << l << "\", fillcolor=\""
        << kPalette[l % 8] << "\"];\n";
  }
  for (size_t v = 0; v < g.NumVertices(); ++v) {
    for (VertexId w : g.Neighbors(static_cast<VertexId>(v))) {
      if (v < w) out << "  v" << v << " -- v" << w << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace neursc
