#include "graph/stats.h"

#include <cmath>
#include <queue>
#include <unordered_map>
#include <vector>

namespace neursc {

namespace {

double Entropy(const std::unordered_map<uint64_t, size_t>& histogram,
               size_t total) {
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const auto& [_, count] : histogram) {
    double p = static_cast<double>(count) / static_cast<double>(total);
    h -= p * std::log(p);
  }
  return h;
}

}  // namespace

double LabelEntropy(const Graph& g) {
  std::unordered_map<uint64_t, size_t> hist;
  for (size_t v = 0; v < g.NumVertices(); ++v) {
    ++hist[g.GetLabel(static_cast<VertexId>(v))];
  }
  return Entropy(hist, g.NumVertices());
}

double DegreeEntropy(const Graph& g) {
  std::unordered_map<uint64_t, size_t> hist;
  for (size_t v = 0; v < g.NumVertices(); ++v) {
    ++hist[g.Degree(static_cast<VertexId>(v))];
  }
  return Entropy(hist, g.NumVertices());
}

uint32_t Eccentricity(const Graph& g, VertexId source) {
  std::vector<uint32_t> dist(g.NumVertices(), UINT32_MAX);
  std::queue<VertexId> queue;
  dist[source] = 0;
  queue.push(source);
  uint32_t furthest = 0;
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop();
    furthest = std::max(furthest, dist[v]);
    for (VertexId w : g.Neighbors(v)) {
      if (dist[w] == UINT32_MAX) {
        dist[w] = dist[v] + 1;
        queue.push(w);
      }
    }
  }
  return furthest;
}

uint32_t Diameter(const Graph& g) {
  uint32_t diameter = 0;
  for (size_t v = 0; v < g.NumVertices(); ++v) {
    diameter = std::max(diameter, Eccentricity(g, static_cast<VertexId>(v)));
  }
  return diameter;
}

uint64_t CountTriangles(const Graph& g) {
  // For each edge (u, v) with u < v, count common neighbors w > v via
  // sorted-list intersection; each triangle is counted once.
  uint64_t triangles = 0;
  for (size_t u = 0; u < g.NumVertices(); ++u) {
    auto nu = g.Neighbors(static_cast<VertexId>(u));
    for (VertexId v : nu) {
      if (v <= u) continue;
      auto nv = g.Neighbors(v);
      size_t i = 0;
      size_t j = 0;
      while (i < nu.size() && j < nv.size()) {
        if (nu[i] == nv[j]) {
          if (nu[i] > v) ++triangles;
          ++i;
          ++j;
        } else if (nu[i] < nv[j]) {
          ++i;
        } else {
          ++j;
        }
      }
    }
  }
  return triangles;
}

double GlobalClusteringCoefficient(const Graph& g) {
  uint64_t wedges = 0;
  for (size_t v = 0; v < g.NumVertices(); ++v) {
    uint64_t d = g.Degree(static_cast<VertexId>(v));
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(CountTriangles(g)) /
         static_cast<double>(wedges);
}

QueryCharacteristics ComputeQueryCharacteristics(const Graph& q) {
  QueryCharacteristics c;
  c.label_entropy = LabelEntropy(q);
  c.degree_entropy = DegreeEntropy(q);
  c.density = q.Density();
  c.diameter = Diameter(q);
  return c;
}

}  // namespace neursc
