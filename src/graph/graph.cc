#include "graph/graph.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <unordered_map>

namespace neursc {

bool Graph::HasEdge(VertexId u, VertexId v) const {
  if (u >= NumVertices() || v >= NumVertices()) return false;
  if (Degree(u) > Degree(v)) std::swap(u, v);
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::span<const VertexId> Graph::VerticesWithLabel(Label label) const {
  if (label >= num_labels_) return {};
  return {vertices_by_label_.data() + label_offsets_[label],
          label_offsets_[label + 1] - label_offsets_[label]};
}

double Graph::Density() const {
  size_t n = NumVertices();
  if (n < 2) return 0.0;
  return 2.0 * static_cast<double>(NumEdges()) /
         (static_cast<double>(n) * static_cast<double>(n - 1));
}

bool Graph::IsConnected() const {
  size_t n = NumVertices();
  if (n == 0) return true;
  std::vector<bool> seen(n, false);
  std::vector<VertexId> stack = {0};
  seen[0] = true;
  size_t visited = 1;
  while (!stack.empty()) {
    VertexId v = stack.back();
    stack.pop_back();
    for (VertexId w : Neighbors(v)) {
      if (!seen[w]) {
        seen[w] = true;
        ++visited;
        stack.push_back(w);
      }
    }
  }
  return visited == n;
}

std::string Graph::Summary() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "|V|=%zu |E|=%zu |L|=%zu d=%.1f",
                NumVertices(), NumEdges(), NumLabels(), AverageDegree());
  return buf;
}

uint64_t Graph::Fingerprint() const {
  // FNV-1a over the defining arrays. Sizes are mixed in first so that
  // e.g. an empty graph and a single unlabeled vertex hash differently.
  uint64_t h = 14695981039346656037ull;
  auto mix = [&h](uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffull;
      h *= 1099511628211ull;
    }
  };
  mix(NumVertices());
  mix(NumEdges());
  for (Label l : labels_) mix(l);
  for (size_t off : offsets_) mix(off);
  for (VertexId v : adjacency_) mix(v);
  return h;
}

void GraphBuilder::Reserve(size_t num_vertices, size_t num_edges) {
  labels_.reserve(num_vertices);
  edges_.reserve(num_edges);
}

VertexId GraphBuilder::AddVertex(Label label) {
  labels_.push_back(label);
  return static_cast<VertexId>(labels_.size() - 1);
}

Status GraphBuilder::AddEdge(VertexId u, VertexId v) {
  if (u >= labels_.size() || v >= labels_.size()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (u == v) {
    return Status::InvalidArgument("self loop");
  }
  edges_.emplace_back(u, v);
  return Status::OK();
}

Result<Graph> GraphBuilder::Build() {
  Graph g;
  const size_t n = labels_.size();
  g.labels_ = std::move(labels_);
  labels_.clear();

  // Degree counting pass.
  g.offsets_.assign(n + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  std::partial_sum(g.offsets_.begin(), g.offsets_.end(), g.offsets_.begin());

  g.adjacency_.resize(edges_.size() * 2);
  std::vector<size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges_) {
    g.adjacency_[cursor[u]++] = v;
    g.adjacency_[cursor[v]++] = u;
  }
  edges_.clear();

  g.max_degree_ = 0;
  for (size_t v = 0; v < n; ++v) {
    auto begin = g.adjacency_.begin() + static_cast<ptrdiff_t>(g.offsets_[v]);
    auto end = g.adjacency_.begin() + static_cast<ptrdiff_t>(g.offsets_[v + 1]);
    std::sort(begin, end);
    if (std::adjacent_find(begin, end) != end) {
      return Status::InvalidArgument("duplicate edge at vertex " +
                                     std::to_string(v));
    }
    g.max_degree_ = std::max(
        g.max_degree_, static_cast<uint32_t>(std::distance(begin, end)));
  }

  // Label grouping.
  Label max_label = 0;
  for (Label l : g.labels_) max_label = std::max(max_label, l);
  g.num_labels_ = n == 0 ? 0 : static_cast<size_t>(max_label) + 1;
  g.label_offsets_.assign(g.num_labels_ + 1, 0);
  for (Label l : g.labels_) ++g.label_offsets_[l + 1];
  std::partial_sum(g.label_offsets_.begin(), g.label_offsets_.end(),
                   g.label_offsets_.begin());
  g.vertices_by_label_.resize(n);
  std::vector<size_t> lcursor(g.label_offsets_.begin(),
                              g.label_offsets_.end() - 1);
  for (size_t v = 0; v < n; ++v) {
    g.vertices_by_label_[lcursor[g.labels_[v]]++] =
        static_cast<VertexId>(v);
  }
  return g;
}

Result<InducedSubgraph> BuildInducedSubgraph(
    const Graph& g, const std::vector<VertexId>& vertices) {
  std::unordered_map<VertexId, VertexId> to_local;
  to_local.reserve(vertices.size());
  GraphBuilder builder;
  builder.Reserve(vertices.size(), vertices.size() * 4);
  for (VertexId v : vertices) {
    if (v >= g.NumVertices()) {
      return Status::InvalidArgument("vertex out of range");
    }
    auto [it, inserted] = to_local.emplace(v, builder.NumVertices());
    if (!inserted) {
      return Status::InvalidArgument("duplicate vertex in induced set");
    }
    builder.AddVertex(g.GetLabel(v));
  }
  for (VertexId v : vertices) {
    VertexId lv = to_local[v];
    for (VertexId w : g.Neighbors(v)) {
      auto it = to_local.find(w);
      // Add each edge once, from the lower local id.
      if (it != to_local.end() && lv < it->second) {
        NEURSC_RETURN_IF_ERROR(builder.AddEdge(lv, it->second));
      }
    }
  }
  auto built = builder.Build();
  if (!built.ok()) return built.status();
  return InducedSubgraph{std::move(built).value(), vertices};
}

std::vector<std::vector<VertexId>> ConnectedComponents(const Graph& g) {
  const size_t n = g.NumVertices();
  std::vector<int> comp(n, -1);
  std::vector<std::vector<VertexId>> components;
  std::vector<VertexId> stack;
  for (size_t s = 0; s < n; ++s) {
    if (comp[s] >= 0) continue;
    int id = static_cast<int>(components.size());
    components.emplace_back();
    comp[s] = id;
    stack.push_back(static_cast<VertexId>(s));
    while (!stack.empty()) {
      VertexId v = stack.back();
      stack.pop_back();
      components[id].push_back(v);
      for (VertexId w : g.Neighbors(v)) {
        if (comp[w] < 0) {
          comp[w] = id;
          stack.push_back(w);
        }
      }
    }
    std::sort(components[id].begin(), components[id].end());
  }
  return components;
}

}  // namespace neursc
