#ifndef NEURSC_GRAPH_WL_REFINEMENT_H_
#define NEURSC_GRAPH_WL_REFINEMENT_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace neursc {

/// 1-dimensional Weisfeiler-Lehman color refinement (Sec. 5.7 of the
/// paper). Colors start from vertex labels and are refined by hashing each
/// vertex's color together with the multiset of its neighbors' colors.
///
/// Returns the stable coloring after at most `max_rounds` rounds (0 means
/// run to convergence). Colors are canonicalized (dense ids assigned in
/// order of first appearance over sorted color signatures) so two
/// isomorphic graphs receive identical color multisets.
std::vector<uint32_t> WlColors(const Graph& g, int max_rounds = 0);

/// The sorted color histogram (multiset) of WlColors run jointly on both
/// graphs — the 1-WL graph invariant.
struct WlSignature {
  std::vector<uint64_t> histogram;  // sorted color ids w/ multiplicity
  bool operator==(const WlSignature&) const = default;
};

/// Runs 1-WL on the disjoint union of g1 and g2 (shared color space) and
/// returns each graph's signature. If the signatures differ, the graphs
/// are certainly non-isomorphic ("1-WL distinguishes them").
std::pair<WlSignature, WlSignature> JointWlSignatures(const Graph& g1,
                                                      const Graph& g2,
                                                      int max_rounds = 0);

/// True iff 1-WL distinguishes g1 and g2 within `max_rounds` rounds.
bool WlDistinguishes(const Graph& g1, const Graph& g2, int max_rounds = 0);

}  // namespace neursc

#endif  // NEURSC_GRAPH_WL_REFINEMENT_H_
