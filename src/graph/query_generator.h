#ifndef NEURSC_GRAPH_QUERY_GENERATOR_H_
#define NEURSC_GRAPH_QUERY_GENERATOR_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/graph.h"

namespace neursc {

/// Controls random-walk query extraction.
struct QueryGeneratorConfig {
  /// Number of vertices per query.
  size_t query_size = 8;
  /// Probability of keeping each non-spanning-tree edge of the induced
  /// subgraph; 1.0 yields induced (dense) queries, lower values yield
  /// sparser queries while staying connected.
  double edge_keep_probability = 1.0;
  uint64_t seed = 7;
};

/// Extracts connected query graphs from a data graph by random walk, the
/// construction used by the subgraph-matching benchmark workloads the paper
/// evaluates on: walk until `query_size` distinct vertices are collected,
/// take the induced subgraph (optionally sparsified along a spanning tree),
/// and keep the data graph's labels.
class QueryGenerator {
 public:
  /// `data` must outlive the generator and have >= query_size vertices in
  /// its largest component for extraction to succeed.
  explicit QueryGenerator(const Graph& data, QueryGeneratorConfig config = {});

  /// Extracts one query. Fails if the walk cannot reach enough distinct
  /// vertices (e.g. query_size larger than the component).
  Result<Graph> Generate();

  /// Extracts `count` queries (each connected, exactly config.query_size
  /// vertices). Queries that fail extraction are retried; gives up after
  /// 50*count attempts.
  Result<std::vector<Graph>> GenerateMany(size_t count);

 private:
  const Graph& data_;
  QueryGeneratorConfig config_;
  Rng rng_;
};

}  // namespace neursc

#endif  // NEURSC_GRAPH_QUERY_GENERATOR_H_
