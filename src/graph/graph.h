#ifndef NEURSC_GRAPH_GRAPH_H_
#define NEURSC_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace neursc {

/// Vertex identifier; dense in [0, NumVertices()).
using VertexId = uint32_t;
/// Vertex label identifier; dense in [0, NumLabels()).
using Label = uint32_t;

constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

/// An immutable undirected vertex-labeled graph stored in CSR form.
///
/// Neighbor lists are sorted, enabling O(log d) edge tests and O(d1+d2)
/// neighborhood intersections. Both query graphs and data graphs use this
/// representation; a query/data pair is assumed to share one label space
/// (the paper's shared label mapping function f_l).
class Graph {
 public:
  Graph() = default;

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  size_t NumVertices() const { return labels_.size(); }
  /// Number of undirected edges.
  size_t NumEdges() const { return adjacency_.size() / 2; }
  /// Number of distinct labels present (max label + 1).
  size_t NumLabels() const { return num_labels_; }

  Label GetLabel(VertexId v) const { return labels_[v]; }

  uint32_t Degree(VertexId v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  uint32_t MaxDegree() const { return max_degree_; }

  /// Sorted neighbor list of v.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// True iff the undirected edge (u, v) exists. O(log deg(u)).
  bool HasEdge(VertexId u, VertexId v) const;

  /// All vertices carrying `label` (sorted). Empty span for unused labels.
  std::span<const VertexId> VerticesWithLabel(Label label) const;

  /// Count of vertices carrying `label`.
  size_t LabelFrequency(Label label) const {
    return VerticesWithLabel(label).size();
  }

  /// Average degree, 2|E| / |V|.
  double AverageDegree() const {
    return NumVertices() == 0
               ? 0.0
               : 2.0 * static_cast<double>(NumEdges()) / NumVertices();
  }

  /// Edge density |E| / (|V| choose 2).
  double Density() const;

  /// True iff the graph is connected (empty graph counts as connected).
  bool IsConnected() const;

  /// A short human-readable summary, e.g. "|V|=3112 |E|=12519 |L|=71 d=8.0".
  std::string Summary() const;

  /// 64-bit FNV-1a structural fingerprint over labels and adjacency.
  /// Graphs that are equal vertex-for-vertex (same ids, labels, and edges)
  /// hash equal; used as a cache key for per-query derived data (e.g.
  /// PreparedQueryCache). Not isomorphism-invariant.
  uint64_t Fingerprint() const;

 private:
  friend class GraphBuilder;

  std::vector<size_t> offsets_;     // size NumVertices()+1
  std::vector<VertexId> adjacency_; // size 2*NumEdges(), sorted per vertex
  std::vector<Label> labels_;
  // Vertices grouped by label: label_offsets_[l]..label_offsets_[l+1] indexes
  // into vertices_by_label_.
  std::vector<size_t> label_offsets_;
  std::vector<VertexId> vertices_by_label_;
  size_t num_labels_ = 0;
  uint32_t max_degree_ = 0;
};

/// Incremental constructor for Graph. Duplicate edges and self-loops are
/// rejected at Build() time.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-sizes internal storage for n vertices.
  void Reserve(size_t num_vertices, size_t num_edges);

  /// Adds a vertex with the given label; returns its id.
  VertexId AddVertex(Label label);

  /// Adds an undirected edge. Both endpoints must already exist.
  Status AddEdge(VertexId u, VertexId v);

  size_t NumVertices() const { return labels_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  /// Validates and finalizes into an immutable Graph. Fails on duplicate
  /// edges or self loops. The builder is left empty afterwards.
  Result<Graph> Build();

 private:
  std::vector<Label> labels_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

/// Result of taking an induced subgraph: the subgraph plus the mapping from
/// its (dense) vertex ids back to the original graph's vertex ids.
struct InducedSubgraph {
  Graph graph;
  /// original_id[i] is the parent-graph id of subgraph vertex i.
  std::vector<VertexId> original_id;
};

/// Builds the subgraph of `g` induced by `vertices` (kept in the given
/// order; duplicates are invalid). Labels carry over.
Result<InducedSubgraph> BuildInducedSubgraph(
    const Graph& g, const std::vector<VertexId>& vertices);

/// Partitions the vertices of g into connected components. Each component
/// lists its member vertices in ascending order.
std::vector<std::vector<VertexId>> ConnectedComponents(const Graph& g);

}  // namespace neursc

#endif  // NEURSC_GRAPH_GRAPH_H_
