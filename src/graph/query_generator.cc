#include "graph/query_generator.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace neursc {

QueryGenerator::QueryGenerator(const Graph& data, QueryGeneratorConfig config)
    : data_(data), config_(config), rng_(config.seed) {}

Result<Graph> QueryGenerator::Generate() {
  const size_t k = config_.query_size;
  if (k < 2) return Status::InvalidArgument("query_size must be >= 2");
  if (data_.NumVertices() < k) {
    return Status::InvalidArgument("data graph smaller than query size");
  }

  // Random walk with restarts-to-collected to gather k distinct vertices.
  std::vector<VertexId> collected;
  std::unordered_set<VertexId> seen;
  VertexId current =
      static_cast<VertexId>(rng_.UniformIndex(data_.NumVertices()));
  if (data_.Degree(current) == 0) {
    return Status::NotFound("walk started at isolated vertex");
  }
  collected.push_back(current);
  seen.insert(current);
  size_t steps = 0;
  const size_t max_steps = 200 * k + 1000;
  while (collected.size() < k && steps < max_steps) {
    ++steps;
    auto nbrs = data_.Neighbors(current);
    if (nbrs.empty()) break;
    VertexId next = nbrs[rng_.UniformIndex(nbrs.size())];
    if (seen.insert(next).second) collected.push_back(next);
    // With small probability jump back to a previously collected vertex so
    // the walk explores around the whole collected set, not a single path.
    current = rng_.Bernoulli(0.15)
                  ? collected[rng_.UniformIndex(collected.size())]
                  : next;
  }
  if (collected.size() < k) {
    return Status::NotFound("random walk could not collect enough vertices");
  }

  auto induced = BuildInducedSubgraph(data_, collected);
  if (!induced.ok()) return induced.status();
  const Graph& dense = induced->graph;

  if (config_.edge_keep_probability >= 1.0) {
    if (!dense.IsConnected()) {
      return Status::NotFound("induced walk subgraph disconnected");
    }
    return dense;
  }

  // Sparsify: keep a random spanning tree (via BFS from a random root over
  // randomly permuted neighbor order), then keep each extra edge with
  // probability edge_keep_probability.
  const size_t n = dense.NumVertices();
  std::vector<std::pair<VertexId, VertexId>> tree_edges;
  std::vector<bool> in_tree(n, false);
  std::vector<VertexId> frontier = {
      static_cast<VertexId>(rng_.UniformIndex(n))};
  in_tree[frontier[0]] = true;
  while (!frontier.empty()) {
    VertexId v = frontier[rng_.UniformIndex(frontier.size())];
    std::vector<VertexId> candidates;
    for (VertexId w : dense.Neighbors(v)) {
      if (!in_tree[w]) candidates.push_back(w);
    }
    if (candidates.empty()) {
      std::erase(frontier, v);
      continue;
    }
    VertexId w = candidates[rng_.UniformIndex(candidates.size())];
    in_tree[w] = true;
    tree_edges.emplace_back(v, w);
    frontier.push_back(w);
  }
  if (tree_edges.size() + 1 != n) {
    return Status::NotFound("induced walk subgraph disconnected");
  }

  GraphBuilder builder;
  builder.Reserve(n, dense.NumEdges());
  for (size_t v = 0; v < n; ++v) {
    builder.AddVertex(dense.GetLabel(static_cast<VertexId>(v)));
  }
  std::unordered_set<uint64_t> tree_set;
  for (auto [a, b] : tree_edges) {
    if (a > b) std::swap(a, b);
    tree_set.insert((static_cast<uint64_t>(a) << 32) | b);
    NEURSC_RETURN_IF_ERROR(builder.AddEdge(a, b));
  }
  for (size_t v = 0; v < n; ++v) {
    for (VertexId w : dense.Neighbors(static_cast<VertexId>(v))) {
      if (v >= w) continue;
      uint64_t key = (static_cast<uint64_t>(v) << 32) | w;
      if (tree_set.count(key)) continue;
      if (rng_.Bernoulli(config_.edge_keep_probability)) {
        NEURSC_RETURN_IF_ERROR(
            builder.AddEdge(static_cast<VertexId>(v), w));
      }
    }
  }
  return builder.Build();
}

Result<std::vector<Graph>> QueryGenerator::GenerateMany(size_t count) {
  std::vector<Graph> queries;
  queries.reserve(count);
  size_t attempts = 0;
  const size_t max_attempts = 50 * count + 100;
  while (queries.size() < count && attempts < max_attempts) {
    ++attempts;
    auto q = Generate();
    if (q.ok()) queries.push_back(std::move(q).value());
  }
  if (queries.size() < count) {
    return Status::ResourceExhausted(
        "could not extract enough queries from data graph");
  }
  return queries;
}

}  // namespace neursc
