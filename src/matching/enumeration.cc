#include "matching/enumeration.h"

#include <algorithm>
#include <limits>

namespace neursc {

namespace {

/// Builds a connectivity-aware matching order: start at the query vertex
/// with the smallest candidate set, then repeatedly append the unmatched
/// vertex with the most already-ordered neighbors (ties: smaller candidate
/// set, then higher degree). This is the GraphQL-style "candidate-size
/// first, connected" ordering.
std::vector<VertexId> BuildMatchingOrder(const Graph& query,
                                         const CandidateSets& candidates) {
  const size_t nq = query.NumVertices();
  std::vector<bool> ordered(nq, false);
  std::vector<VertexId> order;
  order.reserve(nq);

  size_t start = 0;
  for (size_t u = 1; u < nq; ++u) {
    if (candidates.candidates[u].size() <
        candidates.candidates[start].size()) {
      start = u;
    }
  }
  order.push_back(static_cast<VertexId>(start));
  ordered[start] = true;

  while (order.size() < nq) {
    size_t best = nq;
    size_t best_connected = 0;
    size_t best_cs = std::numeric_limits<size_t>::max();
    uint32_t best_degree = 0;
    for (size_t u = 0; u < nq; ++u) {
      if (ordered[u]) continue;
      size_t connected = 0;
      for (VertexId w : query.Neighbors(static_cast<VertexId>(u))) {
        if (ordered[w]) ++connected;
      }
      size_t cs = candidates.candidates[u].size();
      uint32_t degree = query.Degree(static_cast<VertexId>(u));
      bool better = false;
      if (best == nq) {
        better = true;
      } else if (connected != best_connected) {
        better = connected > best_connected;
      } else if (cs != best_cs) {
        better = cs < best_cs;
      } else {
        better = degree > best_degree;
      }
      if (better) {
        best = u;
        best_connected = connected;
        best_cs = cs;
        best_degree = degree;
      }
    }
    order.push_back(static_cast<VertexId>(best));
    ordered[best] = true;
  }
  return order;
}

/// Backtracking search state.
class Enumerator {
 public:
  Enumerator(const Graph& query, const Graph& data,
             const CandidateSets& candidates,
             const EnumerationOptions& options)
      : query_(query),
        data_(data),
        candidates_(candidates),
        options_(options),
        deadline_(options.time_limit_seconds),
        order_(BuildMatchingOrder(query, candidates)),
        mapping_(query.NumVertices(), kInvalidVertex),
        used_(data.NumVertices(), false) {
    // Precompute, for each position in the order, the query neighbors that
    // are already mapped when this position is reached.
    const size_t nq = query_.NumVertices();
    std::vector<size_t> position(nq, 0);
    for (size_t i = 0; i < nq; ++i) position[order_[i]] = i;
    mapped_neighbors_.resize(nq);
    for (size_t i = 0; i < nq; ++i) {
      VertexId u = order_[i];
      for (VertexId w : query_.Neighbors(u)) {
        if (position[w] < i) mapped_neighbors_[i].push_back(w);
      }
    }
  }

  CountResult Run() {
    Timer timer;
    Search(0);
    result_.elapsed_seconds = timer.ElapsedSeconds();
    return std::move(result_);
  }

 private:
  bool BudgetTripped() {
    if (options_.max_matches > 0 && result_.count >= options_.max_matches) {
      result_.exact = false;
      return true;
    }
    // Check the clock on the first call and every 1024 thereafter to keep
    // the hot loop cheap.
    if ((result_.recursive_calls & 1023u) == 1 && deadline_.Expired()) {
      result_.exact = false;
      return true;
    }
    return false;
  }

  void Search(size_t depth) {
    ++result_.recursive_calls;
    if (BudgetTripped()) return;
    if (depth == query_.NumVertices()) {
      ++result_.count;
      if (result_.embeddings.size() < options_.collect_embeddings) {
        result_.embeddings.push_back(mapping_);
      }
      return;
    }
    VertexId u = order_[depth];
    for (VertexId v : candidates_.candidates[u]) {
      if (!options_.homomorphism && used_[v]) continue;
      bool consistent = true;
      for (VertexId w : mapped_neighbors_[depth]) {
        if (!data_.HasEdge(v, mapping_[w])) {
          consistent = false;
          break;
        }
      }
      if (!consistent) continue;
      mapping_[u] = v;
      used_[v] = true;
      Search(depth + 1);
      used_[v] = false;
      mapping_[u] = kInvalidVertex;
      if (!result_.exact) return;
    }
  }

  const Graph& query_;
  const Graph& data_;
  const CandidateSets& candidates_;
  const EnumerationOptions& options_;
  Deadline deadline_;
  std::vector<VertexId> order_;
  std::vector<VertexId> mapping_;
  std::vector<bool> used_;
  std::vector<std::vector<VertexId>> mapped_neighbors_;
  CountResult result_;
};

}  // namespace

Result<CountResult> CountSubgraphIsomorphisms(
    const Graph& query, const Graph& data,
    const EnumerationOptions& options) {
  CandidateFilterOptions filter = options.filter;
  // Injectivity-based pruning is unsound for homomorphism counting.
  filter.homomorphism_safe = options.homomorphism;
  auto candidates = ComputeCandidateSets(query, data, filter);
  if (!candidates.ok()) return candidates.status();
  return CountSubgraphIsomorphismsWithCandidates(query, data, *candidates,
                                                 options);
}

Result<CountResult> CountSubgraphIsomorphismsWithCandidates(
    const Graph& query, const Graph& data, const CandidateSets& candidates,
    const EnumerationOptions& options) {
  if (query.NumVertices() == 0) {
    return Status::InvalidArgument("empty query graph");
  }
  if (candidates.candidates.size() != query.NumVertices()) {
    return Status::InvalidArgument("candidate sets do not match query");
  }
  if (candidates.AnyEmpty()) {
    CountResult r;
    r.count = 0;
    return r;
  }
  Enumerator enumerator(query, data, candidates, options);
  return enumerator.Run();
}

bool AreIsomorphic(const Graph& g1, const Graph& g2) {
  if (g1.NumVertices() != g2.NumVertices()) return false;
  if (g1.NumEdges() != g2.NumEdges()) return false;
  if (g1.NumVertices() == 0) return true;
  // Cheap invariants first: sorted (label, degree) pairs must agree.
  auto signature = [](const Graph& g) {
    std::vector<std::pair<Label, uint32_t>> sig;
    sig.reserve(g.NumVertices());
    for (size_t v = 0; v < g.NumVertices(); ++v) {
      sig.emplace_back(g.GetLabel(static_cast<VertexId>(v)),
                       g.Degree(static_cast<VertexId>(v)));
    }
    std::sort(sig.begin(), sig.end());
    return sig;
  };
  if (signature(g1) != signature(g2)) return false;
  // With |V| and |E| equal, any subgraph-isomorphic embedding is a full
  // isomorphism (the image uses all vertices and all edges).
  EnumerationOptions options;
  options.max_matches = 1;
  auto counted = CountSubgraphIsomorphisms(g1, g2, options);
  return counted.ok() && counted->count > 0;
}

}  // namespace neursc
