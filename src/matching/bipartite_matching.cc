#include "matching/bipartite_matching.h"

#include <limits>
#include <queue>

namespace neursc {

namespace {

constexpr size_t kUnmatched = std::numeric_limits<size_t>::max();
constexpr size_t kInfDist = std::numeric_limits<size_t>::max();

/// Hopcroft-Karp state. match_left[l] / match_right[r] hold the partner or
/// kUnmatched.
struct HopcroftKarp {
  const BipartiteGraph& g;
  std::vector<size_t> match_left;
  std::vector<size_t> match_right;
  std::vector<size_t> dist;

  explicit HopcroftKarp(const BipartiteGraph& graph)
      : g(graph),
        match_left(graph.NumLeft(), kUnmatched),
        match_right(graph.NumRight(), kUnmatched),
        dist(graph.NumLeft(), kInfDist) {}

  bool Bfs() {
    std::queue<size_t> queue;
    for (size_t l = 0; l < g.NumLeft(); ++l) {
      if (match_left[l] == kUnmatched) {
        dist[l] = 0;
        queue.push(l);
      } else {
        dist[l] = kInfDist;
      }
    }
    bool found_augmenting = false;
    while (!queue.empty()) {
      size_t l = queue.front();
      queue.pop();
      for (size_t r : g.NeighborsOfLeft(l)) {
        size_t next = match_right[r];
        if (next == kUnmatched) {
          found_augmenting = true;
        } else if (dist[next] == kInfDist) {
          dist[next] = dist[l] + 1;
          queue.push(next);
        }
      }
    }
    return found_augmenting;
  }

  bool Dfs(size_t l) {
    for (size_t r : g.NeighborsOfLeft(l)) {
      size_t next = match_right[r];
      if (next == kUnmatched ||
          (dist[next] == dist[l] + 1 && Dfs(next))) {
        match_left[l] = r;
        match_right[r] = l;
        return true;
      }
    }
    dist[l] = kInfDist;
    return false;
  }

  size_t Run() {
    size_t matching = 0;
    while (Bfs()) {
      for (size_t l = 0; l < g.NumLeft(); ++l) {
        if (match_left[l] == kUnmatched && Dfs(l)) ++matching;
      }
    }
    return matching;
  }
};

}  // namespace

size_t MaximumBipartiteMatching(const BipartiteGraph& g) {
  HopcroftKarp hk(g);
  return hk.Run();
}

bool HasLeftSaturatingMatching(const BipartiteGraph& g) {
  if (g.NumLeft() > g.NumRight()) return false;
  // Quick reject: a left vertex without edges can never be matched.
  for (size_t l = 0; l < g.NumLeft(); ++l) {
    if (g.NeighborsOfLeft(l).empty()) return false;
  }
  return MaximumBipartiteMatching(g) == g.NumLeft();
}

}  // namespace neursc
