#include "matching/substructure.h"

#include <algorithm>
#include <unordered_map>

#include "common/metrics_registry.h"
#include "common/trace.h"

namespace neursc {

namespace {

/// Splits the induced subgraph over `universe` into connected components,
/// keeps those at least as large as the query, and localizes candidate sets.
Result<ExtractionResult> SplitIntoSubstructures(
    const Graph& query, const Graph& data,
    const std::vector<VertexId>& universe, const CandidateSets& candidates) {
  NEURSC_SPAN(split_span, "extract/split");
  ExtractionResult out;
  out.candidates = candidates;
  out.stats.candidate_union_size = universe.size();
  out.stats.total_candidates = candidates.TotalSize();
  if (universe.size() < query.NumVertices()) {
    out.early_terminate = true;
    return out;
  }

  auto induced = BuildInducedSubgraph(data, universe);
  if (!induced.ok()) return induced.status();
  const Graph& whole = induced->graph;

  auto components = ConnectedComponents(whole);
  out.stats.components_total = components.size();
  for (const auto& component : components) {
    if (component.size() < query.NumVertices()) continue;

    // Component vertices are local ids within `whole`; translate back to
    // data-graph ids to build the component graph.
    std::vector<VertexId> component_data_ids;
    component_data_ids.reserve(component.size());
    for (VertexId local : component) {
      component_data_ids.push_back(induced->original_id[local]);
    }
    auto sub = BuildInducedSubgraph(data, component_data_ids);
    if (!sub.ok()) return sub.status();
    if (sub->graph.NumEdges() < query.NumEdges()) continue;

    Substructure s;
    s.graph = std::move(sub->graph);
    s.original_id = std::move(sub->original_id);

    std::unordered_map<VertexId, VertexId> to_local;
    to_local.reserve(s.original_id.size());
    for (size_t i = 0; i < s.original_id.size(); ++i) {
      to_local.emplace(s.original_id[i], static_cast<VertexId>(i));
    }
    s.local_candidates.resize(query.NumVertices());
    for (size_t u = 0; u < query.NumVertices(); ++u) {
      for (VertexId v : candidates.candidates[u]) {
        auto it = to_local.find(v);
        if (it != to_local.end()) {
          s.local_candidates[u].push_back(it->second);
        }
      }
      std::sort(s.local_candidates[u].begin(), s.local_candidates[u].end());
    }
    out.stats.largest_substructure_vertices =
        std::max(out.stats.largest_substructure_vertices,
                 s.graph.NumVertices());
    out.substructures.push_back(std::move(s));
  }
  out.stats.components_kept = out.substructures.size();
  if (out.substructures.empty()) out.early_terminate = true;
  NEURSC_COUNTER_ADD("extract.components_total",
                     static_cast<int64_t>(out.stats.components_total));
  NEURSC_COUNTER_ADD("extract.substructures",
                     static_cast<int64_t>(out.substructures.size()));
  NEURSC_HISTOGRAM_RECORD(
      "extract.substructures_per_query",
      static_cast<double>(out.substructures.size()));
  return out;
}

}  // namespace

Result<ExtractionResult> ExtractSubstructures(
    const Graph& query, const Graph& data,
    const CandidateFilterOptions& filter_options) {
  NEURSC_SPAN(extract_span, "extract/total");
  auto candidates = ComputeCandidateSets(query, data, filter_options);
  if (!candidates.ok()) return candidates.status();
  if (candidates->AnyEmpty()) {
    NEURSC_COUNTER_INC("extract.early_terminated");
    ExtractionResult out;
    out.early_terminate = true;
    out.candidates = std::move(candidates).value();
    return out;
  }
  auto universe = candidates->Union();
  return SplitIntoSubstructures(query, data, universe, *candidates);
}

Result<ExtractionResult> BuildSubstructuresFromVertices(
    const Graph& query, const Graph& data,
    const std::vector<VertexId>& universe, const CandidateSets& candidates) {
  std::vector<VertexId> sorted = universe;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return SplitIntoSubstructures(query, data, sorted, candidates);
}

}  // namespace neursc
