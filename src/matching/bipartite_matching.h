#ifndef NEURSC_MATCHING_BIPARTITE_MATCHING_H_
#define NEURSC_MATCHING_BIPARTITE_MATCHING_H_

#include <cstddef>
#include <vector>

namespace neursc {

/// A bipartite graph over left vertices [0, num_left) and right vertices
/// [0, num_right), stored as per-left adjacency lists. Used by GraphQL's
/// global refinement to test whether every neighbor of a query vertex can
/// be injectively assigned to a distinct neighbor of a data vertex.
class BipartiteGraph {
 public:
  BipartiteGraph(size_t num_left, size_t num_right)
      : num_right_(num_right), adjacency_(num_left) {}

  void AddEdge(size_t left, size_t right) {
    adjacency_[left].push_back(right);
  }

  size_t NumLeft() const { return adjacency_.size(); }
  size_t NumRight() const { return num_right_; }
  const std::vector<size_t>& NeighborsOfLeft(size_t left) const {
    return adjacency_[left];
  }

 private:
  size_t num_right_;
  std::vector<std::vector<size_t>> adjacency_;
};

/// Size of a maximum matching, via Hopcroft-Karp (O(E sqrt(V))).
size_t MaximumBipartiteMatching(const BipartiteGraph& g);

/// True iff a matching saturating every left vertex exists. This is the
/// "semi-perfect matching" test of GraphQL's global refinement (the paper's
/// Sec. 4): every neighbor u' of query vertex u must be assignable to a
/// distinct neighbor v' of data vertex v with v' in CS(u').
bool HasLeftSaturatingMatching(const BipartiteGraph& g);

}  // namespace neursc

#endif  // NEURSC_MATCHING_BIPARTITE_MATCHING_H_
