#ifndef NEURSC_MATCHING_ENUMERATION_H_
#define NEURSC_MATCHING_ENUMERATION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "graph/graph.h"
#include "matching/candidate_filter.h"

namespace neursc {

/// Limits and knobs for exact enumeration.
struct EnumerationOptions {
  /// Wall-clock budget per query; <= 0 means unlimited. Mirrors the paper's
  /// 30-minute ground-truth cutoff (scaled down for in-harness use).
  double time_limit_seconds = 0.0;
  /// Stop once this many matches were counted; 0 means unlimited.
  uint64_t max_matches = 0;
  /// Collect up to this many full embeddings (query-vertex -> data-vertex
  /// maps); 0 collects none. Used by the "perfect substructure" ablation.
  size_t collect_embeddings = 0;
  /// Count homomorphisms instead of isomorphisms: the mapping need not be
  /// injective (Sec. 2.2 of the paper; every other constraint is kept).
  bool homomorphism = false;
  CandidateFilterOptions filter;
};

/// Output of exact enumeration.
struct CountResult {
  /// Number of subgraph isomorphisms found (distinct injective mappings).
  uint64_t count = 0;
  /// True iff the search ran to completion (neither budget tripped).
  bool exact = true;
  /// Number of recursive search calls (work measure).
  uint64_t recursive_calls = 0;
  double elapsed_seconds = 0.0;
  /// Collected embeddings; embedding[i][u] is the data vertex matched to
  /// query vertex u. At most options.collect_embeddings entries.
  std::vector<std::vector<VertexId>> embeddings;
};

/// Counts subgraph isomorphisms from `query` into `data` by backtracking
/// over GraphQL-filtered candidate sets with a connectivity-aware matching
/// order. Definition 1 semantics: injective, label-preserving,
/// edge-preserving mappings; automorphic images are counted separately.
Result<CountResult> CountSubgraphIsomorphisms(
    const Graph& query, const Graph& data,
    const EnumerationOptions& options = {});

/// Same, but reuses candidate sets the caller already computed.
Result<CountResult> CountSubgraphIsomorphismsWithCandidates(
    const Graph& query, const Graph& data, const CandidateSets& candidates,
    const EnumerationOptions& options = {});

/// Exact graph isomorphism for small graphs (queries): true iff g1 and g2
/// are isomorphic as labeled graphs. Decided by size/degree/label-profile
/// checks plus a single embedding search (an injective edge-preserving map
/// between equal-size, equal-edge-count graphs is an isomorphism).
/// Intended for query-size graphs; cost is that of one enumeration.
bool AreIsomorphic(const Graph& g1, const Graph& g2);

}  // namespace neursc

#endif  // NEURSC_MATCHING_ENUMERATION_H_
