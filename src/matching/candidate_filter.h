#ifndef NEURSC_MATCHING_CANDIDATE_FILTER_H_
#define NEURSC_MATCHING_CANDIDATE_FILTER_H_

#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace neursc {

/// Per-query-vertex candidate sets: candidates[u] is the sorted list of data
/// vertices that may match query vertex u (a superset of the vertices that
/// appear in any embedding — Definition 2's complete candidate set).
struct CandidateSets {
  std::vector<std::vector<VertexId>> candidates;

  /// True iff some query vertex has no candidates (query count is 0).
  bool AnyEmpty() const;

  /// |union of all CS(u)|.
  size_t UnionSize() const;

  /// Sorted union of all CS(u).
  std::vector<VertexId> Union() const;

  /// Total candidate count summed over query vertices.
  size_t TotalSize() const;
};

/// Options for GraphQL-style candidate generation (the method the paper
/// adopts for its extraction module; shown in [89] to have the strongest
/// pruning power).
struct CandidateFilterOptions {
  /// Neighborhood radius r of the local-pruning profile. r=1 compares the
  /// labels of direct neighbors (the complexity the paper analyzes).
  int profile_radius = 1;
  /// Number of global-refinement sweeps (each sweep re-checks every
  /// candidate pair with the semi-perfect-matching test).
  int refinement_rounds = 2;
  /// If true, skip global refinement entirely (local pruning only).
  bool local_only = false;
  /// Weaken every check to be sound for *homomorphisms* (non-injective
  /// mappings): neighbor-label containment becomes set containment, the
  /// degree test is dropped, and global refinement (which requires
  /// distinct neighbor images) is skipped.
  bool homomorphism_safe = false;
};

/// Computes candidate sets for every query vertex:
///
/// 1. Local pruning: v is a candidate of u iff the lexicographically sorted
///    label profile of u's radius-r neighborhood is a sub-multiset of v's.
/// 2. Global refinement: for v in CS(u), build the bipartite graph between
///    N(u) and N(v) with an edge (u', v') iff v' in CS(u'), and drop v if no
///    matching saturates N(u). Repeated for `refinement_rounds` sweeps.
Result<CandidateSets> ComputeCandidateSets(
    const Graph& query, const Graph& data,
    const CandidateFilterOptions& options = {});

}  // namespace neursc

#endif  // NEURSC_MATCHING_CANDIDATE_FILTER_H_
