#include "matching/candidate_filter.h"

#include <algorithm>
#include <cstdint>
#include <queue>

#include "common/metrics_registry.h"
#include "common/parallel.h"
#include "common/trace.h"
#include "matching/bipartite_matching.h"

namespace neursc {

namespace {

/// Sorted multiset of labels of vertices within distance <= radius of v,
/// excluding v itself (v's own label is compared separately since candidates
/// must share it exactly).
std::vector<Label> NeighborhoodProfile(const Graph& g, VertexId v,
                                       int radius) {
  std::vector<Label> profile;
  if (radius <= 1) {
    profile.reserve(g.Degree(v));
    for (VertexId w : g.Neighbors(v)) profile.push_back(g.GetLabel(w));
  } else {
    std::vector<uint32_t> dist(g.NumVertices(), UINT32_MAX);
    std::queue<VertexId> queue;
    dist[v] = 0;
    queue.push(v);
    while (!queue.empty()) {
      VertexId x = queue.front();
      queue.pop();
      if (dist[x] >= static_cast<uint32_t>(radius)) continue;
      for (VertexId w : g.Neighbors(x)) {
        if (dist[w] == UINT32_MAX) {
          dist[w] = dist[x] + 1;
          profile.push_back(g.GetLabel(w));
          queue.push(w);
        }
      }
    }
  }
  std::sort(profile.begin(), profile.end());
  return profile;
}

/// True iff every distinct value of sorted `sub` appears in sorted `super`.
bool IsSubSet(const std::vector<Label>& sub,
              const std::vector<Label>& super) {
  for (Label l : sub) {
    if (!std::binary_search(super.begin(), super.end(), l)) return false;
  }
  return true;
}

/// True iff sorted multiset `sub` is contained in sorted multiset `super`.
bool IsSubMultiset(const std::vector<Label>& sub,
                   const std::vector<Label>& super) {
  size_t i = 0;
  size_t j = 0;
  while (i < sub.size() && j < super.size()) {
    if (sub[i] == super[j]) {
      ++i;
      ++j;
    } else if (sub[i] > super[j]) {
      ++j;
    } else {
      return false;
    }
  }
  return i == sub.size();
}

}  // namespace

bool CandidateSets::AnyEmpty() const {
  for (const auto& cs : candidates) {
    if (cs.empty()) return true;
  }
  return false;
}

size_t CandidateSets::UnionSize() const { return Union().size(); }

std::vector<VertexId> CandidateSets::Union() const {
  std::vector<VertexId> all;
  for (const auto& cs : candidates) all.insert(all.end(), cs.begin(), cs.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

size_t CandidateSets::TotalSize() const {
  size_t total = 0;
  for (const auto& cs : candidates) total += cs.size();
  return total;
}

Result<CandidateSets> ComputeCandidateSets(
    const Graph& query, const Graph& data,
    const CandidateFilterOptions& options) {
  if (query.NumVertices() == 0) {
    return Status::InvalidArgument("empty query graph");
  }
  NEURSC_SPAN(filter_span, "filter/candidates");
  NEURSC_COUNTER_INC("filter.queries");
  const size_t nq = query.NumVertices();

  // --- Stage 1: local pruning by neighborhood label profiles. ---
  // The per-query-vertex loop is embarrassingly parallel once the data
  // profiles it reads are materialized, so the stage runs as two
  // ParallelFor passes whose tasks write only per-index slots; the
  // resulting candidate sets are identical to a serial sweep at every
  // thread count (see docs/threading.md).
  NEURSC_SPAN(local_span, "filter/local");
  std::vector<std::vector<Label>> query_profiles(nq);
  ParallelFor(nq, [&](size_t u) {
    query_profiles[u] =
        NeighborhoodProfile(query, static_cast<VertexId>(u),
                            options.profile_radius);
  });

  // The smallest query degree per distinct query label bounds which data
  // vertices can survive the degree test, so profiles are only computed
  // for vertices that at least one query vertex will actually inspect
  // past that test (mirroring the serial lazy cache).
  std::vector<size_t> min_degree_for_label;
  for (size_t u = 0; u < nq; ++u) {
    Label label = query.GetLabel(static_cast<VertexId>(u));
    if (label >= min_degree_for_label.size()) {
      min_degree_for_label.resize(label + 1, SIZE_MAX);
    }
    min_degree_for_label[label] =
        std::min(min_degree_for_label[label],
                 options.homomorphism_safe
                     ? size_t{0}
                     : query.Degree(static_cast<VertexId>(u)));
  }
  std::vector<VertexId> to_profile;
  for (Label label = 0; label < min_degree_for_label.size(); ++label) {
    if (min_degree_for_label[label] == SIZE_MAX) continue;
    for (VertexId v : data.VerticesWithLabel(label)) {
      if (data.Degree(v) >= min_degree_for_label[label]) {
        to_profile.push_back(v);
      }
    }
  }
  // Each vertex has exactly one label, so `to_profile` is duplicate-free
  // and every task writes a distinct data_profiles slot.
  std::vector<std::vector<Label>> data_profiles(data.NumVertices());
  ParallelFor(to_profile.size(), [&](size_t i) {
    data_profiles[to_profile[i]] =
        NeighborhoodProfile(data, to_profile[i], options.profile_radius);
  });

  std::vector<size_t> inspected_per_vertex(nq, 0);
  CandidateSets result;
  result.candidates.resize(nq);
  ParallelFor(nq, [&](size_t u) {
    VertexId qu = static_cast<VertexId>(u);
    Label label = query.GetLabel(qu);
    for (VertexId v : data.VerticesWithLabel(label)) {
      ++inspected_per_vertex[u];
      if (!options.homomorphism_safe &&
          data.Degree(v) < query.Degree(qu)) {
        continue;
      }
      bool keep = options.homomorphism_safe
                      ? IsSubSet(query_profiles[u], data_profiles[v])
                      : IsSubMultiset(query_profiles[u], data_profiles[v]);
      if (keep) result.candidates[u].push_back(v);
    }
  });
  local_span.End();
  size_t inspected = 0;
  for (size_t c : inspected_per_vertex) inspected += c;
  NEURSC_COUNTER_ADD("filter.vertices_inspected",
                     static_cast<int64_t>(inspected));
  NEURSC_COUNTER_ADD("filter.candidates_local",
                     static_cast<int64_t>(result.TotalSize()));
  if (options.local_only || options.homomorphism_safe) return result;

  // Membership bitmaps, maintained across refinement sweeps.
  std::vector<std::vector<bool>> is_candidate(
      nq, std::vector<bool>(data.NumVertices(), false));
  for (size_t u = 0; u < nq; ++u) {
    for (VertexId v : result.candidates[u]) is_candidate[u][v] = true;
  }

  // --- Stage 2: global refinement by semi-perfect matching. ---
  NEURSC_SPAN(refine_span, "filter/refine");
  int rounds_run = 0;
  for (int round = 0; round < options.refinement_rounds; ++round) {
    ++rounds_run;
    bool changed = false;
    for (size_t u = 0; u < nq; ++u) {
      VertexId qu = static_cast<VertexId>(u);
      auto query_nbrs = query.Neighbors(qu);
      std::vector<VertexId> kept;
      kept.reserve(result.candidates[u].size());
      for (VertexId v : result.candidates[u]) {
        auto data_nbrs = data.Neighbors(v);
        BipartiteGraph b(query_nbrs.size(), data_nbrs.size());
        for (size_t i = 0; i < query_nbrs.size(); ++i) {
          VertexId uprime = query_nbrs[i];
          for (size_t j = 0; j < data_nbrs.size(); ++j) {
            if (is_candidate[uprime][data_nbrs[j]]) b.AddEdge(i, j);
          }
        }
        if (HasLeftSaturatingMatching(b)) {
          kept.push_back(v);
        } else {
          is_candidate[u][v] = false;
          changed = true;
        }
      }
      result.candidates[u] = std::move(kept);
    }
    if (!changed) break;
  }
  NEURSC_COUNTER_ADD("filter.refine_rounds", rounds_run);
  NEURSC_COUNTER_ADD("filter.candidates_refined",
                     static_cast<int64_t>(result.TotalSize()));
  return result;
}

}  // namespace neursc
