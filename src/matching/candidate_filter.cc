#include "matching/candidate_filter.h"

#include <algorithm>
#include <queue>

#include "common/metrics_registry.h"
#include "common/trace.h"
#include "matching/bipartite_matching.h"

namespace neursc {

namespace {

/// Sorted multiset of labels of vertices within distance <= radius of v,
/// excluding v itself (v's own label is compared separately since candidates
/// must share it exactly).
std::vector<Label> NeighborhoodProfile(const Graph& g, VertexId v,
                                       int radius) {
  std::vector<Label> profile;
  if (radius <= 1) {
    profile.reserve(g.Degree(v));
    for (VertexId w : g.Neighbors(v)) profile.push_back(g.GetLabel(w));
  } else {
    std::vector<uint32_t> dist(g.NumVertices(), UINT32_MAX);
    std::queue<VertexId> queue;
    dist[v] = 0;
    queue.push(v);
    while (!queue.empty()) {
      VertexId x = queue.front();
      queue.pop();
      if (dist[x] >= static_cast<uint32_t>(radius)) continue;
      for (VertexId w : g.Neighbors(x)) {
        if (dist[w] == UINT32_MAX) {
          dist[w] = dist[x] + 1;
          profile.push_back(g.GetLabel(w));
          queue.push(w);
        }
      }
    }
  }
  std::sort(profile.begin(), profile.end());
  return profile;
}

/// True iff every distinct value of sorted `sub` appears in sorted `super`.
bool IsSubSet(const std::vector<Label>& sub,
              const std::vector<Label>& super) {
  for (Label l : sub) {
    if (!std::binary_search(super.begin(), super.end(), l)) return false;
  }
  return true;
}

/// True iff sorted multiset `sub` is contained in sorted multiset `super`.
bool IsSubMultiset(const std::vector<Label>& sub,
                   const std::vector<Label>& super) {
  size_t i = 0;
  size_t j = 0;
  while (i < sub.size() && j < super.size()) {
    if (sub[i] == super[j]) {
      ++i;
      ++j;
    } else if (sub[i] > super[j]) {
      ++j;
    } else {
      return false;
    }
  }
  return i == sub.size();
}

}  // namespace

bool CandidateSets::AnyEmpty() const {
  for (const auto& cs : candidates) {
    if (cs.empty()) return true;
  }
  return false;
}

size_t CandidateSets::UnionSize() const { return Union().size(); }

std::vector<VertexId> CandidateSets::Union() const {
  std::vector<VertexId> all;
  for (const auto& cs : candidates) all.insert(all.end(), cs.begin(), cs.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

size_t CandidateSets::TotalSize() const {
  size_t total = 0;
  for (const auto& cs : candidates) total += cs.size();
  return total;
}

Result<CandidateSets> ComputeCandidateSets(
    const Graph& query, const Graph& data,
    const CandidateFilterOptions& options) {
  if (query.NumVertices() == 0) {
    return Status::InvalidArgument("empty query graph");
  }
  NEURSC_SPAN(filter_span, "filter/candidates");
  NEURSC_COUNTER_INC("filter.queries");
  const size_t nq = query.NumVertices();

  // --- Stage 1: local pruning by neighborhood label profiles. ---
  NEURSC_SPAN(local_span, "filter/local");
  std::vector<std::vector<Label>> query_profiles(nq);
  for (size_t u = 0; u < nq; ++u) {
    query_profiles[u] =
        NeighborhoodProfile(query, static_cast<VertexId>(u),
                            options.profile_radius);
  }

  // Cache data profiles for vertices we actually inspect.
  std::vector<std::vector<Label>> data_profiles(data.NumVertices());
  std::vector<bool> data_profile_ready(data.NumVertices(), false);

  size_t inspected = 0;
  CandidateSets result;
  result.candidates.resize(nq);
  for (size_t u = 0; u < nq; ++u) {
    VertexId qu = static_cast<VertexId>(u);
    Label label = query.GetLabel(qu);
    for (VertexId v : data.VerticesWithLabel(label)) {
      ++inspected;
      if (!options.homomorphism_safe &&
          data.Degree(v) < query.Degree(qu)) {
        continue;
      }
      if (!data_profile_ready[v]) {
        data_profiles[v] =
            NeighborhoodProfile(data, v, options.profile_radius);
        data_profile_ready[v] = true;
      }
      bool keep = options.homomorphism_safe
                      ? IsSubSet(query_profiles[u], data_profiles[v])
                      : IsSubMultiset(query_profiles[u], data_profiles[v]);
      if (keep) result.candidates[u].push_back(v);
    }
  }
  local_span.End();
  NEURSC_COUNTER_ADD("filter.vertices_inspected",
                     static_cast<int64_t>(inspected));
  NEURSC_COUNTER_ADD("filter.candidates_local",
                     static_cast<int64_t>(result.TotalSize()));
  if (options.local_only || options.homomorphism_safe) return result;

  // Membership bitmaps, maintained across refinement sweeps.
  std::vector<std::vector<bool>> is_candidate(
      nq, std::vector<bool>(data.NumVertices(), false));
  for (size_t u = 0; u < nq; ++u) {
    for (VertexId v : result.candidates[u]) is_candidate[u][v] = true;
  }

  // --- Stage 2: global refinement by semi-perfect matching. ---
  NEURSC_SPAN(refine_span, "filter/refine");
  int rounds_run = 0;
  for (int round = 0; round < options.refinement_rounds; ++round) {
    ++rounds_run;
    bool changed = false;
    for (size_t u = 0; u < nq; ++u) {
      VertexId qu = static_cast<VertexId>(u);
      auto query_nbrs = query.Neighbors(qu);
      std::vector<VertexId> kept;
      kept.reserve(result.candidates[u].size());
      for (VertexId v : result.candidates[u]) {
        auto data_nbrs = data.Neighbors(v);
        BipartiteGraph b(query_nbrs.size(), data_nbrs.size());
        for (size_t i = 0; i < query_nbrs.size(); ++i) {
          VertexId uprime = query_nbrs[i];
          for (size_t j = 0; j < data_nbrs.size(); ++j) {
            if (is_candidate[uprime][data_nbrs[j]]) b.AddEdge(i, j);
          }
        }
        if (HasLeftSaturatingMatching(b)) {
          kept.push_back(v);
        } else {
          is_candidate[u][v] = false;
          changed = true;
        }
      }
      result.candidates[u] = std::move(kept);
    }
    if (!changed) break;
  }
  NEURSC_COUNTER_ADD("filter.refine_rounds", rounds_run);
  NEURSC_COUNTER_ADD("filter.candidates_refined",
                     static_cast<int64_t>(result.TotalSize()));
  return result;
}

}  // namespace neursc
