#ifndef NEURSC_MATCHING_SUBSTRUCTURE_H_
#define NEURSC_MATCHING_SUBSTRUCTURE_H_

#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "matching/candidate_filter.h"

namespace neursc {

/// One connected candidate substructure G_sub^{(i)} (Sec. 4), carrying the
/// mapping back to the data graph and the candidate sets restricted to it —
/// WEst's inter-graph bipartite network and the Wasserstein discriminator
/// both need per-query-vertex candidates in local ids.
struct Substructure {
  Graph graph;
  /// original_id[i] is the data-graph id of local vertex i.
  std::vector<VertexId> original_id;
  /// local_candidates[u] lists the local vertex ids of CS(u) members that
  /// fall inside this substructure (sorted).
  std::vector<std::vector<VertexId>> local_candidates;
};

/// Observability counters filled during extraction (how hard the filter
/// worked and how fragmented the candidate region is).
struct ExtractionStats {
  /// |union of all CS(u)|.
  size_t candidate_union_size = 0;
  /// sum over u of |CS(u)|.
  size_t total_candidates = 0;
  /// Connected components of the candidate-induced subgraph.
  size_t components_total = 0;
  /// Components surviving the size check (== substructures.size()).
  size_t components_kept = 0;
  size_t largest_substructure_vertices = 0;
};

/// Result of the extraction module (Sec. 4 / Alg. 1 lines 1-7).
struct ExtractionResult {
  /// True iff estimation can terminate early with count 0: some CS(u) was
  /// empty or |union CS| < |V(q)|.
  bool early_terminate = false;
  /// Connected substructures that survived the size check (components
  /// smaller than the query in vertices or edges are skipped since a query
  /// cannot embed into a smaller graph).
  std::vector<Substructure> substructures;
  /// Candidate sets on the full data graph, for reuse by callers.
  CandidateSets candidates;
  ExtractionStats stats;
};

/// Runs candidate filtering + induced-subgraph extraction + connected
/// splitting for `query` on `data`.
Result<ExtractionResult> ExtractSubstructures(
    const Graph& query, const Graph& data,
    const CandidateFilterOptions& filter_options = {});

/// Builds substructures from an explicit candidate-vertex universe (used by
/// the "perfect substructure" ablation, where the universe is the set of
/// data vertices appearing in ground-truth embeddings). `candidates` must
/// be positioned on the same data graph.
Result<ExtractionResult> BuildSubstructuresFromVertices(
    const Graph& query, const Graph& data,
    const std::vector<VertexId>& universe, const CandidateSets& candidates);

}  // namespace neursc

#endif  // NEURSC_MATCHING_SUBSTRUCTURE_H_
