#include "common/rng.h"

#include <cmath>

namespace neursc {

size_t Rng::Discrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return weights.size();
  double r = Uniform01() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

int64_t Rng::Zipf(int64_t n, double alpha) {
  // Inverse-transform sampling of the continuous power-law density
  // p(x) ~ x^-alpha on [1, n+1), truncated to an integer.
  double u = Uniform01();
  if (std::abs(alpha - 1.0) < 1e-9) {
    double x = std::exp(u * std::log(static_cast<double>(n) + 1.0));
    int64_t k = static_cast<int64_t>(x);
    return std::min<int64_t>(std::max<int64_t>(k, 1), n);
  }
  double one_minus = 1.0 - alpha;
  double max_term = std::pow(static_cast<double>(n) + 1.0, one_minus);
  double x = std::pow(u * (max_term - 1.0) + 1.0, 1.0 / one_minus);
  int64_t k = static_cast<int64_t>(x);
  return std::min<int64_t>(std::max<int64_t>(k, 1), n);
}

}  // namespace neursc
