#ifndef NEURSC_COMMON_MUTEX_H_
#define NEURSC_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

// Annotated synchronization primitives: thin, zero-overhead wrappers over
// std::mutex / std::lock_guard / std::condition_variable that carry the
// Clang Thread Safety Analysis capability attributes
// (thread_annotations.h). All locking in this codebase goes through these
// wrappers so the analyzer can prove the lock discipline stated in
// docs/threading.md; the std primitives themselves cannot be annotated.
//
// tests/thread_annotations_test.cc asserts the wrappers behave identically
// to the raw std primitives (including under TSan).

namespace neursc {

/// Annotated std::mutex. Prefer MutexLock for scoped acquisition; call
/// Lock()/Unlock() directly only where the critical section cannot be a
/// lexical scope (e.g. a worker loop that drops the lock to run tasks).
class NEURSC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() NEURSC_ACQUIRE() { mu_.lock(); }
  void Unlock() NEURSC_RELEASE() { mu_.unlock(); }
  /// Acquires and returns true iff the mutex was free. Never call from a
  /// thread that already holds this mutex (std::mutex rule).
  bool TryLock() NEURSC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a Mutex; the drop-in replacement for
/// std::lock_guard<std::mutex>.
class NEURSC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) NEURSC_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() NEURSC_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with Mutex. Wait() requires the mutex held
/// (the analyzer enforces it) and holds it again on return. There is no
/// predicate overload on purpose: the analysis cannot see through a
/// predicate lambda reading guarded fields, so callers write the standard
///   while (!condition) cv.Wait(&mu);
/// loop with the condition inlined where the capability is visible.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases *mu and blocks until notified (spurious wakeups
  /// possible, as with std::condition_variable); reacquires *mu before
  /// returning.
  void Wait(Mutex* mu) NEURSC_REQUIRES(mu) {
    // Adopt the already-held std::mutex for the duration of the wait and
    // release the unique_lock's ownership claim afterwards: the caller's
    // scope (MutexLock or manual Lock/Unlock) keeps owning the mutex.
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace neursc

#endif  // NEURSC_COMMON_MUTEX_H_
