#include "common/parallel.h"

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/metrics_registry.h"

namespace neursc {

size_t DefaultThreadCount() {
  const char* env = std::getenv("NEURSC_THREADS");
  if (env != nullptr) {
    long parsed = std::atol(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t num_threads) {
  if (n == 0) return;
  if (num_threads == 0) num_threads = DefaultThreadCount();
  num_threads = std::min(num_threads, n);
  NEURSC_COUNTER_INC("parallel.invocations");
  NEURSC_COUNTER_ADD("parallel.tasks", static_cast<int64_t>(n));
  NEURSC_GAUGE_SET("parallel.threads", static_cast<double>(num_threads));
  if (num_threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&]() {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  for (auto& worker : workers) worker.join();
}

}  // namespace neursc
