#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics_registry.h"

namespace neursc {

namespace {

thread_local bool in_parallel_worker = false;

/// Shared state of one ParallelFor region. Lives on the calling thread's
/// stack; workers only touch it between joining the job (under the pool
/// mutex) and decrementing the active count (under the pool mutex), so the
/// caller can safely destroy it once no worker is active.
struct Job {
  const std::function<void(size_t)>* fn = nullptr;
  size_t n = 0;
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr first_error;
  size_t first_error_index = 0;
};

/// Claims indices off `job` until the range is exhausted or a task has
/// failed. Runs on workers and on the calling thread alike.
void RunJobTasks(Job* job) {
  for (size_t i = job->next.fetch_add(1); i < job->n;
       i = job->next.fetch_add(1)) {
    if (job->failed.load(std::memory_order_relaxed)) break;
    try {
      (*job->fn)(i);
    } catch (...) {
      job->failed.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(job->error_mu);
      // Keep the exception of the lowest failing index that ran.
      if (!job->first_error || i < job->first_error_index) {
        job->first_error_index = i;
        job->first_error = std::current_exception();
      }
    }
  }
}

/// Lazily-initialized persistent worker pool. Training issues thousands of
/// small ParallelFor regions per run; spawning and joining threads per call
/// would dominate those regions, so workers are spawned once (growing on
/// demand up to the largest thread count ever requested) and parked on a
/// condition variable between regions.
///
/// One region runs at a time: a second caller blocks in Run() until the
/// first completes. The calling thread participates in its own region, so a
/// region asking for N threads uses N-1 pool workers.
class WorkerPool {
 public:
  static WorkerPool& Instance() {
    static WorkerPool pool;
    return pool;
  }

  void Run(size_t n, const std::function<void(size_t)>& fn,
           size_t num_threads) {
    NEURSC_GAUGE_SET("parallel.pool_waiting_regions",
                     static_cast<double>(waiting_regions_.fetch_add(1) + 1));
    std::lock_guard<std::mutex> region(region_mu_);
    NEURSC_GAUGE_SET("parallel.pool_waiting_regions",
                     static_cast<double>(waiting_regions_.fetch_sub(1) - 1));
    Job job;
    job.fn = &fn;
    job.n = n;
    const size_t helpers = num_threads - 1;
    size_t pool_size;
    {
      std::lock_guard<std::mutex> lk(mu_);
      while (threads_.size() < helpers) {
        threads_.emplace_back([this] { WorkerLoop(); });
      }
      pool_size = threads_.size();
      current_ = &job;
      ++job_seq_;
      joiners_left_ = helpers;
    }
    NEURSC_GAUGE_SET("parallel.pool_threads",
                     static_cast<double>(pool_size));
    cv_.notify_all();
    // The caller works too, with worker semantics so nested ParallelFor
    // calls from its tasks run inline like they do on pool workers.
    in_parallel_worker = true;
    RunJobTasks(&job);
    in_parallel_worker = false;
    {
      std::unique_lock<std::mutex> lk(mu_);
      // No worker may join once current_ is cleared; joining and clearing
      // are both under mu_, so after the wait below the job is unreachable.
      current_ = nullptr;
      done_cv_.wait(lk, [&] { return active_ == 0; });
    }
    if (job.first_error) std::rethrow_exception(job.first_error);
  }

  size_t ThreadCount() {
    std::lock_guard<std::mutex> lk(mu_);
    return threads_.size();
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

 private:
  WorkerPool() = default;

  void WorkerLoop() {
    in_parallel_worker = true;
    uint64_t seen_seq = 0;
    std::unique_lock<std::mutex> lk(mu_);
    while (true) {
      cv_.wait(lk, [&] {
        return shutdown_ || (current_ != nullptr && job_seq_ != seen_seq &&
                             joiners_left_ > 0);
      });
      if (shutdown_) return;
      seen_seq = job_seq_;
      Job* job = current_;
      --joiners_left_;
      ++active_;
      lk.unlock();
      RunJobTasks(job);
      lk.lock();
      if (--active_ == 0) done_cv_.notify_all();
    }
  }

  // Serializes top-level regions (nested calls never reach Run()).
  std::mutex region_mu_;
  std::atomic<size_t> waiting_regions_{0};

  // Guards all fields below plus job join/leave transitions.
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  Job* current_ = nullptr;
  // Bumped per region so a worker joins each job at most once.
  uint64_t job_seq_ = 0;
  // How many workers may still join the current job (a region may use
  // fewer workers than the pool holds).
  size_t joiners_left_ = 0;
  // Workers currently inside RunJobTasks for the current job.
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace

size_t DefaultThreadCount() {
  const char* env = std::getenv("NEURSC_THREADS");
  if (env != nullptr) {
    long parsed = std::atol(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

bool InParallelWorker() { return in_parallel_worker; }

size_t WorkerPoolThreadCount() {
  return WorkerPool::Instance().ThreadCount();
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t num_threads) {
  if (n == 0) return;
  // Nested parallelism runs inline: the outer loop already owns the
  // worker threads, and exceptions propagate naturally to the outer task.
  if (in_parallel_worker) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (num_threads == 0) num_threads = DefaultThreadCount();
  num_threads = std::min(num_threads, n);
  NEURSC_COUNTER_INC("parallel.invocations");
  NEURSC_COUNTER_ADD("parallel.tasks", static_cast<int64_t>(n));
  NEURSC_GAUGE_SET("parallel.threads", static_cast<double>(num_threads));
  if (num_threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  WorkerPool::Instance().Run(n, fn, num_threads);
}

}  // namespace neursc
