#include "common/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics_registry.h"

namespace neursc {

namespace {

thread_local bool in_parallel_worker = false;

}  // namespace

size_t DefaultThreadCount() {
  const char* env = std::getenv("NEURSC_THREADS");
  if (env != nullptr) {
    long parsed = std::atol(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

bool InParallelWorker() { return in_parallel_worker; }

void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t num_threads) {
  if (n == 0) return;
  // Nested parallelism runs inline: the outer loop already owns the
  // worker threads, and exceptions propagate naturally to the outer task.
  if (in_parallel_worker) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (num_threads == 0) num_threads = DefaultThreadCount();
  num_threads = std::min(num_threads, n);
  NEURSC_COUNTER_INC("parallel.invocations");
  NEURSC_COUNTER_ADD("parallel.tasks", static_cast<int64_t>(n));
  NEURSC_GAUGE_SET("parallel.threads", static_cast<double>(num_threads));
  if (num_threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr first_error;
  size_t first_error_index = n;
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&]() {
      in_parallel_worker = true;
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        if (failed.load(std::memory_order_relaxed)) break;
        try {
          fn(i);
        } catch (...) {
          failed.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(error_mu);
          // Keep the exception of the lowest failing index that ran.
          if (i < first_error_index) {
            first_error_index = i;
            first_error = std::current_exception();
          }
        }
      }
      in_parallel_worker = false;
    });
  }
  for (auto& worker : workers) worker.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace neursc
