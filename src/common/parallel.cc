#include "common/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include "common/metrics_registry.h"
#include "common/mutex.h"

namespace neursc {

namespace {

thread_local bool in_parallel_worker = false;

/// Shared state of one ParallelFor region. Lives on the calling thread's
/// stack; workers only touch it between joining the job (under the pool
/// mutex) and decrementing the active count (under the pool mutex), so the
/// caller can safely destroy it once no worker is active.
struct Job {
  const std::function<void(size_t)>* fn = nullptr;
  size_t n = 0;
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  Mutex error_mu;
  std::exception_ptr first_error NEURSC_GUARDED_BY(error_mu);
  size_t first_error_index NEURSC_GUARDED_BY(error_mu) = 0;
};

/// Claims indices off `job` until the range is exhausted or a task has
/// failed. Runs on workers and on the calling thread alike; no pool lock
/// is held here, so user callbacks execute lock-free (a body may safely
/// block on work completed by other threads, call WorkerPoolThreadCount(),
/// or throw without any lock in flight).
void RunJobTasks(Job* job) {
  for (size_t i = job->next.fetch_add(1); i < job->n;
       i = job->next.fetch_add(1)) {
    if (job->failed.load(std::memory_order_relaxed)) break;
    try {
      (*job->fn)(i);
    } catch (...) {
      job->failed.store(true, std::memory_order_relaxed);
      MutexLock lock(&job->error_mu);
      // Keep the exception of the lowest failing index that ran.
      if (!job->first_error || i < job->first_error_index) {
        job->first_error_index = i;
        job->first_error = std::current_exception();
      }
    }
  }
}

/// Lazily-initialized persistent worker pool. Training issues thousands of
/// small ParallelFor regions per run; spawning and joining threads per call
/// would dominate those regions, so workers are spawned once (growing on
/// demand up to the largest thread count ever requested) and parked on a
/// condition variable between regions.
///
/// One region runs at a time: a second caller blocks in Run() until the
/// first completes. Region exclusivity is a CondVar-guarded flag rather
/// than a mutex held for the region's duration, so no lock whatsoever is
/// held while user callbacks run — and the error rethrow happens after the
/// flag is cleared, so a throwing body can never leave a waiting region
/// stuck. The calling thread participates in its own region, so a region
/// asking for N threads uses N-1 pool workers.
class WorkerPool {
 public:
  static WorkerPool& Instance() {
    static WorkerPool pool;
    return pool;
  }

  void Run(size_t n, const std::function<void(size_t)>& fn,
           size_t num_threads) NEURSC_EXCLUDES(mu_) {
    NEURSC_GAUGE_SET("parallel.pool_waiting_regions",
                     static_cast<double>(waiting_regions_.fetch_add(1) + 1));
    Job job;
    job.fn = &fn;
    job.n = n;
    const size_t helpers = num_threads - 1;
    size_t pool_size;
    mu_.Lock();
    while (region_active_) region_cv_.Wait(&mu_);
    region_active_ = true;
    while (threads_.size() < helpers) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
    pool_size = threads_.size();
    current_ = &job;
    ++job_seq_;
    joiners_left_ = helpers;
    mu_.Unlock();
    cv_.SignalAll();
    NEURSC_GAUGE_SET("parallel.pool_waiting_regions",
                     static_cast<double>(waiting_regions_.fetch_sub(1) - 1));
    NEURSC_GAUGE_SET("parallel.pool_threads",
                     static_cast<double>(pool_size));
    // The caller works too, with worker semantics so nested ParallelFor
    // calls from its tasks run inline like they do on pool workers.
    in_parallel_worker = true;
    RunJobTasks(&job);
    in_parallel_worker = false;
    mu_.Lock();
    // No worker may join once current_ is cleared; joining and clearing
    // are both under mu_, so after the drain below the job is unreachable
    // and the region slot can be handed to the next caller.
    current_ = nullptr;
    while (active_ != 0) done_cv_.Wait(&mu_);
    region_active_ = false;
    mu_.Unlock();
    region_cv_.SignalAll();
    // Rethrow with the region already released: a throwing body cannot
    // deadlock callers waiting for the next region (parallel_test.cc).
    std::exception_ptr first_error;
    {
      MutexLock lock(&job.error_mu);
      first_error = job.first_error;
    }
    if (first_error) std::rethrow_exception(first_error);
  }

  size_t ThreadCount() NEURSC_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return threads_.size();
  }

  ~WorkerPool() {
    std::vector<std::thread> threads;
    {
      MutexLock lock(&mu_);
      shutdown_ = true;
      // Joining must happen unlocked (workers need mu_ to observe
      // shutdown_), so take ownership of the handles under the lock.
      threads.swap(threads_);
    }
    cv_.SignalAll();
    for (auto& t : threads) t.join();
  }

 private:
  WorkerPool() = default;

  void WorkerLoop() NEURSC_EXCLUDES(mu_) {
    in_parallel_worker = true;
    uint64_t seen_seq = 0;
    mu_.Lock();
    while (true) {
      while (!shutdown_ && (current_ == nullptr || job_seq_ == seen_seq ||
                            joiners_left_ == 0)) {
        cv_.Wait(&mu_);
      }
      if (shutdown_) break;
      seen_seq = job_seq_;
      Job* job = current_;
      --joiners_left_;
      ++active_;
      mu_.Unlock();
      RunJobTasks(job);
      mu_.Lock();
      if (--active_ == 0) done_cv_.SignalAll();
    }
    mu_.Unlock();
  }

  // Count of callers inside Run() that have not started their region yet
  // (diagnostics gauge only).
  std::atomic<size_t> waiting_regions_{0};

  // Guards all fields below plus job join/leave transitions. Leaf lock:
  // never held while user callbacks run or while another lock is taken
  // (lock hierarchy table in docs/threading.md).
  Mutex mu_;
  CondVar cv_;         // workers park here between regions
  CondVar done_cv_;    // caller drains its region's workers
  CondVar region_cv_;  // callers queue here for region exclusivity
  std::vector<std::thread> threads_ NEURSC_GUARDED_BY(mu_);
  // True while some caller owns the (single) region slot.
  bool region_active_ NEURSC_GUARDED_BY(mu_) = false;
  Job* current_ NEURSC_GUARDED_BY(mu_) = nullptr;
  // Bumped per region so a worker joins each job at most once.
  uint64_t job_seq_ NEURSC_GUARDED_BY(mu_) = 0;
  // How many workers may still join the current job (a region may use
  // fewer workers than the pool holds).
  size_t joiners_left_ NEURSC_GUARDED_BY(mu_) = 0;
  // Workers currently inside RunJobTasks for the current job.
  size_t active_ NEURSC_GUARDED_BY(mu_) = 0;
  bool shutdown_ NEURSC_GUARDED_BY(mu_) = false;
};

}  // namespace

size_t DefaultThreadCount() {
  const char* env = std::getenv("NEURSC_THREADS");
  if (env != nullptr) {
    long parsed = std::atol(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

bool InParallelWorker() { return in_parallel_worker; }

size_t WorkerPoolThreadCount() {
  return WorkerPool::Instance().ThreadCount();
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t num_threads) {
  if (n == 0) return;
  // Nested parallelism runs inline: the outer loop already owns the
  // worker threads, and exceptions propagate naturally to the outer task.
  if (in_parallel_worker) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (num_threads == 0) num_threads = DefaultThreadCount();
  num_threads = std::min(num_threads, n);
  NEURSC_COUNTER_INC("parallel.invocations");
  NEURSC_COUNTER_ADD("parallel.tasks", static_cast<int64_t>(n));
  NEURSC_GAUGE_SET("parallel.threads", static_cast<double>(num_threads));
  if (num_threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  WorkerPool::Instance().Run(n, fn, num_threads);
}

}  // namespace neursc
