#ifndef NEURSC_COMMON_THREAD_ANNOTATIONS_H_
#define NEURSC_COMMON_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis annotations (docs/static_analysis.md).
//
// These macros expand to Clang's __attribute__((capability(...))) family
// when the compiler supports it and to nothing everywhere else, so GCC
// builds are unaffected. Annotate every mutex-guarded field with
// NEURSC_GUARDED_BY and every lock-requiring private method with
// NEURSC_REQUIRES; the analyzer then proves the locking discipline that
// docs/threading.md states in prose — at compile time, for all schedules,
// instead of only on the interleavings TSan happens to sample.
//
// Build with the analysis as an error gate via
//   cmake -DNEURSC_ANALYZE=ON -DCMAKE_CXX_COMPILER=clang++
// (adds -Wthread-safety -Werror=thread-safety; ci.sh stage 6 runs it
// whenever clang is installed).
//
// Exemption policy: NEURSC_NO_THREAD_SAFETY_ANALYSIS is allowed only with
// a one-line rationale comment at the use site explaining why the
// analysis cannot see the invariant. Blanket suppressions are not.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define NEURSC_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#if !defined(NEURSC_THREAD_ANNOTATION_)
#define NEURSC_THREAD_ANNOTATION_(x)
#endif

/// Marks a class as a lockable capability ("mutex" names the kind in
/// diagnostics).
#define NEURSC_CAPABILITY(x) NEURSC_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability (e.g. MutexLock).
#define NEURSC_SCOPED_CAPABILITY NEURSC_THREAD_ANNOTATION_(scoped_lockable)

/// Field/variable may only be accessed while holding the given capability.
#define NEURSC_GUARDED_BY(x) NEURSC_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer itself is free to read, but the pointed-to data needs the lock.
#define NEURSC_PT_GUARDED_BY(x) NEURSC_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function may only be called while holding the listed capabilities.
#define NEURSC_REQUIRES(...) \
  NEURSC_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define NEURSC_ACQUIRE(...) \
  NEURSC_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (must be held on entry).
#define NEURSC_RELEASE(...) \
  NEURSC_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define NEURSC_TRY_ACQUIRE(...) \
  NEURSC_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock prevention for
/// functions that acquire them internally).
#define NEURSC_EXCLUDES(...) \
  NEURSC_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares that this capability must be acquired before the listed ones
/// (lock-hierarchy enforcement; see the table in docs/threading.md).
#define NEURSC_ACQUIRED_BEFORE(...) \
  NEURSC_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define NEURSC_ACQUIRED_AFTER(...) \
  NEURSC_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define NEURSC_RETURN_CAPABILITY(x) \
  NEURSC_THREAD_ANNOTATION_(lock_returned(x))

/// Tells the analyzer the capability is held without acquiring it
/// (runtime-checked assertions).
#define NEURSC_ASSERT_CAPABILITY(x) \
  NEURSC_THREAD_ANNOTATION_(assert_capability(x))

/// Opts a function out of the analysis. Every use site must carry a
/// one-line rationale comment (see exemption policy above).
#define NEURSC_NO_THREAD_SAFETY_ANALYSIS \
  NEURSC_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // NEURSC_COMMON_THREAD_ANNOTATIONS_H_
