#ifndef NEURSC_COMMON_TRACE_H_
#define NEURSC_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics_registry.h"
#include "common/mutex.h"
#include "common/status.h"

// Scoped trace spans with Chrome trace_event JSON export.
//
// A TraceSpan marks one timed stage ("filter/refine"). Spans nest naturally:
// Chrome's trace viewer (chrome://tracing, or https://ui.perfetto.dev) nests
// complete events on the same thread by timestamp containment, so no explicit
// parent ids are needed. Span names follow the `stage/substage` scheme
// documented in docs/observability.md.
//
// Recording is off by default. TraceRecorder::Global().Start() (the CLI /
// bench --trace-out flag calls it) or the environment variable
// NEURSC_TRACE=on enable it; NEURSC_TRACE=off vetoes Start() entirely. While
// disabled, a span costs two steady_clock reads plus one relaxed atomic
// load. Defining NEURSC_DISABLE_OBSERVABILITY compiles recording out; the
// span still measures elapsed time (callers use ElapsedSeconds()).
//
// Use the NEURSC_SPAN(var, "name") macro for instrumentation: it also
// accumulates the span's duration into the histogram "span/<name>", which is
// what the stage-breakdown table reads.

namespace neursc {

/// Collects completed span events into per-thread buffers (leased and reused
/// across short-lived worker threads) and serializes them as a Chrome
/// trace_event JSON file.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  /// Starts recording (no-op when NEURSC_TRACE=off). Clears nothing: spans
  /// recorded before a Stop()/Start() cycle stay buffered until Clear().
  void Start();
  void Stop();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Discards all buffered events.
  void Clear();
  size_t EventCount() const;

  /// Stops recording and writes {"traceEvents": [...]} with "X" (complete)
  /// events, timestamps in microseconds since Start().
  Status WriteChromeTrace(const std::string& path);

  /// Called by TraceSpan; `name` must outlive the recorder (string literal).
  void Record(const char* name, int64_t start_us, int64_t dur_us);

  int64_t NowMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

 private:
  TraceRecorder();

  struct Event {
    const char* name;
    int64_t start_us;
    int64_t dur_us;
  };

  /// One thread's event sink. The owning thread appends under `mu` (an
  /// uncontended lock in steady state); WriteChromeTrace locks each buffer
  /// while draining so concurrent spans stay race-free. `mu` is acquired
  /// after the recorder-wide `mu_` on the drain paths (lock hierarchy in
  /// docs/threading.md); Record() takes only `mu`.
  struct Buffer {
    Mutex mu;
    std::vector<Event> events NEURSC_GUARDED_BY(mu);
    /// Written once when the buffer is created (under the recorder's mu_),
    /// constant afterwards — readable without Buffer::mu.
    int tid = 0;
  };

  Buffer* ThreadBuffer() NEURSC_EXCLUDES(mu_);

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  /// Guards buffer registration/recycling; each Buffer's events are then
  /// guarded by their own Buffer::mu.
  mutable Mutex mu_;
  std::vector<std::unique_ptr<Buffer>> buffers_ NEURSC_GUARDED_BY(mu_);
  std::vector<Buffer*> free_buffers_ NEURSC_GUARDED_BY(mu_);
  int next_tid_ NEURSC_GUARDED_BY(mu_) = 1;

  friend struct TraceBufferLease;
};

/// RAII span. Measures wall time from construction to End()/destruction;
/// when tracing is enabled the interval is recorded as a trace event, and
/// when a histogram is supplied the duration in seconds is recorded there.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, Histogram* duration_histogram = nullptr)
      : name_(name),
        histogram_(duration_histogram),
#if !defined(NEURSC_DISABLE_OBSERVABILITY)
        tracing_(TraceRecorder::Global().enabled()),
        start_us_(tracing_ ? TraceRecorder::Global().NowMicros() : 0),
#endif
        start_(std::chrono::steady_clock::now()) {
  }

  ~TraceSpan() { End(); }

  /// Seconds since construction (or until End() once ended).
  double ElapsedSeconds() const {
    auto end = ended_ ? end_ : std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - start_).count();
  }

  /// Finishes the span early (idempotent); the destructor becomes a no-op.
  void End() {
    if (ended_) return;
    ended_ = true;
    end_ = std::chrono::steady_clock::now();
#if !defined(NEURSC_DISABLE_OBSERVABILITY)
    if (histogram_ != nullptr && MetricsEnabled()) {
      histogram_->Record(ElapsedSeconds());
    }
    if (tracing_ && TraceRecorder::Global().enabled()) {
      int64_t dur_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           end_ - start_)
                           .count();
      TraceRecorder::Global().Record(name_, start_us_, dur_us);
    }
#endif
  }

  const char* name() const { return name_; }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  Histogram* histogram_;
#if !defined(NEURSC_DISABLE_OBSERVABILITY)
  bool tracing_ = false;
  int64_t start_us_ = 0;
#endif
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point end_;
  bool ended_ = false;
};

#if defined(NEURSC_DISABLE_OBSERVABILITY)

#define NEURSC_SPAN(var, name) ::neursc::TraceSpan var((name), nullptr)

#else

/// Declares a TraceSpan named `var` for stage `name` (a string literal like
/// "filter/refine") whose duration also feeds the histogram "span/<name>".
#define NEURSC_SPAN(var, name)                                    \
  static ::neursc::Histogram* var##_span_hist_ =                  \
      ::neursc::MetricsRegistry::Global().GetHistogram(           \
          ::std::string("span/") + (name));                       \
  ::neursc::TraceSpan var((name), var##_span_hist_)

#endif  // NEURSC_DISABLE_OBSERVABILITY

}  // namespace neursc

#endif  // NEURSC_COMMON_TRACE_H_
