#include "common/logging.h"

#include <cstring>

namespace neursc {
namespace internal_logging {

namespace {

LogLevel g_level = [] {
  const char* env = std::getenv("NEURSC_LOG");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}();

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

void Emit(LogLevel level, const char* file, int line, const std::string& msg) {
  if (level < g_level && level != LogLevel::kFatal) return;
  const char* base = std::strrchr(file, '/');
  base = (base != nullptr) ? base + 1 : file;
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level), base, line,
               msg.c_str());
}

}  // namespace internal_logging
}  // namespace neursc
