#include "common/logging.h"

#include <chrono>
#include <cstring>
#include <ctime>
#include <vector>

namespace neursc {
namespace internal_logging {

namespace {

LogLevel LevelFromEnvironment() {
  const char* env = std::getenv("NEURSC_LOG");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}

std::atomic<int> g_level{static_cast<int>(LevelFromEnvironment())};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

/// Small dense id per logging thread (the std::thread::id hash is too wide
/// to read in a log line).
int ThreadLogId() {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void Emit(LogLevel level, const char* file, int line, const std::string& msg) {
  if (level < GetLogLevel() && level != LogLevel::kFatal) return;
  const char* base = std::strrchr(file, '/');
  base = (base != nullptr) ? base + 1 : file;

  auto now = std::chrono::system_clock::now();
  std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                    now.time_since_epoch())
                    .count() %
                1000;
  std::tm tm_buf{};
  localtime_r(&seconds, &tm_buf);

  // One snprintf into a single buffer, one fwrite: concurrent log lines
  // never interleave mid-line.
  char stack_buf[512];
  int needed = std::snprintf(
      stack_buf, sizeof(stack_buf),
      "[%s %02d:%02d:%02d.%03d t%d %s:%d] %s\n", LevelTag(level),
      tm_buf.tm_hour, tm_buf.tm_min, tm_buf.tm_sec,
      static_cast<int>(millis), ThreadLogId(), base, line, msg.c_str());
  if (needed < 0) return;
  if (static_cast<size_t>(needed) < sizeof(stack_buf)) {
    std::fwrite(stack_buf, 1, static_cast<size_t>(needed), stderr);
  } else {
    std::vector<char> heap_buf(static_cast<size_t>(needed) + 1);
    std::snprintf(heap_buf.data(), heap_buf.size(),
                  "[%s %02d:%02d:%02d.%03d t%d %s:%d] %s\n", LevelTag(level),
                  tm_buf.tm_hour, tm_buf.tm_min, tm_buf.tm_sec,
                  static_cast<int>(millis), ThreadLogId(), base, line,
                  msg.c_str());
    std::fwrite(heap_buf.data(), 1, static_cast<size_t>(needed), stderr);
  }
  std::fflush(stderr);
}

}  // namespace internal_logging
}  // namespace neursc
