#ifndef NEURSC_COMMON_METRICS_REGISTRY_H_
#define NEURSC_COMMON_METRICS_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"

// Process-wide metrics: named counters, gauges, and log-bucketed histograms.
//
// Hot-path writes go through per-thread shards (a leased stripe per live
// thread, recycled on thread exit), so ParallelFor workers record without
// contending on shared cache lines; readers merge the stripes on demand.
// All recording is wait-free relaxed atomics and safe from any thread.
//
// Use the NEURSC_COUNTER_* / NEURSC_HISTOGRAM_* macros (below) on hot paths:
// they cache the name lookup in a function-local static. Defining
// NEURSC_DISABLE_OBSERVABILITY at compile time turns the macros (and
// TraceSpan recording in trace.h) into no-ops; setting the environment
// variable NEURSC_METRICS=off disables recording at runtime.

namespace neursc {

/// True unless NEURSC_METRICS=off|0 was set when the process started.
bool MetricsEnabled();

namespace internal_metrics {

/// Number of shard stripes. Threads lease distinct stripes while alive (the
/// lease returns to a free list on thread exit); if more than kShardCount
/// threads are live at once the excess hash onto shared stripes, which stays
/// correct (atomics) but may contend.
inline constexpr size_t kShardCount = 64;

/// Stripe index of the calling thread.
size_t ShardIndex();

struct alignas(64) PaddedCount {
  std::atomic<int64_t> value{0};
};

}  // namespace internal_metrics

/// Monotonically increasing sum (events, items processed).
class Counter {
 public:
  void Add(int64_t delta) {
    shards_[internal_metrics::ShardIndex()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  /// Merged value across all thread stripes.
  int64_t Value() const;
  void Reset();

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::array<internal_metrics::PaddedCount, internal_metrics::kShardCount>
      shards_;
};

/// Last-write-wins instantaneous value (thread counts, queue depths).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// Log-bucketed histogram of non-negative doubles (durations in seconds,
/// sizes). Buckets cover [2^-34, 2^30) with kSubBuckets per power of two
/// (relative bucket width 2^(1/8) ~ 9%); values outside clamp to the end
/// buckets and zeros/negatives land in a dedicated first bucket.
class Histogram {
 public:
  static constexpr int kMinExp = -34;   // frexp exponent of smallest octave
  static constexpr int kMaxExp = 30;    // one past the largest octave
  static constexpr size_t kSubBuckets = 8;
  static constexpr size_t kNumBuckets =
      1 + static_cast<size_t>(kMaxExp - kMinExp) * kSubBuckets;

  void Record(double value);

  /// Merged statistics. Percentile interpolates inside the winning bucket's
  /// geometric span, so the result is within one bucket width (~9% relative)
  /// of the exact order statistic.
  uint64_t Count() const;
  double Sum() const;
  double Min() const;
  double Max() const;
  double Percentile(double q) const;  // q in [0, 1]
  double Mean() const;
  void Reset();

  /// Bucket index for `value` (exposed for tests).
  static size_t BucketIndex(double value);
  /// Geometric midpoint of bucket `index` (0 for the zero bucket).
  static double BucketRepresentative(size_t index);

 private:
  friend class MetricsRegistry;
  Histogram() = default;

  /// One thread's stripe, lazily allocated on first record from that stripe.
  struct Stripe {
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{1e300};
    std::atomic<double> max{-1e300};
    std::atomic<uint64_t> count{0};
  };

  Stripe* GetStripe(size_t index);
  void MergeBuckets(std::array<uint64_t, kNumBuckets>* out) const;

  std::array<std::atomic<Stripe*>, internal_metrics::kShardCount> stripes_{};

 public:
  ~Histogram();
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;
};

struct CounterSnapshot {
  std::string name;
  int64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}
  std::string ToJson() const;
  Status WriteJsonFile(const std::string& path) const;

  /// The histogram named `name`, or nullptr.
  const HistogramSnapshot* FindHistogram(const std::string& name) const;
};

/// Name -> metric directory. Get* registers on first use and returns a
/// pointer that stays valid for the life of the process; looking up an
/// existing name with a different kind is a programmer error (checked).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  /// Zeroes every metric in place (pointers stay valid). For tests and for
  /// scoping a report to one phase of a run.
  void Reset();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry() = default;

  /// Guards the name directories only; the returned metric objects are
  /// internally thread-safe (sharded atomics) and outlive the lock.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      NEURSC_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      NEURSC_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      NEURSC_GUARDED_BY(mu_);
};

#if defined(NEURSC_DISABLE_OBSERVABILITY)

#define NEURSC_COUNTER_ADD(name, delta) \
  do {                                  \
  } while (0)
#define NEURSC_COUNTER_INC(name) \
  do {                           \
  } while (0)
#define NEURSC_GAUGE_SET(name, value) \
  do {                                \
  } while (0)
#define NEURSC_HISTOGRAM_RECORD(name, value) \
  do {                                       \
  } while (0)

#else

/// Adds `delta` to the counter `name`; the registry lookup happens once per
/// call site (function-local static).
#define NEURSC_COUNTER_ADD(name, delta)                           \
  do {                                                            \
    if (::neursc::MetricsEnabled()) {                             \
      static ::neursc::Counter* neursc_counter_site_ =            \
          ::neursc::MetricsRegistry::Global().GetCounter(name);   \
      neursc_counter_site_->Add(delta);                           \
    }                                                             \
  } while (0)

#define NEURSC_COUNTER_INC(name) NEURSC_COUNTER_ADD(name, 1)

#define NEURSC_GAUGE_SET(name, value)                             \
  do {                                                            \
    if (::neursc::MetricsEnabled()) {                             \
      static ::neursc::Gauge* neursc_gauge_site_ =                \
          ::neursc::MetricsRegistry::Global().GetGauge(name);     \
      neursc_gauge_site_->Set(value);                             \
    }                                                             \
  } while (0)

#define NEURSC_HISTOGRAM_RECORD(name, value)                      \
  do {                                                            \
    if (::neursc::MetricsEnabled()) {                             \
      static ::neursc::Histogram* neursc_histogram_site_ =        \
          ::neursc::MetricsRegistry::Global().GetHistogram(name); \
      neursc_histogram_site_->Record(value);                      \
    }                                                             \
  } while (0)

#endif  // NEURSC_DISABLE_OBSERVABILITY

}  // namespace neursc

#endif  // NEURSC_COMMON_METRICS_REGISTRY_H_
