#include "common/trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace neursc {

namespace {

/// NEURSC_TRACE environment states: unset (start off, Start() allowed),
/// on/1 (recording from process start), off/0 (Start() is a no-op).
enum class TraceEnv { kUnset, kOn, kOff };

TraceEnv GetTraceEnv() {
  static const TraceEnv env = [] {
    const char* v = std::getenv("NEURSC_TRACE");
    if (v == nullptr) return TraceEnv::kUnset;
    if (std::strcmp(v, "on") == 0 || std::strcmp(v, "1") == 0) {
      return TraceEnv::kOn;
    }
    if (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0) {
      return TraceEnv::kOff;
    }
    return TraceEnv::kUnset;
  }();
  return env;
}

}  // namespace

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {
  if (GetTraceEnv() == TraceEnv::kOn) Start();
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::Start() {
  if (GetTraceEnv() == TraceEnv::kOff) return;
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Stop() { enabled_.store(false, std::memory_order_relaxed); }

/// Thread-lifetime lease of a recorder buffer; returns it for reuse so
/// ParallelFor's short-lived workers do not grow the buffer list without
/// bound.
struct TraceBufferLease {
  TraceRecorder::Buffer* buffer = nullptr;
  void (*release)(TraceRecorder::Buffer*) = nullptr;
  ~TraceBufferLease() {
    if (buffer != nullptr && release != nullptr) release(buffer);
  }
};

TraceRecorder::Buffer* TraceRecorder::ThreadBuffer() {
  thread_local TraceBufferLease lease;
  if (lease.buffer == nullptr) {
    MutexLock lock(&mu_);
    if (!free_buffers_.empty()) {
      lease.buffer = free_buffers_.back();
      free_buffers_.pop_back();
    } else {
      buffers_.push_back(std::make_unique<Buffer>());
      lease.buffer = buffers_.back().get();
      lease.buffer->tid = next_tid_++;
    }
    lease.release = [](Buffer* buffer) {
      TraceRecorder& recorder = TraceRecorder::Global();
      MutexLock lock(&recorder.mu_);
      recorder.free_buffers_.push_back(buffer);
    };
  }
  return lease.buffer;
}

void TraceRecorder::Record(const char* name, int64_t start_us,
                           int64_t dur_us) {
  Buffer* buffer = ThreadBuffer();
  MutexLock lock(&buffer->mu);
  buffer->events.push_back(Event{name, start_us, dur_us});
}

void TraceRecorder::Clear() {
  MutexLock lock(&mu_);
  for (auto& buffer : buffers_) {
    MutexLock buffer_lock(&buffer->mu);
    buffer->events.clear();
  }
}

size_t TraceRecorder::EventCount() const {
  MutexLock lock(&mu_);
  size_t total = 0;
  for (const auto& buffer : buffers_) {
    MutexLock buffer_lock(&buffer->mu);
    total += buffer->events.size();
  }
  return total;
}

namespace {

void AppendEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out->push_back('\\');
    out->push_back(*s);
  }
}

}  // namespace

Status TraceRecorder::WriteChromeTrace(const std::string& path) {
  Stop();
  std::string json =
      "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  {
    MutexLock lock(&mu_);
    bool first = true;
    for (const auto& buffer : buffers_) {
      MutexLock buffer_lock(&buffer->mu);
      for (const Event& event : buffer->events) {
        if (!first) json.append(",\n");
        first = false;
        json.append("{\"name\": \"");
        AppendEscaped(&json, event.name);
        json.append("\", \"cat\": \"neursc\", \"ph\": \"X\", \"ts\": ");
        json.append(std::to_string(event.start_us));
        json.append(", \"dur\": ");
        json.append(std::to_string(event.dur_us));
        json.append(", \"pid\": 1, \"tid\": ");
        json.append(std::to_string(buffer->tid));
        json.append("}");
      }
    }
  }
  json.append("\n]}\n");

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace output: " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IOError("short write to trace output: " + path);
  }
  return Status::OK();
}

}  // namespace neursc
