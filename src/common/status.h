#ifndef NEURSC_COMMON_STATUS_H_
#define NEURSC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace neursc {

/// Error categories used across the library. Modeled after the
/// RocksDB/Arrow convention: library code never throws; fallible operations
/// return a Status (or Result<T> below).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kTimeout,
  kResourceExhausted,
  kInternal,
};

/// A cheap, copyable success/error value. An OK status carries no message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable representation, e.g. "InvalidArgument: bad vertex id".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-error union. Accessing the value of an errored Result is a
/// programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. `status.ok()` must be false.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from the evaluated expression.
#define NEURSC_RETURN_IF_ERROR(expr)        \
  do {                                      \
    ::neursc::Status _st = (expr);          \
    if (!_st.ok()) return _st;              \
  } while (0)

}  // namespace neursc

#endif  // NEURSC_COMMON_STATUS_H_
