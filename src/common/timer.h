#ifndef NEURSC_COMMON_TIMER_H_
#define NEURSC_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>
#include <limits>

namespace neursc {

/// Wall-clock stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction/Restart.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds since construction/Restart.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds since construction/Restart.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A soft deadline used by long-running algorithms (exact enumeration,
/// sampling estimators) to honor per-query budgets.
class Deadline {
 public:
  /// A deadline `seconds` from now. Non-positive means "no deadline".
  explicit Deadline(double seconds) : limit_seconds_(seconds) {}

  /// Unlimited deadline.
  static Deadline None() { return Deadline(0.0); }

  /// RemainingSeconds() result when no deadline is set: positive infinity,
  /// so "remaining > budget" style comparisons behave naturally.
  static constexpr double kNoDeadline =
      std::numeric_limits<double>::infinity();

  bool Expired() const {
    return limit_seconds_ > 0.0 && timer_.ElapsedSeconds() >= limit_seconds_;
  }

  double RemainingSeconds() const {
    if (limit_seconds_ <= 0.0) return kNoDeadline;
    return limit_seconds_ - timer_.ElapsedSeconds();
  }

 private:
  Timer timer_;
  double limit_seconds_;
};

}  // namespace neursc

#endif  // NEURSC_COMMON_TIMER_H_
