#include "common/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace neursc {

bool MetricsEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("NEURSC_METRICS");
    if (env == nullptr) return true;
    return std::strcmp(env, "off") != 0 && std::strcmp(env, "0") != 0;
  }();
  return enabled;
}

namespace internal_metrics {

namespace {

/// Free list of stripe indices; threads lease one for their lifetime so
/// short-lived ParallelFor workers reuse stripes instead of growing state.
class ShardSlotPool {
 public:
  static ShardSlotPool& Get() {
    static ShardSlotPool* pool = new ShardSlotPool();
    return *pool;
  }

  size_t Acquire(bool* leased) NEURSC_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (!free_.empty()) {
      size_t index = free_.back();
      free_.pop_back();
      *leased = true;
      return index;
    }
    // More live threads than stripes: share stripes round-robin. Atomics
    // keep this correct; it only costs contention.
    *leased = false;
    return overflow_next_++ % kShardCount;
  }

  void Release(size_t index) NEURSC_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    free_.push_back(index);
  }

 private:
  ShardSlotPool() {
    free_.reserve(kShardCount);
    for (size_t i = kShardCount; i-- > 0;) free_.push_back(i);
  }

  Mutex mu_;
  std::vector<size_t> free_ NEURSC_GUARDED_BY(mu_);
  size_t overflow_next_ NEURSC_GUARDED_BY(mu_) = 0;
};

struct ShardLease {
  ShardLease() { index = ShardSlotPool::Get().Acquire(&leased); }
  ~ShardLease() {
    if (leased) ShardSlotPool::Get().Release(index);
  }
  size_t index = 0;
  bool leased = false;
};

}  // namespace

size_t ShardIndex() {
  thread_local ShardLease lease;
  return lease.index;
}

}  // namespace internal_metrics

// --- Counter ---------------------------------------------------------------

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (auto& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

// --- Histogram -------------------------------------------------------------

size_t Histogram::BucketIndex(double value) {
  if (!(value > 0.0)) return 0;  // zeros, negatives, NaN
  // +inf must be caught before frexp: its exponent output is unspecified,
  // so the sub-bucket cast below would be UB (float-cast-overflow). It
  // clamps to the overflow bucket like any other out-of-range value.
  if (std::isinf(value)) return kNumBuckets - 1;
  int exp = 0;
  double mantissa = std::frexp(value, &exp);  // mantissa in [0.5, 1)
  if (exp < kMinExp) return 1;                // underflow: smallest bucket
  if (exp >= kMaxExp) return kNumBuckets - 1; // overflow: largest bucket
  auto sub = static_cast<size_t>((mantissa - 0.5) * 2.0 *
                                 static_cast<double>(kSubBuckets));
  sub = std::min(sub, kSubBuckets - 1);
  return 1 + static_cast<size_t>(exp - kMinExp) * kSubBuckets + sub;
}

double Histogram::BucketRepresentative(size_t index) {
  if (index == 0) return 0.0;
  size_t linear = index - 1;
  int exp = kMinExp + static_cast<int>(linear / kSubBuckets);
  size_t sub = linear % kSubBuckets;
  double base = std::ldexp(1.0, exp - 1);  // 2^(exp-1)
  double lo = base * (1.0 + static_cast<double>(sub) /
                                static_cast<double>(kSubBuckets));
  double hi = base * (1.0 + static_cast<double>(sub + 1) /
                                static_cast<double>(kSubBuckets));
  return std::sqrt(lo * hi);
}

Histogram::Stripe* Histogram::GetStripe(size_t index) {
  Stripe* stripe = stripes_[index].load(std::memory_order_acquire);
  if (stripe != nullptr) return stripe;
  auto* fresh = new Stripe();
  if (stripes_[index].compare_exchange_strong(stripe, fresh,
                                              std::memory_order_acq_rel)) {
    return fresh;
  }
  delete fresh;  // lost the race; `stripe` now holds the winner
  return stripe;
}

Histogram::~Histogram() {
  for (auto& slot : stripes_) {
    delete slot.load(std::memory_order_acquire);
  }
}

namespace {

/// Relaxed atomic double accumulate / min / max via CAS. The owner thread is
/// normally the only writer of its stripe, so the loop exits first try.
void AtomicAdd(std::atomic<double>* target, double delta) {
  double old = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(old, old + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double old = target->load(std::memory_order_relaxed);
  while (value < old && !target->compare_exchange_weak(
                            old, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double old = target->load(std::memory_order_relaxed);
  while (value > old && !target->compare_exchange_weak(
                            old, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::Record(double value) {
  Stripe* stripe = GetStripe(internal_metrics::ShardIndex());
  stripe->buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  stripe->count.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&stripe->sum, value);
  AtomicMin(&stripe->min, value);
  AtomicMax(&stripe->max, value);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& slot : stripes_) {
    const Stripe* stripe = slot.load(std::memory_order_acquire);
    if (stripe != nullptr) {
      total += stripe->count.load(std::memory_order_relaxed);
    }
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const auto& slot : stripes_) {
    const Stripe* stripe = slot.load(std::memory_order_acquire);
    if (stripe != nullptr) {
      total += stripe->sum.load(std::memory_order_relaxed);
    }
  }
  return total;
}

double Histogram::Min() const {
  double result = 1e300;
  for (const auto& slot : stripes_) {
    const Stripe* stripe = slot.load(std::memory_order_acquire);
    if (stripe != nullptr) {
      result = std::min(result, stripe->min.load(std::memory_order_relaxed));
    }
  }
  return result == 1e300 ? 0.0 : result;
}

double Histogram::Max() const {
  double result = -1e300;
  for (const auto& slot : stripes_) {
    const Stripe* stripe = slot.load(std::memory_order_acquire);
    if (stripe != nullptr) {
      result = std::max(result, stripe->max.load(std::memory_order_relaxed));
    }
  }
  return result == -1e300 ? 0.0 : result;
}

double Histogram::Mean() const {
  uint64_t count = Count();
  return count == 0 ? 0.0 : Sum() / static_cast<double>(count);
}

void Histogram::MergeBuckets(std::array<uint64_t, kNumBuckets>* out) const {
  out->fill(0);
  for (const auto& slot : stripes_) {
    const Stripe* stripe = slot.load(std::memory_order_acquire);
    if (stripe == nullptr) continue;
    for (size_t b = 0; b < kNumBuckets; ++b) {
      (*out)[b] += stripe->buckets[b].load(std::memory_order_relaxed);
    }
  }
}

double Histogram::Percentile(double q) const {
  std::array<uint64_t, kNumBuckets> merged;
  MergeBuckets(&merged);
  uint64_t total = 0;
  for (uint64_t c : merged) total += c;
  if (total == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // The extremes are tracked exactly; only interior quantiles pay the
  // bucket-resolution error.
  if (q == 0.0) return Min();
  if (q == 1.0) return Max();
  // Rank of the target order statistic (nearest-rank on the merged counts).
  auto rank = static_cast<uint64_t>(q * static_cast<double>(total - 1));
  uint64_t seen = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    seen += merged[b];
    if (seen > rank) {
      double rep = BucketRepresentative(b);
      // Clamp into the observed range so tiny samples do not report a
      // bucket midpoint outside [min, max].
      return std::min(std::max(rep, Min()), Max());
    }
  }
  return Max();
}

void Histogram::Reset() {
  for (auto& slot : stripes_) {
    Stripe* stripe = slot.load(std::memory_order_acquire);
    if (stripe == nullptr) continue;
    for (auto& bucket : stripe->buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    stripe->sum.store(0.0, std::memory_order_relaxed);
    stripe->min.store(1e300, std::memory_order_relaxed);
    stripe->max.store(-1e300, std::memory_order_relaxed);
    stripe->count.store(0, std::memory_order_relaxed);
  }
}

// --- Snapshot --------------------------------------------------------------

namespace {

void AppendJsonKey(std::string* out, const std::string& name) {
  out->push_back('"');
  for (char c : name) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->append("\": ");
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out.append(i == 0 ? "\n    " : ",\n    ");
    AppendJsonKey(&out, counters[i].name);
    out.append(std::to_string(counters[i].value));
  }
  out.append("\n  },\n  \"gauges\": {");
  for (size_t i = 0; i < gauges.size(); ++i) {
    out.append(i == 0 ? "\n    " : ",\n    ");
    AppendJsonKey(&out, gauges[i].name);
    out.append(JsonNumber(gauges[i].value));
  }
  out.append("\n  },\n  \"histograms\": {");
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    out.append(i == 0 ? "\n    " : ",\n    ");
    AppendJsonKey(&out, h.name);
    out.append("{\"count\": ").append(std::to_string(h.count));
    out.append(", \"sum\": ").append(JsonNumber(h.sum));
    out.append(", \"min\": ").append(JsonNumber(h.min));
    out.append(", \"max\": ").append(JsonNumber(h.max));
    out.append(", \"mean\": ").append(JsonNumber(h.mean));
    out.append(", \"p50\": ").append(JsonNumber(h.p50));
    out.append(", \"p95\": ").append(JsonNumber(h.p95));
    out.append(", \"p99\": ").append(JsonNumber(h.p99));
    out.append("}");
  }
  out.append("\n  }\n}\n");
  return out;
}

Status MetricsSnapshot::WriteJsonFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open metrics output: " + path);
  }
  std::string json = ToJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IOError("short write to metrics output: " + path);
  }
  return Status::OK();
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

// --- Registry --------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  NEURSC_CHECK(gauges_.find(name) == gauges_.end() &&
               histograms_.find(name) == histograms_.end())
      << "metric name registered with a different kind: " << name;
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  NEURSC_CHECK(counters_.find(name) == counters_.end() &&
               histograms_.find(name) == histograms_.end())
      << "metric name registered with a different kind: " << name;
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge())).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(&mu_);
  NEURSC_CHECK(counters_.find(name) == counters_.end() &&
               gauges_.find(name) == gauges_.end())
      << "metric name registered with a different kind: " << name;
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::unique_ptr<Histogram>(new Histogram()))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->Value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->Value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.count = histogram->Count();
    h.sum = histogram->Sum();
    h.min = histogram->Min();
    h.max = histogram->Max();
    h.mean = histogram->Mean();
    h.p50 = histogram->Percentile(0.50);
    h.p95 = histogram->Percentile(0.95);
    h.p99 = histogram->Percentile(0.99);
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  MutexLock lock(&mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace neursc
