#ifndef NEURSC_COMMON_RNG_H_
#define NEURSC_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace neursc {

/// Deterministic pseudo-random number generator used throughout the library.
/// Wraps a 64-bit Mersenne Twister so that every component (graph
/// generation, query extraction, network initialization, sampling
/// estimators) is reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform index in [0, n). `n` must be > 0.
  size_t UniformIndex(size_t n) {
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }

  /// Uniform real in [0, 1).
  double Uniform01() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  /// Uniform real in [lo, hi).
  double Uniform(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Standard normal sample scaled by `stddev`.
  double Normal(double stddev = 1.0) {
    std::normal_distribution<double> dist(0.0, stddev);
    return dist(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return Uniform01() < p; }

  /// Samples an index proportionally to the given non-negative weights.
  /// Returns weights.size() if all weights are zero.
  size_t Discrete(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[UniformIndex(i)]);
    }
  }

  /// Power-law (Zipf-like) integer in [1, n] with exponent `alpha` via
  /// inverse transform on the continuous approximation.
  int64_t Zipf(int64_t n, double alpha);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace neursc

#endif  // NEURSC_COMMON_RNG_H_
