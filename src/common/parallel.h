#ifndef NEURSC_COMMON_PARALLEL_H_
#define NEURSC_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace neursc {

/// Number of worker threads used by ParallelFor: the NEURSC_THREADS
/// environment variable if set, otherwise the hardware concurrency
/// (at least 1). Re-read on every call, so tests can change the
/// environment between invocations.
size_t DefaultThreadCount();

/// True iff the calling thread is executing ParallelFor tasks (a pool
/// worker, or the calling thread while it participates in its own region).
/// Nested ParallelFor calls from such threads run inline (serially)
/// instead of scheduling a second level of parallelism, so a parallel
/// outer loop whose body itself calls ParallelFor never oversubscribes
/// the host.
bool InParallelWorker();

/// Number of persistent pool workers currently spawned (diagnostics /
/// tests). Zero until the first multi-threaded ParallelFor call; the pool
/// is lazily initialized and grows to the largest thread count requested
/// so far, never shrinking.
size_t WorkerPoolThreadCount();

/// Runs fn(i) for i in [0, n) across `num_threads` threads (0 = default).
/// Work is distributed by atomic counter, so uneven task costs balance.
/// fn must be safe to call concurrently for distinct i; results should be
/// written to pre-sized per-index slots. Deterministic output requires fn
/// itself to be deterministic per index (scheduling order is not).
///
/// Threads come from a lazily-initialized persistent worker pool (the
/// calling thread participates, so a call asking for N threads uses N-1
/// pool workers). Spawn/join overhead is paid once per process, not per
/// call — training issues thousands of small regions per run. One region
/// runs at a time; a ParallelFor from a second caller thread blocks until
/// the in-flight region completes.
///
/// Exceptions: if fn throws, the exception from the lowest failing index
/// *that ran* is rethrown on the calling thread after all workers have
/// finished the region. Once any task has thrown, workers stop claiming
/// new indices; tasks already in flight still run to completion. Output
/// slots of indices that were skipped after the failure are left
/// untouched.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t num_threads = 0);

}  // namespace neursc

#endif  // NEURSC_COMMON_PARALLEL_H_
