#ifndef NEURSC_COMMON_PARALLEL_H_
#define NEURSC_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace neursc {

/// Number of worker threads used by ParallelFor: the NEURSC_THREADS
/// environment variable if set, otherwise the hardware concurrency
/// (at least 1).
size_t DefaultThreadCount();

/// Runs fn(i) for i in [0, n) across `num_threads` threads (0 = default).
/// Work is distributed by atomic counter, so uneven task costs balance.
/// fn must be safe to call concurrently for distinct i; results should be
/// written to pre-sized per-index slots. Deterministic output requires fn
/// itself to be deterministic per index (scheduling order is not).
void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t num_threads = 0);

}  // namespace neursc

#endif  // NEURSC_COMMON_PARALLEL_H_
