#ifndef NEURSC_COMMON_LOGGING_H_
#define NEURSC_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

// Thread safety: logging is deliberately lock-free, so there is no mutex
// here to annotate (docs/threading.md lock table). The severity threshold
// and the NEURSC_LOG_EVERY_N counters are relaxed atomics, and Emit()
// formats each line into one buffer written by a single fwrite(3) — POSIX
// stream operations are atomic with respect to each other, so concurrent
// log lines never interleave mid-line.

namespace neursc {

/// Log severities. kFatal aborts the process after logging.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

namespace internal_logging {

/// Minimum severity emitted; settable via SetLogLevel or NEURSC_LOG env var
/// (values: debug, info, warning, error).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);
/// Formats and writes one complete log line ("[I 12:34:56.789 t3
/// file.cc:42] msg") in a single fwrite, so concurrent threads never
/// interleave within a line.
void Emit(LogLevel level, const char* file, int line, const std::string& msg);

/// True on the first call and then every `n`-th call per `counter` (one
/// static counter per NEURSC_LOG_EVERY_N site). Thread-safe.
inline bool EveryN(std::atomic<uint64_t>* counter, uint64_t n) {
  if (n <= 1) return true;
  return counter->fetch_add(1, std::memory_order_relaxed) % n == 0;
}

/// Stream collector used by the NEURSC_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() {
    Emit(level_, file_, line_, stream_.str());
    if (level_ == LogLevel::kFatal) std::abort();
  }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define NEURSC_LOG(level)                                                  \
  ::neursc::internal_logging::LogMessage(::neursc::LogLevel::k##level,     \
                                         __FILE__, __LINE__)               \
      .stream()

/// Rate-limited logging for hot loops: emits the 1st, (n+1)-th, (2n+1)-th...
/// execution of this statement. Usage mirrors NEURSC_LOG:
///   NEURSC_LOG_EVERY_N(Info, 1000) << "processed " << i;
#define NEURSC_LOG_EVERY_N(level, n)                                       \
  if (!::neursc::internal_logging::EveryN(                                 \
          []() -> ::std::atomic<uint64_t>* {                               \
            static ::std::atomic<uint64_t> counter{0};                     \
            return &counter;                                               \
          }(),                                                             \
          static_cast<uint64_t>(n)))                                       \
    ;                                                                      \
  else                                                                     \
    NEURSC_LOG(level)

/// Invariant check that stays on in release builds; logs and aborts on
/// failure. Use for programmer errors, not data errors (those get Status).
#define NEURSC_CHECK(cond)                                       \
  if (!(cond)) NEURSC_LOG(Fatal) << "Check failed: " #cond " "

}  // namespace neursc

#endif  // NEURSC_COMMON_LOGGING_H_
