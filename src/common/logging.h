#ifndef NEURSC_COMMON_LOGGING_H_
#define NEURSC_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace neursc {

/// Log severities. kFatal aborts the process after logging.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

namespace internal_logging {

/// Minimum severity emitted; settable via SetLogLevel or NEURSC_LOG env var
/// (values: debug, info, warning, error).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);
void Emit(LogLevel level, const char* file, int line, const std::string& msg);

/// Stream collector used by the NEURSC_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() {
    Emit(level_, file_, line_, stream_.str());
    if (level_ == LogLevel::kFatal) std::abort();
  }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define NEURSC_LOG(level)                                                  \
  ::neursc::internal_logging::LogMessage(::neursc::LogLevel::k##level,     \
                                         __FILE__, __LINE__)               \
      .stream()

/// Invariant check that stays on in release builds; logs and aborts on
/// failure. Use for programmer errors, not data errors (those get Status).
#define NEURSC_CHECK(cond)                                       \
  if (!(cond)) NEURSC_LOG(Fatal) << "Check failed: " #cond " "

}  // namespace neursc

#endif  // NEURSC_COMMON_LOGGING_H_
