#ifndef NEURSC_NN_EVAL_H_
#define NEURSC_NN_EVAL_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "nn/matrix.h"
#include "nn/param.h"

namespace neursc {

/// Which execution engine a forward-only call site runs on. Modules are
/// written once against the execution-context concept (template over Tape
/// or EvalContext); this enum selects the backend where a runtime choice
/// is needed (NeurSCConfig::inference_backend). The two backends share
/// their forward kernels (nn/kernels.h) and therefore produce bit-identical
/// values; see docs/execution.md.
enum class ExecutionBackend { kEvalContext, kTape };

/// Forward-only execution context: the serving-path sibling of the
/// autograd Tape. It implements the same op vocabulary (dense algebra,
/// pointwise nonlinearities, scatter/gather/segment ops, reductions,
/// q-error) with the same arithmetic — each op calls the shared kernel in
/// nn/kernels.h — but records no backward closures and allocates no
/// gradient storage. Op outputs land in a per-context arena of reusable
/// Matrix slots: Reset() rewinds the arena without releasing capacity, so
/// steady-state inference over same-shaped inputs performs zero heap
/// allocation after the first (warm-up) pass. `arena_grows()` counts every
/// slot append or capacity increase (also exported as the `eval/arena_grows`
/// counter); the workspace-reuse regression test asserts it stays flat
/// across repeated passes.
///
/// Threading contract (docs/threading.md): an EvalContext is confined to
/// one thread between Acquire/Release — it is not internally synchronized,
/// and its arena is mutable state reused across passes, so it must never be
/// shared by concurrent forward passes. Independent contexts on different
/// threads are safe, including forwards that share Parameters (ops only
/// read Parameter::value). ParallelFor has no stable worker identity, so
/// parallel inference draws per-task contexts from an EvalContextPool.
class EvalContext {
 public:
  EvalContext() = default;
  EvalContext(const EvalContext&) = delete;
  EvalContext& operator=(const EvalContext&) = delete;

  /// Rewinds the node list and the arena cursor for the next forward pass.
  /// Slot capacity is kept, which is what makes repeated same-shaped
  /// passes allocation-free.
  void Reset();

  /// A leaf holding a copy of `value` in the arena. Copying (rather than
  /// borrowing) keeps temporaries safe: call sites pass freshly built
  /// matrices whose lifetime ends with the full expression.
  Var Constant(const Matrix& value);
  /// A leaf borrowing `param->value` (no copy; parameters are stable and
  /// read-only during inference). The parameter must outlive the pass.
  Var Leaf(Parameter* param);

  const Matrix& Value(Var v) const { return *nodes_[v.id]; }

  // --- Op vocabulary (see tape.h for per-op semantics) ---
  Var MatMul(Var a, Var b);
  Var Add(Var a, Var b);
  Var AddRowBroadcast(Var x, Var bias);
  Var Sub(Var a, Var b);
  Var Mul(Var a, Var b);
  Var Scale(Var a, float s);
  Var Relu(Var a);
  Var LeakyRelu(Var a, float negative_slope = 0.2f);
  Var Sigmoid(Var a);
  Var Tanh(Var a);
  Var Exp(Var a);
  Var Log(Var a);
  Var RowSoftmax(Var a);
  Var ConcatCols(Var a, Var b);
  Var ConcatRows(const std::vector<Var>& parts);
  Var GatherRows(Var x, const std::vector<uint32_t>& rows);
  Var ScatterAddRows(Var x, const std::vector<uint32_t>& targets,
                     size_t num_rows);
  Var SegmentSoftmax(Var logits, const std::vector<uint32_t>& segments,
                     size_t num_segments);
  Var ColBroadcastMul(Var x, Var w);
  Var SumRows(Var x);
  Var MeanRows(Var x);
  Var ReduceSum(Var x);
  Var QErrorLoss(Var pred, double target, double eps = 1e-9);

  /// Number of recorded nodes this pass (diagnostics/tests).
  size_t NumNodes() const { return nodes_.size(); }
  /// Arena growth events since construction: a new slot appended, or an
  /// existing slot's float capacity increased. Flat across passes once the
  /// context is warmed up on the largest shapes it will see.
  uint64_t arena_grows() const { return arena_grows_; }
  /// Bytes currently held by the arena (sum of slot capacities).
  size_t arena_bytes() const;
  /// Number of arena slots ever allocated.
  size_t num_slots() const { return slots_.size(); }

 private:
  /// Next arena slot, reshaped (zero-filled) to rows x cols. Growth is
  /// counted at most once per call.
  Matrix* AllocSlot(size_t rows, size_t cols);
  Var PushNode(const Matrix* value);

  /// Node values: arena slots or borrowed parameter values. A deque keeps
  /// slot addresses stable while the arena grows.
  std::vector<const Matrix*> nodes_;
  std::deque<Matrix> slots_;
  size_t slots_used_ = 0;
  uint64_t arena_grows_ = 0;
  /// SegmentSoftmax scratch, reused across passes like the slots.
  std::vector<float> seg_max_;
  std::vector<double> seg_sum_;
};

/// Hands out EvalContexts to parallel inference tasks. ParallelFor
/// distributes indices by an atomic counter with no per-worker identity, so
/// workspaces cannot be indexed by thread; instead each task leases a
/// context for the duration of one forward pass and returns it. The pool
/// grows to the peak concurrency ever observed (gauge `eval/pool_contexts`)
/// and reuses those contexts forever after, preserving their warmed-up
/// arenas. Acquire/Release are mutex-protected; the leased context itself
/// is exclusively owned until the Lease dies.
class EvalContextPool {
 public:
  class Lease {
   public:
    Lease(EvalContextPool* pool, std::unique_ptr<EvalContext> ctx)
        : pool_(pool), ctx_(std::move(ctx)) {}
    Lease(Lease&& other) noexcept = default;
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() {
      if (ctx_ != nullptr) pool_->Release(std::move(ctx_));
    }

    EvalContext* get() const { return ctx_.get(); }
    EvalContext* operator->() const { return ctx_.get(); }
    EvalContext& operator*() const { return *ctx_; }

   private:
    EvalContextPool* pool_;
    std::unique_ptr<EvalContext> ctx_;
  };

  EvalContextPool() = default;
  EvalContextPool(const EvalContextPool&) = delete;
  EvalContextPool& operator=(const EvalContextPool&) = delete;

  /// Leases a Reset() context: a pooled one when available, else a fresh
  /// one. The lease returns it on destruction.
  Lease Acquire() NEURSC_EXCLUDES(mu_);

  /// Contexts created over the pool's lifetime (== peak concurrency).
  size_t created() const NEURSC_EXCLUDES(mu_);
  /// Contexts currently parked in the pool.
  size_t idle() const NEURSC_EXCLUDES(mu_);

 private:
  void Release(std::unique_ptr<EvalContext> ctx) NEURSC_EXCLUDES(mu_);

  /// Guards the free list and the creation count; a leased context itself
  /// is unsynchronized by contract (exclusively owned until the Lease
  /// dies).
  mutable Mutex mu_;
  std::vector<std::unique_ptr<EvalContext>> free_ NEURSC_GUARDED_BY(mu_);
  size_t created_ NEURSC_GUARDED_BY(mu_) = 0;
};

}  // namespace neursc

#endif  // NEURSC_NN_EVAL_H_
