#include "nn/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace neursc {

Matrix Matrix::GlorotUniform(size_t rows, size_t cols, Rng* rng) {
  float s = std::sqrt(6.0f / static_cast<float>(rows + cols));
  return Uniform(rows, cols, -s, s, rng);
}

Matrix Matrix::Uniform(size_t rows, size_t cols, float lo, float hi,
                       Rng* rng) {
  Matrix m(rows, cols);
  for (float& v : m.data_) {
    v = static_cast<float>(rng->Uniform(lo, hi));
  }
  return m;
}

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    NEURSC_CHECK(rows[r].size() == m.cols_) << "ragged rows";
    std::copy(rows[r].begin(), rows[r].end(), m.row(r));
  }
  return m;
}

float Matrix::scalar() const {
  NEURSC_CHECK(rows_ == 1 && cols_ == 1) << "scalar() on " << rows_ << "x"
                                         << cols_;
  return data_[0];
}

void Matrix::AddInPlace(const Matrix& other) {
  NEURSC_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::AxpyInPlace(float alpha, const Matrix& other) {
  NEURSC_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

void Matrix::ScaleInPlace(float alpha) {
  for (float& v : data_) v *= alpha;
}

void Matrix::ClampInPlace(float limit) {
  for (float& v : data_) v = std::clamp(v, -limit, limit);
}

namespace {

/// crow[j] += aik * brow[j] for j in [0, cols), unrolled 4-wide. Per-entry
/// float association is unchanged by the unroll (each crow[j] still
/// receives one addition per k), so results are identical to the rolled
/// loop; the unroll just exposes independent FMA chains to the compiler.
/// The training matrices (features, hidden layers, gradients) are dense,
/// so there is no zero-skip branch here — a data-dependent branch per
/// (i, k) pessimizes the dense path that dominates training and defeats
/// vectorization.
inline void AxpyRow(float aik, const float* brow, float* crow, size_t cols) {
  size_t j = 0;
  for (; j + 4 <= cols; j += 4) {
    crow[j] += aik * brow[j];
    crow[j + 1] += aik * brow[j + 1];
    crow[j + 2] += aik * brow[j + 2];
    crow[j + 3] += aik * brow[j + 3];
  }
  for (; j < cols; ++j) crow[j] += aik * brow[j];
}

}  // namespace

Matrix Matrix::MatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows_, b.cols_);
  MatMulInto(a, b, &c);
  return c;
}

void Matrix::MatMulInto(const Matrix& a, const Matrix& b, Matrix* c) {
  NEURSC_CHECK(a.cols_ == b.rows_) << "matmul shape mismatch";
  NEURSC_CHECK(c->rows_ == a.rows_ && c->cols_ == b.cols_);
  // i-k-j loop order: streams over b and c rows, cache friendly.
  for (size_t i = 0; i < a.rows_; ++i) {
    const float* arow = a.row(i);
    float* crow = c->row(i);
    for (size_t k = 0; k < a.cols_; ++k) {
      AxpyRow(arow[k], b.row(k), crow, b.cols_);
    }
  }
}

Matrix Matrix::MatMulTransposeA(const Matrix& a, const Matrix& b) {
  NEURSC_CHECK(a.rows_ == b.rows_) << "matmul^T shape mismatch";
  Matrix c(a.cols_, b.cols_);
  for (size_t k = 0; k < a.rows_; ++k) {
    const float* arow = a.row(k);
    const float* brow = b.row(k);
    for (size_t i = 0; i < a.cols_; ++i) {
      AxpyRow(arow[i], brow, c.row(i), b.cols_);
    }
  }
  return c;
}

Matrix Matrix::MatMulTransposeB(const Matrix& a, const Matrix& b) {
  NEURSC_CHECK(a.cols_ == b.cols_) << "matmul B^T shape mismatch";
  Matrix c(a.rows_, b.rows_);
  const size_t cols = a.cols_;
  for (size_t i = 0; i < a.rows_; ++i) {
    const float* arow = a.row(i);
    float* crow = c.row(i);
    // Four output dots at a time: arow stays in registers across the four
    // b rows. Each dot keeps its own serial accumulation over k, so
    // per-entry results match the rolled loop bit for bit.
    size_t j = 0;
    for (; j + 4 <= b.rows_; j += 4) {
      const float* b0 = b.row(j);
      const float* b1 = b.row(j + 1);
      const float* b2 = b.row(j + 2);
      const float* b3 = b.row(j + 3);
      float d0 = 0.0f, d1 = 0.0f, d2 = 0.0f, d3 = 0.0f;
      for (size_t k = 0; k < cols; ++k) {
        float av = arow[k];
        d0 += av * b0[k];
        d1 += av * b1[k];
        d2 += av * b2[k];
        d3 += av * b3[k];
      }
      crow[j] = d0;
      crow[j + 1] = d1;
      crow[j + 2] = d2;
      crow[j + 3] = d3;
    }
    for (; j < b.rows_; ++j) {
      const float* brow = b.row(j);
      float dot = 0.0f;
      for (size_t k = 0; k < cols; ++k) dot += arow[k] * brow[k];
      crow[j] = dot;
    }
  }
  return c;
}

float Matrix::Norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(s));
}

float Matrix::Sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return static_cast<float>(s);
}

float Matrix::MaxAbsDiff(const Matrix& a, const Matrix& b) {
  NEURSC_CHECK(a.rows_ == b.rows_ && a.cols_ == b.cols_);
  float m = 0.0f;
  for (size_t i = 0; i < a.data_.size(); ++i) {
    m = std::max(m, std::abs(a.data_[i] - b.data_[i]));
  }
  return m;
}

std::string Matrix::DebugString(int max_rows) const {
  std::ostringstream out;
  out << rows_ << "x" << cols_ << " [";
  for (size_t r = 0; r < rows_ && r < static_cast<size_t>(max_rows); ++r) {
    out << (r == 0 ? "[" : " [");
    for (size_t c = 0; c < cols_ && c < 8; ++c) {
      out << at(r, c) << (c + 1 < cols_ ? ", " : "");
    }
    out << "]";
  }
  if (rows_ > static_cast<size_t>(max_rows)) out << " ...";
  out << "]";
  return out.str();
}

}  // namespace neursc
