#ifndef NEURSC_NN_SERIALIZE_H_
#define NEURSC_NN_SERIALIZE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "nn/tape.h"

namespace neursc {

/// Text serialization of a parameter list (weights only, not gradients).
/// Format:
///   neursc-params v1 <count>
///   param <rows> <cols>
///   <rows*cols floats, row-major, whitespace separated>
///   ...
///
/// Loading requires the destination parameter list to already have the
/// same shapes (i.e. the model must be constructed with the same
/// configuration); a mismatch is an InvalidArgument error.
Status SaveParameters(const std::vector<Parameter*>& params,
                      std::ostream& out);
Status SaveParametersToFile(const std::vector<Parameter*>& params,
                            const std::string& path);

Status LoadParameters(const std::vector<Parameter*>& params,
                      std::istream& in);
Status LoadParametersFromFile(const std::vector<Parameter*>& params,
                              const std::string& path);

}  // namespace neursc

#endif  // NEURSC_NN_SERIALIZE_H_
