#ifndef NEURSC_NN_SERIALIZE_H_
#define NEURSC_NN_SERIALIZE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "nn/param.h"

namespace neursc {

/// Text serialization of a parameter list (weights only, not gradients).
/// Format:
///   neursc-params v1 <count>
///   param <rows> <cols>
///   <rows*cols floats, row-major, whitespace separated>
///   ...
///
/// Values are written as C99 hexfloats ("%a"), which round-trip every
/// float bit-for-bit, so Save -> Load -> Save reproduces the file
/// byte-identically. Load also accepts the decimal floats older
/// checkpoints used. Non-finite values are rejected on both save and load
/// with InvalidArgument (a NaN/Inf weight is a corrupted model, not a
/// checkpoint to propagate).
///
/// Loading requires the destination parameter list to already have the
/// same shapes (i.e. the model must be constructed with the same
/// configuration); a mismatch is an InvalidArgument error.
Status SaveParameters(const std::vector<Parameter*>& params,
                      std::ostream& out);
Status SaveParametersToFile(const std::vector<Parameter*>& params,
                            const std::string& path);

Status LoadParameters(const std::vector<Parameter*>& params,
                      std::istream& in);
Status LoadParametersFromFile(const std::vector<Parameter*>& params,
                              const std::string& path);

}  // namespace neursc

#endif  // NEURSC_NN_SERIALIZE_H_
