#ifndef NEURSC_NN_OPTIMIZER_H_
#define NEURSC_NN_OPTIMIZER_H_

#include <vector>

#include "nn/tape.h"

namespace neursc {

/// Adam (Kingma & Ba) with optional decoupled L2 penalty, matching the
/// paper's optimizer choice for both WEst and the discriminator.
class AdamOptimizer {
 public:
  struct Options {
    double learning_rate = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double weight_decay = 0.0;
  };

  AdamOptimizer(std::vector<Parameter*> params, Options options);
  /// Default options (lr=1e-3).
  explicit AdamOptimizer(std::vector<Parameter*> params);

  /// Applies one update from the accumulated gradients, then leaves the
  /// gradients untouched (call ZeroGrad separately).
  void Step();

  /// Zeroes all tracked parameter gradients.
  void ZeroGrad();

  /// Clips the global gradient norm to `max_norm` if it exceeds it.
  /// Returns the pre-clip norm.
  double ClipGradNorm(double max_norm);

  const Options& options() const { return options_; }
  void set_learning_rate(double lr) { options_.learning_rate = lr; }

 private:
  std::vector<Parameter*> params_;
  Options options_;
  std::vector<Matrix> m_;  // first moments
  std::vector<Matrix> v_;  // second moments
  int64_t step_count_ = 0;
};

/// Plain SGD, used in tests as a cross-check against Adam.
class SgdOptimizer {
 public:
  SgdOptimizer(std::vector<Parameter*> params, double learning_rate);
  void Step();
  void ZeroGrad();

 private:
  std::vector<Parameter*> params_;
  double learning_rate_;
};

/// Clamps every weight of `params` into [-limit, limit]; the WGAN weight
/// clipping that enforces (approximate) 1-Lipschitzness of f_omega.
void ClampParameters(const std::vector<Parameter*>& params, float limit);

}  // namespace neursc

#endif  // NEURSC_NN_OPTIMIZER_H_
