#ifndef NEURSC_NN_KERNELS_H_
#define NEURSC_NN_KERNELS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "nn/matrix.h"

namespace neursc {
namespace fwd {

/// Shared forward kernels of the nn op vocabulary. Both execution backends
/// — the autograd Tape (tape.cc) and the forward-only EvalContext
/// (eval.cc) — compute their forward values by calling these functions, so
/// the two backends produce bit-identical floats by construction: there is
/// exactly one definition of each op's arithmetic and evaluation order.
/// Changing a kernel changes both backends together; the differential
/// suite tests/eval_context_test.cc asserts the equality stays exact.
///
/// Convention: `out` is pre-shaped by the caller. Kernels that accumulate
/// (MatMul via Matrix::MatMulInto, ScatterAddRows, SumRows) additionally
/// require `out` zero-filled; the others overwrite every entry.

inline void Copy(const Matrix& a, Matrix* out) {
  NEURSC_CHECK(out->rows() == a.rows() && out->cols() == a.cols());
  std::copy(a.data(), a.data() + a.size(), out->data());
}

inline void Add(const Matrix& a, const Matrix& b, Matrix* out) {
  NEURSC_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  for (size_t i = 0; i < a.size(); ++i) {
    out->data()[i] = a.data()[i] + b.data()[i];
  }
}

/// x (n x d) plus bias (1 x d) broadcast over rows.
inline void AddRowBroadcast(const Matrix& x, const Matrix& bias,
                            Matrix* out) {
  NEURSC_CHECK(bias.rows() == 1 && bias.cols() == x.cols());
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) {
      out->at(r, c) = x.at(r, c) + bias.at(0, c);
    }
  }
}

inline void Sub(const Matrix& a, const Matrix& b, Matrix* out) {
  NEURSC_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  for (size_t i = 0; i < a.size(); ++i) {
    out->data()[i] = a.data()[i] - b.data()[i];
  }
}

inline void Mul(const Matrix& a, const Matrix& b, Matrix* out) {
  NEURSC_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  for (size_t i = 0; i < a.size(); ++i) {
    out->data()[i] = a.data()[i] * b.data()[i];
  }
}

inline void Scale(const Matrix& a, float s, Matrix* out) {
  for (size_t i = 0; i < a.size(); ++i) out->data()[i] = a.data()[i] * s;
}

inline void Relu(const Matrix& a, Matrix* out) {
  for (size_t i = 0; i < a.size(); ++i) {
    float x = a.data()[i];
    out->data()[i] = x < 0.0f ? 0.0f : x;
  }
}

inline void LeakyRelu(const Matrix& a, float negative_slope, Matrix* out) {
  for (size_t i = 0; i < a.size(); ++i) {
    float x = a.data()[i];
    out->data()[i] = x > 0.0f ? x : negative_slope * x;
  }
}

inline void Sigmoid(const Matrix& a, Matrix* out) {
  for (size_t i = 0; i < a.size(); ++i) {
    out->data()[i] = 1.0f / (1.0f + std::exp(-a.data()[i]));
  }
}

inline void Tanh(const Matrix& a, Matrix* out) {
  for (size_t i = 0; i < a.size(); ++i) {
    out->data()[i] = std::tanh(a.data()[i]);
  }
}

/// exp() with input clamped to [-30, 30] for numeric safety.
inline void Exp(const Matrix& a, Matrix* out) {
  for (size_t i = 0; i < a.size(); ++i) {
    out->data()[i] = std::exp(std::clamp(a.data()[i], -30.0f, 30.0f));
  }
}

/// Natural log with the input floored at 1e-12.
inline void Log(const Matrix& a, Matrix* out) {
  for (size_t i = 0; i < a.size(); ++i) {
    out->data()[i] = std::log(std::max(a.data()[i], 1e-12f));
  }
}

/// Row-wise softmax with per-row max subtraction; the exp sum accumulates
/// in double, matching the Tape's historical arithmetic exactly.
inline void RowSoftmax(const Matrix& x, Matrix* out) {
  for (size_t r = 0; r < x.rows(); ++r) {
    const float* xrow = x.row(r);
    float* orow = out->row(r);
    float mx = xrow[0];
    for (size_t c = 1; c < x.cols(); ++c) mx = std::max(mx, xrow[c]);
    double sum = 0.0;
    for (size_t c = 0; c < x.cols(); ++c) {
      orow[c] = std::exp(xrow[c] - mx);
      sum += orow[c];
    }
    float inv = static_cast<float>(1.0 / std::max(sum, 1e-30));
    for (size_t c = 0; c < x.cols(); ++c) orow[c] *= inv;
  }
}

inline void ConcatCols(const Matrix& a, const Matrix& b, Matrix* out) {
  NEURSC_CHECK(a.rows() == b.rows());
  for (size_t r = 0; r < a.rows(); ++r) {
    std::copy(a.row(r), a.row(r) + a.cols(), out->row(r));
    std::copy(b.row(r), b.row(r) + b.cols(), out->row(r) + a.cols());
  }
}

inline void ConcatRows(const std::vector<const Matrix*>& parts,
                       Matrix* out) {
  size_t row = 0;
  for (const Matrix* p : parts) {
    NEURSC_CHECK(p->cols() == out->cols());
    std::copy(p->data(), p->data() + p->size(), out->row(row));
    row += p->rows();
  }
  NEURSC_CHECK(row == out->rows());
}

inline void GatherRows(const Matrix& x, const std::vector<uint32_t>& rows,
                       Matrix* out) {
  for (size_t i = 0; i < rows.size(); ++i) {
    NEURSC_CHECK(rows[i] < x.rows());
    std::copy(x.row(rows[i]), x.row(rows[i]) + x.cols(), out->row(i));
  }
}

/// out[targets[i]] += x[i]; `out` must be zero-filled.
inline void ScatterAddRows(const Matrix& x,
                           const std::vector<uint32_t>& targets,
                           Matrix* out) {
  NEURSC_CHECK(targets.size() == x.rows());
  for (size_t i = 0; i < targets.size(); ++i) {
    NEURSC_CHECK(targets[i] < out->rows());
    for (size_t c = 0; c < x.cols(); ++c) {
      out->at(targets[i], c) += x.at(i, c);
    }
  }
}

/// Per-segment softmax of a column vector, max-subtracted, exp sums in
/// double. `seg_max`/`seg_sum` are caller scratch (resized here) so a
/// reusing backend pays no steady-state allocation.
inline void SegmentSoftmax(const Matrix& x,
                           const std::vector<uint32_t>& segments,
                           size_t num_segments, Matrix* out,
                           std::vector<float>* seg_max,
                           std::vector<double>* seg_sum) {
  NEURSC_CHECK(x.cols() == 1 && segments.size() == x.rows());
  seg_max->assign(num_segments, -1e30f);
  for (size_t i = 0; i < segments.size(); ++i) {
    NEURSC_CHECK(segments[i] < num_segments);
    (*seg_max)[segments[i]] =
        std::max((*seg_max)[segments[i]], x.at(i, 0));
  }
  seg_sum->assign(num_segments, 0.0);
  for (size_t i = 0; i < segments.size(); ++i) {
    float e = std::exp(x.at(i, 0) - (*seg_max)[segments[i]]);
    out->at(i, 0) = e;
    (*seg_sum)[segments[i]] += e;
  }
  for (size_t i = 0; i < segments.size(); ++i) {
    out->at(i, 0) = static_cast<float>(
        out->at(i, 0) / std::max((*seg_sum)[segments[i]], 1e-30));
  }
}

/// Multiplies row i of x (m x d) by scalar w[i] (w is m x 1).
inline void ColBroadcastMul(const Matrix& x, const Matrix& w, Matrix* out) {
  NEURSC_CHECK(w.cols() == 1 && w.rows() == x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    float wr = w.at(r, 0);
    for (size_t c = 0; c < x.cols(); ++c) out->at(r, c) = x.at(r, c) * wr;
  }
}

/// Column-wise sum, accumulating in row order; `out` (1 x d) must be
/// zero-filled.
inline void SumRows(const Matrix& x, Matrix* out) {
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) out->at(0, c) += x.at(r, c);
  }
}

inline void ReduceSum(const Matrix& x, Matrix* out) {
  out->at(0, 0) = x.Sum();
}

/// The q-error forward pieces (Eq. 10). `under`/`over` feed the Tape's
/// backward closure; EvalContext only consumes `loss`.
struct QErrorParts {
  double c = 0.0;
  double under = 0.0;
  double over = 0.0;
  float loss = 0.0f;
};

inline QErrorParts QError(double c_hat, double target, double eps) {
  QErrorParts parts;
  parts.c = std::max(target, 1.0);
  parts.under = parts.c / (c_hat + eps);  // penalizes underestimation
  parts.over = c_hat / parts.c;           // penalizes overestimation
  parts.loss = static_cast<float>(std::max(parts.under, parts.over));
  return parts;
}

}  // namespace fwd
}  // namespace neursc

#endif  // NEURSC_NN_KERNELS_H_
