#ifndef NEURSC_NN_TAPE_H_
#define NEURSC_NN_TAPE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "nn/matrix.h"
#include "nn/param.h"

namespace neursc {

/// Tape-local buffer of leaf gradients. When installed on a Tape (see
/// Tape::set_gradient_sink), Backward() accumulates each Leaf's gradient
/// into the sink's per-parameter buffer instead of writing
/// Parameter::grad directly. Backward passes on different threads can
/// therefore share Parameters as long as each tape has its own sink; the
/// buffers are then reduced into Parameter::grad serially, in a
/// caller-chosen (e.g. example-index) order, which keeps the accumulated
/// gradient bit-identical at every thread count.
///
/// A sink is confined to one thread while its tape runs Backward();
/// ReduceIntoParameters() must be called serially (it mutates the shared
/// Parameter::grad matrices).
class GradientSink {
 public:
  /// Adds `delta` into the buffer for `param`, creating it zeroed on
  /// first touch. Called by Tape::Backward; also usable directly in
  /// tests.
  void Accumulate(Parameter* param, const Matrix& delta);

  /// Adds every buffered gradient into its Parameter::grad. Buffers for
  /// distinct parameters are independent, so the map's iteration order
  /// does not affect the result; what matters for determinism is the
  /// order in which *sinks* are reduced, which the caller fixes.
  void ReduceIntoParameters() const;

  bool empty() const { return buffers_.empty(); }
  size_t size() const { return buffers_.size(); }
  void Clear() { buffers_.clear(); }

 private:
  std::unordered_map<Parameter*, Matrix> buffers_;
};

/// Eager reverse-mode automatic differentiation.
///
/// Operations execute immediately and record a backward closure; calling
/// Backward(loss) propagates d(loss)/d(node) to every node and accumulates
/// into Parameter::grad for leaves created with Leaf(). A Tape represents a
/// single forward pass: Clear() (or a fresh Tape) is required between
/// passes. The op vocabulary is the minimal set needed by GNNs: dense
/// algebra, pointwise nonlinearities, and segment (scatter/gather) ops for
/// message passing and attention.
///
/// The Tape is the *training* backend of the execution-context concept
/// (docs/execution.md): modules are templated over the context, and
/// forward-only call sites run the same op sequence on the tape-free
/// EvalContext (nn/eval.h) instead. Both backends evaluate their forward
/// values through the shared kernels in nn/kernels.h, so their outputs are
/// bit-identical by construction.
///
/// Threading contract (docs/threading.md): a Tape is confined to one
/// thread — it is not internally synchronized, and all its mutable state
/// (the node list, per-node gradients, the backward flag, the gradient
/// sink pointer) lives in the Tape instance; there are no global or
/// thread-local caches anywhere in the nn layer. Independent tapes on
/// different threads are therefore safe to run concurrently, *including*
/// forward passes that share Parameters: Constant()/forward ops only read
/// Parameter::value. Backward() on a shared Parameter set is also safe
/// across threads **when each tape has its own GradientSink installed**
/// (set_gradient_sink): leaf gradients then land in the tape-local sink,
/// and the sinks are reduced into Parameter::grad serially afterwards, in
/// example-index order, so the result is bit-identical at every thread
/// count — this is how data-parallel training works. Without a sink,
/// Backward() accumulates into Parameter::grad directly and gradient work
/// for one Parameter set must stay on one thread at a time (the serial
/// critic updates use this mode). Mutating a shared Parameter (optimizer
/// steps, weight clamping, LoadModel) while another thread runs a
/// forward or backward pass over it is a data race. The same confinement
/// rules apply to EvalContext, with one addition: an EvalContext's arena
/// is reused across passes, so a context must not be handed to another
/// thread until the previous pass's results have been fully consumed —
/// pooled serving goes through EvalContextPool, which enforces exclusive
/// leases (see nn/eval.h and docs/threading.md).
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// A leaf with no gradient tracking (inputs, constants).
  Var Constant(Matrix value);
  /// A leaf bound to a trainable parameter; Backward() accumulates into
  /// `param->grad`. The parameter must outlive the tape.
  Var Leaf(Parameter* param);

  /// Reference into the node vector: invalidated by any node-creating
  /// call (every op may reallocate nodes_). Copy out what you need
  /// before building more graph.
  const Matrix& Value(Var v) const { return nodes_[v.id].value; }
  /// Gradient of the last Backward() target w.r.t. v. Zero matrix if the
  /// node was not reached.
  const Matrix& Grad(Var v) const { return nodes_[v.id].grad; }

  // --- Dense algebra ---
  Var MatMul(Var a, Var b);
  /// Elementwise sum; shapes must match.
  Var Add(Var a, Var b);
  /// x (n x d) plus bias (1 x d) broadcast over rows.
  Var AddRowBroadcast(Var x, Var bias);
  Var Sub(Var a, Var b);
  /// Elementwise product; shapes must match.
  Var Mul(Var a, Var b);
  Var Scale(Var a, float s);

  // --- Pointwise nonlinearities ---
  Var Relu(Var a);
  Var LeakyRelu(Var a, float negative_slope = 0.2f);
  Var Sigmoid(Var a);
  Var Tanh(Var a);
  /// exp() with input clamped to [-30, 30] for numeric safety; used to map
  /// the predictor's log-scale output to a positive count.
  Var Exp(Var a);
  /// Natural log with the input floored at 1e-12.
  Var Log(Var a);
  /// Row-wise softmax (n x d): each row sums to 1. Used to interpret
  /// representations as distributions for the KL/JS discriminator variants.
  Var RowSoftmax(Var a);

  // --- Structure ops ---
  /// Horizontal concatenation [a | b]; row counts must match.
  Var ConcatCols(Var a, Var b);
  /// Vertical stacking of the given vars (column counts must match).
  Var ConcatRows(const std::vector<Var>& parts);
  /// out[i] = x[rows[i]]; duplicates allowed (gradient accumulates).
  Var GatherRows(Var x, std::vector<uint32_t> rows);
  /// out (num_rows x d) with out[targets[i]] += x[i].
  Var ScatterAddRows(Var x, std::vector<uint32_t> targets, size_t num_rows);
  /// Softmax of a column vector (m x 1) within each segment:
  /// out[i] = exp(x[i]) / sum_{j: seg[j]==seg[i]} exp(x[j]), computed with
  /// the per-segment max subtracted. Empty segments are fine.
  Var SegmentSoftmax(Var logits, std::vector<uint32_t> segments,
                     size_t num_segments);
  /// Multiplies row i of x (m x d) by scalar w[i] (w is m x 1).
  Var ColBroadcastMul(Var x, Var w);
  /// Column-wise sum: (n x d) -> (1 x d). Sum-pooling readout.
  Var SumRows(Var x);
  /// Mean over rows: (n x d) -> (1 x d).
  Var MeanRows(Var x);
  /// Sum of all entries -> 1x1.
  Var ReduceSum(Var x);

  // --- Losses ---
  /// q-error training loss (Eq. 10): max(target / (pred + eps),
  /// pred / max(target, 1)). `pred` must be 1x1 and positive.
  Var QErrorLoss(Var pred, double target, double eps = 1e-9);

  /// Runs reverse-mode accumulation from `loss` (must be 1x1) with seed 1.
  /// May be called once per tape. Leaf gradients go to Parameter::grad, or
  /// to the installed gradient sink when one is set.
  void Backward(Var loss);

  /// Installs a tape-local gradient sink: Backward() accumulates leaf
  /// gradients into `sink` instead of Parameter::grad. Pass nullptr to
  /// restore direct accumulation. The sink must outlive the Backward()
  /// call. Must be set before Backward() runs to take effect.
  void set_gradient_sink(GradientSink* sink) { gradient_sink_ = sink; }
  GradientSink* gradient_sink() const { return gradient_sink_; }

  /// Pre-sizes the node list. Training tapes have stable node counts per
  /// query across epochs, so reserving the previous epoch's count removes
  /// reallocation churn from the hot loop.
  void ReserveNodes(size_t n) { nodes_.reserve(n); }

  /// Number of recorded nodes (diagnostics/tests).
  size_t NumNodes() const { return nodes_.size(); }

 private:
  struct Node {
    Matrix value;
    Matrix grad;  // allocated lazily on first contribution
    bool requires_grad = false;
    Parameter* param = nullptr;
    // Propagates this node's grad into its inputs' grads.
    std::function<void(Tape*)> backward;
  };

  Var MakeNode(Matrix value, bool requires_grad,
               std::function<void(Tape*)> backward);
  /// Adds `delta` into node id's grad, allocating it on first touch.
  void AccumulateGrad(int id, const Matrix& delta);
  Matrix& EnsureGrad(int id);
  bool Requires(Var v) const { return nodes_[v.id].requires_grad; }

  std::vector<Node> nodes_;
  bool backward_done_ = false;
  GradientSink* gradient_sink_ = nullptr;
};

}  // namespace neursc

#endif  // NEURSC_NN_TAPE_H_
