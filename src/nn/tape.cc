#include "nn/tape.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "nn/kernels.h"

namespace neursc {

// Forward values are computed by the shared kernels in nn/kernels.h — the
// same functions the forward-only EvalContext calls — so the two backends
// are bit-identical by construction. Everything below the kernel call in
// each op is the backward closure, which is Tape-only.

void GradientSink::Accumulate(Parameter* param, const Matrix& delta) {
  auto it = buffers_.find(param);
  if (it == buffers_.end()) {
    it = buffers_
             .emplace(param,
                      Matrix(param->value.rows(), param->value.cols()))
             .first;
  }
  it->second.AddInPlace(delta);
}

void GradientSink::ReduceIntoParameters() const {
  for (const auto& [param, buffer] : buffers_) {
    param->grad.AddInPlace(buffer);
  }
}

Var Tape::MakeNode(Matrix value, bool requires_grad,
                   std::function<void(Tape*)> backward) {
  Node node;
  node.value = std::move(value);
  node.requires_grad = requires_grad;
  node.backward = std::move(backward);
  nodes_.push_back(std::move(node));
  return Var{static_cast<int>(nodes_.size()) - 1};
}

Matrix& Tape::EnsureGrad(int id) {
  Node& node = nodes_[id];
  if (node.grad.empty()) {
    node.grad = Matrix(node.value.rows(), node.value.cols());
  }
  return node.grad;
}

void Tape::AccumulateGrad(int id, const Matrix& delta) {
  EnsureGrad(id).AddInPlace(delta);
}

Var Tape::Constant(Matrix value) {
  return MakeNode(std::move(value), false, nullptr);
}

Var Tape::Leaf(Parameter* param) {
  NEURSC_CHECK(param != nullptr);
  Var v = MakeNode(param->value, true, nullptr);
  nodes_[v.id].param = param;
  return v;
}

Var Tape::MatMul(Var a, Var b) {
  Matrix out(Value(a).rows(), Value(b).cols());
  Matrix::MatMulInto(Value(a), Value(b), &out);
  bool req = Requires(a) || Requires(b);
  Var v = MakeNode(std::move(out), req, nullptr);
  if (!req) return v;
  int out_id = v.id;
  int aid = a.id;
  int bid = b.id;
  nodes_[out_id].backward = [out_id, aid, bid](Tape* t) {
    const Matrix& g = t->nodes_[out_id].grad;
    if (t->nodes_[aid].requires_grad) {
      t->AccumulateGrad(aid, Matrix::MatMulTransposeB(g, t->nodes_[bid].value));
    }
    if (t->nodes_[bid].requires_grad) {
      t->AccumulateGrad(bid, Matrix::MatMulTransposeA(t->nodes_[aid].value, g));
    }
  };
  return v;
}

Var Tape::Add(Var a, Var b) {
  Matrix out(Value(a).rows(), Value(a).cols());
  fwd::Add(Value(a), Value(b), &out);
  bool req = Requires(a) || Requires(b);
  Var v = MakeNode(std::move(out), req, nullptr);
  if (!req) return v;
  int out_id = v.id;
  int aid = a.id;
  int bid = b.id;
  nodes_[out_id].backward = [out_id, aid, bid](Tape* t) {
    const Matrix& g = t->nodes_[out_id].grad;
    if (t->nodes_[aid].requires_grad) t->AccumulateGrad(aid, g);
    if (t->nodes_[bid].requires_grad) t->AccumulateGrad(bid, g);
  };
  return v;
}

Var Tape::AddRowBroadcast(Var x, Var bias) {
  const Matrix& xv = Value(x);
  Matrix out(xv.rows(), xv.cols());
  fwd::AddRowBroadcast(xv, Value(bias), &out);
  bool req = Requires(x) || Requires(bias);
  Var v = MakeNode(std::move(out), req, nullptr);
  if (!req) return v;
  int out_id = v.id;
  int xid = x.id;
  int bid = bias.id;
  nodes_[out_id].backward = [out_id, xid, bid](Tape* t) {
    const Matrix& g = t->nodes_[out_id].grad;
    if (t->nodes_[xid].requires_grad) t->AccumulateGrad(xid, g);
    if (t->nodes_[bid].requires_grad) {
      Matrix& bg = t->EnsureGrad(bid);
      for (size_t r = 0; r < g.rows(); ++r) {
        for (size_t c = 0; c < g.cols(); ++c) bg.at(0, c) += g.at(r, c);
      }
    }
  };
  return v;
}

Var Tape::Sub(Var a, Var b) {
  Matrix out(Value(a).rows(), Value(a).cols());
  fwd::Sub(Value(a), Value(b), &out);
  bool req = Requires(a) || Requires(b);
  Var v = MakeNode(std::move(out), req, nullptr);
  if (!req) return v;
  int out_id = v.id;
  int aid = a.id;
  int bid = b.id;
  nodes_[out_id].backward = [out_id, aid, bid](Tape* t) {
    const Matrix& g = t->nodes_[out_id].grad;
    if (t->nodes_[aid].requires_grad) t->AccumulateGrad(aid, g);
    if (t->nodes_[bid].requires_grad) {
      Matrix neg = g;
      neg.ScaleInPlace(-1.0f);
      t->AccumulateGrad(bid, neg);
    }
  };
  return v;
}

Var Tape::Mul(Var a, Var b) {
  const Matrix& av = Value(a);
  Matrix out(av.rows(), av.cols());
  fwd::Mul(av, Value(b), &out);
  bool req = Requires(a) || Requires(b);
  Var v = MakeNode(std::move(out), req, nullptr);
  if (!req) return v;
  int out_id = v.id;
  int aid = a.id;
  int bid = b.id;
  nodes_[out_id].backward = [out_id, aid, bid](Tape* t) {
    const Matrix& g = t->nodes_[out_id].grad;
    if (t->nodes_[aid].requires_grad) {
      Matrix d = g;
      const Matrix& bv2 = t->nodes_[bid].value;
      for (size_t i = 0; i < d.size(); ++i) d.data()[i] *= bv2.data()[i];
      t->AccumulateGrad(aid, d);
    }
    if (t->nodes_[bid].requires_grad) {
      Matrix d = g;
      const Matrix& av2 = t->nodes_[aid].value;
      for (size_t i = 0; i < d.size(); ++i) d.data()[i] *= av2.data()[i];
      t->AccumulateGrad(bid, d);
    }
  };
  return v;
}

Var Tape::Scale(Var a, float s) {
  const Matrix& av = Value(a);
  Matrix out(av.rows(), av.cols());
  fwd::Scale(av, s, &out);
  bool req = Requires(a);
  Var v = MakeNode(std::move(out), req, nullptr);
  if (!req) return v;
  int out_id = v.id;
  int aid = a.id;
  nodes_[out_id].backward = [out_id, aid, s](Tape* t) {
    Matrix d = t->nodes_[out_id].grad;
    d.ScaleInPlace(s);
    t->AccumulateGrad(aid, d);
  };
  return v;
}

Var Tape::Relu(Var a) {
  const Matrix& av = Value(a);
  Matrix out(av.rows(), av.cols());
  fwd::Relu(av, &out);
  bool req = Requires(a);
  Var v = MakeNode(std::move(out), req, nullptr);
  if (!req) return v;
  int out_id = v.id;
  int aid = a.id;
  nodes_[out_id].backward = [out_id, aid](Tape* t) {
    const Matrix& g = t->nodes_[out_id].grad;
    const Matrix& x = t->nodes_[aid].value;
    Matrix d = g;
    for (size_t i = 0; i < d.size(); ++i) {
      if (x.data()[i] <= 0.0f) d.data()[i] = 0.0f;
    }
    t->AccumulateGrad(aid, d);
  };
  return v;
}

Var Tape::LeakyRelu(Var a, float negative_slope) {
  const float s = negative_slope;
  const Matrix& av = Value(a);
  Matrix out(av.rows(), av.cols());
  fwd::LeakyRelu(av, s, &out);
  bool req = Requires(a);
  Var v = MakeNode(std::move(out), req, nullptr);
  if (!req) return v;
  int out_id = v.id;
  int aid = a.id;
  nodes_[out_id].backward = [out_id, aid, s](Tape* t) {
    const Matrix& g = t->nodes_[out_id].grad;
    const Matrix& x = t->nodes_[aid].value;
    Matrix d = g;
    for (size_t i = 0; i < d.size(); ++i) {
      if (x.data()[i] <= 0.0f) d.data()[i] *= s;
    }
    t->AccumulateGrad(aid, d);
  };
  return v;
}

Var Tape::Sigmoid(Var a) {
  const Matrix& av = Value(a);
  Matrix out(av.rows(), av.cols());
  fwd::Sigmoid(av, &out);
  bool req = Requires(a);
  Var v = MakeNode(std::move(out), req, nullptr);
  if (!req) return v;
  int out_id = v.id;
  int aid = a.id;
  nodes_[out_id].backward = [out_id, aid](Tape* t) {
    const Matrix& g = t->nodes_[out_id].grad;
    const Matrix& y = t->nodes_[out_id].value;
    Matrix d = g;
    for (size_t i = 0; i < d.size(); ++i) {
      float yi = y.data()[i];
      d.data()[i] *= yi * (1.0f - yi);
    }
    t->AccumulateGrad(aid, d);
  };
  return v;
}

Var Tape::Tanh(Var a) {
  const Matrix& av = Value(a);
  Matrix out(av.rows(), av.cols());
  fwd::Tanh(av, &out);
  bool req = Requires(a);
  Var v = MakeNode(std::move(out), req, nullptr);
  if (!req) return v;
  int out_id = v.id;
  int aid = a.id;
  nodes_[out_id].backward = [out_id, aid](Tape* t) {
    const Matrix& g = t->nodes_[out_id].grad;
    const Matrix& y = t->nodes_[out_id].value;
    Matrix d = g;
    for (size_t i = 0; i < d.size(); ++i) {
      float yi = y.data()[i];
      d.data()[i] *= 1.0f - yi * yi;
    }
    t->AccumulateGrad(aid, d);
  };
  return v;
}

Var Tape::Exp(Var a) {
  const Matrix& av = Value(a);
  Matrix out(av.rows(), av.cols());
  fwd::Exp(av, &out);
  bool req = Requires(a);
  Var v = MakeNode(std::move(out), req, nullptr);
  if (!req) return v;
  int out_id = v.id;
  int aid = a.id;
  nodes_[out_id].backward = [out_id, aid](Tape* t) {
    const Matrix& g = t->nodes_[out_id].grad;
    const Matrix& y = t->nodes_[out_id].value;
    Matrix d = g;
    for (size_t i = 0; i < d.size(); ++i) {
      // In the clamped region we use the boundary derivative exp(+-30)
      // rather than the true 0 so that saturated predictions still receive
      // a corrective signal (straight-through at the clamp).
      d.data()[i] *= y.data()[i];
    }
    t->AccumulateGrad(aid, d);
  };
  return v;
}

Var Tape::Log(Var a) {
  const Matrix& av = Value(a);
  Matrix out(av.rows(), av.cols());
  fwd::Log(av, &out);
  bool req = Requires(a);
  Var v = MakeNode(std::move(out), req, nullptr);
  if (!req) return v;
  int out_id = v.id;
  int aid = a.id;
  nodes_[out_id].backward = [out_id, aid](Tape* t) {
    const Matrix& g = t->nodes_[out_id].grad;
    const Matrix& x = t->nodes_[aid].value;
    Matrix d = g;
    for (size_t i = 0; i < d.size(); ++i) {
      d.data()[i] /= std::max(x.data()[i], 1e-12f);
    }
    t->AccumulateGrad(aid, d);
  };
  return v;
}

Var Tape::RowSoftmax(Var a) {
  const Matrix& xv = Value(a);
  Matrix out(xv.rows(), xv.cols());
  fwd::RowSoftmax(xv, &out);
  bool req = Requires(a);
  Var v = MakeNode(std::move(out), req, nullptr);
  if (!req) return v;
  int out_id = v.id;
  int aid = a.id;
  nodes_[out_id].backward = [out_id, aid](Tape* t) {
    const Matrix& g = t->nodes_[out_id].grad;
    const Matrix& y = t->nodes_[out_id].value;
    Matrix d(y.rows(), y.cols());
    for (size_t r = 0; r < y.rows(); ++r) {
      double dot = 0.0;
      for (size_t c = 0; c < y.cols(); ++c) {
        dot += static_cast<double>(g.at(r, c)) * y.at(r, c);
      }
      for (size_t c = 0; c < y.cols(); ++c) {
        d.at(r, c) = y.at(r, c) * (g.at(r, c) - static_cast<float>(dot));
      }
    }
    t->AccumulateGrad(aid, d);
  };
  return v;
}

Var Tape::ConcatCols(Var a, Var b) {
  const Matrix& av = Value(a);
  const Matrix& bv = Value(b);
  // Read before MakeNode: it may grow nodes_, invalidating av/bv.
  size_t acols = av.cols();
  Matrix out(av.rows(), acols + bv.cols());
  fwd::ConcatCols(av, bv, &out);
  bool req = Requires(a) || Requires(b);
  Var v = MakeNode(std::move(out), req, nullptr);
  if (!req) return v;
  int out_id = v.id;
  int aid = a.id;
  int bid = b.id;
  nodes_[out_id].backward = [out_id, aid, bid, acols](Tape* t) {
    const Matrix& g = t->nodes_[out_id].grad;
    if (t->nodes_[aid].requires_grad) {
      Matrix& ag = t->EnsureGrad(aid);
      for (size_t r = 0; r < g.rows(); ++r) {
        for (size_t c = 0; c < acols; ++c) ag.at(r, c) += g.at(r, c);
      }
    }
    if (t->nodes_[bid].requires_grad) {
      Matrix& bg = t->EnsureGrad(bid);
      for (size_t r = 0; r < g.rows(); ++r) {
        for (size_t c = 0; c < bg.cols(); ++c) {
          bg.at(r, c) += g.at(r, acols + c);
        }
      }
    }
  };
  return v;
}

Var Tape::ConcatRows(const std::vector<Var>& parts) {
  NEURSC_CHECK(!parts.empty());
  size_t total_rows = 0;
  size_t cols = Value(parts[0]).cols();
  bool req = false;
  std::vector<const Matrix*> values;
  values.reserve(parts.size());
  for (Var p : parts) {
    values.push_back(&Value(p));
    total_rows += values.back()->rows();
    req = req || Requires(p);
  }
  Matrix out(total_rows, cols);
  fwd::ConcatRows(values, &out);
  Var v = MakeNode(std::move(out), req, nullptr);
  if (!req) return v;
  int out_id = v.id;
  std::vector<int> part_ids;
  part_ids.reserve(parts.size());
  for (Var p : parts) part_ids.push_back(p.id);
  nodes_[out_id].backward = [out_id, part_ids = std::move(part_ids)](Tape* t) {
    const Matrix& g = t->nodes_[out_id].grad;
    size_t row2 = 0;
    for (int pid : part_ids) {
      const Matrix& pv = t->nodes_[pid].value;
      if (t->nodes_[pid].requires_grad) {
        Matrix& pg = t->EnsureGrad(pid);
        for (size_t r = 0; r < pv.rows(); ++r) {
          for (size_t c = 0; c < pv.cols(); ++c) {
            pg.at(r, c) += g.at(row2 + r, c);
          }
        }
      }
      row2 += pv.rows();
    }
  };
  return v;
}

Var Tape::GatherRows(Var x, std::vector<uint32_t> rows) {
  const Matrix& xv = Value(x);
  Matrix out(rows.size(), xv.cols());
  fwd::GatherRows(xv, rows, &out);
  bool req = Requires(x);
  Var v = MakeNode(std::move(out), req, nullptr);
  if (!req) return v;
  int out_id = v.id;
  int xid = x.id;
  nodes_[out_id].backward = [out_id, xid, rows = std::move(rows)](Tape* t) {
    const Matrix& g = t->nodes_[out_id].grad;
    Matrix& xg = t->EnsureGrad(xid);
    for (size_t i = 0; i < rows.size(); ++i) {
      for (size_t c = 0; c < g.cols(); ++c) {
        xg.at(rows[i], c) += g.at(i, c);
      }
    }
  };
  return v;
}

Var Tape::ScatterAddRows(Var x, std::vector<uint32_t> targets,
                         size_t num_rows) {
  const Matrix& xv = Value(x);
  Matrix out(num_rows, xv.cols());
  fwd::ScatterAddRows(xv, targets, &out);
  bool req = Requires(x);
  Var v = MakeNode(std::move(out), req, nullptr);
  if (!req) return v;
  int out_id = v.id;
  int xid = x.id;
  nodes_[out_id].backward =
      [out_id, xid, targets = std::move(targets)](Tape* t) {
        const Matrix& g = t->nodes_[out_id].grad;
        Matrix& xg = t->EnsureGrad(xid);
        for (size_t i = 0; i < targets.size(); ++i) {
          for (size_t c = 0; c < g.cols(); ++c) {
            xg.at(i, c) += g.at(targets[i], c);
          }
        }
      };
  return v;
}

Var Tape::SegmentSoftmax(Var logits, std::vector<uint32_t> segments,
                         size_t num_segments) {
  const Matrix& xv = Value(logits);
  Matrix out(xv.rows(), 1);
  std::vector<float> seg_max;
  std::vector<double> seg_sum;
  fwd::SegmentSoftmax(xv, segments, num_segments, &out, &seg_max, &seg_sum);
  bool req = Requires(logits);
  Var v = MakeNode(std::move(out), req, nullptr);
  if (!req) return v;
  int out_id = v.id;
  int xid = logits.id;
  nodes_[out_id].backward = [out_id, xid, segments = std::move(segments),
                             num_segments](Tape* t) {
    const Matrix& g = t->nodes_[out_id].grad;
    const Matrix& y = t->nodes_[out_id].value;
    // dL/dx_i = y_i * (g_i - sum_{j in seg(i)} g_j y_j)
    std::vector<double> seg_dot(num_segments, 0.0);
    for (size_t i = 0; i < segments.size(); ++i) {
      seg_dot[segments[i]] +=
          static_cast<double>(g.at(i, 0)) * y.at(i, 0);
    }
    Matrix d(y.rows(), 1);
    for (size_t i = 0; i < segments.size(); ++i) {
      d.at(i, 0) = y.at(i, 0) *
                   (g.at(i, 0) - static_cast<float>(seg_dot[segments[i]]));
    }
    t->AccumulateGrad(xid, d);
  };
  return v;
}

Var Tape::ColBroadcastMul(Var x, Var w) {
  const Matrix& xv = Value(x);
  Matrix out(xv.rows(), xv.cols());
  fwd::ColBroadcastMul(xv, Value(w), &out);
  bool req = Requires(x) || Requires(w);
  Var v = MakeNode(std::move(out), req, nullptr);
  if (!req) return v;
  int out_id = v.id;
  int xid = x.id;
  int wid = w.id;
  nodes_[out_id].backward = [out_id, xid, wid](Tape* t) {
    const Matrix& g = t->nodes_[out_id].grad;
    const Matrix& xv2 = t->nodes_[xid].value;
    const Matrix& wv2 = t->nodes_[wid].value;
    if (t->nodes_[xid].requires_grad) {
      Matrix d = g;
      for (size_t r = 0; r < d.rows(); ++r) {
        float wr = wv2.at(r, 0);
        for (size_t c = 0; c < d.cols(); ++c) d.at(r, c) *= wr;
      }
      t->AccumulateGrad(xid, d);
    }
    if (t->nodes_[wid].requires_grad) {
      Matrix d(wv2.rows(), 1);
      for (size_t r = 0; r < g.rows(); ++r) {
        float dot = 0.0f;
        for (size_t c = 0; c < g.cols(); ++c) dot += g.at(r, c) * xv2.at(r, c);
        d.at(r, 0) = dot;
      }
      t->AccumulateGrad(wid, d);
    }
  };
  return v;
}

Var Tape::SumRows(Var x) {
  const Matrix& xv = Value(x);
  Matrix out(1, xv.cols());
  fwd::SumRows(xv, &out);
  bool req = Requires(x);
  Var v = MakeNode(std::move(out), req, nullptr);
  if (!req) return v;
  int out_id = v.id;
  int xid = x.id;
  nodes_[out_id].backward = [out_id, xid](Tape* t) {
    const Matrix& g = t->nodes_[out_id].grad;
    Matrix& xg = t->EnsureGrad(xid);
    for (size_t r = 0; r < xg.rows(); ++r) {
      for (size_t c = 0; c < xg.cols(); ++c) xg.at(r, c) += g.at(0, c);
    }
  };
  return v;
}

Var Tape::MeanRows(Var x) {
  size_t n = Value(x).rows();
  Var s = SumRows(x);
  return n > 0 ? Scale(s, 1.0f / static_cast<float>(n)) : s;
}

Var Tape::ReduceSum(Var x) {
  const Matrix& xv = Value(x);
  Matrix out(1, 1);
  fwd::ReduceSum(xv, &out);
  bool req = Requires(x);
  Var v = MakeNode(std::move(out), req, nullptr);
  if (!req) return v;
  int out_id = v.id;
  int xid = x.id;
  nodes_[out_id].backward = [out_id, xid](Tape* t) {
    float g = t->nodes_[out_id].grad.at(0, 0);
    Matrix& xg = t->EnsureGrad(xid);
    for (size_t i = 0; i < xg.size(); ++i) xg.data()[i] += g;
  };
  return v;
}

Var Tape::QErrorLoss(Var pred, double target, double eps) {
  const Matrix& pv = Value(pred);
  NEURSC_CHECK(pv.rows() == 1 && pv.cols() == 1);
  double c_hat = pv.at(0, 0);
  fwd::QErrorParts parts = fwd::QError(c_hat, target, eps);
  Matrix out(1, 1);
  out.at(0, 0) = parts.loss;
  bool req = Requires(pred);
  Var v = MakeNode(std::move(out), req, nullptr);
  if (!req) return v;
  int out_id = v.id;
  int pid = pred.id;
  const double c = parts.c;
  const double under = parts.under;
  const double over = parts.over;
  nodes_[out_id].backward = [out_id, pid, c, c_hat, eps, under,
                             over](Tape* t) {
    float g = t->nodes_[out_id].grad.at(0, 0);
    double d = (under >= over) ? -c / ((c_hat + eps) * (c_hat + eps))
                               : 1.0 / c;
    Matrix delta = Matrix::Scalar(static_cast<float>(g * d));
    t->AccumulateGrad(pid, delta);
  };
  return v;
}

void Tape::Backward(Var loss) {
  NEURSC_CHECK(!backward_done_) << "Backward() may be called once per tape";
  backward_done_ = true;
  const Matrix& lv = Value(loss);
  NEURSC_CHECK(lv.rows() == 1 && lv.cols() == 1)
      << "Backward target must be scalar";
  EnsureGrad(loss.id).at(0, 0) = 1.0f;
  for (int id = static_cast<int>(nodes_.size()) - 1; id >= 0; --id) {
    Node& node = nodes_[id];
    if (!node.requires_grad || node.grad.empty()) continue;
    if (node.backward) node.backward(this);
    if (node.param != nullptr) {
      if (gradient_sink_ != nullptr) {
        gradient_sink_->Accumulate(node.param, node.grad);
      } else {
        node.param->grad.AddInPlace(node.grad);
      }
    }
  }
}

}  // namespace neursc
