#ifndef NEURSC_NN_MODULES_H_
#define NEURSC_NN_MODULES_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/tape.h"

namespace neursc {

/// Edge list of a (directed) message-passing structure: messages flow
/// src[i] -> dst[i]. Undirected graphs list each edge in both directions.
struct EdgeIndex {
  std::vector<uint32_t> src;
  std::vector<uint32_t> dst;

  size_t size() const { return src.size(); }
  void Add(uint32_t s, uint32_t d) {
    src.push_back(s);
    dst.push_back(d);
  }
};

/// Base class for trainable components: exposes the flat parameter list the
/// optimizer steps over.
class Module {
 public:
  virtual ~Module() = default;
  /// All trainable parameters, in a stable order.
  virtual std::vector<Parameter*> Parameters() = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad() {
    for (Parameter* p : Parameters()) p->ZeroGrad();
  }
  /// Total number of scalar weights.
  size_t NumWeights() {
    size_t n = 0;
    for (Parameter* p : Parameters()) n += p->value.size();
    return n;
  }
};

/// Supported pointwise activations for MLP hidden layers.
enum class Activation { kNone, kRelu, kLeakyRelu, kSigmoid, kTanh };

/// Applies `activation` to `x` on `ctx`.
///
/// Modules are written once against the execution-context concept: every
/// Forward below is a template over the context type, instantiated for the
/// autograd Tape (training) and the tape-free EvalContext (inference; see
/// nn/eval.h). Both backends expose the same op vocabulary and share the
/// forward kernels in nn/kernels.h, so a module produces bit-identical
/// values on either. Definitions live in modules.cc with explicit
/// instantiations for both context types — no per-op virtual dispatch.
template <typename Ctx>
Var ApplyActivation(Ctx* ctx, Var x, Activation activation);

/// Fully-connected layer y = x W + b.
class Linear : public Module {
 public:
  Linear(size_t in_features, size_t out_features, Rng* rng);

  template <typename Ctx>
  Var Forward(Ctx* ctx, Var x);
  std::vector<Parameter*> Parameters() override { return {&weight_, &bias_}; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  Parameter weight_;  // in x out
  Parameter bias_;    // 1 x out
};

/// Multi-layer perceptron. `dims` = {in, hidden..., out}; `activation` is
/// applied after every layer except the last.
class Mlp : public Module {
 public:
  Mlp(std::vector<size_t> dims, Activation activation, Rng* rng);

  template <typename Ctx>
  Var Forward(Ctx* ctx, Var x);
  std::vector<Parameter*> Parameters() override;

  /// Scales the last layer's weights by `factor` and zeroes its bias so
  /// the network initially outputs near-0 regardless of input magnitude.
  /// Used by count-regression heads (output exp(~0) ~= 1) to start in a
  /// well-conditioned region while keeping gradient flow to lower layers.
  void DampLastLayer(float factor = 0.01f);

  size_t in_features() const { return dims_.front(); }
  size_t out_features() const { return dims_.back(); }

 private:
  std::vector<size_t> dims_;
  Activation activation_;
  std::vector<std::unique_ptr<Linear>> layers_;
};

/// Graph Isomorphism Network layer (Eq. 3):
///   h_v' = ReLU(MLP((1 + eps) * h_v + sum_{u in N(v)} h_u))
/// with eps a learnable scalar. `edges` must list both directions of every
/// undirected edge; aggregation is scatter-sum over edges.
class GinLayer : public Module {
 public:
  GinLayer(size_t in_features, size_t out_features, Rng* rng);

  /// h: (num_vertices x in_features). Returns (num_vertices x out_features).
  template <typename Ctx>
  Var Forward(Ctx* ctx, Var h, const EdgeIndex& edges);
  std::vector<Parameter*> Parameters() override;

 private:
  Mlp mlp_;
  Parameter epsilon_;  // 1x1
};

/// GraphSAGE-style mean-aggregation layer:
///   h_v' = ReLU(W [h_v || mean_{u in N(v)} h_u])
/// Strictly weaker than GIN at distinguishing neighborhood multisets
/// (mean discards multiplicities); provided as the contrast arm of the
/// intra-GNN ablation (the paper's Sec. 5.2 motivates choosing GIN).
class MeanAggregatorLayer : public Module {
 public:
  MeanAggregatorLayer(size_t in_features, size_t out_features, Rng* rng);

  template <typename Ctx>
  Var Forward(Ctx* ctx, Var h, const EdgeIndex& edges);
  std::vector<Parameter*> Parameters() override;

 private:
  Linear linear_;  // 2*in -> out
};

/// Attentive message passing over an explicitly provided (bipartite) edge
/// list, Eqs. 4-5. Attention coefficients are computed per destination
/// vertex with a shared projection Theta_a and attention vector a, using
/// LeakyReLU scoring and per-destination softmax. The self term alpha_uu of
/// Eq. 4 is realized by appending a self-loop edge for every vertex.
class BipartiteAttentionLayer : public Module {
 public:
  BipartiteAttentionLayer(size_t in_features, size_t out_features, Rng* rng);

  /// h: (num_vertices x in). `edges` are the bipartite candidate edges in
  /// both directions; self-loops are added internally. Returns
  /// (num_vertices x out) with sigma = ELU-free plain ReLU activation left
  /// to the caller (the raw combination of Eq. 4 is returned).
  template <typename Ctx>
  Var Forward(Ctx* ctx, Var h, const EdgeIndex& edges);
  std::vector<Parameter*> Parameters() override;

 private:
  Parameter theta_;       // in x out   (Theta of Eq. 4)
  Parameter theta_attn_;  // in x out   (Theta_a of Eq. 5)
  Parameter attn_;        // 2*out x 1  (a of Eq. 5)
};

}  // namespace neursc

#endif  // NEURSC_NN_MODULES_H_
