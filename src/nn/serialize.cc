#include "nn/serialize.h"

#include <fstream>
#include <limits>

namespace neursc {

Status SaveParameters(const std::vector<Parameter*>& params,
                      std::ostream& out) {
  out << "neursc-params v1 " << params.size() << "\n";
  out.precision(std::numeric_limits<float>::max_digits10);
  for (const Parameter* p : params) {
    out << "param " << p->value.rows() << " " << p->value.cols() << "\n";
    for (size_t i = 0; i < p->value.size(); ++i) {
      out << p->value.data()[i] << (i + 1 == p->value.size() ? "\n" : " ");
    }
    if (p->value.size() == 0) out << "\n";
  }
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Status SaveParametersToFile(const std::vector<Parameter*>& params,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  return SaveParameters(params, out);
}

Status LoadParameters(const std::vector<Parameter*>& params,
                      std::istream& in) {
  std::string magic;
  std::string version;
  size_t count = 0;
  if (!(in >> magic >> version >> count) || magic != "neursc-params" ||
      version != "v1") {
    return Status::IOError("bad header");
  }
  if (count != params.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: file has " + std::to_string(count) +
        ", model has " + std::to_string(params.size()));
  }
  for (Parameter* p : params) {
    std::string tag;
    size_t rows = 0;
    size_t cols = 0;
    if (!(in >> tag >> rows >> cols) || tag != "param") {
      return Status::IOError("malformed param header");
    }
    if (rows != p->value.rows() || cols != p->value.cols()) {
      return Status::InvalidArgument("parameter shape mismatch");
    }
    for (size_t i = 0; i < p->value.size(); ++i) {
      if (!(in >> p->value.data()[i])) {
        return Status::IOError("truncated parameter data");
      }
    }
  }
  return Status::OK();
}

Status LoadParametersFromFile(const std::vector<Parameter*>& params,
                              const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return LoadParameters(params, in);
}

}  // namespace neursc
