#include "nn/serialize.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace neursc {

namespace {

/// Shortest exact hexfloat of v ("%a"), e.g. "0x1.5p-3". Round-trips
/// bit-for-bit through strtof: the float widens to double losslessly, the
/// hex digits encode that double exactly, and narrowing back cannot round.
std::string ExactFloatToken(float v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", static_cast<double>(v));
  return buf;
}

}  // namespace

Status SaveParameters(const std::vector<Parameter*>& params,
                      std::ostream& out) {
  out << "neursc-params v1 " << params.size() << "\n";
  for (const Parameter* p : params) {
    out << "param " << p->value.rows() << " " << p->value.cols() << "\n";
    for (size_t i = 0; i < p->value.size(); ++i) {
      float v = p->value.data()[i];
      if (!std::isfinite(v)) {
        return Status::InvalidArgument(
            "refusing to save non-finite parameter value");
      }
      out << ExactFloatToken(v) << (i + 1 == p->value.size() ? "\n" : " ");
    }
    if (p->value.size() == 0) out << "\n";
  }
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

Status SaveParametersToFile(const std::vector<Parameter*>& params,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  return SaveParameters(params, out);
}

Status LoadParameters(const std::vector<Parameter*>& params,
                      std::istream& in) {
  std::string magic;
  std::string version;
  size_t count = 0;
  if (!(in >> magic >> version >> count) || magic != "neursc-params" ||
      version != "v1") {
    return Status::IOError("bad header");
  }
  if (count != params.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: file has " + std::to_string(count) +
        ", model has " + std::to_string(params.size()));
  }
  for (Parameter* p : params) {
    std::string tag;
    size_t rows = 0;
    size_t cols = 0;
    if (!(in >> tag >> rows >> cols) || tag != "param") {
      return Status::IOError("malformed param header");
    }
    if (rows != p->value.rows() || cols != p->value.cols()) {
      return Status::InvalidArgument("parameter shape mismatch");
    }
    // Token-wise strtof parse: reads both the hexfloat format written by
    // SaveParameters and legacy decimal checkpoints. strtof accepts
    // "inf"/"nan" spellings and saturates out-of-range decimals to
    // infinity, so the finite check below is what actually enforces the
    // no-NaN/Inf contract on every input.
    std::string token;
    for (size_t i = 0; i < p->value.size(); ++i) {
      if (!(in >> token)) {
        return Status::IOError("truncated parameter data");
      }
      char* end = nullptr;
      float v = std::strtof(token.c_str(), &end);
      if (end == token.c_str() || *end != '\0') {
        return Status::IOError("malformed parameter value '" + token + "'");
      }
      if (!std::isfinite(v)) {
        return Status::InvalidArgument(
            "non-finite parameter value '" + token + "' in checkpoint");
      }
      p->value.data()[i] = v;
    }
  }
  return Status::OK();
}

Status LoadParametersFromFile(const std::vector<Parameter*>& params,
                              const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return LoadParameters(params, in);
}

}  // namespace neursc
