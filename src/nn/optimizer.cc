#include "nn/optimizer.h"

#include <cmath>

namespace neursc {

AdamOptimizer::AdamOptimizer(std::vector<Parameter*> params)
    : AdamOptimizer(std::move(params), Options()) {}

AdamOptimizer::AdamOptimizer(std::vector<Parameter*> params, Options options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void AdamOptimizer::Step() {
  ++step_count_;
  const double b1 = options_.beta1;
  const double b2 = options_.beta2;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    for (size_t j = 0; j < p->value.size(); ++j) {
      double g = p->grad.data()[j];
      if (options_.weight_decay > 0.0) {
        g += options_.weight_decay * p->value.data()[j];
      }
      double m = b1 * m_[i].data()[j] + (1.0 - b1) * g;
      double v = b2 * v_[i].data()[j] + (1.0 - b2) * g * g;
      m_[i].data()[j] = static_cast<float>(m);
      v_[i].data()[j] = static_cast<float>(v);
      double m_hat = m / bias1;
      double v_hat = v / bias2;
      p->value.data()[j] -= static_cast<float>(
          options_.learning_rate * m_hat /
          (std::sqrt(v_hat) + options_.epsilon));
    }
  }
}

void AdamOptimizer::ZeroGrad() {
  for (Parameter* p : params_) p->ZeroGrad();
}

double AdamOptimizer::ClipGradNorm(double max_norm) {
  double total = 0.0;
  for (Parameter* p : params_) {
    double n = p->grad.Norm();
    total += n * n;
  }
  total = std::sqrt(total);
  if (total > max_norm && total > 0.0) {
    float scale = static_cast<float>(max_norm / total);
    for (Parameter* p : params_) p->grad.ScaleInPlace(scale);
  }
  return total;
}

SgdOptimizer::SgdOptimizer(std::vector<Parameter*> params,
                           double learning_rate)
    : params_(std::move(params)), learning_rate_(learning_rate) {}

void SgdOptimizer::Step() {
  for (Parameter* p : params_) {
    p->value.AxpyInPlace(static_cast<float>(-learning_rate_), p->grad);
  }
}

void SgdOptimizer::ZeroGrad() {
  for (Parameter* p : params_) p->ZeroGrad();
}

void ClampParameters(const std::vector<Parameter*>& params, float limit) {
  for (Parameter* p : params) p->value.ClampInPlace(limit);
}

}  // namespace neursc
