#include "nn/eval.h"

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "nn/kernels.h"

namespace neursc {

void EvalContext::Reset() {
  nodes_.clear();
  slots_used_ = 0;
  NEURSC_GAUGE_SET("eval/arena_bytes", static_cast<double>(arena_bytes()));
}

size_t EvalContext::arena_bytes() const {
  size_t bytes = 0;
  for (const Matrix& m : slots_) bytes += m.capacity() * sizeof(float);
  return bytes;
}

Matrix* EvalContext::AllocSlot(size_t rows, size_t cols) {
  bool grew = false;
  if (slots_used_ == slots_.size()) {
    slots_.emplace_back();
    grew = true;
  }
  Matrix& m = slots_[slots_used_++];
  if (m.capacity() < rows * cols) grew = true;
  m.Reshape(rows, cols);
  if (grew) {
    ++arena_grows_;
    NEURSC_COUNTER_INC("eval/arena_grows");
  }
  return &m;
}

Var EvalContext::PushNode(const Matrix* value) {
  nodes_.push_back(value);
  return Var{static_cast<int>(nodes_.size()) - 1};
}

Var EvalContext::Constant(const Matrix& value) {
  Matrix* out = AllocSlot(value.rows(), value.cols());
  fwd::Copy(value, out);
  return PushNode(out);
}

Var EvalContext::Leaf(Parameter* param) {
  NEURSC_CHECK(param != nullptr);
  return PushNode(&param->value);
}

Var EvalContext::MatMul(Var a, Var b) {
  const Matrix& av = Value(a);
  const Matrix& bv = Value(b);
  Matrix* out = AllocSlot(av.rows(), bv.cols());
  Matrix::MatMulInto(av, bv, out);
  return PushNode(out);
}

Var EvalContext::Add(Var a, Var b) {
  const Matrix& av = Value(a);
  Matrix* out = AllocSlot(av.rows(), av.cols());
  fwd::Add(av, Value(b), out);
  return PushNode(out);
}

Var EvalContext::AddRowBroadcast(Var x, Var bias) {
  const Matrix& xv = Value(x);
  Matrix* out = AllocSlot(xv.rows(), xv.cols());
  fwd::AddRowBroadcast(xv, Value(bias), out);
  return PushNode(out);
}

Var EvalContext::Sub(Var a, Var b) {
  const Matrix& av = Value(a);
  Matrix* out = AllocSlot(av.rows(), av.cols());
  fwd::Sub(av, Value(b), out);
  return PushNode(out);
}

Var EvalContext::Mul(Var a, Var b) {
  const Matrix& av = Value(a);
  Matrix* out = AllocSlot(av.rows(), av.cols());
  fwd::Mul(av, Value(b), out);
  return PushNode(out);
}

Var EvalContext::Scale(Var a, float s) {
  const Matrix& av = Value(a);
  Matrix* out = AllocSlot(av.rows(), av.cols());
  fwd::Scale(av, s, out);
  return PushNode(out);
}

Var EvalContext::Relu(Var a) {
  const Matrix& av = Value(a);
  Matrix* out = AllocSlot(av.rows(), av.cols());
  fwd::Relu(av, out);
  return PushNode(out);
}

Var EvalContext::LeakyRelu(Var a, float negative_slope) {
  const Matrix& av = Value(a);
  Matrix* out = AllocSlot(av.rows(), av.cols());
  fwd::LeakyRelu(av, negative_slope, out);
  return PushNode(out);
}

Var EvalContext::Sigmoid(Var a) {
  const Matrix& av = Value(a);
  Matrix* out = AllocSlot(av.rows(), av.cols());
  fwd::Sigmoid(av, out);
  return PushNode(out);
}

Var EvalContext::Tanh(Var a) {
  const Matrix& av = Value(a);
  Matrix* out = AllocSlot(av.rows(), av.cols());
  fwd::Tanh(av, out);
  return PushNode(out);
}

Var EvalContext::Exp(Var a) {
  const Matrix& av = Value(a);
  Matrix* out = AllocSlot(av.rows(), av.cols());
  fwd::Exp(av, out);
  return PushNode(out);
}

Var EvalContext::Log(Var a) {
  const Matrix& av = Value(a);
  Matrix* out = AllocSlot(av.rows(), av.cols());
  fwd::Log(av, out);
  return PushNode(out);
}

Var EvalContext::RowSoftmax(Var a) {
  const Matrix& av = Value(a);
  Matrix* out = AllocSlot(av.rows(), av.cols());
  fwd::RowSoftmax(av, out);
  return PushNode(out);
}

Var EvalContext::ConcatCols(Var a, Var b) {
  const Matrix& av = Value(a);
  const Matrix& bv = Value(b);
  Matrix* out = AllocSlot(av.rows(), av.cols() + bv.cols());
  fwd::ConcatCols(av, bv, out);
  return PushNode(out);
}

Var EvalContext::ConcatRows(const std::vector<Var>& parts) {
  NEURSC_CHECK(!parts.empty());
  size_t total_rows = 0;
  const size_t cols = Value(parts[0]).cols();
  std::vector<const Matrix*> values;
  values.reserve(parts.size());
  for (Var p : parts) {
    values.push_back(&Value(p));
    total_rows += values.back()->rows();
  }
  Matrix* out = AllocSlot(total_rows, cols);
  fwd::ConcatRows(values, out);
  return PushNode(out);
}

Var EvalContext::GatherRows(Var x, const std::vector<uint32_t>& rows) {
  const Matrix& xv = Value(x);
  Matrix* out = AllocSlot(rows.size(), xv.cols());
  fwd::GatherRows(xv, rows, out);
  return PushNode(out);
}

Var EvalContext::ScatterAddRows(Var x, const std::vector<uint32_t>& targets,
                                size_t num_rows) {
  const Matrix& xv = Value(x);
  Matrix* out = AllocSlot(num_rows, xv.cols());
  fwd::ScatterAddRows(xv, targets, out);
  return PushNode(out);
}

Var EvalContext::SegmentSoftmax(Var logits,
                                const std::vector<uint32_t>& segments,
                                size_t num_segments) {
  const Matrix& xv = Value(logits);
  Matrix* out = AllocSlot(xv.rows(), 1);
  fwd::SegmentSoftmax(xv, segments, num_segments, out, &seg_max_, &seg_sum_);
  return PushNode(out);
}

Var EvalContext::ColBroadcastMul(Var x, Var w) {
  const Matrix& xv = Value(x);
  Matrix* out = AllocSlot(xv.rows(), xv.cols());
  fwd::ColBroadcastMul(xv, Value(w), out);
  return PushNode(out);
}

Var EvalContext::SumRows(Var x) {
  const Matrix& xv = Value(x);
  Matrix* out = AllocSlot(1, xv.cols());
  fwd::SumRows(xv, out);
  return PushNode(out);
}

Var EvalContext::MeanRows(Var x) {
  size_t n = Value(x).rows();
  Var s = SumRows(x);
  return n > 0 ? Scale(s, 1.0f / static_cast<float>(n)) : s;
}

Var EvalContext::ReduceSum(Var x) {
  const Matrix& xv = Value(x);
  Matrix* out = AllocSlot(1, 1);
  fwd::ReduceSum(xv, out);
  return PushNode(out);
}

Var EvalContext::QErrorLoss(Var pred, double target, double eps) {
  const Matrix& pv = Value(pred);
  NEURSC_CHECK(pv.rows() == 1 && pv.cols() == 1);
  fwd::QErrorParts parts = fwd::QError(pv.at(0, 0), target, eps);
  Matrix* out = AllocSlot(1, 1);
  out->at(0, 0) = parts.loss;
  return PushNode(out);
}

EvalContextPool::Lease EvalContextPool::Acquire() {
  std::unique_ptr<EvalContext> ctx;
  {
    MutexLock lock(&mu_);
    if (!free_.empty()) {
      ctx = std::move(free_.back());
      free_.pop_back();
    } else {
      ctx = std::make_unique<EvalContext>();
      ++created_;
      NEURSC_GAUGE_SET("eval/pool_contexts", static_cast<double>(created_));
    }
  }
  ctx->Reset();
  return Lease(this, std::move(ctx));
}

void EvalContextPool::Release(std::unique_ptr<EvalContext> ctx) {
  MutexLock lock(&mu_);
  free_.push_back(std::move(ctx));
}

size_t EvalContextPool::created() const {
  MutexLock lock(&mu_);
  return created_;
}

size_t EvalContextPool::idle() const {
  MutexLock lock(&mu_);
  return free_.size();
}

}  // namespace neursc
