#include "nn/modules.h"

#include <algorithm>

#include "common/logging.h"
#include "nn/eval.h"

namespace neursc {

template <typename Ctx>
Var ApplyActivation(Ctx* ctx, Var x, Activation activation) {
  switch (activation) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return ctx->Relu(x);
    case Activation::kLeakyRelu:
      return ctx->LeakyRelu(x);
    case Activation::kSigmoid:
      return ctx->Sigmoid(x);
    case Activation::kTanh:
      return ctx->Tanh(x);
  }
  return x;
}

Linear::Linear(size_t in_features, size_t out_features, Rng* rng)
    : weight_(Matrix::GlorotUniform(in_features, out_features, rng)),
      bias_(Matrix(1, out_features)) {}

template <typename Ctx>
Var Linear::Forward(Ctx* ctx, Var x) {
  Var w = ctx->Leaf(&weight_);
  Var b = ctx->Leaf(&bias_);
  return ctx->AddRowBroadcast(ctx->MatMul(x, w), b);
}

Mlp::Mlp(std::vector<size_t> dims, Activation activation, Rng* rng)
    : dims_(std::move(dims)), activation_(activation) {
  NEURSC_CHECK(dims_.size() >= 2) << "MLP needs at least in/out dims";
  for (size_t i = 0; i + 1 < dims_.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims_[i], dims_[i + 1], rng));
  }
}

template <typename Ctx>
Var Mlp::Forward(Ctx* ctx, Var x) {
  for (size_t i = 0; i < layers_.size(); ++i) {
    x = layers_[i]->Forward(ctx, x);
    if (i + 1 < layers_.size()) x = ApplyActivation(ctx, x, activation_);
  }
  return x;
}

void Mlp::DampLastLayer(float factor) {
  Linear& last = *layers_.back();
  last.weight().value.ScaleInPlace(factor);
  last.bias().value.Fill(0.0f);
}

std::vector<Parameter*> Mlp::Parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->Parameters()) params.push_back(p);
  }
  return params;
}

GinLayer::GinLayer(size_t in_features, size_t out_features, Rng* rng)
    : mlp_({in_features, out_features, out_features}, Activation::kRelu, rng),
      epsilon_(Matrix::Scalar(0.0f)) {}

template <typename Ctx>
Var GinLayer::Forward(Ctx* ctx, Var h, const EdgeIndex& edges) {
  const size_t n = ctx->Value(h).rows();
  // Neighborhood sum: gather source rows, scatter-add into destinations.
  Var aggregated;
  if (edges.size() > 0) {
    Var messages = ctx->GatherRows(h, edges.src);
    aggregated = ctx->ScatterAddRows(messages, edges.dst, n);
  } else {
    aggregated = ctx->Constant(
        Matrix(n, ctx->Value(h).cols()));
  }
  // (1 + eps) * h + aggregated; eps is a learnable scalar broadcast by
  // expanding it to a per-row weight column.
  Var eps = ctx->Leaf(&epsilon_);
  Var ones = ctx->Constant(Matrix::Ones(n, 1));
  Var eps_col = ctx->MatMul(ones, eps);  // n x 1, all entries = eps
  Var scaled_self = ctx->ColBroadcastMul(h, eps_col);
  Var combined = ctx->Add(ctx->Add(h, scaled_self), aggregated);
  return ctx->Relu(mlp_.Forward(ctx, combined));
}

std::vector<Parameter*> GinLayer::Parameters() {
  std::vector<Parameter*> params = mlp_.Parameters();
  params.push_back(&epsilon_);
  return params;
}

MeanAggregatorLayer::MeanAggregatorLayer(size_t in_features,
                                         size_t out_features, Rng* rng)
    : linear_(2 * in_features, out_features, rng) {}

template <typename Ctx>
Var MeanAggregatorLayer::Forward(Ctx* ctx, Var h, const EdgeIndex& edges) {
  const size_t n = ctx->Value(h).rows();
  const size_t d = ctx->Value(h).cols();
  // Mean over neighbors: scatter-sum then divide by degree (1 minimum so
  // isolated vertices keep a zero aggregate).
  Var aggregated;
  std::vector<float> degree(n, 0.0f);
  for (uint32_t dst : edges.dst) degree[dst] += 1.0f;
  if (edges.size() > 0) {
    Var messages = ctx->GatherRows(h, edges.src);
    Var sums = ctx->ScatterAddRows(messages, edges.dst, n);
    Matrix inv(n, 1);
    for (size_t v = 0; v < n; ++v) {
      inv.at(v, 0) = 1.0f / std::max(degree[v], 1.0f);
    }
    aggregated = ctx->ColBroadcastMul(sums, ctx->Constant(std::move(inv)));
  } else {
    aggregated = ctx->Constant(Matrix(n, d));
  }
  Var joint = ctx->ConcatCols(h, aggregated);
  return ctx->Relu(linear_.Forward(ctx, joint));
}

std::vector<Parameter*> MeanAggregatorLayer::Parameters() {
  return linear_.Parameters();
}

BipartiteAttentionLayer::BipartiteAttentionLayer(size_t in_features,
                                                 size_t out_features,
                                                 Rng* rng)
    : theta_(Matrix::GlorotUniform(in_features, out_features, rng)),
      theta_attn_(Matrix::GlorotUniform(in_features, out_features, rng)),
      attn_(Matrix::GlorotUniform(2 * out_features, 1, rng)) {}

template <typename Ctx>
Var BipartiteAttentionLayer::Forward(Ctx* ctx, Var h,
                                     const EdgeIndex& edges) {
  const size_t n = ctx->Value(h).rows();

  // Self-loops realize the alpha_uu term of Eq. 4.
  EdgeIndex all = edges;
  for (uint32_t v = 0; v < n; ++v) all.Add(v, v);

  Var theta = ctx->Leaf(&theta_);
  Var theta_attn = ctx->Leaf(&theta_attn_);
  Var attn = ctx->Leaf(&attn_);

  Var projected = ctx->MatMul(h, theta);            // n x out
  Var attn_feats = ctx->MatMul(h, theta_attn);      // n x out

  // Eq. 5 scores: LeakyReLU(a^T [Theta_a h_u || Theta_a h_v]) where u is
  // the destination (the vertex whose neighborhood is normalized over).
  Var feats_dst = ctx->GatherRows(attn_feats, all.dst);
  Var feats_src = ctx->GatherRows(attn_feats, all.src);
  Var pair = ctx->ConcatCols(feats_dst, feats_src);  // E x 2out
  Var logits = ctx->LeakyRelu(ctx->MatMul(pair, attn));  // E x 1
  Var alpha = ctx->SegmentSoftmax(logits, all.dst, n);

  Var messages = ctx->GatherRows(projected, all.src);  // E x out
  Var weighted = ctx->ColBroadcastMul(messages, alpha);
  return ctx->ScatterAddRows(weighted, all.dst, n);
}

std::vector<Parameter*> BipartiteAttentionLayer::Parameters() {
  return {&theta_, &theta_attn_, &attn_};
}

// Explicit instantiations: modules compile once per execution context.
// Adding a third backend means adding its block here.
template Var ApplyActivation<Tape>(Tape*, Var, Activation);
template Var ApplyActivation<EvalContext>(EvalContext*, Var, Activation);
template Var Linear::Forward<Tape>(Tape*, Var);
template Var Linear::Forward<EvalContext>(EvalContext*, Var);
template Var Mlp::Forward<Tape>(Tape*, Var);
template Var Mlp::Forward<EvalContext>(EvalContext*, Var);
template Var GinLayer::Forward<Tape>(Tape*, Var, const EdgeIndex&);
template Var GinLayer::Forward<EvalContext>(EvalContext*, Var,
                                            const EdgeIndex&);
template Var MeanAggregatorLayer::Forward<Tape>(Tape*, Var, const EdgeIndex&);
template Var MeanAggregatorLayer::Forward<EvalContext>(EvalContext*, Var,
                                                       const EdgeIndex&);
template Var BipartiteAttentionLayer::Forward<Tape>(Tape*, Var,
                                                    const EdgeIndex&);
template Var BipartiteAttentionLayer::Forward<EvalContext>(EvalContext*, Var,
                                                           const EdgeIndex&);

}  // namespace neursc
