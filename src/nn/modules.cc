#include "nn/modules.h"

#include <algorithm>

#include "common/logging.h"

namespace neursc {

Var ApplyActivation(Tape* tape, Var x, Activation activation) {
  switch (activation) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return tape->Relu(x);
    case Activation::kLeakyRelu:
      return tape->LeakyRelu(x);
    case Activation::kSigmoid:
      return tape->Sigmoid(x);
    case Activation::kTanh:
      return tape->Tanh(x);
  }
  return x;
}

Linear::Linear(size_t in_features, size_t out_features, Rng* rng)
    : weight_(Matrix::GlorotUniform(in_features, out_features, rng)),
      bias_(Matrix(1, out_features)) {}

Var Linear::Forward(Tape* tape, Var x) {
  Var w = tape->Leaf(&weight_);
  Var b = tape->Leaf(&bias_);
  return tape->AddRowBroadcast(tape->MatMul(x, w), b);
}

Mlp::Mlp(std::vector<size_t> dims, Activation activation, Rng* rng)
    : dims_(std::move(dims)), activation_(activation) {
  NEURSC_CHECK(dims_.size() >= 2) << "MLP needs at least in/out dims";
  for (size_t i = 0; i + 1 < dims_.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims_[i], dims_[i + 1], rng));
  }
}

Var Mlp::Forward(Tape* tape, Var x) {
  for (size_t i = 0; i < layers_.size(); ++i) {
    x = layers_[i]->Forward(tape, x);
    if (i + 1 < layers_.size()) x = ApplyActivation(tape, x, activation_);
  }
  return x;
}

void Mlp::DampLastLayer(float factor) {
  Linear& last = *layers_.back();
  last.weight().value.ScaleInPlace(factor);
  last.bias().value.Fill(0.0f);
}

std::vector<Parameter*> Mlp::Parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->Parameters()) params.push_back(p);
  }
  return params;
}

GinLayer::GinLayer(size_t in_features, size_t out_features, Rng* rng)
    : mlp_({in_features, out_features, out_features}, Activation::kRelu, rng),
      epsilon_(Matrix::Scalar(0.0f)) {}

Var GinLayer::Forward(Tape* tape, Var h, const EdgeIndex& edges) {
  const size_t n = tape->Value(h).rows();
  // Neighborhood sum: gather source rows, scatter-add into destinations.
  Var aggregated;
  if (edges.size() > 0) {
    Var messages = tape->GatherRows(h, edges.src);
    aggregated = tape->ScatterAddRows(messages, edges.dst, n);
  } else {
    aggregated = tape->Constant(
        Matrix(n, tape->Value(h).cols()));
  }
  // (1 + eps) * h + aggregated; eps is a learnable scalar broadcast by
  // expanding it to a per-row weight column.
  Var eps = tape->Leaf(&epsilon_);
  Var ones = tape->Constant(Matrix::Ones(n, 1));
  Var eps_col = tape->MatMul(ones, eps);  // n x 1, all entries = eps
  Var scaled_self = tape->ColBroadcastMul(h, eps_col);
  Var combined = tape->Add(tape->Add(h, scaled_self), aggregated);
  return tape->Relu(mlp_.Forward(tape, combined));
}

std::vector<Parameter*> GinLayer::Parameters() {
  std::vector<Parameter*> params = mlp_.Parameters();
  params.push_back(&epsilon_);
  return params;
}

MeanAggregatorLayer::MeanAggregatorLayer(size_t in_features,
                                         size_t out_features, Rng* rng)
    : linear_(2 * in_features, out_features, rng) {}

Var MeanAggregatorLayer::Forward(Tape* tape, Var h, const EdgeIndex& edges) {
  const size_t n = tape->Value(h).rows();
  const size_t d = tape->Value(h).cols();
  // Mean over neighbors: scatter-sum then divide by degree (1 minimum so
  // isolated vertices keep a zero aggregate).
  Var aggregated;
  std::vector<float> degree(n, 0.0f);
  for (uint32_t dst : edges.dst) degree[dst] += 1.0f;
  if (edges.size() > 0) {
    Var messages = tape->GatherRows(h, edges.src);
    Var sums = tape->ScatterAddRows(messages, edges.dst, n);
    Matrix inv(n, 1);
    for (size_t v = 0; v < n; ++v) {
      inv.at(v, 0) = 1.0f / std::max(degree[v], 1.0f);
    }
    aggregated = tape->ColBroadcastMul(sums, tape->Constant(std::move(inv)));
  } else {
    aggregated = tape->Constant(Matrix(n, d));
  }
  Var joint = tape->ConcatCols(h, aggregated);
  return tape->Relu(linear_.Forward(tape, joint));
}

std::vector<Parameter*> MeanAggregatorLayer::Parameters() {
  return linear_.Parameters();
}

BipartiteAttentionLayer::BipartiteAttentionLayer(size_t in_features,
                                                 size_t out_features,
                                                 Rng* rng)
    : theta_(Matrix::GlorotUniform(in_features, out_features, rng)),
      theta_attn_(Matrix::GlorotUniform(in_features, out_features, rng)),
      attn_(Matrix::GlorotUniform(2 * out_features, 1, rng)) {}

Var BipartiteAttentionLayer::Forward(Tape* tape, Var h,
                                     const EdgeIndex& edges) {
  const size_t n = tape->Value(h).rows();

  // Self-loops realize the alpha_uu term of Eq. 4.
  EdgeIndex all = edges;
  for (uint32_t v = 0; v < n; ++v) all.Add(v, v);

  Var theta = tape->Leaf(&theta_);
  Var theta_attn = tape->Leaf(&theta_attn_);
  Var attn = tape->Leaf(&attn_);

  Var projected = tape->MatMul(h, theta);            // n x out
  Var attn_feats = tape->MatMul(h, theta_attn);      // n x out

  // Eq. 5 scores: LeakyReLU(a^T [Theta_a h_u || Theta_a h_v]) where u is
  // the destination (the vertex whose neighborhood is normalized over).
  Var feats_dst = tape->GatherRows(attn_feats, all.dst);
  Var feats_src = tape->GatherRows(attn_feats, all.src);
  Var pair = tape->ConcatCols(feats_dst, feats_src);  // E x 2out
  Var logits = tape->LeakyRelu(tape->MatMul(pair, attn));  // E x 1
  Var alpha = tape->SegmentSoftmax(logits, all.dst, n);

  Var messages = tape->GatherRows(projected, all.src);  // E x out
  Var weighted = tape->ColBroadcastMul(messages, alpha);
  return tape->ScatterAddRows(weighted, all.dst, n);
}

std::vector<Parameter*> BipartiteAttentionLayer::Parameters() {
  return {&theta_, &theta_attn_, &attn_};
}

}  // namespace neursc
