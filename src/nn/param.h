#ifndef NEURSC_NN_PARAM_H_
#define NEURSC_NN_PARAM_H_

#include "nn/matrix.h"

namespace neursc {

/// A trainable tensor: value plus accumulated gradient. Owned by modules
/// (Linear, GIN, ...); execution contexts (the autograd Tape, the
/// forward-only EvalContext) only reference parameters during a pass.
struct Parameter {
  Matrix value;
  Matrix grad;

  Parameter() = default;
  explicit Parameter(Matrix v)
      : value(std::move(v)), grad(value.rows(), value.cols()) {}

  void ZeroGrad() { grad.Fill(0.0f); }
};

/// Lightweight handle to a node recorded by an execution context. Ids are
/// context-local: a Var is only meaningful on the Tape or EvalContext that
/// produced it.
struct Var {
  int id = -1;
  bool valid() const { return id >= 0; }
};

}  // namespace neursc

#endif  // NEURSC_NN_PARAM_H_
