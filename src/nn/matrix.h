#ifndef NEURSC_NN_MATRIX_H_
#define NEURSC_NN_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"

namespace neursc {

/// A dense row-major float matrix. This is the storage type of the neural
/// substrate; all differentiable operations live on the autograd Tape
/// (tape.h), Matrix itself only provides raw numerics.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Zeros(size_t rows, size_t cols) { return Matrix(rows, cols); }
  static Matrix Ones(size_t rows, size_t cols) {
    return Matrix(rows, cols, 1.0f);
  }
  /// Glorot/Xavier uniform initialization: U(-s, s), s = sqrt(6/(in+out)).
  static Matrix GlorotUniform(size_t rows, size_t cols, Rng* rng);
  /// Entries drawn uniformly from [lo, hi).
  static Matrix Uniform(size_t rows, size_t cols, float lo, float hi,
                        Rng* rng);
  /// 1x1 matrix holding a scalar.
  static Matrix Scalar(float v) {
    Matrix m(1, 1);
    m.data_[0] = v;
    return m;
  }
  /// Builds from nested initializer data (row-major), for tests.
  static Matrix FromRows(const std::vector<std::vector<float>>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  /// Allocated float capacity (>= size()). Exposed for the EvalContext
  /// arena accounting: Reshape() only touches the heap when the new size
  /// exceeds this.
  size_t capacity() const { return data_.capacity(); }

  /// Repurposes this matrix as a zero-filled (rows x cols) buffer, reusing
  /// the existing allocation whenever its capacity suffices. The workspace
  /// primitive behind EvalContext slot reuse.
  void Reshape(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0f);
  }

  float& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float at(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  float* row(size_t r) { return data_.data() + r * cols_; }
  const float* row(size_t r) const { return data_.data() + r * cols_; }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Scalar accessor; matrix must be 1x1.
  float scalar() const;

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// this += other (same shape).
  void AddInPlace(const Matrix& other);
  /// this += alpha * other (same shape).
  void AxpyInPlace(float alpha, const Matrix& other);
  /// this *= alpha.
  void ScaleInPlace(float alpha);
  /// Clamps every entry into [-limit, limit] (WGAN weight clipping).
  void ClampInPlace(float limit);

  /// C = A * B. Shapes must agree ([m,k] x [k,n]).
  static Matrix MatMul(const Matrix& a, const Matrix& b);
  /// C += A * B into a caller-owned, pre-shaped, zero-filled `c`
  /// ([m,n]). MatMul() is a thin wrapper; both share one kernel, so the
  /// allocating and workspace-reusing paths are bit-identical.
  static void MatMulInto(const Matrix& a, const Matrix& b, Matrix* c);
  /// C = A^T * B ([k,m]^T x [k,n] -> [m,n]).
  static Matrix MatMulTransposeA(const Matrix& a, const Matrix& b);
  /// C = A * B^T ([m,k] x [n,k]^T -> [m,n]).
  static Matrix MatMulTransposeB(const Matrix& a, const Matrix& b);

  /// Frobenius norm.
  float Norm() const;
  /// Sum of all entries.
  float Sum() const;

  /// Max |a-b| over entries; shapes must match.
  static float MaxAbsDiff(const Matrix& a, const Matrix& b);

  std::string DebugString(int max_rows = 6) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace neursc

#endif  // NEURSC_NN_MATRIX_H_
