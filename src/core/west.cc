#include "core/west.h"

#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/trace.h"
#include "nn/eval.h"

namespace neursc {

namespace {

/// Both-direction edge list of an undirected graph.
EdgeIndex UndirectedEdges(const Graph& g) {
  EdgeIndex edges;
  edges.src.reserve(2 * g.NumEdges());
  edges.dst.reserve(2 * g.NumEdges());
  for (size_t v = 0; v < g.NumVertices(); ++v) {
    for (VertexId w : g.Neighbors(static_cast<VertexId>(v))) {
      edges.Add(static_cast<uint32_t>(w), static_cast<uint32_t>(v));
    }
  }
  return edges;
}

/// Disjoint-set union used to connect the bipartite graph.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

/// Stacks a on top of b (column counts must match).
Matrix StackRows(const Matrix& a, const Matrix& b) {
  NEURSC_CHECK(a.cols() == b.cols());
  Matrix out(a.rows() + b.rows(), a.cols());
  std::copy(a.data(), a.data() + a.size(), out.data());
  std::copy(b.data(), b.data() + b.size(), out.data() + a.size());
  return out;
}

}  // namespace

EdgeIndex BuildBipartiteEdges(const Graph& query, const Substructure& sub,
                              Rng* rng) {
  const size_t nq = query.NumVertices();
  const size_t ns = sub.graph.NumVertices();
  EdgeIndex edges;
  UnionFind uf(nq + ns);
  for (size_t u = 0; u < nq; ++u) {
    for (VertexId v : sub.local_candidates[u]) {
      uint32_t a = static_cast<uint32_t>(u);
      uint32_t b = static_cast<uint32_t>(nq + v);
      edges.Add(a, b);
      edges.Add(b, a);
      uf.Union(a, b);
    }
  }
  // Sec. 5.3: if G_B is disconnected, add random query<->substructure edges
  // until it is connected. A random anchor pair (one query vertex, one
  // substructure vertex) is joined first; every other component is then
  // linked to the anchor through a cross-side edge, which keeps G_B
  // bipartite and guarantees progress.
  auto add_edge = [&](uint32_t a, uint32_t b) {
    edges.Add(a, b);
    edges.Add(b, a);
    uf.Union(a, b);
  };
  uint32_t anchor_q = static_cast<uint32_t>(rng->UniformIndex(nq));
  uint32_t anchor_s = static_cast<uint32_t>(nq + rng->UniformIndex(ns));
  if (uf.Find(anchor_q) != uf.Find(anchor_s)) add_edge(anchor_q, anchor_s);
  for (size_t x = 0; x < nq + ns; ++x) {
    if (uf.Find(x) == uf.Find(anchor_q)) continue;
    uint32_t partner = (x < nq) ? anchor_s : anchor_q;
    add_edge(static_cast<uint32_t>(x), partner);
  }
  return edges;
}

WEstModel::WEstModel(size_t input_dim, const WEstConfig& config)
    : config_(config) {
  Rng rng(config.seed);
  NEURSC_CHECK(config.intra_layers >= 1);
  size_t in = input_dim;
  for (size_t k = 0; k < config.intra_layers; ++k) {
    if (config.intra_kind == IntraGnnKind::kGin) {
      intra_gin_.push_back(
          std::make_unique<GinLayer>(in, config.intra_dim, &rng));
    } else {
      intra_mean_.push_back(
          std::make_unique<MeanAggregatorLayer>(in, config.intra_dim, &rng));
    }
    in = config.intra_dim;
  }
  if (config.use_inter) {
    in = input_dim;
    for (size_t k = 0; k < config.inter_layers; ++k) {
      inter_.push_back(std::make_unique<BipartiteAttentionLayer>(
          in, config.inter_dim, &rng));
      in = config.inter_dim;
    }
  }
  std::vector<size_t> dims;
  dims.push_back(2 * ReprDim());
  for (size_t i = 0; i + 1 < config.predictor_layers; ++i) {
    dims.push_back(config.predictor_hidden);
  }
  dims.push_back(1);
  predictor_ = std::make_unique<Mlp>(dims, Activation::kRelu, &rng);
  // Start the exp() count head at c_hat = 1 so early training is in the
  // well-conditioned region of the q-error loss.
  predictor_->DampLastLayer();
}

size_t WEstModel::ReprDim() const {
  return config_.intra_dim + (config_.use_inter ? config_.inter_dim : 0);
}

template <typename Ctx>
WEstModel::Forwarded WEstModel::Forward(Ctx* ctx, const Graph& query,
                                        const Substructure& sub,
                                        const Matrix& query_features,
                                        const Matrix& sub_features,
                                        Rng* rng) {
  NEURSC_SPAN(forward_span, "west/forward");
  NEURSC_COUNTER_INC("west.forward_calls");
  const size_t nq = query.NumVertices();
  const size_t ns = sub.graph.NumVertices();

  // --- Intra-graph branch: shared GNN stack applied to each graph. ---
  NEURSC_SPAN(intra_span, "west/intra");
  EdgeIndex query_edges = UndirectedEdges(query);
  EdgeIndex sub_edges = UndirectedEdges(sub.graph);
  Var hq = ctx->Constant(query_features);
  Var hs = ctx->Constant(sub_features);
  for (size_t k = 0; k < config_.intra_layers; ++k) {
    hq = IntraForward(ctx, k, hq, query_edges);
    hs = IntraForward(ctx, k, hs, sub_edges);
  }
  intra_span.End();

  Var query_repr = hq;
  Var sub_repr = hs;

  if (config_.use_inter) {
    // --- Inter-graph branch over the candidate bipartite graph. ---
    NEURSC_SPAN(inter_span, "west/inter");
    EdgeIndex bipartite = BuildBipartiteEdges(query, sub, rng);
    Var hb = ctx->Constant(StackRows(query_features, sub_features));
    for (auto& layer : inter_) {
      hb = ctx->Relu(layer->Forward(ctx, hb, bipartite));
    }
    std::vector<uint32_t> query_rows(nq);
    std::vector<uint32_t> sub_rows(ns);
    std::iota(query_rows.begin(), query_rows.end(), 0u);
    std::iota(sub_rows.begin(), sub_rows.end(), static_cast<uint32_t>(nq));
    Var inter_q = ctx->GatherRows(hb, std::move(query_rows));
    Var inter_s = ctx->GatherRows(hb, std::move(sub_rows));
    query_repr = ctx->ConcatCols(hq, inter_q);
    sub_repr = ctx->ConcatCols(hs, inter_s);
  }

  // --- Readout (sum pooling) and prediction. ---
  NEURSC_SPAN(readout_span, "west/readout");
  // Sum pooling per the paper; the 1/sqrt(1+n) scaling is an
  // implementation-stability detail that keeps the regressor's input
  // magnitude bounded across substructure sizes without destroying the
  // size information (the scale differs per vertex count).
  Var pooled_q = ctx->Scale(
      ctx->SumRows(query_repr),
      1.0f / std::sqrt(1.0f + static_cast<float>(nq)));
  Var pooled_s = ctx->Scale(
      ctx->SumRows(sub_repr),
      1.0f / std::sqrt(1.0f + static_cast<float>(ns)));
  Var joint = ctx->ConcatCols(pooled_q, pooled_s);
  Var log_count = predictor_->Forward(ctx, joint);
  Var prediction = ctx->Exp(log_count);

  return Forwarded{query_repr, sub_repr, prediction};
}

template <typename Ctx>
Var WEstModel::IntraForward(Ctx* ctx, size_t layer, Var h,
                            const EdgeIndex& edges) {
  if (config_.intra_kind == IntraGnnKind::kGin) {
    return intra_gin_[layer]->Forward(ctx, h, edges);
  }
  return intra_mean_[layer]->Forward(ctx, h, edges);
}

std::vector<Parameter*> WEstModel::Parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : intra_gin_) {
    for (Parameter* p : layer->Parameters()) params.push_back(p);
  }
  for (auto& layer : intra_mean_) {
    for (Parameter* p : layer->Parameters()) params.push_back(p);
  }
  for (auto& layer : inter_) {
    for (Parameter* p : layer->Parameters()) params.push_back(p);
  }
  for (Parameter* p : predictor_->Parameters()) params.push_back(p);
  return params;
}

// Explicit instantiations for both execution backends (docs/execution.md).
template WEstModel::Forwarded WEstModel::Forward<Tape>(
    Tape*, const Graph&, const Substructure&, const Matrix&, const Matrix&,
    Rng*);
template WEstModel::Forwarded WEstModel::Forward<EvalContext>(
    EvalContext*, const Graph&, const Substructure&, const Matrix&,
    const Matrix&, Rng*);

}  // namespace neursc
