#ifndef NEURSC_CORE_DISCRIMINATOR_H_
#define NEURSC_CORE_DISCRIMINATOR_H_

#include <memory>
#include <vector>

#include "graph/graph.h"
#include "nn/modules.h"
#include "nn/tape.h"

namespace neursc {

/// Distance metrics for the discriminator ablation (Fig. 12).
enum class DistanceMetric { kWasserstein, kEuclidean, kKL, kJS };

const char* DistanceMetricName(DistanceMetric metric);

/// The critic f_omega of Sec. 5.5: a small MLP scoring each vertex
/// representation with a single real value, kept (approximately)
/// 1-Lipschitz by clamping its weights into [-clip, clip] after every
/// optimizer step (WGAN weight clipping).
class Discriminator : public Module {
 public:
  Discriminator(size_t repr_dim, size_t hidden_dim, float clip,
                uint64_t seed);

  /// Scores every row of h: (n x D) -> (n x 1). Generic over the
  /// execution context (Tape or EvalContext; see docs/execution.md).
  template <typename Ctx>
  Var Score(Ctx* ctx, Var h);

  /// Clamps all weights into the clip box; call after each omega step.
  void ClampWeights();

  float clip() const { return clip_; }
  std::vector<Parameter*> Parameters() override;

 private:
  std::unique_ptr<Mlp> mlp_;
  float clip_;
};

/// A set of matched (query vertex, substructure vertex) row pairs — the
/// approximate optimal-transport correspondence V'(q), V'(G_sub).
struct Correspondence {
  std::vector<uint32_t> query_rows;
  std::vector<uint32_t> sub_rows;
  size_t size() const { return query_rows.size(); }
};

/// The paper's candidate-guided selection (Sec. 5.5): iterate query
/// vertices in ascending f_omega(h_u); give each the unselected candidate
/// v in CS(u) with the largest f_omega(h_v); when CS(u) is exhausted,
/// re-assign a previously selected query vertex (augmenting-path search) so
/// every query vertex still receives a candidate from its own set; if even
/// that fails (no system of distinct representatives), the best candidate
/// is reused. `candidates` are substructure-local candidate sets.
Correspondence SelectCorrespondenceByScores(
    const Matrix& query_scores, const Matrix& sub_scores,
    const std::vector<std::vector<VertexId>>& candidates);

/// Selection used by the EU/KL/JS variants: each query vertex pairs with
/// its closest candidate under `metric` in representation space.
Correspondence SelectCorrespondenceByDistance(
    const Matrix& query_repr, const Matrix& sub_repr,
    const std::vector<std::vector<VertexId>>& candidates,
    DistanceMetric metric);

/// Differentiable L_w (Eq. 9) from precomputed critic scores (n x 1 each):
/// sum of scores over the selected query rows minus the sum over the
/// selected substructure rows.
template <typename Ctx>
Var WassersteinLoss(Ctx* ctx, Var query_scores, Var sub_scores,
                    const Correspondence& pairs);

/// Differentiable mean pairwise distance for the EU/KL/JS variants. KL and
/// JS interpret each representation as a distribution via row softmax.
template <typename Ctx>
Var PairDistanceLoss(Ctx* ctx, Var query_repr, Var sub_repr,
                     const Correspondence& pairs, DistanceMetric metric);

/// Numeric (non-differentiable) distance between two representation rows,
/// used for pair selection.
double RepresentationDistance(const float* a, const float* b, size_t dim,
                              DistanceMetric metric);

}  // namespace neursc

#endif  // NEURSC_CORE_DISCRIMINATOR_H_
