#include "core/discriminator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "nn/eval.h"
#include "nn/optimizer.h"

namespace neursc {

const char* DistanceMetricName(DistanceMetric metric) {
  switch (metric) {
    case DistanceMetric::kWasserstein:
      return "Wasserstein";
    case DistanceMetric::kEuclidean:
      return "Euclidean";
    case DistanceMetric::kKL:
      return "KL";
    case DistanceMetric::kJS:
      return "JS";
  }
  return "?";
}

Discriminator::Discriminator(size_t repr_dim, size_t hidden_dim, float clip,
                             uint64_t seed)
    : clip_(clip) {
  Rng rng(seed);
  mlp_ = std::make_unique<Mlp>(
      std::vector<size_t>{repr_dim, hidden_dim, hidden_dim, 1},
      Activation::kLeakyRelu, &rng);
  // Start inside the clip box so the first update is well-conditioned.
  ClampWeights();
}

template <typename Ctx>
Var Discriminator::Score(Ctx* ctx, Var h) {
  return mlp_->Forward(ctx, h);
}

void Discriminator::ClampWeights() { ClampParameters(Parameters(), clip_); }

std::vector<Parameter*> Discriminator::Parameters() {
  return mlp_->Parameters();
}

namespace {

/// Kuhn augmenting search: can query vertex `u` obtain a candidate,
/// possibly displacing earlier owners? `preference[u]` lists u's candidates
/// best-first; `owner[v]` is the query vertex currently holding v (or -1).
bool TryAssign(size_t u,
               const std::vector<std::vector<VertexId>>& preference,
               std::vector<int>* owner, std::vector<bool>* visited) {
  for (VertexId v : preference[u]) {
    if ((*visited)[v]) continue;
    (*visited)[v] = true;
    if ((*owner)[v] < 0 ||
        TryAssign(static_cast<size_t>((*owner)[v]), preference, owner,
                  visited)) {
      (*owner)[v] = static_cast<int>(u);
      return true;
    }
  }
  return false;
}

}  // namespace

Correspondence SelectCorrespondenceByScores(
    const Matrix& query_scores, const Matrix& sub_scores,
    const std::vector<std::vector<VertexId>>& candidates) {
  const size_t nq = query_scores.rows();
  NEURSC_CHECK(candidates.size() == nq);

  // Query vertices in ascending critic score (the paper starts from the
  // query vertex minimizing f_omega).
  std::vector<size_t> query_order(nq);
  std::iota(query_order.begin(), query_order.end(), 0);
  std::sort(query_order.begin(), query_order.end(), [&](size_t a, size_t b) {
    return query_scores.at(a, 0) < query_scores.at(b, 0);
  });

  // Each query vertex prefers candidates with larger critic score.
  std::vector<std::vector<VertexId>> preference(nq);
  for (size_t u = 0; u < nq; ++u) {
    preference[u] = candidates[u];
    std::sort(preference[u].begin(), preference[u].end(),
              [&](VertexId a, VertexId b) {
                return sub_scores.at(a, 0) > sub_scores.at(b, 0);
              });
  }

  std::vector<int> owner(sub_scores.rows(), -1);
  std::vector<int> assigned(nq, -1);
  for (size_t u : query_order) {
    if (preference[u].empty()) continue;
    // Greedy first: the best still-unselected candidate of u.
    bool taken = false;
    for (VertexId v : preference[u]) {
      if (owner[v] < 0) {
        owner[v] = static_cast<int>(u);
        taken = true;
        break;
      }
    }
    if (taken) continue;
    // All of CS(u) is taken: re-assign a previously selected query vertex
    // (the paper's "change the corresponding vertex" step) via an
    // augmenting path.
    std::vector<bool> visited(sub_scores.rows(), false);
    if (!TryAssign(u, preference, &owner, &visited)) {
      // No system of distinct representatives: reuse u's best candidate.
      assigned[u] = static_cast<int>(preference[u].front());
    }
  }
  for (size_t v = 0; v < owner.size(); ++v) {
    if (owner[v] >= 0) assigned[owner[v]] = static_cast<int>(v);
  }

  Correspondence pairs;
  for (size_t u = 0; u < nq; ++u) {
    if (assigned[u] < 0) continue;
    pairs.query_rows.push_back(static_cast<uint32_t>(u));
    pairs.sub_rows.push_back(static_cast<uint32_t>(assigned[u]));
  }
  return pairs;
}

double RepresentationDistance(const float* a, const float* b, size_t dim,
                              DistanceMetric metric) {
  switch (metric) {
    case DistanceMetric::kWasserstein:
    case DistanceMetric::kEuclidean: {
      double s = 0.0;
      for (size_t i = 0; i < dim; ++i) {
        double d = static_cast<double>(a[i]) - b[i];
        s += d * d;
      }
      return std::sqrt(s);
    }
    case DistanceMetric::kKL:
    case DistanceMetric::kJS: {
      // Softmax-normalize both rows, then compute the divergence.
      std::vector<double> p(dim);
      std::vector<double> q(dim);
      auto softmax = [dim](const float* x, std::vector<double>* out) {
        double mx = x[0];
        for (size_t i = 1; i < dim; ++i) mx = std::max<double>(mx, x[i]);
        double sum = 0.0;
        for (size_t i = 0; i < dim; ++i) {
          (*out)[i] = std::exp(x[i] - mx);
          sum += (*out)[i];
        }
        for (size_t i = 0; i < dim; ++i) (*out)[i] /= sum;
      };
      softmax(a, &p);
      softmax(b, &q);
      auto kl = [dim](const std::vector<double>& x,
                      const std::vector<double>& y) {
        double s = 0.0;
        for (size_t i = 0; i < dim; ++i) {
          s += x[i] * std::log(std::max(x[i], 1e-12) /
                               std::max(y[i], 1e-12));
        }
        return s;
      };
      if (metric == DistanceMetric::kKL) return kl(p, q);
      std::vector<double> m(dim);
      for (size_t i = 0; i < dim; ++i) m[i] = 0.5 * (p[i] + q[i]);
      return 0.5 * kl(p, m) + 0.5 * kl(q, m);
    }
  }
  return 0.0;
}

Correspondence SelectCorrespondenceByDistance(
    const Matrix& query_repr, const Matrix& sub_repr,
    const std::vector<std::vector<VertexId>>& candidates,
    DistanceMetric metric) {
  Correspondence pairs;
  const size_t dim = query_repr.cols();
  for (size_t u = 0; u < query_repr.rows(); ++u) {
    if (u >= candidates.size() || candidates[u].empty()) continue;
    VertexId best = candidates[u][0];
    double best_dist =
        RepresentationDistance(query_repr.row(u), sub_repr.row(best), dim,
                               metric);
    for (size_t i = 1; i < candidates[u].size(); ++i) {
      VertexId v = candidates[u][i];
      double d = RepresentationDistance(query_repr.row(u), sub_repr.row(v),
                                        dim, metric);
      if (d < best_dist) {
        best_dist = d;
        best = v;
      }
    }
    pairs.query_rows.push_back(static_cast<uint32_t>(u));
    pairs.sub_rows.push_back(best);
  }
  return pairs;
}

template <typename Ctx>
Var WassersteinLoss(Ctx* ctx, Var query_scores, Var sub_scores,
                    const Correspondence& pairs) {
  Var fq = ctx->ReduceSum(ctx->GatherRows(query_scores, pairs.query_rows));
  Var fs = ctx->ReduceSum(ctx->GatherRows(sub_scores, pairs.sub_rows));
  return ctx->Sub(fq, fs);
}

template <typename Ctx>
Var PairDistanceLoss(Ctx* ctx, Var query_repr, Var sub_repr,
                     const Correspondence& pairs, DistanceMetric metric) {
  NEURSC_CHECK(pairs.size() > 0);
  Var a = ctx->GatherRows(query_repr, pairs.query_rows);
  Var b = ctx->GatherRows(sub_repr, pairs.sub_rows);
  float inv = 1.0f / static_cast<float>(pairs.size());
  switch (metric) {
    case DistanceMetric::kWasserstein:
    case DistanceMetric::kEuclidean: {
      Var diff = ctx->Sub(a, b);
      return ctx->Scale(ctx->ReduceSum(ctx->Mul(diff, diff)), inv);
    }
    case DistanceMetric::kKL: {
      Var p = ctx->RowSoftmax(a);
      Var q = ctx->RowSoftmax(b);
      Var log_ratio = ctx->Sub(ctx->Log(p), ctx->Log(q));
      return ctx->Scale(ctx->ReduceSum(ctx->Mul(p, log_ratio)), inv);
    }
    case DistanceMetric::kJS: {
      Var p = ctx->RowSoftmax(a);
      Var q = ctx->RowSoftmax(b);
      Var m = ctx->Scale(ctx->Add(p, q), 0.5f);
      Var kl_pm =
          ctx->ReduceSum(ctx->Mul(p, ctx->Sub(ctx->Log(p), ctx->Log(m))));
      Var kl_qm =
          ctx->ReduceSum(ctx->Mul(q, ctx->Sub(ctx->Log(q), ctx->Log(m))));
      return ctx->Scale(ctx->Add(kl_pm, kl_qm), 0.5f * inv);
    }
  }
  return ctx->Constant(Matrix::Scalar(0.0f));
}

// Explicit instantiations for both execution backends (docs/execution.md).
template Var Discriminator::Score<Tape>(Tape*, Var);
template Var Discriminator::Score<EvalContext>(EvalContext*, Var);
template Var WassersteinLoss<Tape>(Tape*, Var, Var, const Correspondence&);
template Var WassersteinLoss<EvalContext>(EvalContext*, Var, Var,
                                          const Correspondence&);
template Var PairDistanceLoss<Tape>(Tape*, Var, Var, const Correspondence&,
                                    DistanceMetric);
template Var PairDistanceLoss<EvalContext>(EvalContext*, Var, Var,
                                           const Correspondence&,
                                           DistanceMetric);

}  // namespace neursc
