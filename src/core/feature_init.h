#ifndef NEURSC_CORE_FEATURE_INIT_H_
#define NEURSC_CORE_FEATURE_INIT_H_

#include <cstddef>

#include "graph/graph.h"
#include "nn/matrix.h"

namespace neursc {

/// Produces the initial vertex feature vectors of Eq. 1:
///
///   x_v = f_b(deg_v) || f_b(label_v)
///         ||_{i=1..k} MeanPool_{v' in N^(i)(v)} (f_b(deg_v') || f_b(label_v'))
///
/// where f_b is fixed-width binary encoding of the integer (multi-hot).
/// The widths are sized once from the data graph (max degree, label count)
/// so query graphs and candidate substructures share one encoding space;
/// out-of-range values saturate.
class FeatureInitializer {
 public:
  /// Sizes the encoder for `data` with `num_hops` = k of Eq. 1.
  FeatureInitializer(const Graph& data, size_t num_hops = 1);

  /// Explicit widths (tests).
  FeatureInitializer(size_t degree_bits, size_t label_bits, size_t num_hops);

  /// Total feature dimension dim_0 = (1 + num_hops) * (degree_bits +
  /// label_bits).
  size_t FeatureDim() const {
    return (1 + num_hops_) * (degree_bits_ + label_bits_);
  }

  size_t degree_bits() const { return degree_bits_; }
  size_t label_bits() const { return label_bits_; }
  size_t num_hops() const { return num_hops_; }

  /// Features for every vertex of `g`: (|V(g)| x FeatureDim()). Degrees are
  /// g's own degrees (query features use query degrees, substructure
  /// features substructure degrees).
  Matrix Compute(const Graph& g) const;

 private:
  size_t degree_bits_;
  size_t label_bits_;
  size_t num_hops_;
};

/// Number of bits needed to represent `max_value` in binary (>= 1).
size_t BitsFor(size_t max_value);

}  // namespace neursc

#endif  // NEURSC_CORE_FEATURE_INIT_H_
