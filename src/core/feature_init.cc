#include "core/feature_init.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "common/metrics_registry.h"
#include "common/trace.h"

namespace neursc {

size_t BitsFor(size_t max_value) {
  size_t bits = 1;
  while ((max_value >> bits) != 0) ++bits;
  return bits;
}

FeatureInitializer::FeatureInitializer(const Graph& data, size_t num_hops)
    : degree_bits_(BitsFor(data.MaxDegree())),
      label_bits_(BitsFor(data.NumLabels() == 0 ? 1 : data.NumLabels() - 1)),
      num_hops_(num_hops) {}

FeatureInitializer::FeatureInitializer(size_t degree_bits, size_t label_bits,
                                       size_t num_hops)
    : degree_bits_(degree_bits), label_bits_(label_bits),
      num_hops_(num_hops) {}

namespace {

/// Writes the binary encoding of `value` (LSB first) into out[0..bits);
/// saturates to all-ones when the value does not fit.
void EncodeBinary(size_t value, size_t bits, float* out) {
  if ((value >> bits) != 0) value = (static_cast<size_t>(1) << bits) - 1;
  for (size_t b = 0; b < bits; ++b) {
    out[b] = static_cast<float>((value >> b) & 1u);
  }
}

}  // namespace

Matrix FeatureInitializer::Compute(const Graph& g) const {
  NEURSC_SPAN(features_span, "features/compute");
  NEURSC_COUNTER_ADD("features.vertices",
                     static_cast<int64_t>(g.NumVertices()));
  const size_t n = g.NumVertices();
  const size_t base = degree_bits_ + label_bits_;
  Matrix features(n, FeatureDim());

  // Per-vertex own encoding.
  for (size_t v = 0; v < n; ++v) {
    float* row = features.row(v);
    EncodeBinary(g.Degree(static_cast<VertexId>(v)), degree_bits_, row);
    EncodeBinary(g.GetLabel(static_cast<VertexId>(v)), label_bits_,
                 row + degree_bits_);
  }

  if (num_hops_ == 0) return features;

  // Exact-i-hop rings via BFS per vertex; mean-pool the (deg, label)
  // encodings of each ring into the corresponding feature block.
  std::vector<uint32_t> dist(n);
  std::vector<float> encode_buffer(base);
  for (size_t v = 0; v < n; ++v) {
    std::fill(dist.begin(), dist.end(), UINT32_MAX);
    std::queue<VertexId> queue;
    dist[v] = 0;
    queue.push(static_cast<VertexId>(v));
    std::vector<size_t> ring_count(num_hops_ + 1, 0);
    float* row = features.row(v);
    while (!queue.empty()) {
      VertexId x = queue.front();
      queue.pop();
      uint32_t d = dist[x];
      if (d > 0 && d <= num_hops_) {
        float* block = row + base * d;
        EncodeBinary(g.Degree(x), degree_bits_, encode_buffer.data());
        EncodeBinary(g.GetLabel(x), label_bits_,
                     encode_buffer.data() + degree_bits_);
        for (size_t i = 0; i < base; ++i) block[i] += encode_buffer[i];
        ++ring_count[d];
      }
      if (d >= num_hops_) continue;
      for (VertexId w : g.Neighbors(x)) {
        if (dist[w] == UINT32_MAX) {
          dist[w] = d + 1;
          queue.push(w);
        }
      }
    }
    for (size_t hop = 1; hop <= num_hops_; ++hop) {
      if (ring_count[hop] == 0) continue;
      float inv = 1.0f / static_cast<float>(ring_count[hop]);
      float* block = row + base * hop;
      for (size_t i = 0; i < base; ++i) block[i] *= inv;
    }
  }
  return features;
}

}  // namespace neursc
