#include "core/active_learner.h"

#include <algorithm>
#include <memory>
#include <numeric>

#include "common/logging.h"
#include "matching/enumeration.h"

namespace neursc {

namespace {

// Local q-error (src/eval depends on src/core, so core cannot pull
// eval/metrics.h in).
double PairwiseQError(double a, double b) {
  double x = std::max(1.0, a);
  double y = std::max(1.0, b);
  return std::max(x / y, y / x);
}

}  // namespace

ActiveLearner::ActiveLearner(const Graph& data, ModelHooks hooks,
                             Options options)
    : data_(data), hooks_(std::move(hooks)), options_(options) {}

Result<std::vector<TrainingExample>> ActiveLearner::Run(
    std::vector<TrainingExample> labeled,
    const std::vector<Graph>& unlabeled_pool) {
  if (labeled.empty()) {
    return Status::InvalidArgument("need a non-empty initial labeled set");
  }
  std::vector<bool> taken(unlabeled_pool.size(), false);

  for (size_t round = 0; round < options_.rounds; ++round) {
    // Ensemble predictions on the remaining pool.
    std::vector<std::vector<double>> member_predictions(
        options_.ensemble_size);
    for (size_t member = 0; member < options_.ensemble_size; ++member) {
      hooks_.reset(options_.seed + 1000 * round + member);
      NEURSC_RETURN_IF_ERROR(hooks_.train(labeled));
      member_predictions[member].assign(unlabeled_pool.size(), -1.0);
      // Prefer the batch hook: one call covers the whole remaining pool
      // (NeurSC schedules every query's substructures into one shared
      // work pool). A failed batch falls back to the per-query loop —
      // NeurSC's EstimateBatch returns prepare-phase errors before
      // consuming any estimator randomness, so the fallback sees the
      // same RNG state sequential estimates always did.
      bool scored = false;
      if (hooks_.estimate_batch) {
        std::vector<size_t> open_indices;
        std::vector<Graph> open_queries;
        for (size_t i = 0; i < unlabeled_pool.size(); ++i) {
          if (taken[i]) continue;
          open_indices.push_back(i);
          open_queries.push_back(unlabeled_pool[i]);
        }
        auto batch = hooks_.estimate_batch(open_queries);
        if (batch.ok()) {
          NEURSC_CHECK(batch->size() == open_indices.size());
          for (size_t k = 0; k < open_indices.size(); ++k) {
            member_predictions[member][open_indices[k]] = (*batch)[k];
          }
          scored = true;
        }
      }
      if (!scored) {
        for (size_t i = 0; i < unlabeled_pool.size(); ++i) {
          if (taken[i]) continue;
          auto est = hooks_.estimate(unlabeled_pool[i]);
          if (est.ok()) member_predictions[member][i] = *est;
        }
      }
    }

    // Disagreement = max pairwise q-error between member predictions.
    last_scores_.assign(unlabeled_pool.size(), 0.0);
    for (size_t i = 0; i < unlabeled_pool.size(); ++i) {
      if (taken[i]) continue;
      double score = 0.0;
      for (size_t a = 0; a < options_.ensemble_size; ++a) {
        for (size_t b = a + 1; b < options_.ensemble_size; ++b) {
          double pa = member_predictions[a][i];
          double pb = member_predictions[b][i];
          if (pa < 0.0 || pb < 0.0) continue;
          score = std::max(score, PairwiseQError(pa, pb));
        }
      }
      last_scores_[i] = score;
    }

    // Acquire the most uncertain queries and label them with the oracle.
    std::vector<size_t> order(unlabeled_pool.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return last_scores_[a] > last_scores_[b];
    });
    size_t acquired = 0;
    for (size_t i : order) {
      if (acquired >= options_.acquisitions_per_round) break;
      if (taken[i] || last_scores_[i] <= 0.0) continue;
      EnumerationOptions eopts;
      eopts.time_limit_seconds = options_.oracle_time_limit_seconds;
      auto counted =
          CountSubgraphIsomorphisms(unlabeled_pool[i], data_, eopts);
      if (!counted.ok() || !counted->exact) continue;  // over budget: skip
      taken[i] = true;
      labeled.push_back(TrainingExample{
          unlabeled_pool[i], static_cast<double>(counted->count)});
      ++acquired;
    }
    NEURSC_LOG(Debug) << "active round " << round << ": acquired "
                      << acquired << " queries (pool "
                      << unlabeled_pool.size() << ")";
    if (acquired == 0) break;  // pool exhausted or oracle starved
  }

  // Final training pass on the enlarged labeled set with the base seed.
  hooks_.reset(options_.seed);
  NEURSC_RETURN_IF_ERROR(hooks_.train(labeled));
  return labeled;
}

ActiveLearner::ModelHooks MakeNeurSCHooks(
    std::unique_ptr<NeurSCEstimator>* slot, const Graph& data,
    NeurSCConfig config) {
  ActiveLearner::ModelHooks hooks;
  // One Prepared cache across every reset/train cycle: extraction and
  // feature initialization depend only on (data graph, query, config), not
  // on the estimator seed, so all ensemble members and all later rounds
  // reuse each labeled query's extraction instead of redoing it.
  auto cache = std::make_shared<PreparedQueryCache>();
  hooks.reset = [slot, &data, config](uint64_t seed) {
    NeurSCConfig seeded = config;
    seeded.seed = seed;
    *slot = std::make_unique<NeurSCEstimator>(data, seeded);
  };
  hooks.train = [slot, cache](const std::vector<TrainingExample>& examples) {
    auto stats = (*slot)->Train(examples, cache.get());
    return stats.ok() ? Status::OK() : stats.status();
  };
  hooks.estimate = [slot](const Graph& query) -> Result<double> {
    auto info = (*slot)->Estimate(query);
    if (!info.ok()) return info.status();
    return info->count;
  };
  hooks.estimate_batch =
      [slot](const std::vector<Graph>& queries) -> Result<std::vector<double>> {
    auto infos = (*slot)->EstimateBatch(queries);
    if (!infos.ok()) return infos.status();
    std::vector<double> counts;
    counts.reserve(infos->size());
    for (const EstimateInfo& info : *infos) counts.push_back(info.count);
    return counts;
  };
  return hooks;
}

}  // namespace neursc
