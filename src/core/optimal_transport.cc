#include "core/optimal_transport.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace neursc {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

std::vector<size_t> SolveAssignment(const Matrix& cost) {
  const size_t n = cost.rows();
  const size_t m = cost.cols();
  NEURSC_CHECK(n <= m) << "assignment needs rows <= cols";

  // Jonker-Volgenant / Hungarian with potentials, 1-indexed scratch
  // arrays. p[j] holds the row assigned to column j (0 = none).
  std::vector<double> u(n + 1, 0.0);
  std::vector<double> v(m + 1, 0.0);
  std::vector<size_t> p(m + 1, 0);
  std::vector<size_t> way(m + 1, 0);

  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(m + 1, kInf);
    std::vector<bool> used(m + 1, false);
    do {
      used[j0] = true;
      size_t i0 = p[j0];
      double delta = kInf;
      size_t j1 = 0;
      for (size_t j = 1; j <= m; ++j) {
        if (used[j]) continue;
        double cur = cost.at(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Augment along the alternating path.
    do {
      size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<size_t> assignment(n, 0);
  for (size_t j = 1; j <= m; ++j) {
    if (p[j] != 0) assignment[p[j] - 1] = j - 1;
  }
  return assignment;
}

double AssignmentCost(const Matrix& cost,
                      const std::vector<size_t>& assignment) {
  double total = 0.0;
  for (size_t i = 0; i < assignment.size(); ++i) {
    total += cost.at(i, assignment[i]);
  }
  return total;
}

double ExactWasserstein1(const Matrix& a, const Matrix& b) {
  NEURSC_CHECK(a.cols() == b.cols());
  NEURSC_CHECK(a.rows() <= b.rows());
  Matrix cost(a.rows(), b.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.rows(); ++j) {
      double s = 0.0;
      for (size_t c = 0; c < a.cols(); ++c) {
        double d = static_cast<double>(a.at(i, c)) - b.at(j, c);
        s += d * d;
      }
      cost.at(i, j) = static_cast<float>(std::sqrt(s));
    }
  }
  auto assignment = SolveAssignment(cost);
  return AssignmentCost(cost, assignment) /
         static_cast<double>(std::max<size_t>(a.rows(), 1));
}

Correspondence SelectCorrespondenceByExactOt(
    const Matrix& query_repr, const Matrix& sub_repr,
    const std::vector<std::vector<VertexId>>& candidates) {
  const size_t nq = query_repr.rows();
  const size_t ns = sub_repr.rows();
  Correspondence pairs;
  if (nq == 0 || ns == 0 || nq > ns) return pairs;

  // Large-but-finite penalty keeps the problem feasible even when a
  // query vertex has no candidate inside this substructure.
  const float kPenalty = 1e6f;
  Matrix cost(nq, ns, kPenalty);
  for (size_t u = 0; u < nq && u < candidates.size(); ++u) {
    for (VertexId v : candidates[u]) {
      double s = 0.0;
      for (size_t c = 0; c < query_repr.cols(); ++c) {
        double d = static_cast<double>(query_repr.at(u, c)) -
                   sub_repr.at(v, c);
        s += d * d;
      }
      cost.at(u, v) = static_cast<float>(std::sqrt(s));
    }
  }
  auto assignment = SolveAssignment(cost);
  for (size_t u = 0; u < nq; ++u) {
    if (cost.at(u, assignment[u]) >= kPenalty) continue;  // no candidate
    pairs.query_rows.push_back(static_cast<uint32_t>(u));
    pairs.sub_rows.push_back(static_cast<uint32_t>(assignment[u]));
  }
  return pairs;
}

}  // namespace neursc
