#ifndef NEURSC_CORE_WEST_H_
#define NEURSC_CORE_WEST_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "matching/substructure.h"
#include "nn/modules.h"
#include "nn/tape.h"

namespace neursc {

/// Hyperparameters of the WEst estimation network (Sec. 6.1 defaults,
/// scaled down for in-harness runs; the paper's values are 128-dim hidden
/// layers).
/// Intra-graph GNN flavor. The paper selects GIN for its WL-level
/// expressive power (Sec. 5.2); the mean aggregator is the weaker contrast
/// arm of that ablation.
enum class IntraGnnKind { kGin, kMeanAggregator };

struct WEstConfig {
  /// k of Eq. 1 (neighborhood hops pooled into initial features).
  size_t feature_hops = 1;
  /// Intra-graph layer type.
  IntraGnnKind intra_kind = IntraGnnKind::kGin;
  /// K: intra-graph GIN layers.
  size_t intra_layers = 2;
  /// dim_K: intra-graph output dimension.
  size_t intra_dim = 32;
  /// K': inter-graph attention layers.
  size_t inter_layers = 2;
  /// dim_K': inter-graph output dimension.
  size_t inter_dim = 32;
  /// Hidden width of the 4-layer prediction MLP.
  size_t predictor_hidden = 64;
  size_t predictor_layers = 4;
  /// Disables the inter-graph branch (the NeurSC-I ablation).
  bool use_inter = true;
  uint64_t seed = 1234;
};

/// The WEst estimation network f_theta (Alg. 2): a GIN branch over each
/// graph individually, an attention branch over the query/candidate
/// bipartite graph, sum-pooling readouts, and an MLP regressor. The
/// regressor produces a log-scale scalar mapped through exp() so the count
/// estimate is positive and the q-error loss is scale-free.
class WEstModel : public Module {
 public:
  /// `input_dim` is the initial feature dimension dim_0 (from
  /// FeatureInitializer::FeatureDim()).
  WEstModel(size_t input_dim, const WEstConfig& config);

  /// Output of one forward pass on a (query, substructure) pair.
  struct Forwarded {
    /// Final per-vertex representations H_q (|V(q)| x D).
    Var query_repr;
    /// Final per-vertex representations H_sub (|V(G_sub)| x D).
    Var sub_repr;
    /// Positive scalar count estimate c_hat_sub (1x1).
    Var prediction;
  };

  /// Runs Alg. 2 on `ctx` — the autograd Tape when training, the tape-free
  /// EvalContext when serving (both produce bit-identical values; see
  /// docs/execution.md). `query_features`/`sub_features` are the Eq. 1
  /// features; `sub` supplies the bipartite candidate edges. `rng` breaks
  /// bipartite-graph disconnection by random linking edges (Sec. 5.3).
  template <typename Ctx>
  Forwarded Forward(Ctx* ctx, const Graph& query,
                    const Substructure& sub, const Matrix& query_features,
                    const Matrix& sub_features, Rng* rng);

  /// Per-vertex representation dimension D (intra + inter when enabled).
  size_t ReprDim() const;

  std::vector<Parameter*> Parameters() override;

  const WEstConfig& config() const { return config_; }

 private:
  template <typename Ctx>
  Var IntraForward(Ctx* ctx, size_t layer, Var h, const EdgeIndex& edges);

  WEstConfig config_;
  std::vector<std::unique_ptr<GinLayer>> intra_gin_;
  std::vector<std::unique_ptr<MeanAggregatorLayer>> intra_mean_;
  std::vector<std::unique_ptr<BipartiteAttentionLayer>> inter_;
  std::unique_ptr<Mlp> predictor_;
};

/// Builds the bipartite message-passing edge list of Sec. 5.3 over the
/// combined vertex space [query vertices | substructure vertices]: an edge
/// (u, |V(q)|+v) in both directions for every candidate v of u, plus random
/// linking edges (drawn with `rng`) until the bipartite graph is connected
/// over all vertices that would otherwise be isolated components.
EdgeIndex BuildBipartiteEdges(const Graph& query, const Substructure& sub,
                              Rng* rng);

}  // namespace neursc

#endif  // NEURSC_CORE_WEST_H_
