#include "core/neursc.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/trace.h"
#include "nn/serialize.h"

namespace neursc {

namespace {

/// Substructure standing in for the whole data graph ("w/o SE" ablation).
Substructure WholeGraphSubstructure(const Graph& data, size_t num_query) {
  Substructure s;
  s.graph = data;
  s.original_id.resize(data.NumVertices());
  std::iota(s.original_id.begin(), s.original_id.end(), 0u);
  s.local_candidates.assign(num_query, {});
  return s;
}

}  // namespace

NeurSCEstimator::NeurSCEstimator(const Graph& data, NeurSCConfig config)
    : data_(data),
      config_(std::move(config)),
      features_(data, config_.west.feature_hops),
      rng_(config_.seed) {
  if (!config_.use_substructure_extraction) {
    // Without extraction there are no candidate sets, so neither the
    // bipartite inter network nor the discriminator is applicable
    // (Sec. 6.2's "NeurSC w/o SE" runs intra-only).
    config_.west.use_inter = false;
    config_.use_discriminator = false;
  }
  config_.west.seed = config_.seed;
  model_ = std::make_unique<WEstModel>(features_.FeatureDim(), config_.west);
  if (config_.use_discriminator) {
    critic_ = std::make_unique<Discriminator>(
        model_->ReprDim(), config_.disc_hidden, config_.disc_clip,
        config_.seed + 1);
    AdamOptimizer::Options omega_options;
    omega_options.learning_rate = config_.disc_learning_rate;
    opt_omega_ = std::make_unique<AdamOptimizer>(critic_->Parameters(),
                                                 omega_options);
  }
  AdamOptimizer::Options theta_options;
  theta_options.learning_rate = config_.learning_rate;
  opt_theta_ =
      std::make_unique<AdamOptimizer>(model_->Parameters(), theta_options);
}

Result<NeurSCEstimator::Prepared> NeurSCEstimator::Prepare(
    const Graph& query) {
  Prepared prep;
  if (config_.use_substructure_extraction) {
    auto extraction = ExtractSubstructures(query, data_, config_.filter);
    if (!extraction.ok()) return extraction.status();
    prep.extraction = std::move(extraction).value();
  } else {
    prep.extraction.early_terminate = false;
    prep.extraction.substructures.push_back(
        WholeGraphSubstructure(data_, query.NumVertices()));
  }
  prep.query_features = features_.Compute(query);
  prep.sub_features.reserve(prep.extraction.substructures.size());
  for (const auto& sub : prep.extraction.substructures) {
    prep.sub_features.push_back(features_.Compute(sub.graph));
  }
  return prep;
}

void NeurSCEstimator::UpdateCritic(
    const Matrix& query_repr, const Matrix& sub_repr,
    const std::vector<std::vector<VertexId>>& candidates) {
  NEURSC_SPAN(critic_span, "train/critic");
  NEURSC_COUNTER_ADD("train.critic_updates", config_.disc_iters);
  for (int it = 0; it < config_.disc_iters; ++it) {
    Tape tape;
    Var hq = tape.Constant(query_repr);
    Var hs = tape.Constant(sub_repr);
    Var sq = critic_->Score(&tape, hq);
    Var ss = critic_->Score(&tape, hs);
    Correspondence pairs = SelectCorrespondenceByScores(
        tape.Value(sq), tape.Value(ss), candidates);
    if (pairs.size() == 0) return;
    Var lw = WassersteinLoss(&tape, sq, ss, pairs);
    // The critic maximizes L_w, i.e. minimizes -L_w.
    Var loss = tape.Scale(lw, -1.0f);
    opt_omega_->ZeroGrad();
    tape.Backward(loss);
    opt_omega_->Step();
    opt_omega_->ZeroGrad();
    critic_->ClampWeights();
  }
}

Var NeurSCEstimator::BuildQueryLoss(Tape* tape, const Graph& query,
                                    const Prepared& prep,
                                    double target_count, bool adversarial) {
  const auto& subs = prep.extraction.substructures;
  if (prep.extraction.early_terminate || subs.empty()) return Var{};

  Var total_prediction{};
  std::vector<Var> wasserstein_terms;
  for (size_t j = 0; j < subs.size(); ++j) {
    auto fw = model_->Forward(tape, query, subs[j], prep.query_features,
                              prep.sub_features[j], &rng_);
    total_prediction = total_prediction.valid()
                           ? tape->Add(total_prediction, fw.prediction)
                           : fw.prediction;
    if (adversarial && config_.use_discriminator) {
      if (config_.metric == DistanceMetric::kWasserstein) {
        // Inner maximization on detached representations, then the
        // estimator-side L_w term on the live graph.
        UpdateCritic(tape->Value(fw.query_repr), tape->Value(fw.sub_repr),
                     subs[j].local_candidates);
        Var sq = critic_->Score(tape, fw.query_repr);
        Var ss = critic_->Score(tape, fw.sub_repr);
        Correspondence pairs = SelectCorrespondenceByScores(
            tape->Value(sq), tape->Value(ss), subs[j].local_candidates);
        if (pairs.size() > 0) {
          wasserstein_terms.push_back(
              WassersteinLoss(tape, sq, ss, pairs));
        }
      } else {
        Correspondence pairs = SelectCorrespondenceByDistance(
            tape->Value(fw.query_repr), tape->Value(fw.sub_repr),
            subs[j].local_candidates, config_.metric);
        if (pairs.size() > 0) {
          wasserstein_terms.push_back(PairDistanceLoss(
              tape, fw.query_repr, fw.sub_repr, pairs, config_.metric));
        }
      }
    }
  }

  Var loss = tape->QErrorLoss(total_prediction, target_count);
  if (!wasserstein_terms.empty()) {
    Var lw_sum = wasserstein_terms[0];
    for (size_t i = 1; i < wasserstein_terms.size(); ++i) {
      lw_sum = tape->Add(lw_sum, wasserstein_terms[i]);
    }
    // Eq. 11 with the estimator *minimizing* the Wasserstein distance
    // estimate (the generator side of the WGAN game): the L_w term enters
    // with +beta/|G_sub| so that gradient descent pulls corresponding
    // query/data representations together.
    float w = static_cast<float>(config_.beta /
                                 static_cast<double>(subs.size()));
    loss = tape->Add(tape->Scale(loss, 1.0f - static_cast<float>(config_.beta)),
                     tape->Scale(lw_sum, w));
  }
  return loss;
}

Result<TrainStats> NeurSCEstimator::Train(
    const std::vector<TrainingExample>& examples) {
  if (examples.empty()) {
    return Status::InvalidArgument("no training examples");
  }
  NEURSC_SPAN(train_span, "train/total");
  TrainStats stats;

  // Extraction and feature initialization are query-deterministic: do them
  // once (Alg. 3 recomputes per epoch; hoisting is purely an optimization).
  NEURSC_SPAN(prepare_span, "train/prepare");
  std::vector<Prepared> prepared;
  std::vector<const TrainingExample*> usable;
  prepared.reserve(examples.size());
  for (const auto& example : examples) {
    auto prep = Prepare(example.query);
    if (!prep.ok()) return prep.status();
    if (prep->extraction.early_terminate ||
        prep->extraction.substructures.empty()) {
      ++stats.examples_skipped;
      continue;
    }
    prepared.push_back(std::move(prep).value());
    usable.push_back(&example);
  }
  prepare_span.End();
  if (usable.empty()) {
    return Status::InvalidArgument(
        "all training examples early-terminated during extraction");
  }
  stats.examples_used = usable.size();

  std::vector<size_t> indices(usable.size());
  std::iota(indices.begin(), indices.end(), 0);

  // Validation split for early stopping (held out of the training set).
  std::vector<size_t> validation;
  if (config_.validation_fraction > 0.0 && usable.size() >= 4) {
    rng_.Shuffle(&indices);
    size_t held = std::max<size_t>(
        1, static_cast<size_t>(config_.validation_fraction *
                               static_cast<double>(indices.size())));
    held = std::min(held, indices.size() - 1);
    validation.assign(indices.end() - static_cast<ptrdiff_t>(held),
                      indices.end());
    indices.resize(indices.size() - held);
  }
  auto validation_qerror = [&]() {
    double total = 0.0;
    size_t n = 0;
    for (size_t idx : validation) {
      Tape tape;
      Var loss = BuildQueryLoss(&tape, usable[idx]->query, prepared[idx],
                                usable[idx]->count, /*adversarial=*/false);
      if (!loss.valid()) continue;
      total += tape.Value(loss).scalar();
      ++n;
    }
    return n > 0 ? total / static_cast<double>(n) : 0.0;
  };
  double best_validation = 1e300;
  size_t epochs_since_best = 0;
  std::vector<Matrix> best_weights;

  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    NEURSC_SPAN(epoch_span, "train/epoch");
    bool adversarial = epoch >= config_.pretrain_epochs;
    rng_.Shuffle(&indices);
    double loss_sum = 0.0;
    size_t loss_count = 0;
    for (size_t start = 0; start < indices.size();
         start += config_.batch_size) {
      NEURSC_SPAN(batch_span, "train/batch");
      NEURSC_COUNTER_INC("train.batches");
      size_t end = std::min(start + config_.batch_size, indices.size());
      opt_theta_->ZeroGrad();
      if (opt_omega_ != nullptr) opt_omega_->ZeroGrad();
      for (size_t i = start; i < end; ++i) {
        size_t idx = indices[i];
        Tape tape;
        Var loss = BuildQueryLoss(&tape, usable[idx]->query, prepared[idx],
                                  usable[idx]->count, adversarial);
        if (!loss.valid()) continue;
        loss_sum += tape.Value(loss).scalar();
        ++loss_count;
        tape.Backward(loss);
      }
      // The estimator step must not consume gradients that leaked into the
      // critic during the combined backward pass.
      if (opt_omega_ != nullptr) opt_omega_->ZeroGrad();
      opt_theta_->ClipGradNorm(config_.grad_clip_norm);
      opt_theta_->Step();
      opt_theta_->ZeroGrad();
    }
    epoch_span.End();
    stats.epoch_mean_loss.push_back(loss_count > 0 ? loss_sum / loss_count
                                                   : 0.0);
    stats.epoch_seconds.push_back(epoch_span.ElapsedSeconds());
    NEURSC_LOG(Debug) << "epoch " << epoch << (adversarial ? " [adv]" : "")
                      << " mean loss " << stats.epoch_mean_loss.back();

    if (!validation.empty()) {
      NEURSC_SPAN(validation_span, "train/validation");
      double v = validation_qerror();
      stats.epoch_validation_qerror.push_back(v);
      if (v < best_validation - 1e-9) {
        best_validation = v;
        epochs_since_best = 0;
        best_weights.clear();
        for (Parameter* p : model_->Parameters()) {
          best_weights.push_back(p->value);
        }
      } else if (++epochs_since_best >= config_.early_stop_patience) {
        stats.early_stopped = true;
        break;
      }
    }
  }
  // Restore the best-validation weights if early stopping tracked any.
  if (!best_weights.empty()) {
    auto params = model_->Parameters();
    for (size_t i = 0; i < params.size() && i < best_weights.size(); ++i) {
      params[i]->value = best_weights[i];
    }
  }
  train_span.End();
  stats.total_seconds = train_span.ElapsedSeconds();
  NEURSC_COUNTER_ADD("train.examples_used",
                     static_cast<int64_t>(stats.examples_used));
  NEURSC_COUNTER_ADD("train.examples_skipped",
                     static_cast<int64_t>(stats.examples_skipped));
  return stats;
}

namespace {

std::vector<Parameter*> AllModelParameters(WEstModel* model,
                                           Discriminator* critic) {
  std::vector<Parameter*> params = model->Parameters();
  if (critic != nullptr) {
    for (Parameter* p : critic->Parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace

Status NeurSCEstimator::SaveModel(const std::string& path) {
  return SaveParametersToFile(AllModelParameters(model_.get(), critic_.get()),
                              path);
}

Status NeurSCEstimator::LoadModel(const std::string& path) {
  return LoadParametersFromFile(
      AllModelParameters(model_.get(), critic_.get()), path);
}

Result<EstimateInfo> NeurSCEstimator::Estimate(const Graph& query) {
  NEURSC_SPAN(estimate_span, "estimate/total");
  NEURSC_COUNTER_INC("estimate.queries");

  NEURSC_SPAN(prepare_span, "estimate/prepare");
  auto prep = Prepare(query);
  prepare_span.End();
  if (!prep.ok()) return prep.status();
  EstimateInfo info;
  info.extraction_seconds = prepare_span.ElapsedSeconds();
  info.num_substructures = prep->extraction.substructures.size();
  if (prep->extraction.early_terminate ||
      prep->extraction.substructures.empty()) {
    NEURSC_COUNTER_INC("estimate.early_terminated");
    info.early_terminated = true;
    info.count = 0.0;
    estimate_span.End();
    info.total_seconds = estimate_span.ElapsedSeconds();
    return info;
  }

  // Sec. 5.8: evaluate a uniform sample of ceil(r_s * |G_sub|)
  // substructures and scale the sum by the inverse sampling fraction.
  const size_t total = prep->extraction.substructures.size();
  size_t used = total;
  std::vector<size_t> selected(total);
  std::iota(selected.begin(), selected.end(), 0);
  if (config_.sample_rate < 1.0 && total > 1) {
    used = static_cast<size_t>(
        std::ceil(config_.sample_rate * static_cast<double>(total)));
    used = std::max<size_t>(1, std::min(used, total));
    rng_.Shuffle(&selected);
    selected.resize(used);
  }
  info.num_used = used;
  NEURSC_COUNTER_ADD("estimate.substructures_evaluated",
                     static_cast<int64_t>(used));

  NEURSC_SPAN(infer_span, "estimate/infer");
  double sum = 0.0;
  for (size_t idx : selected) {
    NEURSC_SPAN(substructure_span, "estimate/substructure");
    Tape tape;
    auto fw = model_->Forward(&tape, query,
                              prep->extraction.substructures[idx],
                              prep->query_features, prep->sub_features[idx],
                              &rng_);
    sum += tape.Value(fw.prediction).scalar();
  }
  infer_span.End();
  info.count = sum * static_cast<double>(total) / static_cast<double>(used);
  info.inference_seconds = infer_span.ElapsedSeconds();
  estimate_span.End();
  info.total_seconds = estimate_span.ElapsedSeconds();
  return info;
}

Result<EstimateInfo> NeurSCEstimator::EstimateOnSubstructures(
    const Graph& query, const ExtractionResult& ext) {
  NEURSC_SPAN(estimate_span, "estimate/total");
  EstimateInfo info;
  info.num_substructures = ext.substructures.size();
  if (ext.early_terminate || ext.substructures.empty()) {
    info.early_terminated = true;
    estimate_span.End();
    info.total_seconds = estimate_span.ElapsedSeconds();
    return info;
  }
  NEURSC_SPAN(infer_span, "estimate/infer");
  Matrix query_features = features_.Compute(query);
  double sum = 0.0;
  for (const auto& sub : ext.substructures) {
    NEURSC_SPAN(substructure_span, "estimate/substructure");
    Tape tape;
    Matrix sub_features = features_.Compute(sub.graph);
    auto fw = model_->Forward(&tape, query, sub, query_features,
                              sub_features, &rng_);
    sum += tape.Value(fw.prediction).scalar();
  }
  infer_span.End();
  info.num_used = ext.substructures.size();
  info.count = sum;
  info.inference_seconds = infer_span.ElapsedSeconds();
  estimate_span.End();
  info.total_seconds = estimate_span.ElapsedSeconds();
  return info;
}

}  // namespace neursc
