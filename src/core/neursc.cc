#include "core/neursc.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <optional>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/parallel.h"
#include "common/trace.h"
#include "nn/serialize.h"

namespace neursc {

namespace {

/// Substructure standing in for the whole data graph ("w/o SE" ablation).
Substructure WholeGraphSubstructure(const Graph& data, size_t num_query) {
  Substructure s;
  s.graph = data;
  s.original_id.resize(data.NumVertices());
  std::iota(s.original_id.begin(), s.original_id.end(), 0u);
  s.local_candidates.assign(num_query, {});
  return s;
}

}  // namespace

NeurSCEstimator::NeurSCEstimator(const Graph& data, NeurSCConfig config)
    : data_(data),
      config_(std::move(config)),
      features_(data, config_.west.feature_hops),
      rng_(config_.seed) {
  if (!config_.use_substructure_extraction) {
    // Without extraction there are no candidate sets, so neither the
    // bipartite inter network nor the discriminator is applicable
    // (Sec. 6.2's "NeurSC w/o SE" runs intra-only).
    config_.west.use_inter = false;
    config_.use_discriminator = false;
  }
  config_.west.seed = config_.seed;
  model_ = std::make_unique<WEstModel>(features_.FeatureDim(), config_.west);
  if (config_.use_discriminator) {
    critic_ = std::make_unique<Discriminator>(
        model_->ReprDim(), config_.disc_hidden, config_.disc_clip,
        config_.seed + 1);
    AdamOptimizer::Options omega_options;
    omega_options.learning_rate = config_.disc_learning_rate;
    opt_omega_ = std::make_unique<AdamOptimizer>(critic_->Parameters(),
                                                 omega_options);
  }
  AdamOptimizer::Options theta_options;
  theta_options.learning_rate = config_.learning_rate;
  opt_theta_ =
      std::make_unique<AdamOptimizer>(model_->Parameters(), theta_options);
}

Result<NeurSCEstimator::Prepared> NeurSCEstimator::Prepare(
    const Graph& query) {
  Prepared prep;
  if (config_.use_substructure_extraction) {
    auto extraction = ExtractSubstructures(query, data_, config_.filter);
    if (!extraction.ok()) return extraction.status();
    prep.extraction = std::move(extraction).value();
  } else {
    prep.extraction.early_terminate = false;
    prep.extraction.substructures.push_back(
        WholeGraphSubstructure(data_, query.NumVertices()));
  }
  prep.query_features = features_.Compute(query);
  prep.sub_features.reserve(prep.extraction.substructures.size());
  for (const auto& sub : prep.extraction.substructures) {
    prep.sub_features.push_back(features_.Compute(sub.graph));
  }
  return prep;
}

void NeurSCEstimator::UpdateCritic(
    const Matrix& query_repr, const Matrix& sub_repr,
    const std::vector<std::vector<VertexId>>& candidates) {
  NEURSC_SPAN(critic_span, "train/critic");
  NEURSC_COUNTER_ADD("train.critic_updates", config_.disc_iters);
  for (int it = 0; it < config_.disc_iters; ++it) {
    Tape tape;
    Var hq = tape.Constant(query_repr);
    Var hs = tape.Constant(sub_repr);
    Var sq = critic_->Score(&tape, hq);
    Var ss = critic_->Score(&tape, hs);
    Correspondence pairs = SelectCorrespondenceByScores(
        tape.Value(sq), tape.Value(ss), candidates);
    if (pairs.size() == 0) return;
    Var lw = WassersteinLoss(&tape, sq, ss, pairs);
    // The critic maximizes L_w, i.e. minimizes -L_w.
    Var loss = tape.Scale(lw, -1.0f);
    opt_omega_->ZeroGrad();
    tape.Backward(loss);
    opt_omega_->Step();
    opt_omega_->ZeroGrad();
    critic_->ClampWeights();
  }
}

template <typename Ctx>
Var NeurSCEstimator::BuildQueryLoss(
    Ctx* ctx, const Graph& query, const Prepared& prep, double target_count,
    bool adversarial, Rng* rng,
    std::vector<CriticUpdateInput>* critic_inputs) {
  const auto& subs = prep.extraction.substructures;
  if (prep.extraction.early_terminate || subs.empty()) return Var{};

  Var total_prediction{};
  std::vector<Var> wasserstein_terms;
  for (size_t j = 0; j < subs.size(); ++j) {
    auto fw = model_->Forward(ctx, query, subs[j], prep.query_features,
                              prep.sub_features[j], rng);
    total_prediction = total_prediction.valid()
                           ? ctx->Add(total_prediction, fw.prediction)
                           : fw.prediction;
    if (adversarial && config_.use_discriminator) {
      if (config_.metric == DistanceMetric::kWasserstein) {
        // The critic is read frozen here (its parameters may be shared
        // with other tapes running concurrently); the inner maximization
        // runs serially after the batch's parallel region, on the
        // detached representations captured for the caller below.
        if (critic_inputs != nullptr) {
          critic_inputs->push_back(CriticUpdateInput{
              j, ctx->Value(fw.query_repr), ctx->Value(fw.sub_repr)});
        }
        Var sq = critic_->Score(ctx, fw.query_repr);
        Var ss = critic_->Score(ctx, fw.sub_repr);
        Correspondence pairs = SelectCorrespondenceByScores(
            ctx->Value(sq), ctx->Value(ss), subs[j].local_candidates);
        if (pairs.size() > 0) {
          wasserstein_terms.push_back(
              WassersteinLoss(ctx, sq, ss, pairs));
        }
      } else {
        Correspondence pairs = SelectCorrespondenceByDistance(
            ctx->Value(fw.query_repr), ctx->Value(fw.sub_repr),
            subs[j].local_candidates, config_.metric);
        if (pairs.size() > 0) {
          wasserstein_terms.push_back(PairDistanceLoss(
              ctx, fw.query_repr, fw.sub_repr, pairs, config_.metric));
        }
      }
    }
  }

  Var loss = ctx->QErrorLoss(total_prediction, target_count);
  if (!wasserstein_terms.empty()) {
    Var lw_sum = wasserstein_terms[0];
    for (size_t i = 1; i < wasserstein_terms.size(); ++i) {
      lw_sum = ctx->Add(lw_sum, wasserstein_terms[i]);
    }
    // Eq. 11 with the estimator *minimizing* the Wasserstein distance
    // estimate (the generator side of the WGAN game): the L_w term enters
    // with +beta/|G_sub| so that gradient descent pulls corresponding
    // query/data representations together.
    float w = static_cast<float>(config_.beta /
                                 static_cast<double>(subs.size()));
    loss = ctx->Add(ctx->Scale(loss, 1.0f - static_cast<float>(config_.beta)),
                    ctx->Scale(lw_sum, w));
  }
  return loss;
}

Result<TrainStats> NeurSCEstimator::Train(
    const std::vector<TrainingExample>& examples, PreparedQueryCache* cache) {
  if (examples.empty()) {
    return Status::InvalidArgument("no training examples");
  }
  NEURSC_SPAN(train_span, "train/total");
  TrainStats stats;

  // Extraction and feature initialization are query-deterministic: do them
  // once, in parallel across examples (Alg. 3 recomputes per epoch;
  // hoisting is purely an optimization). Prepare never touches rng_, so
  // running out of order is safe; per-index slots keep the results
  // thread-count independent. With a cache, each query's Prepared data is
  // shared across Train calls.
  NEURSC_SPAN(prepare_span, "train/prepare");
  std::vector<std::shared_ptr<const Prepared>> all_prepared(examples.size());
  std::vector<Status> prepare_status(examples.size());
  ParallelFor(examples.size(), [&](size_t i) {
    uint64_t key = 0;
    if (cache != nullptr) {
      key = examples[i].query.Fingerprint();
      if (auto hit = cache->Lookup(key)) {
        all_prepared[i] = std::move(hit);
        return;
      }
    }
    auto prep = Prepare(examples[i].query);
    if (!prep.ok()) {
      prepare_status[i] = prep.status();
      return;
    }
    auto owned = std::make_shared<const Prepared>(std::move(prep).value());
    all_prepared[i] =
        cache != nullptr ? cache->Insert(key, std::move(owned)) : owned;
  });
  // Lowest-index failure wins, matching the old serial loop's behavior.
  for (const Status& st : prepare_status) {
    if (!st.ok()) return st;
  }
  std::vector<std::shared_ptr<const Prepared>> prepared;
  std::vector<const TrainingExample*> usable;
  prepared.reserve(examples.size());
  for (size_t i = 0; i < examples.size(); ++i) {
    if (all_prepared[i]->extraction.early_terminate ||
        all_prepared[i]->extraction.substructures.empty()) {
      ++stats.examples_skipped;
      continue;
    }
    prepared.push_back(all_prepared[i]);
    usable.push_back(&examples[i]);
  }
  all_prepared.clear();
  prepare_span.End();
  if (usable.empty()) {
    return Status::InvalidArgument(
        "all training examples early-terminated during extraction");
  }
  stats.examples_used = usable.size();

  std::vector<size_t> indices(usable.size());
  std::iota(indices.begin(), indices.end(), 0);

  // Validation split for early stopping (held out of the training set).
  std::vector<size_t> validation;
  if (config_.validation_fraction > 0.0 && usable.size() >= 4) {
    rng_.Shuffle(&indices);
    size_t held = std::max<size_t>(
        1, static_cast<size_t>(config_.validation_fraction *
                               static_cast<double>(indices.size())));
    held = std::min(held, indices.size() - 1);
    validation.assign(indices.end() - static_cast<ptrdiff_t>(held),
                      indices.end());
    indices.resize(indices.size() - held);
  }
  // Tape-size hints (allocation churn): a query's graph structure fixes
  // its node count per (adversarial?) mode, so reserving last time's size
  // removes nodes_ regrowth from the steady state.
  std::vector<size_t> tape_node_hint(usable.size(), 0);

  auto validation_qerror = [&]() {
    // Forward-only, parameters frozen: the held-out losses are
    // independent. Seeds are drawn serially in validation order and the
    // reduction sums in that same order, so the q-error is bit-identical
    // at every thread count. Runs on the configured inference backend —
    // pooled EvalContexts by default (no backward closures, reused
    // arenas), or per-task Tapes when the Tape backend is forced.
    std::vector<uint64_t> seeds = DrawTaskSeeds(validation.size());
    std::vector<double> losses(validation.size(), 0.0);
    std::vector<uint8_t> valid(validation.size(), 0);
    ParallelFor(validation.size(), [&](size_t k) {
      size_t idx = validation[k];
      Rng rng(seeds[k]);
      if (config_.inference_backend == ExecutionBackend::kTape) {
        Tape tape;
        tape.ReserveNodes(tape_node_hint[idx]);
        Var loss = BuildQueryLoss(&tape, usable[idx]->query, *prepared[idx],
                                  usable[idx]->count, /*adversarial=*/false,
                                  &rng, nullptr);
        if (!loss.valid()) return;
        losses[k] = tape.Value(loss).scalar();
        valid[k] = 1;
        tape_node_hint[idx] = tape.NumNodes();
        return;
      }
      auto ctx = eval_pool_.Acquire();
      Var loss = BuildQueryLoss(ctx.get(), usable[idx]->query,
                                *prepared[idx], usable[idx]->count,
                                /*adversarial=*/false, &rng, nullptr);
      if (!loss.valid()) return;
      losses[k] = ctx->Value(loss).scalar();
      valid[k] = 1;
    });
    double total = 0.0;
    size_t n = 0;
    for (size_t k = 0; k < validation.size(); ++k) {
      if (!valid[k]) continue;
      total += losses[k];
      ++n;
    }
    return n > 0 ? total / static_cast<double>(n) : 0.0;
  };
  double best_validation = 1e300;
  size_t epochs_since_best = 0;
  std::vector<Matrix> best_weights;

  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    NEURSC_SPAN(epoch_span, "train/epoch");
    bool adversarial = epoch >= config_.pretrain_epochs;
    // Whether the parallel pass must capture detached representations for
    // the serial critic updates after it.
    const bool wasserstein_updates =
        adversarial && config_.use_discriminator && critic_ != nullptr &&
        config_.metric == DistanceMetric::kWasserstein;
    rng_.Shuffle(&indices);
    double loss_sum = 0.0;
    size_t loss_count = 0;
    for (size_t start = 0; start < indices.size();
         start += config_.batch_size) {
      NEURSC_SPAN(batch_span, "train/batch");
      NEURSC_COUNTER_INC("train.batches");
      size_t end = std::min(start + config_.batch_size, indices.size());
      const size_t batch = end - start;
      opt_theta_->ZeroGrad();
      if (opt_omega_ != nullptr) opt_omega_->ZeroGrad();

      // Forward-pass seeds, drawn serially in batch order, so bipartite
      // linking randomness does not depend on the thread count.
      std::vector<uint64_t> seeds = DrawTaskSeeds(batch);

      // Parallel region: theta and omega are frozen for the whole batch,
      // so the per-example forward+backward passes are independent. Each
      // runs on its own tape with a private Rng and routes its leaf
      // gradients into a tape-local sink instead of Parameter::grad.
      std::vector<GradientSink> sinks(batch);
      std::vector<double> example_loss(batch, 0.0);
      std::vector<uint8_t> has_loss(batch, 0);
      std::vector<std::vector<CriticUpdateInput>> critic_inputs(batch);
      {
        NEURSC_SPAN(parallel_span, "train/batch_parallel");
        ParallelFor(batch, [&](size_t k) {
          size_t idx = indices[start + k];
          Tape tape;
          tape.ReserveNodes(tape_node_hint[idx]);
          tape.set_gradient_sink(&sinks[k]);
          Rng rng(seeds[k]);
          Var loss = BuildQueryLoss(
              &tape, usable[idx]->query, *prepared[idx], usable[idx]->count,
              adversarial, &rng,
              wasserstein_updates ? &critic_inputs[k] : nullptr);
          if (!loss.valid()) return;
          example_loss[k] = tape.Value(loss).scalar();
          has_loss[k] = 1;
          tape.Backward(loss);
          tape_node_hint[idx] = tape.NumNodes();
        });
      }

      // Deterministic reduction: sinks merge into Parameter::grad in
      // example-index order, fixing the float association no matter which
      // worker ran which example.
      for (size_t k = 0; k < batch; ++k) {
        if (has_loss[k]) {
          loss_sum += example_loss[k];
          ++loss_count;
        }
        sinks[k].ReduceIntoParameters();
      }
      // The estimator step must not consume gradients that leaked into the
      // critic during the combined backward passes.
      if (opt_omega_ != nullptr) opt_omega_->ZeroGrad();
      // Critic inner maximization (Alg. 3 lines 10-12), serial by design:
      // disc_iters is small, every update mutates omega, and the fixed
      // (example, substructure) order keeps the critic's trajectory
      // thread-count independent. The estimator-side L_w above used the
      // batch-start critic; these updates take effect from the next batch.
      if (wasserstein_updates) {
        for (size_t k = 0; k < batch; ++k) {
          size_t idx = indices[start + k];
          const auto& subs = prepared[idx]->extraction.substructures;
          for (const CriticUpdateInput& input : critic_inputs[k]) {
            UpdateCritic(input.query_repr, input.sub_repr,
                         subs[input.sub_index].local_candidates);
          }
        }
      }
      opt_theta_->ClipGradNorm(config_.grad_clip_norm);
      opt_theta_->Step();
      opt_theta_->ZeroGrad();
    }
    epoch_span.End();
    stats.epoch_mean_loss.push_back(loss_count > 0 ? loss_sum / loss_count
                                                   : 0.0);
    stats.epoch_seconds.push_back(epoch_span.ElapsedSeconds());
    NEURSC_LOG(Debug) << "epoch " << epoch << (adversarial ? " [adv]" : "")
                      << " mean loss " << stats.epoch_mean_loss.back();

    if (!validation.empty()) {
      NEURSC_SPAN(validation_span, "train/validation");
      double v = validation_qerror();
      stats.epoch_validation_qerror.push_back(v);
      if (v < best_validation - 1e-9) {
        best_validation = v;
        epochs_since_best = 0;
        best_weights.clear();
        for (Parameter* p : model_->Parameters()) {
          best_weights.push_back(p->value);
        }
      } else if (++epochs_since_best >= config_.early_stop_patience) {
        stats.early_stopped = true;
        break;
      }
    }
  }
  // Restore the best-validation weights if early stopping tracked any.
  if (!best_weights.empty()) {
    auto params = model_->Parameters();
    for (size_t i = 0; i < params.size() && i < best_weights.size(); ++i) {
      params[i]->value = best_weights[i];
    }
  }
  train_span.End();
  stats.total_seconds = train_span.ElapsedSeconds();
  NEURSC_COUNTER_ADD("train.examples_used",
                     static_cast<int64_t>(stats.examples_used));
  NEURSC_COUNTER_ADD("train.examples_skipped",
                     static_cast<int64_t>(stats.examples_skipped));
  return stats;
}

namespace {

std::vector<Parameter*> AllModelParameters(WEstModel* model,
                                           Discriminator* critic) {
  std::vector<Parameter*> params = model->Parameters();
  if (critic != nullptr) {
    for (Parameter* p : critic->Parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace

Status NeurSCEstimator::SaveModel(const std::string& path) {
  return SaveParametersToFile(AllModelParameters(model_.get(), critic_.get()),
                              path);
}

Status NeurSCEstimator::LoadModel(const std::string& path) {
  return LoadParametersFromFile(
      AllModelParameters(model_.get(), critic_.get()), path);
}

std::vector<size_t> NeurSCEstimator::SelectSubstructures(size_t total) {
  // Sec. 5.8: evaluate a uniform sample of ceil(r_s * |G_sub|)
  // substructures; the caller scales the sum by the inverse fraction. The
  // sample is drawn from rng_ before any parallel work starts, so it is
  // the same at every thread count.
  std::vector<size_t> selected(total);
  std::iota(selected.begin(), selected.end(), 0);
  if (config_.sample_rate < 1.0 && total > 1) {
    size_t used = static_cast<size_t>(
        std::ceil(config_.sample_rate * static_cast<double>(total)));
    used = std::max<size_t>(1, std::min(used, total));
    rng_.Shuffle(&selected);
    selected.resize(used);
  }
  return selected;
}

std::vector<uint64_t> NeurSCEstimator::DrawTaskSeeds(size_t count) {
  std::vector<uint64_t> seeds(count);
  for (size_t i = 0; i < count; ++i) seeds[i] = rng_.engine()();
  return seeds;
}

void NeurSCEstimator::RunInferenceTasks(
    std::vector<InferenceTask>* tasks,
    std::chrono::steady_clock::time_point epoch) {
  NEURSC_COUNTER_ADD("estimate.substructures_evaluated",
                     static_cast<int64_t>(tasks->size()));
  ParallelFor(tasks->size(), [&](size_t i) {
    InferenceTask& task = (*tasks)[i];
    NEURSC_SPAN(substructure_span, "estimate/substructure");
    auto start = std::chrono::steady_clock::now();
    // One execution context and one RNG per task: nothing the forward pass
    // mutates is shared across workers (see docs/threading.md). The
    // default backend leases a pooled EvalContext, whose warmed-up arena
    // makes the pass allocation-free in steady state; the Tape backend
    // stays available for differential testing.
    Rng rng(task.seed);
    if (config_.inference_backend == ExecutionBackend::kTape) {
      Tape tape;
      auto fw =
          model_->Forward(&tape, *task.query, *task.sub, *task.query_features,
                          *task.sub_features, &rng);
      task.prediction = tape.Value(fw.prediction).scalar();
    } else {
      auto ctx = eval_pool_.Acquire();
      auto fw = model_->Forward(ctx.get(), *task.query, *task.sub,
                                *task.query_features, *task.sub_features,
                                &rng);
      task.prediction = ctx->Value(fw.prediction).scalar();
    }
    auto end = std::chrono::steady_clock::now();
    task.start_seconds = std::chrono::duration<double>(start - epoch).count();
    task.end_seconds = std::chrono::duration<double>(end - epoch).count();
  });
}

Result<EstimateInfo> NeurSCEstimator::Estimate(const Graph& query) {
  NEURSC_SPAN(estimate_span, "estimate/total");
  NEURSC_COUNTER_INC("estimate.queries");

  NEURSC_SPAN(prepare_span, "estimate/prepare");
  auto prep = Prepare(query);
  prepare_span.End();
  if (!prep.ok()) return prep.status();
  EstimateInfo info;
  info.extraction_seconds = prepare_span.ElapsedSeconds();
  info.num_substructures = prep->extraction.substructures.size();
  if (prep->extraction.early_terminate ||
      prep->extraction.substructures.empty()) {
    NEURSC_COUNTER_INC("estimate.early_terminated");
    info.early_terminated = true;
    info.count = 0.0;
    estimate_span.End();
    info.total_seconds = estimate_span.ElapsedSeconds();
    return info;
  }

  const size_t total = prep->extraction.substructures.size();
  std::vector<size_t> selected = SelectSubstructures(total);
  std::vector<uint64_t> seeds = DrawTaskSeeds(selected.size());
  const size_t used = selected.size();
  info.num_used = used;

  NEURSC_SPAN(infer_span, "estimate/infer");
  std::vector<InferenceTask> tasks(used);
  for (size_t k = 0; k < used; ++k) {
    tasks[k].query = &query;
    tasks[k].sub = &prep->extraction.substructures[selected[k]];
    tasks[k].query_features = &prep->query_features;
    tasks[k].sub_features = &prep->sub_features[selected[k]];
    tasks[k].seed = seeds[k];
  }
  RunInferenceTasks(&tasks, std::chrono::steady_clock::now());
  // Ordered reduction: summing in selection order keeps the result
  // bit-identical to a serial evaluation.
  double sum = 0.0;
  for (const InferenceTask& task : tasks) sum += task.prediction;
  infer_span.End();
  info.count = sum * static_cast<double>(total) / static_cast<double>(used);
  info.inference_seconds = infer_span.ElapsedSeconds();
  estimate_span.End();
  info.total_seconds = estimate_span.ElapsedSeconds();
  return info;
}

Result<EstimateInfo> NeurSCEstimator::EstimateOnSubstructures(
    const Graph& query, const ExtractionResult& ext) {
  NEURSC_SPAN(estimate_span, "estimate/total");
  EstimateInfo info;
  info.num_substructures = ext.substructures.size();
  if (ext.early_terminate || ext.substructures.empty()) {
    info.early_terminated = true;
    estimate_span.End();
    info.total_seconds = estimate_span.ElapsedSeconds();
    return info;
  }
  NEURSC_SPAN(infer_span, "estimate/infer");
  const size_t n = ext.substructures.size();
  Matrix query_features = features_.Compute(query);
  std::vector<Matrix> sub_features(n);
  ParallelFor(n, [&](size_t i) {
    sub_features[i] = features_.Compute(ext.substructures[i].graph);
  });
  std::vector<uint64_t> seeds = DrawTaskSeeds(n);
  std::vector<InferenceTask> tasks(n);
  for (size_t i = 0; i < n; ++i) {
    tasks[i].query = &query;
    tasks[i].sub = &ext.substructures[i];
    tasks[i].query_features = &query_features;
    tasks[i].sub_features = &sub_features[i];
    tasks[i].seed = seeds[i];
  }
  RunInferenceTasks(&tasks, std::chrono::steady_clock::now());
  double sum = 0.0;
  for (const InferenceTask& task : tasks) sum += task.prediction;
  infer_span.End();
  info.num_used = n;
  info.count = sum;
  info.inference_seconds = infer_span.ElapsedSeconds();
  estimate_span.End();
  info.total_seconds = estimate_span.ElapsedSeconds();
  return info;
}

Result<std::vector<EstimateInfo>> NeurSCEstimator::EstimateBatch(
    const std::vector<Graph>& queries) {
  NEURSC_SPAN(batch_span, "estimate/batch");
  NEURSC_COUNTER_INC("estimate.batches");
  NEURSC_COUNTER_ADD("estimate.queries",
                     static_cast<int64_t>(queries.size()));
  std::vector<EstimateInfo> infos(queries.size());
  if (queries.empty()) return infos;
  const auto epoch = std::chrono::steady_clock::now();

  // Phase 1: extraction + feature preparation, parallel across queries.
  // Prepare never touches rng_, so running it out of order is safe.
  NEURSC_SPAN(prepare_span, "estimate/prepare");
  std::vector<std::optional<Prepared>> prepared(queries.size());
  std::vector<Status> prepare_status(queries.size());
  std::vector<double> prepare_start(queries.size(), 0.0);
  std::vector<double> prepare_end(queries.size(), 0.0);
  ParallelFor(queries.size(), [&](size_t q) {
    auto start = std::chrono::steady_clock::now();
    auto prep = Prepare(queries[q]);
    if (prep.ok()) {
      prepared[q] = std::move(prep).value();
    } else {
      prepare_status[q] = prep.status();
    }
    auto end = std::chrono::steady_clock::now();
    prepare_start[q] = std::chrono::duration<double>(start - epoch).count();
    prepare_end[q] = std::chrono::duration<double>(end - epoch).count();
  });
  prepare_span.End();
  for (const Status& st : prepare_status) {
    if (!st.ok()) return st;
  }

  // Phase 2 (serial, query order): sampling decisions and forward-pass
  // seeds. This consumes rng_ exactly as sequential Estimate calls would,
  // which is what makes EstimateBatch match them bit-for-bit.
  std::vector<InferenceTask> tasks;
  std::vector<std::pair<size_t, size_t>> task_range(queries.size(), {0, 0});
  for (size_t q = 0; q < queries.size(); ++q) {
    EstimateInfo& info = infos[q];
    const Prepared& prep = *prepared[q];
    info.extraction_seconds = prepare_end[q] - prepare_start[q];
    info.num_substructures = prep.extraction.substructures.size();
    if (prep.extraction.early_terminate ||
        prep.extraction.substructures.empty()) {
      NEURSC_COUNTER_INC("estimate.early_terminated");
      info.early_terminated = true;
      info.count = 0.0;
      info.total_seconds = info.extraction_seconds;
      continue;
    }
    std::vector<size_t> selected =
        SelectSubstructures(prep.extraction.substructures.size());
    std::vector<uint64_t> seeds = DrawTaskSeeds(selected.size());
    info.num_used = selected.size();
    task_range[q].first = tasks.size();
    for (size_t k = 0; k < selected.size(); ++k) {
      InferenceTask task;
      task.query = &queries[q];
      task.sub = &prep.extraction.substructures[selected[k]];
      task.query_features = &prep.query_features;
      task.sub_features = &prep.sub_features[selected[k]];
      task.seed = seeds[k];
      task.query_index = q;
      tasks.push_back(task);
    }
    task_range[q].second = tasks.size();
  }

  // Phase 3: one work pool over all (query, substructure) pairs.
  NEURSC_SPAN(infer_span, "estimate/infer");
  RunInferenceTasks(&tasks, epoch);
  infer_span.End();

  // Phase 4: ordered per-query reduction and span-derived timings. The
  // per-query inference interval is [first task start, last task end];
  // since every task starts after every Prepare finished, the invariant
  // total >= extraction + inference holds per query.
  for (size_t q = 0; q < queries.size(); ++q) {
    auto [begin, end] = task_range[q];
    if (begin == end) continue;  // early-terminated
    EstimateInfo& info = infos[q];
    double sum = 0.0;
    double first_start = tasks[begin].start_seconds;
    double last_end = tasks[begin].end_seconds;
    for (size_t t = begin; t < end; ++t) {
      sum += tasks[t].prediction;
      first_start = std::min(first_start, tasks[t].start_seconds);
      last_end = std::max(last_end, tasks[t].end_seconds);
    }
    info.count = sum * static_cast<double>(info.num_substructures) /
                 static_cast<double>(info.num_used);
    info.inference_seconds = last_end - first_start;
    info.total_seconds = last_end - prepare_start[q];
  }
  return infos;
}

}  // namespace neursc
