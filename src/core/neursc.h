#ifndef NEURSC_CORE_NEURSC_H_
#define NEURSC_CORE_NEURSC_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/discriminator.h"
#include "core/feature_init.h"
#include "core/west.h"
#include "graph/graph.h"
#include "matching/candidate_filter.h"
#include "matching/substructure.h"
#include "nn/eval.h"
#include "nn/optimizer.h"

namespace neursc {

/// End-to-end configuration of the NeurSC estimator (Alg. 1 + Alg. 3).
/// Defaults are the paper's Sec. 6.1 settings scaled down for in-harness
/// runs (the paper trains 30-150 epochs at 128-dim; see DESIGN.md).
struct NeurSCConfig {
  WEstConfig west;
  CandidateFilterOptions filter;

  // --- Training (Alg. 3) ---
  double learning_rate = 1e-3;         // alpha_theta
  double disc_learning_rate = 1e-3;    // alpha_omega
  size_t batch_size = 20;              // n_batch
  /// beta of Eq. 11, balancing L_c against L_w.
  double beta = 0.8;
  /// iter_omega: discriminator steps per (query, substructure) pair.
  int disc_iters = 1;
  size_t disc_hidden = 32;
  float disc_clip = 0.01f;
  /// Epochs trained with L_c only before the adversarial phase starts
  /// (Sec. 5.6's two-stage schedule avoiding representation collapse).
  size_t pretrain_epochs = 4;
  /// Total training epochs (pretrain + adversarial).
  size_t epochs = 12;
  double grad_clip_norm = 5.0;
  /// Fraction of training examples held out for validation-based early
  /// stopping; 0 disables early stopping. When enabled, training stops
  /// after `early_stop_patience` epochs without validation improvement
  /// and the best-validation weights are restored.
  double validation_fraction = 0.0;
  size_t early_stop_patience = 3;

  // --- Ablations / variants ---
  /// false => NeurSC-D (dual GNN, no discriminator).
  bool use_discriminator = true;
  /// false => "NeurSC w/o SE": the whole data graph is the single
  /// substructure; forces intra-only, no discriminator.
  bool use_substructure_extraction = true;
  /// Discriminator distance metric (Fig. 12 variants).
  DistanceMetric metric = DistanceMetric::kWasserstein;
  /// Substructure sample rate r_s at inference time (Sec. 5.8).
  double sample_rate = 1.0;

  /// Execution engine for forward-only call sites (Estimate,
  /// EstimateOnSubstructures, EstimateBatch, the validation loop). The
  /// default tape-free EvalContext records no backward closures and reuses
  /// a per-context arena, so steady-state inference allocates nothing; the
  /// Tape backend remains selectable for differential testing (see
  /// NeurSCAdapter::TapeForced and docs/execution.md). Both produce
  /// bit-identical estimates. Training always uses the Tape.
  ExecutionBackend inference_backend = ExecutionBackend::kEvalContext;

  uint64_t seed = 99;
};

/// One supervised example: a query graph and its ground-truth count on the
/// estimator's data graph.
struct TrainingExample {
  Graph query;
  double count = 0.0;
};

/// Per-query estimation output with a timing breakdown. The timing fields
/// are derived from the observability spans ("estimate/prepare",
/// "estimate/infer", "estimate/total"; see docs/observability.md), so they
/// stay consistent with the trace/metrics output as stages are added.
struct EstimateInfo {
  double count = 0.0;
  /// True iff estimation short-circuited to 0 (empty candidate set or
  /// candidate universe smaller than the query).
  bool early_terminated = false;
  size_t num_substructures = 0;
  /// Substructures actually evaluated (< num_substructures when r_s < 1).
  size_t num_used = 0;
  /// Candidate filtering + substructure split + feature initialization.
  double extraction_seconds = 0.0;
  /// GNN forward passes over the evaluated substructures.
  double inference_seconds = 0.0;
  /// Whole Estimate call (>= extraction + inference).
  double total_seconds = 0.0;
};

/// Training progress summary.
struct TrainStats {
  std::vector<double> epoch_mean_loss;
  /// Mean validation q-error per epoch; empty when validation is off.
  std::vector<double> epoch_validation_qerror;
  std::vector<double> epoch_seconds;
  double total_seconds = 0.0;
  size_t examples_used = 0;
  size_t examples_skipped = 0;
  /// True iff early stopping ended training before config.epochs.
  bool early_stopped = false;
};

class PreparedQueryCache;

/// The NeurSC estimator bound to one data graph: substructure extraction
/// (Sec. 4) plus the WEst network (Sec. 5) and its adversarial trainer.
///
/// Threading (see docs/threading.md): the estimator parallelizes *inside*
/// Estimate/EstimateOnSubstructures/EstimateBatch and Train.
///
/// Inference: per-substructure WEst forward passes each run on their own
/// execution context with a private Rng, and the per-substructure counts
/// are reduced in index order. On the default EvalContext backend the
/// contexts come from a per-estimator pool (eval_pool_), so their warmed-up
/// arenas are reused across queries and steady-state inference performs no
/// heap allocation; each task holds an exclusive lease for the duration of
/// its forward pass.
///
/// Training: within a batch the parameters are frozen, so the per-example
/// forward+backward passes run over ParallelFor, each on its own Tape with
/// a tape-local GradientSink; the sinks are then reduced into
/// Parameter::grad serially in example-index order before the optimizer
/// step, and the critic's inner maximization (Alg. 3 lines 10-12) runs
/// serially afterwards. The per-epoch validation q-error loop is
/// parallelized the same way (forward-only, ordered reduction).
///
/// In both modes every random decision (the r_s substructure sample, the
/// example shuffle, and the per-forward-pass bipartite linking seeds) is
/// drawn from the estimator RNG serially before the parallel region, so
/// results are bit-identical for every NEURSC_THREADS value. The estimator
/// object itself is NOT safe for concurrent calls from multiple caller
/// threads (each call advances rng_).
class NeurSCEstimator {
 public:
  /// Extraction + feature computation for one query. Immutable once built;
  /// both are seed-independent functions of (data graph, query, config), so
  /// Prepared data can be shared across estimator instances constructed
  /// with the same data graph and filter/feature settings (see
  /// PreparedQueryCache).
  struct Prepared {
    ExtractionResult extraction;
    Matrix query_features;
    std::vector<Matrix> sub_features;
  };

  NeurSCEstimator(const Graph& data, NeurSCConfig config);

  /// Trains on `examples` following Alg. 3 (with the L_c-only pretraining
  /// stage of Sec. 5.6). Deterministic given the config seed, at every
  /// NEURSC_THREADS value. When `cache` is non-null, per-query extraction
  /// and feature results are looked up / deposited there instead of being
  /// recomputed (the active-learning ensemble retrains many estimators on
  /// the same labeled set).
  Result<TrainStats> Train(const std::vector<TrainingExample>& examples,
                           PreparedQueryCache* cache = nullptr);

  /// Estimates c(q) for one query (Alg. 1), sampling substructures at the
  /// configured r_s. Substructure forward passes run in parallel; the
  /// result does not depend on the thread count.
  Result<EstimateInfo> Estimate(const Graph& query);

  /// Estimate using externally supplied substructures (the "perfect
  /// substructure" ablation feeds ground-truth-derived ones).
  Result<EstimateInfo> EstimateOnSubstructures(const Graph& query,
                                               const ExtractionResult& ext);

  /// Estimates every query of a batch, scheduling the queries'
  /// substructure forward passes into one shared work pool (queries x
  /// substructures), after a parallel extraction pass. Consumes rng_ in
  /// query order exactly as sequential Estimate calls would, so
  /// EstimateBatch(qs)[i] equals the i-th sequential Estimate(qs[i]) from
  /// the same starting state, at any thread count. Fails with the status
  /// of the first (lowest-index) query whose extraction fails.
  Result<std::vector<EstimateInfo>> EstimateBatch(
      const std::vector<Graph>& queries);

  /// Persists the trained weights (estimation network, and the critic if
  /// enabled). Load requires an estimator constructed with an identical
  /// configuration.
  Status SaveModel(const std::string& path);
  Status LoadModel(const std::string& path);

  /// Adjusts the inference-time substructure sample rate r_s (Sec. 5.8)
  /// without retraining; clamped to (0, 1].
  void set_sample_rate(double rate) {
    config_.sample_rate = std::min(std::max(rate, 1e-6), 1.0);
  }

  const NeurSCConfig& config() const { return config_; }
  const Graph& data() const { return data_; }
  WEstModel& model() { return *model_; }
  /// Null when the configuration disables the discriminator.
  Discriminator* critic() { return critic_.get(); }

 private:
  /// One WEst forward pass of the inference work pool: an independent
  /// (query, substructure) evaluation with a pre-drawn RNG seed. Filled-in
  /// fields (prediction, timing) are written only by the worker that owns
  /// the task's index, so a task vector can be processed by ParallelFor.
  struct InferenceTask {
    const Graph* query = nullptr;
    const Substructure* sub = nullptr;
    const Matrix* query_features = nullptr;
    const Matrix* sub_features = nullptr;
    /// Seed for the task-private Rng (bipartite linking edges, Sec. 5.3);
    /// drawn from rng_ serially so it is thread-count independent.
    uint64_t seed = 0;
    /// Index of the owning query within an EstimateBatch call.
    size_t query_index = 0;
    // --- Outputs (written by the evaluating worker) ---
    double prediction = 0.0;
    /// Wall-clock interval of the forward pass, seconds relative to the
    /// epoch passed to RunInferenceTasks.
    double start_seconds = 0.0;
    double end_seconds = 0.0;
  };

  /// Detached (query_repr, sub_repr) pair captured during a batch's
  /// parallel forward passes, consumed by the serial critic updates that
  /// follow (Alg. 3 lines 10-12). sub_index identifies the substructure
  /// within the example's ExtractionResult, for the candidate sets.
  struct CriticUpdateInput {
    size_t sub_index = 0;
    Matrix query_repr;
    Matrix sub_repr;
  };

  Result<Prepared> Prepare(const Graph& query);
  /// Evaluates every task over ParallelFor, one Tape + Rng per task.
  void RunInferenceTasks(std::vector<InferenceTask>* tasks,
                         std::chrono::steady_clock::time_point epoch);
  /// r_s sampling (Sec. 5.8): the substructure indices to evaluate, in
  /// evaluation order. Advances rng_ when sampling kicks in.
  std::vector<size_t> SelectSubstructures(size_t total);
  /// Serially draws one forward-pass seed per selected substructure.
  std::vector<uint64_t> DrawTaskSeeds(size_t count);
  /// Runs the discriminator's inner maximization (Alg. 3 lines 10-12) on
  /// detached representations.
  void UpdateCritic(const Matrix& query_repr, const Matrix& sub_repr,
                    const std::vector<std::vector<VertexId>>& candidates);
  /// Forward + loss for one query on `ctx` (Tape when gradients are
  /// needed, EvalContext for the forward-only validation loop); returns
  /// the loss Var, or an invalid Var when the query has no usable
  /// substructures. `rng` drives the bipartite linking edges; callers in
  /// parallel regions pass a task-private Rng seeded serially. The critic
  /// (when scored) is read frozen; if `critic_inputs` is non-null, the
  /// detached representations needed for its later serial updates are
  /// appended there.
  template <typename Ctx>
  Var BuildQueryLoss(Ctx* ctx, const Graph& query, const Prepared& prep,
                     double target_count, bool adversarial, Rng* rng,
                     std::vector<CriticUpdateInput>* critic_inputs);

  const Graph& data_;
  NeurSCConfig config_;
  FeatureInitializer features_;
  std::unique_ptr<WEstModel> model_;
  std::unique_ptr<Discriminator> critic_;
  std::unique_ptr<AdamOptimizer> opt_theta_;
  std::unique_ptr<AdamOptimizer> opt_omega_;
  /// Reusable forward-only workspaces for the EvalContext backend; grows to
  /// peak inference concurrency and keeps the warmed-up arenas thereafter.
  EvalContextPool eval_pool_;
  Rng rng_;
};

/// Shared cache of per-query Prepared data (extraction + features), keyed
/// by Graph::Fingerprint(). Extraction and feature initialization are
/// seed-independent, so entries are valid across any estimators that share
/// a data graph and filter/feature configuration — the active-learning
/// ensemble, which retrains every member on the same growing labeled set,
/// is the intended user. Thread-safe: Train's parallel prepare pass probes
/// it from worker threads.
class PreparedQueryCache {
 public:
  PreparedQueryCache() = default;
  PreparedQueryCache(const PreparedQueryCache&) = delete;
  PreparedQueryCache& operator=(const PreparedQueryCache&) = delete;

  size_t size() const NEURSC_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return entries_.size();
  }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  void Clear() NEURSC_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    entries_.clear();
  }

 private:
  friend class NeurSCEstimator;

  /// Null on miss (counts toward misses()).
  std::shared_ptr<const NeurSCEstimator::Prepared> Lookup(uint64_t key)
      NEURSC_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }

  /// Returns the winning entry: `value`, or the existing one if another
  /// thread inserted the key first (both are equal — Prepared is a
  /// deterministic function of the query).
  std::shared_ptr<const NeurSCEstimator::Prepared> Insert(
      uint64_t key, std::shared_ptr<const NeurSCEstimator::Prepared> value)
      NEURSC_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    auto [it, inserted] = entries_.emplace(key, std::move(value));
    return it->second;
  }

  /// Guards the entry map; hit/miss tallies are lock-free atomics.
  mutable Mutex mu_;
  std::unordered_map<uint64_t,
                     std::shared_ptr<const NeurSCEstimator::Prepared>>
      entries_ NEURSC_GUARDED_BY(mu_);
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace neursc

#endif  // NEURSC_CORE_NEURSC_H_
