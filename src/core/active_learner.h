#ifndef NEURSC_CORE_ACTIVE_LEARNER_H_
#define NEURSC_CORE_ACTIVE_LEARNER_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/neursc.h"
#include "graph/graph.h"

namespace neursc {

/// Active learning for count estimators, in the spirit of ALSS (Zhao et
/// al. pair LSS with an active learner; the NeurSC paper compares against
/// plain LSS but cites the AL extension). The loop is
/// estimator-agnostic:
///
///   1. Train an ensemble of estimators (different seeds) on the labeled
///      pool.
///   2. Score every unlabeled candidate query by ensemble disagreement
///      (the max pairwise q-error between member predictions — a
///      label-free uncertainty proxy).
///   3. Move the most uncertain queries to the labeled pool, computing
///      their exact counts (the expensive "oracle" call), and retrain.
///
/// The harness exposes hooks so both NeurSC and LSS (or any
/// CardinalityEstimator) can plug in.
class ActiveLearner {
 public:
  struct Options {
    size_t ensemble_size = 2;
    size_t rounds = 2;
    /// Queries labeled per round.
    size_t acquisitions_per_round = 8;
    /// Budget for each oracle (exact counting) call.
    double oracle_time_limit_seconds = 2.0;
    uint64_t seed = 77;
  };

  /// A trainable-model factory: builds a fresh estimator with the given
  /// seed. Train/estimate run through the returned closure pair.
  struct ModelHooks {
    /// Resets the model with a seed.
    std::function<void(uint64_t seed)> reset;
    /// Trains on the labeled pool.
    std::function<Status(const std::vector<TrainingExample>&)> train;
    /// Predicts a count.
    std::function<Result<double>(const Graph&)> estimate;
    /// Optional batch prediction: counts for all queries at once, in input
    /// order. When set, the learner scores each round's remaining pool
    /// through one call (NeurSC's EstimateBatch shares a single inference
    /// work pool across the queries' substructures); on error it falls
    /// back to the per-query `estimate` loop. Must behave exactly like
    /// sequential `estimate` calls (NeurSC's EstimateBatch guarantees
    /// bit-identical results).
    std::function<Result<std::vector<double>>(const std::vector<Graph>&)>
        estimate_batch;
  };

  /// `data` is the data graph the counts refer to; hooks are invoked on a
  /// caller-owned model (the learner drives reset/train/estimate cycles).
  ActiveLearner(const Graph& data, ModelHooks hooks, Options options);

  /// Runs the loop: starts from `labeled`, draws acquisitions from
  /// `unlabeled_pool` (queries without counts). Returns the final labeled
  /// set (inputs + acquisitions with oracle counts). The model behind
  /// `hooks` ends up trained on that final set with the base seed.
  Result<std::vector<TrainingExample>> Run(
      std::vector<TrainingExample> labeled,
      const std::vector<Graph>& unlabeled_pool);

  /// Disagreement score of the last Run() per pool index (diagnostics).
  const std::vector<double>& last_scores() const { return last_scores_; }

 private:
  const Graph& data_;
  ModelHooks hooks_;
  Options options_;
  std::vector<double> last_scores_;
};

/// Convenience hook factory for NeurSCEstimator. The estimator object is
/// rebuilt on reset with the stored config (seed overridden). All train
/// calls share one PreparedQueryCache, so each labeled query's extraction
/// and features are computed once per Run() instead of once per ensemble
/// member per round (extraction is seed-independent; see neursc.h).
ActiveLearner::ModelHooks MakeNeurSCHooks(
    std::unique_ptr<NeurSCEstimator>* slot, const Graph& data,
    NeurSCConfig config);

}  // namespace neursc

#endif  // NEURSC_CORE_ACTIVE_LEARNER_H_
