#ifndef NEURSC_CORE_OPTIMAL_TRANSPORT_H_
#define NEURSC_CORE_OPTIMAL_TRANSPORT_H_

#include <vector>

#include "core/discriminator.h"
#include "nn/matrix.h"

namespace neursc {

/// Exact assignment-based optimal transport, used as the reference the
/// paper argues is unnecessary (Sec. 5.5: "it is not necessary to compute
/// the exact optimal transport due to its extra time cost and limited
/// improvement"). The bench_micro_ablations suite and the tests compare
/// WEst's candidate-guided greedy correspondence against this exact
/// solver.

/// Solves min-cost assignment on an n x m cost matrix (n <= m): every row
/// is assigned to a distinct column minimizing the total cost. Returns the
/// column per row. O(n^2 m) Hungarian (Jonker-Volgenant style potentials).
std::vector<size_t> SolveAssignment(const Matrix& cost);

/// Total cost of an assignment under `cost`.
double AssignmentCost(const Matrix& cost,
                      const std::vector<size_t>& assignment);

/// Empirical Wasserstein-1 distance between two equal-weight point clouds
/// (rows of a and b, n_a <= n_b): the minimum average pairwise Euclidean
/// distance over injective assignments.
double ExactWasserstein1(const Matrix& a, const Matrix& b);

/// Correspondence built from the exact optimal transport plan between
/// query and substructure representations, restricted to candidate sets by
/// masking non-candidate pairs with a large cost. The "exact OT" upper
/// baseline for SelectCorrespondenceByScores.
Correspondence SelectCorrespondenceByExactOt(
    const Matrix& query_repr, const Matrix& sub_repr,
    const std::vector<std::vector<VertexId>>& candidates);

}  // namespace neursc

#endif  // NEURSC_CORE_OPTIMAL_TRANSPORT_H_
