#ifndef NEURSC_EVAL_REPORTING_H_
#define NEURSC_EVAL_REPORTING_H_

#include <string>
#include <vector>

#include "eval/metrics.h"

namespace neursc {

/// Formats a number the way the paper's log-scale axes read: "1.2e+04",
/// with under-estimates prefixed by '-' when the input is signed q-error.
std::string FormatQ(double value);

/// One labelled box-plot row, e.g.
///   NeurSC      | min -3.2e+00 | q1 -1.4e+00 | med 1.1e+00 | q3 2.0e+00 | max 8.5e+00 (n=120)
std::string FormatBoxRow(const std::string& name, const BoxStats& stats);

/// Prints a section header ("=== Figure 7a: Yeast ===").
void PrintSection(const std::string& title);

/// Prints an aligned table: header row then data rows. Column widths are
/// derived from content.
void PrintTable(const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows);

/// Convenience: signed q-errors -> box stats -> printed row.
void PrintQErrorBox(const std::string& name,
                    const std::vector<double>& signed_qerrors);

}  // namespace neursc

#endif  // NEURSC_EVAL_REPORTING_H_
