#ifndef NEURSC_EVAL_REPORTING_H_
#define NEURSC_EVAL_REPORTING_H_

#include <string>
#include <vector>

#include "common/metrics_registry.h"
#include "eval/metrics.h"

namespace neursc {

/// Formats a number the way the paper's log-scale axes read: "1.2e+04",
/// with under-estimates prefixed by '-' when the input is signed q-error.
std::string FormatQ(double value);

/// One labelled box-plot row, e.g.
///   NeurSC      | min -3.2e+00 | q1 -1.4e+00 | med 1.1e+00 | q3 2.0e+00 | max 8.5e+00 (n=120)
std::string FormatBoxRow(const std::string& name, const BoxStats& stats);

/// Prints a section header ("=== Figure 7a: Yeast ===").
void PrintSection(const std::string& title);

/// Prints an aligned table: header row then data rows. Column widths are
/// derived from content.
void PrintTable(const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows);

/// Convenience: signed q-errors -> box stats -> printed row.
void PrintQErrorBox(const std::string& name,
                    const std::vector<double>& signed_qerrors);

/// Prints the per-stage cost table derived from the "span/<stage>"
/// histograms in `snapshot`: one row per stage (count, total seconds, mean
/// and p95 milliseconds, share of the parent stage's total), then a
/// "coverage" line stating how much of the parent's wall time the
/// `tile_stages` (non-overlapping direct sub-stages) account for.
/// `parent_stage` is a span name like "estimate/total". Does nothing when
/// the parent histogram is missing or empty.
void PrintStageBreakdown(const MetricsSnapshot& snapshot,
                         const std::string& parent_stage,
                         const std::vector<std::string>& tile_stages);

/// Fraction of the parent stage's total time covered by `tile_stages`
/// (0 when the parent is missing or empty). Exposed for tests and for
/// callers that want the number without the table.
double StageCoverage(const MetricsSnapshot& snapshot,
                     const std::string& parent_stage,
                     const std::vector<std::string>& tile_stages);

/// Harness-edge observability glue shared by neursc_cli and the bench
/// binaries. Recognizes and strips
///   --trace-out=<file>    write a Chrome trace_event JSON on Finish()
///   --metrics-out=<file>  write a metrics snapshot JSON on Finish()
/// from argv, starting the trace recorder immediately when --trace-out is
/// present. Finish() (idempotent, also run by the destructor) writes the
/// requested files and reports where they went.
class ObservabilitySession {
 public:
  ObservabilitySession(int* argc, char** argv);
  ~ObservabilitySession();

  void Finish();

  bool trace_requested() const { return !trace_path_.empty(); }
  bool metrics_requested() const { return !metrics_path_.empty(); }
  const std::string& trace_path() const { return trace_path_; }
  const std::string& metrics_path() const { return metrics_path_; }

  ObservabilitySession(const ObservabilitySession&) = delete;
  ObservabilitySession& operator=(const ObservabilitySession&) = delete;

 private:
  std::string trace_path_;
  std::string metrics_path_;
  bool finished_ = false;
};

}  // namespace neursc

#endif  // NEURSC_EVAL_REPORTING_H_
