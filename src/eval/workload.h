#ifndef NEURSC_EVAL_WORKLOAD_H_
#define NEURSC_EVAL_WORKLOAD_H_

#include <vector>

#include "common/status.h"
#include "core/neursc.h"
#include "graph/graph.h"

namespace neursc {

/// Knobs for workload construction.
struct WorkloadOptions {
  /// Per-query ground-truth enumeration budget. Queries whose exact count
  /// cannot be computed within the budget are dropped, mirroring the
  /// paper's 30-minute selection rule (Sec. 6.1) at in-harness scale.
  double ground_truth_time_limit = 1.0;
  /// Probability of keeping non-spanning-tree edges in extracted queries
  /// (1.0 = induced, dense queries).
  double edge_keep_probability = 0.8;
  /// Drop queries isomorphic to an already-accepted query of the same
  /// size (exact labeled-isomorphism test; keeps workloads diverse).
  bool deduplicate_isomorphic = false;
  /// Fraction of each size's quota filled with *unmatchable* queries
  /// (count 0), produced by perturbing labels of extracted queries until
  /// the exact count is 0. Real workloads contain such queries; they
  /// exercise estimators' early-termination paths. 0 disables.
  double unmatchable_fraction = 0.0;
  uint64_t seed = 7;
};

/// A labeled query workload on one data graph: queries plus exact counts.
struct Workload {
  /// Query size (vertex count) of examples[i].
  std::vector<size_t> sizes;
  std::vector<TrainingExample> examples;

  /// Indices of examples with the given query size.
  std::vector<size_t> IndicesOfSize(size_t size) const;
};

/// Extracts `per_size` queries for each size in `sizes` from `data` and
/// computes exact ground truth. Queries that exceed the enumeration budget
/// or that fail extraction are replaced (up to an attempt cap); the
/// workload may come up short on hostile size/data combinations, which is
/// reported in the returned workload rather than as an error.
Result<Workload> BuildWorkload(const Graph& data,
                               const std::vector<size_t>& sizes,
                               size_t per_size,
                               const WorkloadOptions& options = {});

/// A train/test partition (indices into a Workload).
struct WorkloadSplit {
  std::vector<size_t> train;
  std::vector<size_t> test;
};

/// Random `train_fraction` split (the paper uses 80/20).
WorkloadSplit SplitWorkload(const Workload& workload, double train_fraction,
                            uint64_t seed);

/// Like SplitWorkload but stratified per query size, so every size
/// contributes proportionally to both halves.
WorkloadSplit StratifiedSplit(const Workload& workload,
                              double train_fraction, uint64_t seed);

/// k-fold cross-validation splits (the paper reports 5-fold results).
std::vector<WorkloadSplit> KFoldSplits(const Workload& workload, size_t k,
                                       uint64_t seed);

/// Gathers the examples at `indices`.
std::vector<TrainingExample> Gather(const Workload& workload,
                                    const std::vector<size_t>& indices);

/// Per-query outcome of a batch evaluation run.
struct BatchEvaluation {
  /// EstimateBatch results, aligned with the `indices` passed in.
  std::vector<EstimateInfo> infos;
  /// SignedQError(estimate, ground truth) per query, same order.
  std::vector<double> signed_qerrors;
  /// Wall time of the EstimateBatch call.
  double batch_seconds = 0.0;
};

/// Estimates the workload examples at `indices` through
/// NeurSCEstimator::EstimateBatch — the queries' substructure forward
/// passes share one work pool — and scores each against its ground truth.
/// Per-query results are identical to sequential Estimate calls at every
/// NEURSC_THREADS value (see docs/threading.md).
Result<BatchEvaluation> EvaluateBatch(NeurSCEstimator* estimator,
                                      const Workload& workload,
                                      const std::vector<size_t>& indices);

}  // namespace neursc

#endif  // NEURSC_EVAL_WORKLOAD_H_
