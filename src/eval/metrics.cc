#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

namespace neursc {

double QError(double estimate, double truth) {
  double c = std::max(1.0, truth);
  double c_hat = std::max(1.0, estimate);
  return std::max(c / c_hat, c_hat / c);
}

double SignedQError(double estimate, double truth) {
  double q = QError(estimate, truth);
  return std::max(1.0, estimate) < std::max(1.0, truth) ? -q : q;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

BoxStats ComputeBoxStats(std::vector<double> values) {
  BoxStats stats;
  if (values.empty()) return stats;
  std::sort(values.begin(), values.end());
  stats.count = values.size();
  stats.min = values.front();
  stats.max = values.back();
  auto pct = [&](double p) {
    double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, values.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
  };
  stats.q1 = pct(25.0);
  stats.median = pct(50.0);
  stats.q3 = pct(75.0);
  return stats;
}

double GeometricMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(std::max(v, 1e-300));
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

CalibrationStats ComputeCalibration(
    const std::vector<double>& signed_qerrors) {
  CalibrationStats stats;
  stats.count = signed_qerrors.size();
  if (signed_qerrors.empty()) return stats;
  std::vector<double> magnitudes;
  magnitudes.reserve(signed_qerrors.size());
  size_t under = 0;
  size_t over = 0;
  for (double q : signed_qerrors) {
    double magnitude = std::abs(q);
    magnitudes.push_back(magnitude);
    if (magnitude <= 1.0) continue;  // exact
    if (q < 0.0) {
      ++under;
    } else {
      ++over;
    }
  }
  double n = static_cast<double>(signed_qerrors.size());
  stats.underestimate_fraction = static_cast<double>(under) / n;
  stats.overestimate_fraction = static_cast<double>(over) / n;
  stats.geomean_qerror = GeometricMean(magnitudes);
  stats.median_qerror = Percentile(magnitudes, 50.0);
  stats.p90_qerror = Percentile(magnitudes, 90.0);
  stats.max_qerror = Percentile(magnitudes, 100.0);
  return stats;
}

}  // namespace neursc
