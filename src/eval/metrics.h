#ifndef NEURSC_EVAL_METRICS_H_
#define NEURSC_EVAL_METRICS_H_

#include <string>
#include <vector>

namespace neursc {

/// q-error of an estimate (Moerkotte et al.), >= 1:
/// max(max(1,c)/max(1,c_hat), max(1,c_hat)/max(1,c)).
double QError(double estimate, double truth);

/// Signed q-error: magnitude as above, negative when the estimate is an
/// underestimate (c_hat < c). Matches the under/over split on the y-axis of
/// the paper's Figures 7-12.
double SignedQError(double estimate, double truth);

/// Five-number summary used to print the paper's box plots.
struct BoxStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  size_t count = 0;
};

/// Computes the five-number summary (linear-interpolated percentiles).
/// Empty input yields all zeros.
BoxStats ComputeBoxStats(std::vector<double> values);

/// p in [0,100]; linear interpolation between order statistics.
double Percentile(std::vector<double> values, double p);

/// Geometric mean; values must be positive.
double GeometricMean(const std::vector<double>& values);

double Mean(const std::vector<double>& values);

/// Direction-aware summary of a set of signed q-errors: how often and how
/// badly an estimator under/over-estimates.
struct CalibrationStats {
  size_t count = 0;
  double underestimate_fraction = 0.0;
  double overestimate_fraction = 0.0;
  /// Geometric mean of |q-error| (>= 1).
  double geomean_qerror = 1.0;
  double median_qerror = 1.0;
  double p90_qerror = 1.0;
  double max_qerror = 1.0;
};

/// Summarizes SignedQError outputs. Exact estimates (|q| == 1) count as
/// neither under- nor over-estimates.
CalibrationStats ComputeCalibration(const std::vector<double>& signed_qerrors);

}  // namespace neursc

#endif  // NEURSC_EVAL_METRICS_H_
