#include "eval/reporting.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "common/trace.h"

namespace neursc {

std::string FormatQ(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2e", value);
  return buf;
}

std::string FormatBoxRow(const std::string& name, const BoxStats& stats) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-14s | min %9s | q1 %9s | med %9s | q3 %9s | max %9s "
                "(n=%zu)",
                name.c_str(), FormatQ(stats.min).c_str(),
                FormatQ(stats.q1).c_str(), FormatQ(stats.median).c_str(),
                FormatQ(stats.q3).c_str(), FormatQ(stats.max).c_str(),
                stats.count);
  return buf;
}

void PrintSection(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void PrintTable(const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths(header.size(), 0);
  for (size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(header);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows) print_row(row);
}

void PrintQErrorBox(const std::string& name,
                    const std::vector<double>& signed_qerrors) {
  std::printf("%s\n",
              FormatBoxRow(name, ComputeBoxStats(signed_qerrors)).c_str());
}

namespace {

constexpr char kSpanPrefix[] = "span/";

/// Histogram snapshot of stage `stage`, or nullptr.
const HistogramSnapshot* FindStage(const MetricsSnapshot& snapshot,
                                   const std::string& stage) {
  return snapshot.FindHistogram(kSpanPrefix + stage);
}

std::string FormatFixed(double value, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace

double StageCoverage(const MetricsSnapshot& snapshot,
                     const std::string& parent_stage,
                     const std::vector<std::string>& tile_stages) {
  const HistogramSnapshot* parent = FindStage(snapshot, parent_stage);
  if (parent == nullptr || parent->sum <= 0.0) return 0.0;
  double covered = 0.0;
  for (const auto& stage : tile_stages) {
    const HistogramSnapshot* h = FindStage(snapshot, stage);
    if (h != nullptr) covered += h->sum;
  }
  return covered / parent->sum;
}

void PrintStageBreakdown(const MetricsSnapshot& snapshot,
                         const std::string& parent_stage,
                         const std::vector<std::string>& tile_stages) {
  const HistogramSnapshot* parent = FindStage(snapshot, parent_stage);
  if (parent == nullptr || parent->count == 0) return;
  const double parent_sum = parent->sum > 0.0 ? parent->sum : 1e-300;

  std::vector<std::vector<std::string>> rows;
  for (const auto& h : snapshot.histograms) {
    if (h.name.rfind(kSpanPrefix, 0) != 0 || h.count == 0) continue;
    std::string stage = h.name.substr(std::strlen(kSpanPrefix));
    std::string share = stage == parent_stage
                            ? "100.0"
                            : FormatFixed(1e2 * h.sum / parent_sum, 1);
    rows.push_back({std::move(stage), std::to_string(h.count),
                    FormatFixed(h.sum, 3), FormatFixed(1e3 * h.mean, 3),
                    FormatFixed(1e3 * h.p95, 3), share});
  }
  std::printf("stage breakdown (parent: %s, %s total over %zu spans)\n",
              parent_stage.c_str(), FormatFixed(parent->sum, 3).c_str(),
              static_cast<size_t>(parent->count));
  PrintTable({"stage", "count", "total s", "mean ms", "p95 ms", "% parent"},
             rows);
  double coverage = StageCoverage(snapshot, parent_stage, tile_stages);
  std::printf("coverage: %s%% of %s accounted for by",
              FormatFixed(1e2 * coverage, 1).c_str(), parent_stage.c_str());
  for (const auto& stage : tile_stages) std::printf(" %s", stage.c_str());
  std::printf("\n");
}

ObservabilitySession::ObservabilitySession(int* argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      trace_path_ = arg + 12;
    } else if (std::strncmp(arg, "--metrics-out=", 14) == 0) {
      metrics_path_ = arg + 14;
    } else {
      argv[kept++] = argv[i];
    }
  }
  for (int i = kept; i < *argc; ++i) argv[i] = nullptr;
  *argc = kept;
  if (!trace_path_.empty()) TraceRecorder::Global().Start();
}

ObservabilitySession::~ObservabilitySession() { Finish(); }

void ObservabilitySession::Finish() {
  if (finished_) return;
  finished_ = true;
  if (!trace_path_.empty()) {
    Status st = TraceRecorder::Global().WriteChromeTrace(trace_path_);
    if (st.ok()) {
      std::fprintf(stderr,
                   "wrote trace (%zu events) to %s; open in "
                   "chrome://tracing or https://ui.perfetto.dev\n",
                   TraceRecorder::Global().EventCount(), trace_path_.c_str());
    } else {
      NEURSC_LOG(Error) << "trace dump failed: " << st.ToString();
    }
  }
  if (!metrics_path_.empty()) {
    Status st = MetricsRegistry::Global()
                    .Snapshot()
                    .WriteJsonFile(metrics_path_);
    if (st.ok()) {
      std::fprintf(stderr, "wrote metrics snapshot to %s\n",
                   metrics_path_.c_str());
    } else {
      NEURSC_LOG(Error) << "metrics dump failed: " << st.ToString();
    }
  }
}

}  // namespace neursc
