#include "eval/reporting.h"

#include <cstdio>

namespace neursc {

std::string FormatQ(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2e", value);
  return buf;
}

std::string FormatBoxRow(const std::string& name, const BoxStats& stats) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-14s | min %9s | q1 %9s | med %9s | q3 %9s | max %9s "
                "(n=%zu)",
                name.c_str(), FormatQ(stats.min).c_str(),
                FormatQ(stats.q1).c_str(), FormatQ(stats.median).c_str(),
                FormatQ(stats.q3).c_str(), FormatQ(stats.max).c_str(),
                stats.count);
  return buf;
}

void PrintSection(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void PrintTable(const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths(header.size(), 0);
  for (size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(header);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows) print_row(row);
}

void PrintQErrorBox(const std::string& name,
                    const std::vector<double>& signed_qerrors) {
  std::printf("%s\n",
              FormatBoxRow(name, ComputeBoxStats(signed_qerrors)).c_str());
}

}  // namespace neursc
