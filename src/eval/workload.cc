#include "eval/workload.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/trace.h"
#include "eval/metrics.h"
#include "graph/query_generator.h"
#include "matching/enumeration.h"

namespace neursc {

std::vector<size_t> Workload::IndicesOfSize(size_t size) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < sizes.size(); ++i) {
    if (sizes[i] == size) out.push_back(i);
  }
  return out;
}

Result<Workload> BuildWorkload(const Graph& data,
                               const std::vector<size_t>& sizes,
                               size_t per_size,
                               const WorkloadOptions& options) {
  NEURSC_SPAN(workload_span, "workload/build");
  Workload workload;
  uint64_t seed = options.seed;
  for (size_t size : sizes) {
    QueryGeneratorConfig qconfig;
    qconfig.query_size = size;
    qconfig.edge_keep_probability = options.edge_keep_probability;
    qconfig.seed = seed++;
    QueryGenerator generator(data, qconfig);

    // Query generation is cheap and sequential (one RNG stream); exact
    // counting dominates and parallelizes per query. Candidates are
    // over-generated, counted in parallel, then accepted in generation
    // order so the result is deterministic regardless of thread timing.
    const size_t batch = per_size + per_size / 2 + 4;
    size_t accepted = 0;
    size_t rounds = 0;
    while (accepted < per_size && rounds < 14) {
      ++rounds;
      std::vector<Graph> candidates;
      candidates.reserve(batch);
      for (size_t i = 0; i < batch; ++i) {
        auto query = generator.Generate();
        if (query.ok()) candidates.push_back(std::move(query).value());
      }
      if (candidates.empty()) continue;
      std::vector<double> counts(candidates.size(), -1.0);
      ParallelFor(candidates.size(), [&](size_t i) {
        NEURSC_SPAN(ground_truth_span, "workload/ground_truth");
        EnumerationOptions eopts;
        eopts.time_limit_seconds = options.ground_truth_time_limit;
        auto count = CountSubgraphIsomorphisms(candidates[i], data, eopts);
        if (count.ok() && count->exact) {
          counts[i] = static_cast<double>(count->count);
        }
      });
      for (size_t i = 0; i < candidates.size() && accepted < per_size;
           ++i) {
        if (counts[i] < 0.0) continue;
        if (options.deduplicate_isomorphic) {
          bool duplicate = false;
          for (size_t j = workload.examples.size(); j-- > 0;) {
            if (workload.sizes[j] != size) break;  // earlier sizes differ
            if (AreIsomorphic(workload.examples[j].query, candidates[i])) {
              duplicate = true;
              break;
            }
          }
          if (duplicate) continue;
        }
        workload.sizes.push_back(size);
        workload.examples.push_back(
            TrainingExample{std::move(candidates[i]), counts[i]});
        ++accepted;
      }
    }
    if (accepted < per_size) {
      NEURSC_LOG(Warning) << "workload size " << size << ": only " << accepted
                          << "/" << per_size << " queries within budget";
    }

    // Optional zero-count queries: relabel vertices of fresh extractions
    // with random labels until the exact count drops to 0.
    if (options.unmatchable_fraction > 0.0) {
      size_t want = static_cast<size_t>(options.unmatchable_fraction *
                                        static_cast<double>(per_size));
      Rng relabel_rng(options.seed + 7777 + size);
      size_t made = 0;
      size_t tries = 0;
      while (made < want && tries < 30 * want + 30) {
        ++tries;
        auto query = generator.Generate();
        if (!query.ok()) continue;
        GraphBuilder builder;
        for (size_t v = 0; v < query->NumVertices(); ++v) {
          builder.AddVertex(static_cast<Label>(
              relabel_rng.UniformIndex(std::max<size_t>(
                  data.NumLabels(), 1))));
        }
        for (size_t v = 0; v < query->NumVertices(); ++v) {
          for (VertexId w : query->Neighbors(static_cast<VertexId>(v))) {
            if (v < w) {
              (void)builder.AddEdge(static_cast<VertexId>(v), w);
            }
          }
        }
        auto relabeled = builder.Build();
        if (!relabeled.ok()) continue;
        EnumerationOptions eopts;
        eopts.time_limit_seconds = options.ground_truth_time_limit;
        eopts.max_matches = 1;
        auto count = CountSubgraphIsomorphisms(*relabeled, data, eopts);
        if (!count.ok() || count->count != 0) continue;
        workload.sizes.push_back(size);
        workload.examples.push_back(
            TrainingExample{std::move(relabeled).value(), 0.0});
        ++made;
      }
    }
  }
  if (workload.examples.empty()) {
    return Status::ResourceExhausted("no queries fit the ground-truth budget");
  }
  return workload;
}

WorkloadSplit SplitWorkload(const Workload& workload, double train_fraction,
                            uint64_t seed) {
  std::vector<size_t> indices(workload.examples.size());
  std::iota(indices.begin(), indices.end(), 0);
  Rng rng(seed);
  rng.Shuffle(&indices);
  size_t train_count = static_cast<size_t>(
      train_fraction * static_cast<double>(indices.size()));
  train_count = std::min(train_count, indices.size());
  WorkloadSplit split;
  split.train.assign(indices.begin(), indices.begin() + train_count);
  split.test.assign(indices.begin() + train_count, indices.end());
  return split;
}

WorkloadSplit StratifiedSplit(const Workload& workload,
                              double train_fraction, uint64_t seed) {
  std::set<size_t> distinct(workload.sizes.begin(), workload.sizes.end());
  Rng rng(seed);
  WorkloadSplit split;
  for (size_t size : distinct) {
    auto indices = workload.IndicesOfSize(size);
    rng.Shuffle(&indices);
    size_t train_count = static_cast<size_t>(
        train_fraction * static_cast<double>(indices.size()));
    train_count = std::min(train_count, indices.size());
    split.train.insert(split.train.end(), indices.begin(),
                       indices.begin() + train_count);
    split.test.insert(split.test.end(), indices.begin() + train_count,
                      indices.end());
  }
  return split;
}

std::vector<WorkloadSplit> KFoldSplits(const Workload& workload, size_t k,
                                       uint64_t seed) {
  NEURSC_CHECK(k >= 2);
  std::vector<size_t> indices(workload.examples.size());
  std::iota(indices.begin(), indices.end(), 0);
  Rng rng(seed);
  rng.Shuffle(&indices);
  std::vector<WorkloadSplit> splits(k);
  for (size_t fold = 0; fold < k; ++fold) {
    for (size_t i = 0; i < indices.size(); ++i) {
      if (i % k == fold) {
        splits[fold].test.push_back(indices[i]);
      } else {
        splits[fold].train.push_back(indices[i]);
      }
    }
  }
  return splits;
}

std::vector<TrainingExample> Gather(const Workload& workload,
                                    const std::vector<size_t>& indices) {
  std::vector<TrainingExample> out;
  out.reserve(indices.size());
  for (size_t i : indices) out.push_back(workload.examples[i]);
  return out;
}

Result<BatchEvaluation> EvaluateBatch(NeurSCEstimator* estimator,
                                      const Workload& workload,
                                      const std::vector<size_t>& indices) {
  NEURSC_SPAN(eval_span, "workload/evaluate_batch");
  std::vector<Graph> queries;
  queries.reserve(indices.size());
  for (size_t i : indices) queries.push_back(workload.examples[i].query);
  auto infos = estimator->EstimateBatch(queries);
  if (!infos.ok()) return infos.status();
  eval_span.End();
  BatchEvaluation result;
  result.infos = std::move(infos).value();
  result.batch_seconds = eval_span.ElapsedSeconds();
  result.signed_qerrors.reserve(indices.size());
  for (size_t k = 0; k < indices.size(); ++k) {
    result.signed_qerrors.push_back(SignedQError(
        result.infos[k].count, workload.examples[indices[k]].count));
  }
  return result;
}

}  // namespace neursc
